# Convenience targets; everything assumes PYTHONPATH=src (no install).

PY := PYTHONPATH=src python

.PHONY: test bench bench-engine

test:                 ## tier-1 test suite
	$(PY) -m pytest -q

bench:                ## full paper-reproduction benchmark run
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-engine:         ## throughput smoke: regenerates BENCH_engine.json
	$(PY) -m pytest -q benchmarks/test_engine_throughput.py
