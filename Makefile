# Convenience targets; everything assumes PYTHONPATH=src (no install).

SHELL := /bin/bash
PY := PYTHONPATH=src python

# Fault set for check-faults: all, exc, crash, hang or corrupt.
FAULT_SET ?= all

# Workload/variant for the timeline target.
WL ?= bfs-twitter
VARIANT ?= sdc_lp

.PHONY: test check check-faults check-shards check-service check-dse \
	check-ingest bench bench-engine profile-engine timeline docs-check

# Shard counts exercised by check-shards.
SHARD_COUNTS ?= 2 4

test:                 ## tier-1 test suite
	$(PY) -m pytest -q

timeline:             ## ASCII per-window cache timeline (WL=, VARIANT=)
	$(PY) -m repro timeline $(WL) $(VARIANT)

check:                ## quick workload subset with invariant checking on
	REPRO_VALIDATE=1 $(PY) -m repro fig7 --quick --length 50000 --no-cache

check-faults:         ## fault-injected grids must match the fault-free run
	set -euo pipefail; \
	work=$$(mktemp -d); trap 'rm -rf "$$work"' EXIT; \
	cmd="env $(PY) -m repro fig7 --quick --tier tiny --length 20000 --retries 3"; \
	strip() { grep -v '^  \['; }; \
	want() { [ "$(FAULT_SET)" = all ] || [ "$(FAULT_SET)" = "$$1" ]; }; \
	$$cmd --no-cache > "$$work/clean.txt"; \
	if want exc; then \
	  REPRO_FAULTS='seed=7,exc:0.3:2' $$cmd --no-cache --jobs 2 \
	    | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want crash; then \
	  REPRO_FAULTS='seed=7,crash:0.2' $$cmd --no-cache --jobs 2 \
	    | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want hang; then \
	  REPRO_FAULTS='seed=11,hang:0.1:1:60' $$cmd --no-cache --jobs 2 \
	    --timeout 15 | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want corrupt; then \
	  REPRO_CACHE_DIR="$$work/cache" REPRO_FAULTS='seed=7,corrupt:1.0' \
	    $$cmd --jobs 2 | strip > /dev/null; \
	  REPRO_CACHE_DIR="$$work/cache" $$cmd > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	echo "check-faults[$(FAULT_SET)]: fault-injected output identical to fault-free"

check-shards:         ## sharded sweeps must merge bit-identical to single-host
	set -euo pipefail; \
	work=$$(mktemp -d); trap 'rm -rf "$$work"' EXIT; \
	fig="fig7 --quick --tier tiny --length 20000"; \
	strip() { grep -v '^  \['; }; \
	env REPRO_CACHE_DIR="$$work/solo" $(PY) -m repro $$fig --no-cache \
	  > "$$work/clean.txt"; \
	for n in $(SHARD_COUNTS); do \
	  cache="$$work/cache$$n"; rid="shardcheck-$$n"; \
	  for i in $$(seq 0 $$((n - 1))); do \
	    env REPRO_CACHE_DIR="$$cache" $(PY) -m repro $$fig \
	      --shard $$i/$$n --resume $$rid > /dev/null; \
	  done; \
	  env REPRO_CACHE_DIR="$$cache" $(PY) -m repro merge $$rid; \
	  env REPRO_CACHE_DIR="$$cache" $(PY) -m repro $$fig \
	    | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; \
	done; \
	cache="$$work/cache-loss"; rid=shardcheck-loss; \
	if env REPRO_CACHE_DIR="$$cache" REPRO_FAULTS='seed=7,shard_loss:1.0' \
	  $(PY) -m repro $$fig --shard 0/2 --resume $$rid > /dev/null 2>&1; \
	  then echo "armed shard_loss run should have failed"; exit 1; fi; \
	env REPRO_CACHE_DIR="$$cache" $(PY) -m repro $$fig \
	  --shard 1/2 --resume $$rid > /dev/null; \
	if env REPRO_CACHE_DIR="$$cache" $(PY) -m repro merge $$rid \
	  > /dev/null 2>&1; \
	  then echo "merge should have refused the lost shard"; exit 1; fi; \
	env REPRO_CACHE_DIR="$$cache" REPRO_FAULTS='seed=7,shard_loss:1.0' \
	  $(PY) -m repro $$fig --shard 0/2 --resume $$rid > /dev/null; \
	env REPRO_CACHE_DIR="$$cache" $(PY) -m repro merge $$rid; \
	env REPRO_CACHE_DIR="$$cache" $(PY) -m repro $$fig \
	  | strip > "$$work/got.txt"; \
	diff "$$work/clean.txt" "$$work/got.txt"; \
	echo "check-shards: merged shard output identical to single-host"

check-service:        ## kill+restart the service mid-job, diff vs clean CLI
	$(PY) tools/service_smoke.py

check-dse:            ## SIGINT a DSE study mid-search; resume must be byte-identical
	$(PY) tools/dse_smoke.py

check-ingest:         ## ingest a real edge list; mapped CSR must match in-memory
	$(PY) tools/ingest_smoke.py

bench:                ## full paper-reproduction benchmark run
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-engine:         ## throughput smoke: regenerates BENCH_engine.json
	$(PY) -m pytest -q benchmarks/test_engine_throughput.py

profile-engine:       ## cProfile hotspot report + ref/batch wall-clock A/B
	$(PY) tools/profile_engine.py

docs-check:           ## markdown link check + doctests in trace/graph modules
	python tools/check_links.py README.md DESIGN.md EXPERIMENTS.md docs/*.md
	$(PY) -m doctest src/repro/trace/record.py src/repro/trace/kernels.py \
	  src/repro/trace/store.py src/repro/trace/synthetic.py \
	  src/repro/graphs/io.py src/repro/graphs/csr.py \
	  src/repro/graphs/ingest.py
	@echo "docs-check: links and doctests OK"
