# Convenience targets; everything assumes PYTHONPATH=src (no install).

PY := PYTHONPATH=src python

.PHONY: test check bench bench-engine

test:                 ## tier-1 test suite
	$(PY) -m pytest -q

check:                ## quick workload subset with invariant checking on
	REPRO_VALIDATE=1 $(PY) -m repro fig7 --quick --length 50000 --no-cache

bench:                ## full paper-reproduction benchmark run
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-engine:         ## throughput smoke: regenerates BENCH_engine.json
	$(PY) -m pytest -q benchmarks/test_engine_throughput.py
