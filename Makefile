# Convenience targets; everything assumes PYTHONPATH=src (no install).

SHELL := /bin/bash
PY := PYTHONPATH=src python

# Fault set for check-faults: all, exc, crash, hang or corrupt.
FAULT_SET ?= all

# Workload/variant for the timeline target.
WL ?= bfs-twitter
VARIANT ?= sdc_lp

.PHONY: test check check-faults bench bench-engine profile-engine \
	timeline docs-check

test:                 ## tier-1 test suite
	$(PY) -m pytest -q

timeline:             ## ASCII per-window cache timeline (WL=, VARIANT=)
	$(PY) -m repro timeline $(WL) $(VARIANT)

check:                ## quick workload subset with invariant checking on
	REPRO_VALIDATE=1 $(PY) -m repro fig7 --quick --length 50000 --no-cache

check-faults:         ## fault-injected grids must match the fault-free run
	set -euo pipefail; \
	work=$$(mktemp -d); trap 'rm -rf "$$work"' EXIT; \
	cmd="env $(PY) -m repro fig7 --quick --tier tiny --length 20000 --retries 3"; \
	strip() { grep -v '^  \['; }; \
	want() { [ "$(FAULT_SET)" = all ] || [ "$(FAULT_SET)" = "$$1" ]; }; \
	$$cmd --no-cache > "$$work/clean.txt"; \
	if want exc; then \
	  REPRO_FAULTS='seed=7,exc:0.3:2' $$cmd --no-cache --jobs 2 \
	    | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want crash; then \
	  REPRO_FAULTS='seed=7,crash:0.2' $$cmd --no-cache --jobs 2 \
	    | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want hang; then \
	  REPRO_FAULTS='seed=11,hang:0.1:1:60' $$cmd --no-cache --jobs 2 \
	    --timeout 15 | strip > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	if want corrupt; then \
	  REPRO_CACHE_DIR="$$work/cache" REPRO_FAULTS='seed=7,corrupt:1.0' \
	    $$cmd --jobs 2 | strip > /dev/null; \
	  REPRO_CACHE_DIR="$$work/cache" $$cmd > "$$work/got.txt"; \
	  diff "$$work/clean.txt" "$$work/got.txt"; fi; \
	echo "check-faults[$(FAULT_SET)]: fault-injected output identical to fault-free"

bench:                ## full paper-reproduction benchmark run
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-engine:         ## throughput smoke: regenerates BENCH_engine.json
	$(PY) -m pytest -q benchmarks/test_engine_throughput.py

profile-engine:       ## cProfile hotspot report + ref/batch wall-clock A/B
	$(PY) tools/profile_engine.py

docs-check:           ## markdown link check + doctests in trace modules
	python tools/check_links.py README.md DESIGN.md EXPERIMENTS.md docs/*.md
	$(PY) -m doctest src/repro/trace/record.py src/repro/trace/kernels.py \
	  src/repro/trace/store.py
	@echo "docs-check: links and doctests OK"
