"""Property tests for the SystemStats payload encoding.

``to_payload``/``from_payload`` is the serialization boundary shared by
the results cache and the parallel engine (parallel == serial only if
the encoding is lossless), so it must round-trip exactly for *every*
combination of optional fields — including the telemetry timeline.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lp import LPStats
from repro.core.system import SystemStats
from repro.mem.cache import CacheStats
from repro.mem.dram import DRAMStats
from repro.mem.tlb import TLBStats
from repro.telemetry.probes import TIMELINE_METRICS, Timeline

counts = st.integers(min_value=0, max_value=10**9)
metric_values = st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False)

cache_stats = st.builds(
    CacheStats, accesses=counts, hits=counts, misses=counts,
    prefetch_fills=counts, prefetch_hits=counts, writebacks=counts,
    evictions=counts, fills=counts, invalidations=counts)

dram_stats = st.builds(DRAMStats, reads=counts, writes=counts,
                       row_hits=counts, row_misses=counts,
                       row_conflicts=counts)

lp_stats = st.builds(LPStats, lookups=counts, table_hits=counts,
                     table_misses=counts, predicted_irregular=counts,
                     predicted_regular=counts)

tlb_stats = st.builds(TLBStats, accesses=counts, l1_hits=counts,
                      l2_hits=counts, walks=counts)


@st.composite
def timelines(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    series = {name: draw(st.lists(metric_values, min_size=n,
                                  max_size=n))
              for name in TIMELINE_METRICS}
    return Timeline(
        interval=draw(st.integers(min_value=1, max_value=1 << 20)),
        series=series,
        instructions=draw(st.lists(counts, min_size=n, max_size=n)),
        dropped=draw(st.integers(min_value=0, max_value=1000)))


system_stats = st.builds(
    SystemStats,
    variant=st.sampled_from(("baseline", "sdc_lp", "topt", "expert")),
    instructions=counts,
    cycles=st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    l1d=cache_stats, l2c=cache_stats, llc=cache_stats,
    sdc=st.none() | cache_stats,
    dram=dram_stats,
    lp=st.none() | lp_stats,
    levels=st.none(),
    tlb=st.none() | tlb_stats,
    timeline=st.none() | timelines())


class TestPayloadRoundTrip:
    @given(system_stats)
    @settings(max_examples=120, deadline=None)
    def test_round_trip_is_exact(self, stats):
        back = SystemStats.from_payload(stats.to_payload())
        assert back == stats

    @given(system_stats)
    @settings(max_examples=60, deadline=None)
    def test_survives_json_encoding(self, stats):
        # The cache stores payloads as JSON text; the payload must be
        # JSON-representable and identical after the text round trip.
        payload = stats.to_payload()
        back = SystemStats.from_payload(json.loads(json.dumps(payload)))
        assert back == stats

    @given(system_stats)
    @settings(max_examples=60, deadline=None)
    def test_payload_checksum_is_stable(self, stats):
        from repro.experiments.results_cache import payload_checksum
        p1, p2 = stats.to_payload(), stats.to_payload()
        assert payload_checksum(p1) == payload_checksum(p2)

    def test_levels_refuse_serialization(self):
        stats = SystemStats(
            variant="baseline", instructions=1, cycles=1.0,
            l1d=CacheStats(), l2c=CacheStats(), llc=CacheStats(),
            sdc=None, dram=DRAMStats(), lp=None,
            levels=np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            stats.to_payload()

    @given(timelines())
    @settings(max_examples=60, deadline=None)
    def test_timeline_payload_round_trip(self, timeline):
        back = Timeline.from_payload(
            json.loads(json.dumps(timeline.to_payload())))
        assert back == timeline
        assert dataclasses.asdict(back) == dataclasses.asdict(timeline)
