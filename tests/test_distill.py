"""Tests for the Distill Cache (LOC + WOC) baseline."""

import pytest

from repro.config import CacheConfig
from repro.mem.distill import WORDS_PER_BLOCK, DistillCache


def make(blocks=16, ways=4, woc_ways=2):
    return DistillCache(CacheConfig("dllc", blocks * 64, ways, 10, 8,
                                    "lru"), woc_ways=woc_ways)


class TestConstruction:
    def test_loc_capacity_reduced(self):
        d = make(blocks=16, ways=4, woc_ways=2)
        assert d.loc.config.ways == 2
        assert d.loc.config.size_bytes == 8 * 64

    def test_invalid_woc_ways(self):
        with pytest.raises(ValueError):
            make(ways=4, woc_ways=4)
        with pytest.raises(ValueError):
            make(ways=4, woc_ways=0)


class TestDistillation:
    def test_used_word_survives_eviction(self):
        d = make(blocks=8, ways=4, woc_ways=2)   # LOC: 2 ways, 2 sets
        nsets = d.num_sets
        d.fill(0, aux=3)          # word 3 used
        d.access(0, False, aux=3)
        # Evict block 0 from LOC by filling its set.
        d.fill(nsets, aux=0)
        d.fill(2 * nsets, aux=0)
        assert not d.loc.contains(0)
        # The used word is still served from the WOC.
        assert d.access(0, False, aux=3)
        assert d.woc_hits == 1

    def test_unused_word_misses_after_eviction(self):
        d = make(blocks=8, ways=4, woc_ways=2)
        nsets = d.num_sets
        d.fill(0, aux=3)
        d.fill(nsets, aux=0)
        d.fill(2 * nsets, aux=0)
        assert not d.access(0, False, aux=5)    # word 5 never touched

    def test_usage_tracked_per_word(self):
        d = make()
        d.fill(1, aux=0)
        d.access(1, False, aux=2)
        d.access(1, False, aux=7)
        assert d.usage[1] == (1 << 0) | (1 << 2) | (1 << 7)

    def test_woc_capacity_bounded(self):
        d = make(blocks=8, ways=4, woc_ways=1)
        nsets = d.num_sets
        cap = d.woc_capacity
        # Distill many fully-used lines into one WOC set.
        for i in range(6):
            block = i * nsets     # all map to set 0
            d.fill(block)
            for w in range(WORDS_PER_BLOCK):
                d.access(block, False, aux=w)
        assert all(len(ws) <= cap for ws in d.woc)

    def test_invalidate_clears_woc(self):
        d = make(blocks=8, ways=4, woc_ways=2)
        nsets = d.num_sets
        d.fill(0, aux=1)
        d.fill(nsets, aux=0)
        d.fill(2 * nsets, aux=0)   # 0 distilled to WOC
        d.invalidate(0)
        assert not d.access(0, False, aux=1)

    def test_flush(self):
        d = make()
        d.fill(0, aux=0)
        d.flush()
        assert not d.contains(0)
        assert d.usage == {}


class TestInterface:
    def test_stats_consistent(self):
        d = make()
        d.access(0, False, aux=0)      # miss
        d.fill(0, aux=0)
        d.access(0, False, aux=0)      # hit
        assert d.stats.accesses == 2
        assert d.stats.hits == 1
        assert d.stats.misses == 1

    def test_mark_dirty_delegates(self):
        d = make()
        d.fill(0)
        assert d.mark_dirty(0)
        assert not d.mark_dirty(99)

    def test_works_as_llc_in_hierarchy(self):
        """Integration: mount DistillCache as the LLC."""
        import dataclasses
        from repro.config import scaled_config
        from repro.mem.hierarchy import MemoryHierarchy
        cfg = scaled_config(64)
        llc = DistillCache(cfg.llc)
        h = MemoryHierarchy(cfg, llc=llc, enable_prefetch=False)
        for b in range(100):
            h.access(b, False)
        assert llc.stats.accesses > 0
