"""Tests for the cache-level predictor (sdc_clp) and the tag-less LP
ablation (sdc_lp_tagless): unit behavior, variant wiring, invariants,
differential twins and batch-backend refusal."""

import dataclasses

import numpy as np
import pytest

from repro.config import (CLPConfig, LPConfig, TAGLESS_LP_GROWTH,
                          tagless_lp_config)
from repro.core.batch.build import load_kernel
from repro.core.clp import CacheLevelPredictor, LEVEL_WEIGHTS
from repro.core.lp import LargePredictor
from repro.core.multicore import MultiCoreSystem
from repro.core.system import (SDC_VARIANTS, SingleCoreSystem, VARIANTS,
                               variant_config)
from repro.experiments.runner import default_config
from repro.mem.hierarchy import DRAM, L1D
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace
from repro.validate.invariants import (InvariantViolation,
                                       check_clp_structure)


def _trace(n=4000, seed=9) -> Trace:
    """Half-sequential half-random trace (golden-trace shape, small)."""
    space = AddressSpace()
    space.add("seq", 4, 1 << 12)
    rnd = space.add("rnd", 4, 1 << 16, irregular_hint=True)
    seq = space["seq"]
    rng = np.random.default_rng(seed)
    acc = np.zeros(n, dtype=ACCESS_DTYPE)
    seq_idx = np.arange(n) % (1 << 12)
    rnd_idx = rng.integers(0, 1 << 16, size=n)
    use_rnd = rng.random(n) < 0.5
    acc["addr"] = np.where(use_rnd, rnd.addr(rnd_idx), seq.addr(seq_idx))
    acc["pc"] = np.where(use_rnd, 0x400024, 0x400048)
    acc["write"] = rng.random(n) < 0.25
    acc["gap"] = 2
    acc["dep"] = -1
    return Trace(acc, space)


class TestCLPUnit:
    def test_miss_allocates_and_predicts_regular(self):
        clp = CacheLevelPredictor(CLPConfig(entries=16, ways=4))
        assert clp.predict(0x400) is False
        assert clp.peek(0x400) == 0
        assert clp.stats.table_misses == 1

    def test_deep_service_promotes_to_irregular(self):
        clp = CacheLevelPredictor(CLPConfig(entries=16, ways=4,
                                            tau_clp=8))
        pc = 0x400
        clp.predict(pc)
        clp.update(pc, DRAM)            # EMA: (0 + 24) >> 1 = 12
        assert clp.peek(pc) == LEVEL_WEIGHTS[DRAM] >> 1
        assert clp.predict(pc) is True

    def test_shallow_service_demotes(self):
        clp = CacheLevelPredictor(CLPConfig(entries=16, ways=4,
                                            tau_clp=8))
        pc = 0x400
        clp.predict(pc)
        clp.update(pc, DRAM)
        clp.update(pc, DRAM)            # ctr 18
        for _ in range(8):
            clp.update(pc, L1D)         # weight 0: halves each time
        assert clp.predict(pc) is False

    def test_counter_saturates_at_ctr_max(self):
        cfg = CLPConfig(entries=16, ways=4, ctr_bits=3)   # ctr_max 7
        clp = CacheLevelPredictor(cfg)
        clp.predict(0x400)
        for _ in range(8):
            clp.update(0x400, DRAM)     # unclamped EMA would reach 15
        assert clp.peek(0x400) == cfg.ctr_max
        check_clp_structure(clp)

    def test_lru_eviction_respects_ways(self):
        clp = CacheLevelPredictor(CLPConfig(entries=8, ways=2))
        # 4 sets: PCs 16 bytes apart share a set with distinct tags.
        pcs = [0x400 + i * 16 for i in range(3)]
        for pc in pcs:
            clp.predict(pc)
        assert all(len(s) <= 2 for s in clp.sets)
        check_clp_structure(clp)
        assert clp.peek(pcs[0]) is None          # LRU victim gone

    def test_non_pow2_sets_rejected(self):
        with pytest.raises(ValueError):
            CacheLevelPredictor(CLPConfig(entries=24, ways=4))

    def test_invariant_catches_corruption(self):
        clp = CacheLevelPredictor(CLPConfig(entries=16, ways=4))
        clp.predict(0x400)
        lines = clp.sets[(0x400 >> 2) & clp._set_mask]
        next(iter(lines.values())).ctr = 99
        with pytest.raises(InvariantViolation):
            check_clp_structure(clp)

    def test_storage_bits(self):
        cfg = CLPConfig(entries=128, ways=8, tag_bits=65, ctr_bits=5)
        assert cfg.storage_bits == 128 * (65 + 5 + 1)


class TestTaglessLP:
    def test_config_transform(self):
        lp = LPConfig()
        tl = tagless_lp_config(lp)
        assert tl.tagless and tl.tag_bits == 0 and tl.ways == 1
        assert tl.entries == lp.entries * TAGLESS_LP_GROWTH
        # Idempotent: DSE candidates bake the transform in ahead of
        # variant_config applying it again.
        assert tagless_lp_config(tl) == tl

    def test_variant_config_applies_transform(self):
        cfg = variant_config(default_config(), "sdc_lp_tagless")
        assert cfg.lp.tagless
        assert cfg.lp.entries == default_config().lp.entries * 4

    def test_aliasing_shares_entries(self):
        # Two PCs mapping to the same set share the single tag-less
        # slot: the second PC inherits the first PC's stride state.
        lp = LargePredictor(tagless_lp_config(LPConfig(entries=4,
                                                       ways=4)))
        pc_a = 0x400
        pc_b = pc_a + lp.num_sets * 4
        lp.predict_and_update(pc_a, 100)
        assert lp.peek(pc_b) == lp.peek(pc_a)
        lp.predict_and_update(pc_b, 500)
        assert lp.peek(pc_a)[0] == 500
        assert lp.stats.table_misses == 1    # b aliased onto a's entry

    def test_tagged_lp_keeps_pcs_distinct(self):
        lp = LargePredictor(LPConfig(entries=4, ways=4))
        pc_a = 0x400
        pc_b = pc_a + lp.num_sets * 4
        lp.predict_and_update(pc_a, 100)
        assert lp.peek(pc_b) is None


class TestVariantWiring:
    def test_registered(self):
        assert "sdc_clp" in VARIANTS and "sdc_lp_tagless" in VARIANTS
        assert "sdc_clp" in SDC_VARIANTS
        assert "sdc_lp_tagless" in SDC_VARIANTS

    @pytest.mark.parametrize("variant", ["sdc_clp", "sdc_lp_tagless"])
    def test_single_core_runs_clean_under_check(self, variant):
        sys_ = SingleCoreSystem(default_config(), variant=variant,
                                check_every=500)
        stats = sys_.run(_trace())
        assert stats.cycles > 0
        assert stats.lp is not None and stats.lp.lookups == 4000
        assert stats.sdc is not None

    def test_clp_stats_ride_lp_slot(self):
        sys_ = SingleCoreSystem(default_config(), variant="sdc_clp")
        stats = sys_.run(_trace())
        assert stats.lp.lookups == (stats.lp.predicted_irregular
                                    + stats.lp.predicted_regular)

    def test_clp_warmup_resets_stats(self):
        sys_ = SingleCoreSystem(default_config(), variant="sdc_clp")
        stats = sys_.run(_trace(), warmup=1000, flush_sdc_every=700)
        assert stats.lp.lookups == 3000      # post-warmup window only

    @pytest.mark.parametrize("variant", ["sdc_clp", "sdc_lp_tagless"])
    def test_multicore_runs_clean_under_check(self, variant):
        mc = MultiCoreSystem(default_config(num_cores=2), variant=variant,
                             check_every=500)
        traces = [_trace(1500, seed=s) for s in range(mc.num_cores)]
        res = mc.run(traces)
        assert all(s.cycles > 0 for s in res.per_core)
        assert all(s.lp is not None for s in res.per_core)

    @pytest.mark.parametrize("variant", ["sdc_clp", "sdc_lp_tagless"])
    def test_batch_backend_refuses(self, variant):
        from repro.core.batch.backend import unsupported_reason
        sys_ = SingleCoreSystem(default_config(), variant=variant)
        reason = unsupported_reason(sys_, _trace(100))
        assert reason is not None and "kernel" in reason

    def test_batch_refuses_handbuilt_tagless_sdc_lp(self):
        # A tagless LPConfig smuggled under plain sdc_lp must also be
        # refused — the kernel only models the tagged lookup.
        from repro.core.batch.backend import unsupported_reason
        cfg = dataclasses.replace(default_config(),
                                  lp=tagless_lp_config(LPConfig()))
        sys_ = SingleCoreSystem(cfg, variant="sdc_lp")
        reason = unsupported_reason(sys_, _trace(100))
        if load_kernel() is None:
            assert reason == "kernel unavailable"
        else:
            assert reason is not None and "tagless" in reason


class TestDifferentialTwins:
    @pytest.mark.parametrize("variant", ["sdc_clp", "sdc_lp_tagless"])
    def test_inlined_vs_generic_lru(self, variant):
        from repro.validate.differential import diff_inlined_vs_generic_lru
        diff_inlined_vs_generic_lru(_trace(2000),
                                    config=default_config(),
                                    variant=variant)

    @pytest.mark.parametrize("variant", ["sdc_clp", "sdc_lp_tagless"])
    def test_multicore1_vs_single(self, variant):
        from repro.validate.differential import diff_multicore1_vs_single
        diff_multicore1_vs_single(_trace(2000),
                                  config=default_config(),
                                  variant=variant)
