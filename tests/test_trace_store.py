"""Tests for the v8 memory-mapped trace store (repro.trace.store) and
its integration with the workload trace cache: round trips, corruption
and truncation quarantine, v7 migration, concurrent multi-process
mapping, and mapped-vs-in-memory simulation equivalence."""

import hashlib
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import faults
from repro.experiments import workloads
from repro.experiments.workloads import (TRACE_FORMAT_VERSION,
                                         workload_trace)
from repro.trace import store
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace

MICRO = dict(tier="tiny", length=8_000)


def _toy_trace(n: int = 64, name: str = "toy") -> Trace:
    space = AddressSpace()
    r = space.add("data", 4, n, irregular_hint=True)
    acc = np.zeros(n, dtype=ACCESS_DTYPE)
    acc["pc"] = 0x40_0000
    acc["addr"] = r.addr(np.arange(n))
    acc["write"][::3] = 1
    acc["gap"] = 2
    acc["dep"] = -1
    acc["dep"][1:] = np.arange(n - 1)
    return Trace(acc, space, name, "pr", "kron")


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store.reset_counters()
    return tmp_path


class TestStoreFormat:
    def test_round_trip(self, tmp_path):
        t = _toy_trace()
        path = tmp_path / "t.trace"
        store.write_trace(t, path)
        u = store.open_trace(path)
        assert np.array_equal(u.accesses, t.accesses)
        assert u.name == "toy" and u.kernel == "pr" and u.graph == "kron"
        regs = u.address_space.regions
        assert list(regs) == ["data"]
        assert regs["data"].base == t.address_space["data"].base
        assert regs["data"].irregular_hint

    def test_mapped_zero_copy_and_read_only(self, tmp_path):
        t = _toy_trace()
        path = tmp_path / "t.trace"
        store.write_trace(t, path)
        u = store.open_trace(path, mapped=True)
        assert isinstance(u.accesses, np.memmap)
        assert not u.accesses.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            u.accesses["pc"][0] = 1
        # The un-mapped variant is a private, writable copy.
        v = store.open_trace(path, mapped=False)
        assert not isinstance(v.accesses, np.memmap)
        assert np.array_equal(v.accesses, u.accesses)

    def test_header_reports_shape(self, tmp_path):
        t = _toy_trace(n=17)
        path = tmp_path / "t.trace"
        store.write_trace(t, path)
        head = store.read_header(path)
        assert head["num_records"] == 17
        assert store.is_store_file(path)
        assert not store.is_store_file(tmp_path / "absent")

    @pytest.mark.parametrize("damage", [
        ("magic", lambda b: b"XXXXXXXX" + b[8:]),
        ("header-byte", lambda b: b[:20] + bytes([b[20] ^ 0xFF]) + b[21:]),
        ("truncated-header", lambda b: b[:40]),
        ("truncated-records", lambda b: b[:-10]),
        ("record-byte", lambda b: b[:-10] + bytes([b[-10] ^ 0xFF])
                                  + b[-9:]),
        ("meta-byte", lambda b: b[:110] + bytes([b[110] ^ 0xFF])
                                + b[111:]),
    ])
    def test_damage_detected(self, tmp_path, damage):
        label, mangle = damage
        t = _toy_trace()
        path = tmp_path / "t.trace"
        store.write_trace(t, path)
        path.write_bytes(mangle(path.read_bytes()))
        with pytest.raises(store.TraceStoreError):
            store.open_trace(path)

    def test_version_mismatch_rejected(self, tmp_path):
        t = _toy_trace()
        path = tmp_path / "t.trace"
        store.write_trace(t, path)
        # Patch the version field and re-sign the header: a structurally
        # valid file from a *different* format version must be refused,
        # not misread.
        data = bytearray(path.read_bytes())
        data[8:12] = (99).to_bytes(4, "little")
        data[72:104] = hashlib.sha256(bytes(data[:72])).digest()
        path.write_bytes(bytes(data))
        with pytest.raises(store.TraceStoreError, match="version"):
            store.open_trace(path)

    def test_store_version_matches_cache_key_version(self):
        # The on-disk format version and the trace-cache key version are
        # one contract; bumping one without the other silently serves
        # stale traces.
        assert store.STORE_VERSION == TRACE_FORMAT_VERSION


class TestWorkloadCacheIntegration:
    def test_corrupt_file_quarantined_and_regenerated_once(
            self, cache, monkeypatch):
        t = workload_trace("pr.urand", **MICRO)
        # Snapshot before damaging: in-place writes reuse the mapped
        # inode, so `t.accesses` must not be dereferenced afterwards
        # (production writes are atomic renames — old maps stay valid).
        want = np.array(t.accesses)
        path = workloads._trace_path(workloads.Workload("pr", "urand"),
                                     **MICRO)
        data = bytearray(path.read_bytes())
        data[20] ^= 0xFF                     # damage the header
        path.write_bytes(bytes(data))

        calls = []
        real_generate = workloads._generate

        def counting_generate(*a, **kw):
            calls.append(a)
            return real_generate(*a, **kw)

        monkeypatch.setattr(workloads, "_generate", counting_generate)
        u = workload_trace("pr.urand", **MICRO)
        assert len(calls) == 1               # exactly one regeneration
        assert np.array_equal(u.accesses, want)
        bad = list(workloads.trace_quarantine_dir().glob("*.bad"))
        assert len(bad) == 1
        # The regenerated entry is clean: a further load is a pure
        # mapped open, no generation.
        v = workload_trace("pr.urand", **MICRO)
        assert len(calls) == 1
        assert isinstance(v.accesses, np.memmap)

    def test_truncated_file_quarantined_and_regenerated(self, cache,
                                                        monkeypatch):
        t = workload_trace("cc.urand", **MICRO)
        want = np.array(t.accesses)          # snapshot before truncating
        del t                                # drop the soon-stale map
        path = workloads._trace_path(workloads.Workload("cc", "urand"),
                                     **MICRO)
        path.write_bytes(path.read_bytes()[:store.HEADER_SIZE + 7])
        u = workload_trace("cc.urand", **MICRO)
        assert np.array_equal(u.accesses, want)
        assert len(list(workloads.trace_quarantine_dir()
                        .glob("*.bad"))) == 1
        assert store.counters_snapshot()["corrupt"] >= 1

    def test_v7_npz_migrates_to_store(self, cache, monkeypatch):
        # Build the trace once, save it in the legacy v7 .npz format at
        # the legacy path, and drop the v8 entry.
        wl = workloads.Workload("pr", "urand")
        t = workload_trace("pr.urand", **MICRO)
        legacy = workloads._legacy_trace_path(wl, **MICRO)
        with open(legacy, "wb") as fh:
            t.save(fh)
        v8 = workloads._trace_path(wl, **MICRO)
        v8.unlink()
        store.reset_counters()

        # Migration must not regenerate.
        monkeypatch.setattr(
            workloads, "_generate",
            lambda *a, **kw: pytest.fail("migration must not regenerate"))
        u = workload_trace("pr.urand", **MICRO)
        assert np.array_equal(u.accesses, t.accesses)
        assert isinstance(u.accesses, np.memmap)
        assert v8.exists() and not legacy.exists()
        snap = store.counters_snapshot()
        assert snap["migrations"] == 1 and snap["stale"] == 1

    def test_unreadable_v7_is_quarantined(self, cache):
        wl = workloads.Workload("cc", "urand")
        legacy = workloads._legacy_trace_path(wl, **MICRO)
        legacy.write_bytes(b"not an npz at all")
        t = workload_trace("cc.urand", **MICRO)   # regenerates
        assert len(t) > 0
        assert not legacy.exists()
        assert len(list(workloads.trace_quarantine_dir()
                        .glob("*.bad"))) == 1

    def test_no_cache_returns_in_memory_trace(self, cache):
        t = workload_trace("pr.urand", use_cache=False, **MICRO)
        assert not isinstance(t.accesses, np.memmap)
        assert list(cache.glob("*.trace")) == []


class TestFaultInjection:
    @pytest.fixture(autouse=True)
    def _clean_plan(self):
        faults.deactivate()
        yield
        faults.deactivate()

    @pytest.mark.parametrize("kind", ["corrupt", "truncate"])
    def test_damaged_write_recovers_once(self, cache, monkeypatch, kind):
        faults.activate(faults.FaultPlan.parse(f"seed=3,{kind}:1.0"))
        monkeypatch.setattr(workloads, "_store_write_seq", {})
        calls = []
        real_generate = workloads._generate

        def counting_generate(*a, **kw):
            calls.append(a)
            return real_generate(*a, **kw)

        monkeypatch.setattr(workloads, "_generate", counting_generate)
        t = workload_trace("pr.urand", **MICRO)
        # First write damaged -> quarantined -> one regeneration whose
        # write (seq 2 > max_attempt 1) lands clean.
        assert len(calls) == 2
        assert len(list(workloads.trace_quarantine_dir()
                        .glob("*.bad"))) == 1
        faults.deactivate()
        u = workload_trace("pr.urand", **MICRO)
        assert np.array_equal(u.accesses, t.accesses)
        assert isinstance(u.accesses, np.memmap)


def _hash_mapped(path_str: str) -> str:
    trace = store.open_trace(path_str)
    assert isinstance(trace.accesses, np.memmap)
    return hashlib.sha256(np.asarray(trace.accesses).tobytes()).hexdigest()


class TestConcurrency:
    def test_multiprocess_open_same_file(self, cache):
        workload_trace("pr.urand", **MICRO)
        path = workloads._trace_path(workloads.Workload("pr", "urand"),
                                     **MICRO)
        want = _hash_mapped(str(path))
        with ProcessPoolExecutor(max_workers=4) as pool:
            got = list(pool.map(_hash_mapped, [str(path)] * 8))
        assert got == [want] * 8


class TestSimulationEquivalence:
    def test_mapped_equals_in_memory(self, cache):
        from repro.config import scaled_config
        from repro.experiments.runner import run_variant

        cfg = scaled_config(64)
        mapped = workload_trace("pr.urand", **MICRO)
        inmem = workload_trace("pr.urand", mapped=False, **MICRO)
        assert isinstance(mapped.accesses, np.memmap)
        assert not isinstance(inmem.accesses, np.memmap)
        for variant in ("baseline", "sdc_lp"):
            a = run_variant(mapped, variant, cfg).to_payload()
            b = run_variant(inmem, variant, cfg).to_payload()
            assert a == b

    def test_resolve_trace_rejects_stale_version(self, cache,
                                                 monkeypatch):
        from repro.experiments import parallel
        monkeypatch.setattr(parallel, "_worker_traces", {})
        loads = []
        monkeypatch.setattr(
            parallel, "workload_trace",
            lambda name, tier, length: loads.append(name) or object())
        ref = ("spec", "pr.urand", "tiny", 8000)
        parallel._resolve_trace(ref)
        parallel._resolve_trace(ref)
        assert loads == ["pr.urand"]         # second hit served from LRU
        # A format-version bump mid-process must invalidate the entry.
        monkeypatch.setattr(workloads, "TRACE_FORMAT_VERSION",
                            workloads.TRACE_FORMAT_VERSION + 1)
        parallel._resolve_trace(ref)
        assert loads == ["pr.urand", "pr.urand"]
