"""Tests for the address-space layout."""

import numpy as np
import pytest

from repro.trace.layout import PAGE, AddressSpace


class TestAddressSpace:
    def test_regions_page_aligned_and_disjoint(self):
        space = AddressSpace()
        a = space.add("a", 4, 1000)
        b = space.add("b", 8, 500)
        c = space.add("c", 1, 10)
        for r in (a, b, c):
            assert r.base % PAGE == 0
        assert a.end <= b.base
        assert b.end <= c.base

    def test_guard_page_between_regions(self):
        space = AddressSpace()
        a = space.add("a", 4, 1024)          # exactly one page
        b = space.add("b", 4, 1)
        assert b.base - a.end >= PAGE

    def test_addr_scalar_and_vector(self):
        space = AddressSpace()
        r = space.add("a", 4, 100)
        assert r.addr(0) == r.base
        assert r.addr(5) == r.base + 20
        addrs = r.addr(np.array([0, 1, 2]))
        assert list(addrs) == [r.base, r.base + 4, r.base + 8]

    def test_region_of(self):
        space = AddressSpace()
        a = space.add("a", 4, 100)
        b = space.add("b", 8, 10)
        assert space.region_of(a.base + 12).name == "a"
        assert space.region_of(b.base).name == "b"
        assert space.region_of(a.end + 1) is None       # guard gap
        assert space.region_of(0) is None

    def test_duplicate_name_raises(self):
        space = AddressSpace()
        space.add("a", 4, 10)
        with pytest.raises(ValueError):
            space.add("a", 4, 10)

    def test_invalid_params_raise(self):
        space = AddressSpace()
        with pytest.raises(ValueError):
            space.add("x", 0, 10)
        with pytest.raises(ValueError):
            space.add("y", 4, -1)

    def test_zero_length_region_allowed(self):
        space = AddressSpace()
        r = space.add("empty", 4, 0)
        assert r.size == 0

    def test_classify_addresses_vectorized(self):
        space = AddressSpace()
        a = space.add("a", 4, 100)
        b = space.add("b", 4, 100, irregular_hint=True)
        addrs = np.array([a.base, a.base + 4, b.base, b.end + 5, 0],
                         dtype=np.int64)
        rids = space.classify_addresses(addrs)
        assert list(rids) == [0, 0, 1, -1, -1]

    def test_classify_matches_region_of(self):
        space = AddressSpace()
        space.add("a", 4, 64)
        space.add("b", 8, 32)
        space.add("c", 2, 1000)
        rng = np.random.default_rng(1)
        addrs = rng.integers(space["a"].base - 100,
                             space["c"].end + 100, size=200)
        rids = space.classify_addresses(addrs)
        names = list(space.regions)
        for addr, rid in zip(addrs, rids):
            region = space.region_of(int(addr))
            assert (region.name if region else None) == \
                (names[rid] if rid >= 0 else None)

    def test_irregular_hint_recorded(self):
        space = AddressSpace()
        r = space.add("prop", 4, 10, irregular_hint=True)
        assert r.irregular_hint
        assert "irregular" in space.describe()

    def test_contains_lookup(self):
        space = AddressSpace()
        space.add("a", 4, 10)
        assert "a" in space
        assert "b" not in space

    def test_region_ids_stable_order(self):
        space = AddressSpace()
        space.add("z", 4, 10)
        space.add("a", 4, 10)
        assert space.region_ids() == {"z": 0, "a": 1}
