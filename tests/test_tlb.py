"""Tests for the TLB hierarchy (Table I: L1 DTLB + L2 TLB)."""

import pytest

from repro.mem.tlb import (L1_DTLB, L2_TLB, PAGE_BITS, TLBConfig,
                           TLBHierarchy)

PAGE = 1 << PAGE_BITS


class TestConfig:
    def test_table1_geometries(self):
        assert L1_DTLB.entries == 64 and L1_DTLB.ways == 4
        assert L1_DTLB.latency == 1
        assert L2_TLB.entries == 1536 and L2_TLB.ways == 12
        assert L2_TLB.latency == 8
        assert L1_DTLB.num_sets == 16
        assert L2_TLB.num_sets == 128

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            _ = TLBConfig("x", 10, 3, 1).num_sets


class TestTranslation:
    def test_first_access_walks(self):
        t = TLBHierarchy()
        lat = t.translate(0x1000)
        assert lat == L2_TLB.latency + t.walk_latency
        assert t.stats.walks == 1

    def test_l1_hit_is_free(self):
        """VIPT overlap: a DTLB hit adds zero cycles."""
        t = TLBHierarchy()
        t.translate(0x1000)
        assert t.translate(0x1000) == 0
        assert t.translate(0x1FFF) == 0        # same page
        assert t.stats.l1_hits == 2

    def test_l2_hit_after_l1_eviction(self):
        t = TLBHierarchy()
        t.translate(0)
        # Evict page 0 from the 4-way L1 set without leaving the L2.
        nsets = t.l1.num_sets
        for i in range(1, 5):
            t.translate(i * nsets * PAGE)
        lat = t.translate(0)
        assert lat == L2_TLB.latency
        assert t.stats.l2_hits == 1

    def test_same_block_page_precomputed(self):
        t = TLBHierarchy()
        assert t.translate_page(5) == t.walk_latency + L2_TLB.latency
        assert t.translate_page(5) == 0

    def test_sequential_scan_cheap(self):
        """A streaming workload touches each page 64 times: one walk per
        64 block accesses."""
        t = TLBHierarchy()
        for block in range(64 * 16):
            t.translate(block * 64)
        assert t.stats.walks == 16
        assert t.stats.l1_miss_rate < 0.05

    def test_random_large_footprint_walks_often(self):
        import numpy as np
        t = TLBHierarchy()
        rng = np.random.default_rng(0)
        for page in rng.integers(0, 1 << 20, size=4000):
            t.translate_page(int(page))
        # Footprint of 1M pages vastly exceeds 1536 L2 TLB entries.
        assert t.stats.walks > 3500

    def test_stats_accounting(self):
        t = TLBHierarchy()
        t.translate(0)
        t.translate(0)
        s = t.stats
        assert s.accesses == 2
        assert s.l1_hits + s.l2_hits + s.walks == s.accesses


class TestSystemIntegration:
    def test_tlb_enabled_by_default(self):
        from repro.config import scaled_config
        from repro.core.system import SingleCoreSystem
        s = SingleCoreSystem(scaled_config(64))
        assert s.tlb is not None

    def test_tlb_latency_slows_irregular_workloads(self):
        import numpy as np
        from repro.config import scaled_config
        from repro.core.system import SingleCoreSystem
        from repro.trace.layout import AddressSpace
        from repro.trace.record import TraceBuilder
        space = AddressSpace()
        arr = space.add("big", 4, 1 << 22)
        tb = TraceBuilder(space)
        rng = np.random.default_rng(1)
        tb.emit(tb.pc("r"), arr.addr(rng.integers(0, 1 << 22, 5000)))
        trace = tb.build()
        cfg = scaled_config(64)
        with_tlb = SingleCoreSystem(cfg, enable_tlb=True).run(trace)
        without = SingleCoreSystem(cfg, enable_tlb=False).run(trace)
        assert with_tlb.cycles > without.cycles
        assert with_tlb.tlb is not None
        assert without.tlb is None
