"""End-to-end tests of the simulation service (repro/service/).

Real orchestrator + real worker processes + real HTTP over loopback,
driven through the typed urllib client.  The centerpiece mirrors the
acceptance criterion of the service: a sweep submitted through the
API — with ``worker_vanish``, ``lease_loss`` and ``orchestrator_crash``
faults firing, the orchestrator dying and restarting mid-job —
completes byte-identically to the fault-free CLI ``run_grid`` run,
with no cell executed beyond its bounded retry budget (asserted from
the telemetry event log).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

import pytest

from repro import faults
from repro.experiments import parallel
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import default_config
from repro.experiments.workloads import cache_dir
from repro.service import (JobRequest, Orchestrator, ServiceConfig,
                           ServiceClient, ServiceError)
from repro.service.api import serve_in_thread
from repro.service.orchestrator import SERVICE_RUN_ID
from repro.service.schemas import (TERMINAL_JOB_STATES,
                                   validate_job_request)
from repro.telemetry import events as tele_events

MICRO = dict(tier="tiny", length=4_000)
WLS = ("pr.urand",)
REQ = JobRequest(workloads=list(WLS), variants=("sdc_lp",), **MICRO)
FAST = parallel.RunPolicy(retries=2, backoff=0.05, backoff_max=0.1)


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    """Own cache dir per test (worker processes inherit it via fork)
    and no fault plan leaking between tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    yield
    faults.deactivate()


def config(**kw) -> ServiceConfig:
    kw.setdefault("workers", 2)
    kw.setdefault("lease_ttl", 2.0)
    kw.setdefault("policy", FAST)
    return ServiceConfig(**kw)


@contextmanager
def service(**kw):
    """A live orchestrator: worker pool + scheduler loop + HTTP."""
    orc = Orchestrator(config(**kw))
    server, _ = serve_in_thread(orc)
    loop = threading.Thread(target=orc.run, args=(0.05,), daemon=True)
    loop.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=30.0)
    try:
        yield orc, client
    finally:
        orc.request_drain()
        loop.join(timeout=30.0)
        assert not loop.is_alive(), "drain did not stop the loop"


@contextmanager
def paused_service(**kw):
    """HTTP + intake only: no workers, no scheduler loop — jobs stay
    queued, which pins down intake-side behaviour deterministically."""
    kw.setdefault("workers", 0)
    orc = Orchestrator(config(**kw))
    server, _ = serve_in_thread(orc)
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=10.0)
    try:
        yield orc, client
    finally:
        server.shutdown()
        server.server_close()
        orc.journal.close()


def grid_of(req: JobRequest) -> list[parallel.Job]:
    cfg = default_config()
    return [parallel.Job(wl, v, cfg, req.tier, req.length)
            for wl in req.workloads
            for v in ("baseline",) + tuple(req.variants)]


class TestHappyPath:
    def test_submit_wait_results_roundtrip(self):
        with service() as (orc, client):
            health = client.health()
            assert health["status"] == "ok"
            assert health["workers"] == 2
            resp = client.submit(REQ)
            assert resp.cells == 2              # baseline + sdc_lp
            status = client.wait(resp.job_id, timeout=120.0)
            assert status.state == "complete"
            assert status.progress.done == 2
            assert status.progress.failed == 0
            rows = client.results(resp.job_id)
            assert len(rows) == 2
            assert all(r["status"] == "done" for r in rows)
            assert all(r["payload_sha"] for r in rows)
            assert [client.status(resp.job_id).job_id] == \
                [j.job_id for j in client.list_jobs()]

    def test_results_follow_streams_until_terminal(self):
        with service() as (orc, client):
            resp = client.submit(REQ)
            rows = client.results(resp.job_id, follow=True,
                                  timeout=120.0)
            assert len(rows) == 2       # stream closed at terminal
            assert client.status(resp.job_id).state == "complete"

    def test_second_submission_is_served_from_cache(self):
        with service() as (orc, client):
            first = client.submit(REQ)
            client.wait(first.job_id, timeout=120.0)
            again = client.submit(REQ)
            status = client.wait(again.job_id, timeout=30.0)
            assert status.state == "complete"
            assert status.progress.cached == 2  # zero re-simulation
            assert all(r["source"] == "cache"
                       for r in client.results(again.job_id))

    def test_byte_identity_with_direct_run_grid(self):
        with service() as (orc, client):
            resp = client.submit(REQ)
            assert client.wait(resp.job_id,
                               timeout=120.0).state == "complete"
        # The same grid through the CLI engine must be 100% warm: the
        # service computed every cell under the engine's own keys.
        parallel.run_grid(grid_of(REQ), jobs=1, policy=FAST,
                          run_id="identity")
        manifest = RunManifest.load("identity")
        assert {c["source"] for c in manifest.cells.values()} \
            == {"cache"}


class TestApiContract:
    def test_invalid_request_is_400_with_every_error(self):
        with paused_service() as (orc, client):
            with pytest.raises(ServiceError) as ei:
                client._request("POST", "/jobs",
                                {"variants": ["nope"],
                                 "tier": "galactic"})
            assert ei.value.code == 400
            assert len(ei.value.detail) == 2    # every problem at once
        assert validate_job_request(
            {"variants": ["nope"], "tier": "galactic",
             "length": -1}) == [
            "variants: unknown variant 'nope' (expected one of "
            "baseline, sdc_lp, topt, distill, l1iso, llc2x, expert, "
            "expert_best, victim, lp_bypass)",
            "tier: 'galactic' not one of tiny, small, medium, large",
            "length: must be a positive integer (accesses)",
        ]

    def test_bad_body_http_400(self):
        import urllib.error
        import urllib.request
        with paused_service() as (orc, client):
            req = urllib.request.Request(
                client.base_url + "/jobs", data=b'{"variants": ["x"]}',
                method="POST")
            with pytest.raises(urllib.error.HTTPError) as ei:
                urllib.request.urlopen(req, timeout=5.0)
            assert ei.value.code == 400

    def test_unknown_job_is_404(self):
        with paused_service() as (orc, client):
            with pytest.raises(ServiceError) as ei:
                client.status("job-never-existed")
            assert ei.value.code == 404
            with pytest.raises(ServiceError) as ei:
                client.cancel("job-never-existed")
            assert ei.value.code == 404

    def test_unknown_route_is_404(self):
        with paused_service() as (orc, client):
            with pytest.raises(ServiceError) as ei:
                client._request("GET", "/nope")
            assert ei.value.code == 404

    def test_backpressure_429_with_retry_after(self):
        with paused_service(queue_depth=1) as (orc, client):
            client.submit(REQ)                  # fills the queue
            with pytest.raises(ServiceError) as ei:
                client.submit(JobRequest(workloads=["cc.urand"],
                                         **MICRO))
            assert ei.value.code == 429
            assert ei.value.retry_after and ei.value.retry_after > 0

    def test_draining_rejects_with_503(self):
        with paused_service() as (orc, client):
            client.drain()
            with pytest.raises(ServiceError) as ei:
                client.submit(REQ)
            assert ei.value.code == 503
            assert client.health()["status"] == "draining"

    def test_cancel_pending_job(self):
        with paused_service() as (orc, client):
            resp = client.submit(REQ)
            status = client.cancel(resp.job_id)
            assert status.state == "cancelled"
            assert status.progress.cancelled == 2
            rows = client.results(resp.job_id)
            assert {r["status"] for r in rows} == {"cancelled"}
            # Cancel is idempotent.
            assert client.cancel(resp.job_id).state == "cancelled"


class TestFaults:
    """Each service fault kind exercised end-to-end over HTTP."""

    def _complete_under_faults(self, spec: str,
                               expect_attempts: int) -> None:
        faults.activate(faults.FaultPlan.parse(spec))
        with service() as (orc, client):
            resp = client.submit(REQ)
            status = client.wait(resp.job_id, timeout=180.0)
            assert status.state == "complete"
            assert status.progress.failed == 0
            rows = client.results(resp.job_id)
            assert all(r["status"] == "done" for r in rows)
            assert all(r["attempts"] == expect_attempts for r in rows)

    def test_worker_crash_mid_cell_requeues_and_completes(self):
        # The engine's own crash fault fires *inside* _execute_cell:
        # the worker process dies mid-cell; liveness detection revokes
        # the lease and the requeued attempt (2) survives.
        self._complete_under_faults("seed=3,crash:1.0:1",
                                    expect_attempts=2)

    def test_worker_vanish_requeues_and_completes(self):
        # Silent death just before execution — no error message ever
        # arrives; only lease/liveness machinery can notice.
        self._complete_under_faults("seed=3,worker_vanish:1.0:1",
                                    expect_attempts=2)

    def test_lease_loss_discards_stale_result_and_requeues(self):
        self._complete_under_faults("seed=3,lease_loss:1.0:1",
                                    expect_attempts=2)
        # The revoked attempt's late result must have been rejected by
        # its stale fencing token — visible in the journal.
        from repro.service.queue import Journal
        records = Journal(cache_dir() / "service"
                          / "journal.jsonl").replay()
        assert any(r["type"] == "stale_result" for r in records)
        done = [r for r in records if r["type"] == "cell_done"]
        assert done and all(r["attempt"] == 2 for r in done)

    def test_dead_worker_is_replaced(self):
        faults.activate(faults.FaultPlan.parse(
            "seed=3,worker_vanish:1.0:1"))
        with service(workers=1) as (orc, client):
            resp = client.submit(REQ)
            assert client.wait(resp.job_id,
                               timeout=180.0).state == "complete"
            with orc._lock:
                alive = [w for w in orc._workers.values()
                         if w.proc.is_alive()]
            assert len(alive) == 1      # vanished worker was respawned


class TestCrashRecovery:
    """The acceptance scenario: orchestrator killed mid-job, restarted,
    job completes byte-identically with bounded per-cell work."""

    def test_orchestrator_crash_restart_resumes_and_completes(
            self, tmp_path):
        tdir = tmp_path / "telemetry"
        faults.activate(faults.FaultPlan.parse(
            "seed=11,worker_vanish:0.5:1,lease_loss:0.3:1,"
            "orchestrator_crash:1.0:1"))
        req = JobRequest(workloads=["pr.urand", "cc.urand"],
                         variants=("sdc_lp",), **MICRO)

        # Generation 1: runs until the injected crash kills the loop.
        orc1 = Orchestrator(config(telemetry_dir=tdir))
        crashed: list[BaseException] = []

        def run_to_crash():
            try:
                orc1.run(0.05)
            except faults.FaultInjected as exc:
                crashed.append(exc)
        loop1 = threading.Thread(target=run_to_crash, daemon=True)
        loop1.start()
        resp = orc1.submit(req)
        assert resp.cells == 4
        loop1.join(timeout=180.0)
        assert not loop1.is_alive() and crashed, \
            "crash fault never fired"
        assert "orchestrator crash" in str(crashed[0])
        assert orc1.jobs[resp.job_id].state in ("queued", "running")

        # Generation 2: replays journal + manifests + cache, resumes
        # the in-flight job with zero redundant simulation, survives
        # (the crash fault is bounded to generation 1), completes.
        orc2 = Orchestrator(config(telemetry_dir=tdir))
        assert orc2.generation == 2
        assert resp.job_id in orc2.jobs
        loop2 = threading.Thread(target=orc2.run, args=(0.05,),
                                 daemon=True)
        loop2.start()
        deadline = time.monotonic() + 180.0
        while time.monotonic() < deadline:
            status = orc2.status(resp.job_id)
            if status.state in TERMINAL_JOB_STATES:
                break
            time.sleep(0.1)
        assert status.state == "complete"
        # At least one cell must have been recovered from the cache
        # (the one whose completion was journaled before the crash).
        assert status.progress.cached >= 1
        orc2.request_drain()
        loop2.join(timeout=30.0)

        # Bounded work, asserted from the merged event log across both
        # generations: no cell executed beyond 1 + retries attempts.
        events = tele_events.read_events(
            tele_events.events_path(tdir, SERVICE_RUN_ID))
        per_key: dict[str, int] = {}
        for record in events:
            if record["event"] == "cell_exec_started":
                per_key[record["key"]] = per_key.get(record["key"],
                                                     0) + 1
        assert per_key, "no execution events recorded"
        assert all(n <= 1 + FAST.retries for n in per_key.values())

        # Byte-identity: the fault-free CLI engine re-run of the same
        # grid is served entirely from the service-computed cache.
        faults.deactivate()
        parallel.run_grid(grid_of(req), jobs=1, policy=FAST,
                          run_id="identity")
        manifest = RunManifest.load("identity")
        assert {c["source"] for c in manifest.cells.values()} \
            == {"cache"}

    def test_recovery_finalizes_a_fully_cached_job(self):
        # Orchestrator dies after every cell completed but before the
        # job record flipped: the restart must finalize, not re-run.
        with service() as (orc, client):
            resp = client.submit(REQ)
            client.wait(resp.job_id, timeout=120.0)
        # Forge the durable record back to "running" (crash window).
        import json
        record_path = (cache_dir() / "service" / "jobs"
                       / f"{resp.job_id}.json")
        record = json.loads(record_path.read_text())
        record["state"] = "running"
        record.pop("progress", None)
        record_path.write_text(json.dumps(record))
        orc2 = Orchestrator(config(workers=0))
        status = orc2.status(resp.job_id)
        assert status.state == "complete"
        assert status.progress.cached == 2
        orc2.journal.close()


class TestMergeJobs:
    def test_merge_job_stitches_a_complete_shard_set(self):
        # One-shard "set": run it to completion first, then submit the
        # merge job — the watch returns immediately and stitches.
        grid = grid_of(REQ)
        with pytest.raises(parallel.ShardComplete):
            parallel.run_grid(grid, policy=FAST, run_id="sharded",
                              shard=(0, 1))
        with service() as (orc, client):
            resp = client.submit(JobRequest(kind="merge",
                                            run_id="sharded",
                                            watch_timeout=60.0))
            status = client.wait(resp.job_id, timeout=60.0)
            assert status.state == "complete"
        assert RunManifest.load("sharded").data["status"] == "complete"

    def test_merge_job_times_out_when_shards_never_arrive(self):
        with service() as (orc, client):
            resp = client.submit(JobRequest(kind="merge",
                                            run_id="never-ran",
                                            watch_timeout=0.5))
            status = client.wait(resp.job_id, timeout=30.0)
            assert status.state == "failed"
            assert "not complete" in status.error


class TestManifestHygiene:
    def test_latest_skips_service_manifests(self, tmp_path):
        runs = tmp_path / "runs"
        svc = RunManifest.open("job-x", directory=runs, service=True)
        svc.register("k", "wl/v")
        svc.save()
        assert svc.path.name == "job-x.service.json"
        with pytest.raises(FileNotFoundError):
            RunManifest.latest(runs)    # only service manifests exist
        plain = RunManifest.open("real-run", directory=runs)
        plain.save()
        assert RunManifest.latest(runs).run_id == "real-run"
