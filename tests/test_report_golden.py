"""Golden-output tests for experiments/report.py.

The render functions are the user-facing surface of every figure
command; their exact text is also what docs and CI logs quote.  Each
test feeds a small hand-built result object through a renderer and
compares against the full expected output, so any accidental change to
column layout, headers or number formatting shows up as a readable
diff instead of silently reshaping the published tables.
"""

from __future__ import annotations

import math

from repro.experiments import report
from repro.experiments.figures import (Fig2Result, Fig3Result,
                                       Fig7Result, SweepResult)


class TestGoldenRenders:
    def test_render_fig2(self):
        res = Fig2Result(workloads=["pr.kron", "bfs.urand"],
                         l1d=[100.0, 50.0], l2c=[80.0, 40.0],
                         llc=[60.5, 30.5])
        expected = "\n".join([
            "Fig. 2 — baseline MPKI across the cache hierarchy",
            "workload   L1D MPKI  L2C MPKI  LLC MPKI",
            "---------  --------  --------  --------",
            "pr.kron    100.00    80.00     60.50   ",
            "bfs.urand  50.00     40.00     30.50   ",
            "AVERAGE    75.00     60.00     45.50   ",
        ])
        assert report.render_fig2(res) == expected

    def test_render_fig3(self):
        res = Fig3Result(workload="pr.kron",
                         labels=["0", "1-2", ">64"],
                         dram_probability=[0.05, 0.5, float("nan")],
                         access_counts=[1000, 200, 0])
        expected = "\n".join([
            "Fig. 3 — DRAM probability by PC-local stride (pr.kron)",
            "stride bucket (blocks)  P(DRAM)  accesses",
            "----------------------  -------  --------",
            "0                       5.0%     1000    ",
            "1-2                     50.0%    200     ",
            ">64                     n/a      0       ",
        ])
        assert report.render_fig3(res) == expected

    def test_render_fig7(self):
        res = Fig7Result(workloads=["pr.kron", "bfs.urand"],
                         speedups={"sdc_lp": [0.5, 0.125],
                                   "topt": [0.1, -0.02]})
        expected = "\n".join([
            "Fig. 7 — single-core speedup over Baseline",
            "workload   sdc_lp   topt   ",
            "---------  -------  -------",
            "pr.kron      50.0%    10.0%",
            "bfs.urand    12.5%    -2.0%",
            "GEOMEAN      29.9%     3.8%",
        ])
        assert report.render_fig7(res) == expected
        # The GEOMEAN row is the ratio geomean, not the arithmetic mean.
        gm = math.sqrt(1.5 * 1.125) - 1.0
        assert f"{100 * gm:6.1f}%" == "  29.9%"

    def test_render_sweep(self):
        res = SweepResult(points=[256, 512], speedup_geomean=[0.1, 0.2])
        expected = "\n".join([
            "entries  speedup (gmean)",
            "-------  ---------------",
            "256        10.0%        ",
            "512        20.0%        ",
        ])
        assert report.render_sweep(res, "entries") == expected

    def test_table_helper_alignment(self):
        out = report.table(["a", "bb"], [[1, 2.5], [30, 4.0]], "T")
        assert out == "\n".join([
            "T",
            "a   bb  ",
            "--  ----",
            "1   2.50",
            "30  4.00",
        ])
