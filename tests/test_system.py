"""Tests for the single-core system: variant plumbing, SDC routing,
coherence invariants, and stats consistency."""

import dataclasses

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.system import (SingleCoreSystem, VARIANTS,
                               irregular_access_mask, next_use_indices,
                               variant_config)
from repro.mem.hierarchy import DRAM, L1D, SDC_LEVEL
from repro.trace.layout import AddressSpace
from repro.trace.record import TraceBuilder


def synthetic_trace(pattern="mixed", n=5000, seed=0):
    """Small controlled traces: 'seq', 'random' (cache-averse), 'mixed'."""
    space = AddressSpace()
    seq = space.add("seq_array", 4, 1 << 16)
    rnd = space.add("rand_array", 4, 1 << 20, irregular_hint=True)
    tb = TraceBuilder(space, name=f"synth.{pattern}")
    rng = np.random.default_rng(seed)
    if pattern in ("seq", "mixed"):
        count = n if pattern == "seq" else n // 2
        tb.emit(tb.pc("seq"), seq.addr(np.arange(count) % (1 << 16)),
                gap=2)
    if pattern in ("random", "mixed"):
        count = n if pattern == "random" else n // 2
        idx = rng.integers(0, 1 << 20, size=count)
        tb.emit(tb.pc("rand"), rnd.addr(idx), gap=2)
    return tb.build()


@pytest.fixture(scope="module")
def cfg():
    return scaled_config(64)


class TestConstruction:
    @pytest.mark.parametrize("variant", [v for v in VARIANTS
                                         if v != "expert"])
    def test_all_variants_construct(self, cfg, variant):
        SingleCoreSystem(cfg, variant=variant)

    def test_unknown_variant_raises(self, cfg):
        with pytest.raises(ValueError):
            SingleCoreSystem(cfg, variant="magic")

    def test_expert_requires_regions(self, cfg):
        with pytest.raises(ValueError, match="expert"):
            SingleCoreSystem(cfg, variant="expert")
        SingleCoreSystem(cfg, variant="expert", expert_regions={1})

    def test_variant_config_l1iso(self, cfg):
        iso = variant_config(cfg, "l1iso")
        assert iso.l1d.size_bytes == cfg.l1d.size_bytes * 10 // 8
        assert iso.l1d.ways == cfg.l1d.ways + 2

    def test_variant_config_llc2x(self, cfg):
        big = variant_config(cfg, "llc2x")
        assert big.llc.size_bytes == 2 * cfg.llc.size_bytes
        assert big.llc.ways == cfg.llc.ways     # sets doubled, not ways

    def test_sdc_only_on_sdc_variants(self, cfg):
        assert SingleCoreSystem(cfg, "baseline").sdc is None
        assert SingleCoreSystem(cfg, "sdc_lp").sdc is not None
        assert SingleCoreSystem(cfg, "sdc_lp").lp is not None
        ex = SingleCoreSystem(cfg, "expert", expert_regions=set())
        assert ex.sdc is not None and ex.lp is None


class TestRunBasics:
    def test_stats_consistent(self, cfg):
        trace = synthetic_trace("mixed")
        stats = SingleCoreSystem(cfg, "baseline").run(trace)
        assert stats.l1d.hits + stats.l1d.misses == stats.l1d.accesses
        assert stats.l1d.accesses == len(trace)
        assert stats.instructions == trace.num_instructions
        assert stats.cycles > 0
        assert stats.ipc > 0

    def test_record_levels(self, cfg):
        trace = synthetic_trace("mixed")
        stats = SingleCoreSystem(cfg, "baseline").run(trace,
                                                      record_levels=True)
        assert stats.levels is not None
        assert len(stats.levels) == len(trace)
        assert set(np.unique(stats.levels)) <= {0, 1, 2, 3, 4, 5}

    def test_sequential_mostly_l1(self, cfg):
        trace = synthetic_trace("seq")
        stats = SingleCoreSystem(cfg, "baseline").run(trace,
                                                      record_levels=True)
        assert (stats.levels == L1D).mean() > 0.8

    def test_random_mostly_dram(self, cfg):
        trace = synthetic_trace("random")
        stats = SingleCoreSystem(cfg, "baseline").run(trace,
                                                      record_levels=True)
        assert (stats.levels == DRAM).mean() > 0.5

    def test_warmup_excludes_stats(self, cfg):
        trace = synthetic_trace("mixed")
        full = SingleCoreSystem(cfg, "baseline").run(trace)
        warm = SingleCoreSystem(cfg, "baseline").run(trace, warmup=2000)
        assert warm.l1d.accesses == full.l1d.accesses - 2000

    def test_deterministic(self, cfg):
        trace = synthetic_trace("mixed")
        a = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        b = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert a.cycles == b.cycles
        assert a.l1d.misses == b.l1d.misses


class TestSDCRouting:
    def test_irregular_stream_lands_in_sdc(self, cfg):
        trace = synthetic_trace("random", n=8000)
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert stats.sdc.accesses > len(trace) // 2
        assert stats.lp.predicted_irregular > len(trace) // 2

    def test_sequential_stream_avoids_sdc(self, cfg):
        trace = synthetic_trace("seq")
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert stats.sdc.accesses < len(trace) // 100

    def test_sdc_bypass_reduces_l2_pressure(self, cfg):
        trace = synthetic_trace("random", n=8000)
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert prop.l2c.accesses < base.l2c.accesses // 4

    def test_dirty_exclusive_invariant(self, cfg):
        """§III-C: one valid copy per block except clean blocks — i.e. a
        dirty copy is exclusive; SDC contents are SDCDir-tracked."""
        trace = synthetic_trace("mixed", n=6000)
        system = SingleCoreSystem(cfg, "sdc_lp")
        system.run(trace)
        h = system.hierarchy
        hier_blocks = (set(h.l1d.resident_blocks())
                       | set(h.l2c.resident_blocks())
                       | set(h.llc.resident_blocks()))
        hier_dirty = (set(h.l1d.dirty_blocks())
                      | set(h.l2c.dirty_blocks())
                      | set(h.llc.dirty_blocks()))
        sdc_blocks = set(system.sdc.resident_blocks())
        sdc_dirty = set(system.sdc.dirty_blocks())
        assert not (sdc_dirty & hier_blocks)
        assert not (hier_dirty & sdc_blocks)
        tracked = set(system.sdcdir.tracked_blocks())
        assert sdc_blocks <= tracked

    def test_l1_family_mpki(self, cfg):
        trace = synthetic_trace("mixed")
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert stats.l1_family_mpki >= stats.mpki("l1d")

    def test_as_dict_json_serializable(self, cfg):
        import json
        trace = synthetic_trace("mixed", n=2000)
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        d = stats.as_dict()
        text = json.dumps(d)
        assert "sdc_mpki" in text
        assert d["variant"] == "sdc_lp"
        assert d["lp_lookups"] == 2000

    def test_flush_interval_runs(self, cfg):
        trace = synthetic_trace("mixed", n=4000)
        system = SingleCoreSystem(cfg, "sdc_lp")
        stats = system.run(trace, flush_sdc_every=500)
        assert stats.instructions == trace.num_instructions

    def test_expert_routes_hinted_regions(self, cfg):
        trace = synthetic_trace("mixed", n=4000)
        # Region id 1 is rand_array.
        system = SingleCoreSystem(cfg, "expert", expert_regions={1})
        stats = system.run(trace)
        assert stats.sdc.accesses == 2000
        assert stats.lp is None


class TestAuxPrecompute:
    def test_next_use_indices(self):
        blocks = np.array([5, 7, 5, 7, 9])
        nxt = next_use_indices(blocks)
        from repro.mem.replacement import BeladyOPT
        assert list(nxt[:4]) == [2, 3, BeladyOPT.NEVER, BeladyOPT.NEVER]
        assert nxt[4] == BeladyOPT.NEVER

    def test_irregular_access_mask(self):
        trace = synthetic_trace("mixed", n=2000)
        mask = irregular_access_mask(trace)
        assert mask.sum() == 1000      # the rand_array half

    def test_topt_runs_and_beats_lru_llc(self, cfg):
        """T-OPT's oracle replacement cannot have more LLC misses than
        LRU on the same trace (modulo identical fills)."""
        trace = synthetic_trace("mixed", n=8000, seed=3)
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        topt = SingleCoreSystem(cfg, "topt").run(trace)
        assert topt.llc.misses <= base.llc.misses * 1.05

    def test_distill_variant_runs(self, cfg):
        trace = synthetic_trace("mixed", n=4000)
        stats = SingleCoreSystem(cfg, "distill").run(trace)
        assert stats.llc.accesses > 0


class TestAblationVariants:
    def test_victim_cache_catches_conflict_misses(self):
        """A ping-pong pattern across one L1 set is the victim cache's
        home turf (Jouppi's motivating case).  Uses scale 16, where the
        L1 has several sets and the VC several entries."""
        vcfg = scaled_config(16)
        space = AddressSpace()
        arr = space.add("pp", 64, 1 << 14)
        tb = TraceBuilder(space)
        nsets = SingleCoreSystem(vcfg, "baseline").hierarchy.l1d.num_sets
        ways = vcfg.l1d.ways
        # ways+2 blocks conflicting in one set (stride nsets defeats the
        # next-line prefetcher), cycled: misses in L1, hits in the VC.
        blocks = np.tile(np.arange(ways + 2) * nsets, 400)
        tb.emit(tb.pc("x"), (blocks * 64 + arr.base).astype(np.uint64))
        trace = tb.build()
        base = SingleCoreSystem(vcfg, "baseline").run(trace)
        vc = SingleCoreSystem(vcfg, "victim").run(trace)
        assert vc.cycles < base.cycles

    def test_victim_no_sdc_lp(self, cfg):
        s = SingleCoreSystem(cfg, "victim")
        assert s.victim is not None
        assert s.sdc is None and s.lp is None

    def test_lp_bypass_runs_and_reduces_l2_traffic(self, cfg):
        trace = synthetic_trace("random", n=8000)
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        byp = SingleCoreSystem(cfg, "lp_bypass").run(trace)
        assert byp.lp is not None
        assert byp.l2c.accesses < base.l2c.accesses // 2

    def test_lp_bypass_multicore_rejected(self, cfg):
        from repro.core.multicore import MultiCoreSystem
        with pytest.raises(ValueError, match="single-core"):
            MultiCoreSystem(cfg, "lp_bypass")


class TestVariantOrdering:
    def test_sdc_lp_speeds_up_cache_averse_workload(self, cfg):
        """The headline effect on a controlled cache-averse stream."""
        trace = synthetic_trace("random", n=10000)
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert prop.cycles < base.cycles

    def test_sdc_lp_harmless_on_regular_workload(self, cfg):
        trace = synthetic_trace("seq")
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert prop.cycles <= base.cycles * 1.02
