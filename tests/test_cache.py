"""Tests for the set-associative cache, including a property-based
equivalence check against a reference OrderedDict LRU model."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache


def make_cache(blocks=8, ways=2, replacement="lru"):
    return SetAssocCache(CacheConfig("test", blocks * 64, ways, 1, 4,
                                     replacement))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.access(5, False)
        c.fill(5)
        assert c.access(5, False)
        assert c.stats.accesses == 2
        assert c.stats.hits == 1
        assert c.stats.misses == 1

    def test_contains_does_not_touch_stats(self):
        c = make_cache()
        c.fill(3)
        before = c.stats.accesses
        assert c.contains(3)
        assert not c.contains(4)
        assert c.stats.accesses == before

    def test_fill_same_block_idempotent(self):
        c = make_cache()
        c.fill(1)
        assert c.fill(1) is None
        assert c.occupancy == 1

    def test_eviction_returns_victim(self):
        c = make_cache(blocks=4, ways=2)   # 2 sets
        # Blocks 0, 2, 4 all map to set 0.
        c.fill(0)
        c.fill(2)
        evicted = c.fill(4)
        assert evicted is not None
        assert evicted[0] == 0          # LRU victim
        assert not evicted[1]           # clean

    def test_dirty_eviction_flagged(self):
        c = make_cache(blocks=4, ways=2)
        c.fill(0, dirty=True)
        c.fill(2)
        evicted = c.fill(4)
        assert evicted == (0, True)
        assert c.stats.writebacks == 1

    def test_write_sets_dirty(self):
        c = make_cache()
        c.fill(7)
        c.access(7, True)
        _, dirty = c.invalidate(7)
        assert dirty

    def test_invalidate_absent(self):
        c = make_cache()
        assert c.invalidate(9) == (False, False)

    def test_mark_dirty(self):
        c = make_cache()
        c.fill(1)
        assert c.mark_dirty(1)
        assert not c.mark_dirty(2)

    def test_flush(self):
        c = make_cache()
        c.fill(1)
        c.fill(2)
        c.flush()
        assert c.occupancy == 0

    def test_resident_blocks(self):
        c = make_cache(blocks=8, ways=2)
        for b in (0, 1, 5):
            c.fill(b)
        assert set(c.resident_blocks()) == {0, 1, 5}

    def test_set_mapping(self):
        c = make_cache(blocks=8, ways=2)   # 4 sets
        c.fill(3)
        c.fill(7)     # same set as 3
        c.fill(4)     # set 0
        assert len(c.sets[3]) == 2
        assert len(c.sets[0]) == 1


class TestLRUOrder:
    def test_hit_refreshes_recency(self):
        c = make_cache(blocks=4, ways=2)
        c.fill(0)
        c.fill(2)
        c.access(0, False)       # 0 becomes MRU
        evicted = c.fill(4)
        assert evicted[0] == 2

    def test_prefetch_hit_tracked(self):
        c = make_cache()
        c.fill(1, prefetch=True)
        assert c.stats.prefetch_fills == 1
        c.access(1, False)
        assert c.stats.prefetch_hits == 1
        # Second hit is an ordinary hit.
        c.access(1, False)
        assert c.stats.prefetch_hits == 1


class TestRefillSemantics:
    """Regression: re-filling a resident line used to ignore the
    prefetch flag entirely — a demand re-fill left a stale prefetch bit
    (inflating prefetch_hits later) and a prefetch re-fill could not be
    distinguished from an install."""

    def test_demand_refill_clears_stale_prefetch_bit(self):
        c = make_cache()
        c.fill(1, prefetch=True)
        c.fill(1)                      # demand re-fill: line is demanded now
        c.access(1, False)
        assert c.stats.prefetch_hits == 0

    def test_prefetch_refill_is_inert(self):
        c = make_cache()
        c.fill(1)
        c.fill(1, prefetch=True)       # nothing installed, bit unchanged
        assert c.stats.prefetch_fills == 0
        c.access(1, False)
        assert c.stats.prefetch_hits == 0

    def test_prefetch_refill_preserves_existing_bit(self):
        c = make_cache()
        c.fill(1, prefetch=True)
        c.fill(1, prefetch=True)
        assert c.stats.prefetch_fills == 1     # only the install counted
        c.access(1, False)
        assert c.stats.prefetch_hits == 1

    def test_refill_keeps_dirty_bit(self):
        c = make_cache()
        c.fill(1, dirty=True)
        c.fill(1)                      # clean re-fill must not lose dirty
        assert c.is_dirty(1)


class TestFillLedger:
    """fills - evictions - invalidations == occupancy, whenever the
    stat window covers the cache's whole life."""

    def _balance(self, c):
        s = c.stats
        return s.fills - s.evictions - s.invalidations == c.occupancy

    def test_ledger_balances_through_churn(self):
        c = make_cache(blocks=4, ways=2)
        for b in range(10):
            if not c.access(b, b % 3 == 0):
                c.fill(b, dirty=b % 3 == 0)
            assert self._balance(c)

    def test_refill_does_not_count_as_install(self):
        c = make_cache()
        c.fill(1)
        c.fill(1)
        assert c.stats.fills == 1

    def test_invalidate_and_flush_counted(self):
        c = make_cache(blocks=4, ways=2)
        for b in range(4):
            c.fill(b)
        c.invalidate(0)
        assert c.stats.invalidations == 1
        assert self._balance(c)
        c.flush()
        assert c.stats.invalidations == 4
        assert self._balance(c)

    def test_absent_invalidate_not_counted(self):
        c = make_cache()
        c.invalidate(42)
        assert c.stats.invalidations == 0


class TestStats:
    def test_hit_rate(self):
        c = make_cache()
        c.fill(0)
        c.access(0, False)
        c.access(1, False)
        assert c.stats.hit_rate == 0.5

    def test_mpki(self):
        c = make_cache()
        c.access(0, False)
        assert c.stats.mpki(1000) == 1.0
        assert c.stats.mpki(0) == 0.0

    def test_merged(self):
        a, b = make_cache(), make_cache()
        a.access(0, False)
        b.fill(0)
        b.access(0, False)
        m = a.stats.merged(b.stats)
        assert m.accesses == 2
        assert m.hits == 1
        assert m.misses == 1


class ReferenceLRU:
    """Fully-associative LRU reference model."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.lines = OrderedDict()

    def access(self, block):
        if block in self.lines:
            self.lines.move_to_end(block)
            return True
        return False

    def fill(self, block):
        if block in self.lines:
            self.lines.move_to_end(block)
            return
        if len(self.lines) >= self.capacity:
            self.lines.popitem(last=False)
        self.lines[block] = True


class TestEquivalence:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_fully_assoc_matches_reference_lru(self, blocks):
        """A 1-set SetAssocCache must behave exactly like textbook LRU."""
        ways = 4
        cache = SetAssocCache(CacheConfig("fa", ways * 64, ways, 1, 4,
                                          "lru"))
        assert cache.num_sets == 1
        ref = ReferenceLRU(ways)
        for b in blocks:
            got = cache.access(b, False)
            expected = ref.access(b)
            assert got == expected
            if not got:
                cache.fill(b)
                ref.fill(b)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, blocks):
        cache = make_cache(blocks=8, ways=2)
        for b in blocks:
            if not cache.access(b, False):
                cache.fill(b)
            assert cache.occupancy <= 8
            for s in cache.sets:
                assert len(s) <= 2

    @given(st.lists(st.tuples(st.integers(0, 40), st.booleans()),
                    min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_stats_always_consistent(self, ops):
        cache = make_cache(blocks=8, ways=2)
        for block, write in ops:
            if not cache.access(block, write):
                cache.fill(block, dirty=write)
        s = cache.stats
        assert s.hits + s.misses == s.accesses
        assert s.writebacks <= s.evictions
