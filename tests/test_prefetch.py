"""Tests for the next-line and SPP prefetchers."""

import pytest

from repro.mem.prefetch import (NextLinePrefetcher, SPPPrefetcher,
                                StridePrefetcher, make_prefetcher)


class TestNextLine:
    def test_prefetches_next_block(self):
        p = NextLinePrefetcher()
        assert p.on_access(100, hit=True) == [101]
        assert p.on_access(7, hit=False) == [8]


class TestSPP:
    def test_learns_unit_stride(self):
        p = SPPPrefetcher()
        issued = []
        for b in range(40):
            issued.extend(p.on_access(b, hit=False))
        # After warm-up the prefetcher runs ahead of the stream.
        assert issued, "SPP must issue prefetches on a unit stride"
        assert all(pf > 0 for pf in issued)

    def test_learns_stride_two(self):
        p = SPPPrefetcher()
        issued = []
        for b in range(0, 60, 2):
            issued.extend(p.on_access(b, hit=False))
        assert issued
        # Prefetches land on the even-stride path.
        assert all(pf % 2 == 0 for pf in issued[-4:])

    def test_no_prefetch_without_pattern(self):
        p = SPPPrefetcher()
        import random
        rng = random.Random(7)
        issued = []
        for _ in range(30):
            # Jump to a fresh page every access: no signature history.
            issued.extend(p.on_access(rng.randrange(10**6) * 64, False))
        assert issued == []

    def test_prefetches_stay_in_page(self):
        p = SPPPrefetcher()
        for b in range(256):
            for pf in p.on_access(b, hit=False):
                assert pf // SPPPrefetcher.BLOCKS_PER_PAGE == \
                    b // SPPPrefetcher.BLOCKS_PER_PAGE

    def test_same_block_reaccess_no_update(self):
        p = SPPPrefetcher()
        p.on_access(5, False)
        before = dict(p.patterns)
        p.on_access(5, False)     # delta 0: ignored
        assert p.patterns == before

    def test_tracker_capacity_bounded(self):
        p = SPPPrefetcher()
        for page in range(5000):
            p.on_access(page * SPPPrefetcher.BLOCKS_PER_PAGE, False)
        assert len(p.trackers) <= 4097

    def test_counter_decay(self):
        p = SPPPrefetcher()
        sig = 0
        for _ in range(200):
            p._update_pattern(sig, 1)
        assert p.patterns[sig][1] <= SPPPrefetcher.MAX_COUNT


class TestStride:
    def test_constant_stride_detected(self):
        p = StridePrefetcher()
        issued = []
        for i in range(10):
            issued.extend(p.on_access_pc(0x40, i * 3, False))
        assert issued
        # Prefetches run ahead along the stride.
        assert issued[-1] % 3 == 0

    def test_per_pc_isolation(self):
        """Two interleaved PCs with different strides both train."""
        p = StridePrefetcher()
        got_a, got_b = [], []
        for i in range(12):
            got_a.extend(p.on_access_pc(0x40, i * 2, False))
            got_b.extend(p.on_access_pc(0x44, 1000 + i * 5, False))
        assert got_a and got_b
        assert all(x < 1000 for x in got_a)
        assert all(x >= 1000 for x in got_b)

    def test_indirect_pattern_never_triggers(self):
        """The §VI claim in miniature: random per-PC deltas (indirect
        graph accesses) never confirm a stride."""
        import random
        rng = random.Random(3)
        p = StridePrefetcher()
        issued = []
        for _ in range(200):
            issued.extend(p.on_access_pc(0x40, rng.randrange(1 << 20),
                                         False))
        assert issued == []

    def test_zero_stride_ignored(self):
        p = StridePrefetcher()
        for _ in range(10):
            assert p.on_access_pc(0x40, 7, False) == []

    def test_table_bounded(self):
        p = StridePrefetcher()
        for pc in range(1000):
            p.on_access_pc(pc, pc, False)
        assert len(p.table) <= StridePrefetcher.TABLE_SIZE


class TestFactory:
    def test_make_known(self):
        assert isinstance(make_prefetcher("next_line"), NextLinePrefetcher)
        assert isinstance(make_prefetcher("spp"), SPPPrefetcher)
        assert isinstance(make_prefetcher("stride"), StridePrefetcher)
        assert make_prefetcher(None) is None

    def test_make_unknown_raises(self):
        with pytest.raises(ValueError):
            make_prefetcher("ghb")
