"""Tests for CSV export of experiment results."""

from dataclasses import dataclass, field

import pytest

from repro.experiments.export import to_csv, write_csv


@dataclass
class FakeResult:
    workloads: list
    speedups: dict
    scalar: float = 1.0


def make_result():
    return FakeResult(["a", "b"], {"x": [0.1, 0.2], "y": [0.3, 0.4]})


class TestToCSV:
    def test_header_and_rows(self):
        text = to_csv(make_result())
        lines = text.strip().splitlines()
        assert lines[0] == "workloads,speedups.x,speedups.y"
        assert lines[1] == "a,0.1,0.3"
        assert len(lines) == 3

    def test_scalar_fields_ignored(self):
        assert "scalar" not in to_csv(make_result())

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            to_csv({"not": "a dataclass"})

    def test_ragged_columns_rejected(self):
        bad = FakeResult(["a"], {"x": [1, 2]})
        with pytest.raises(ValueError, match="length"):
            to_csv(bad)

    def test_empty_rejected(self):
        @dataclass
        class Empty:
            n: int = 0
        with pytest.raises(ValueError):
            to_csv(Empty())

    def test_real_figure_result(self):
        from repro.experiments.figures import Fig2Result
        res = Fig2Result(["pr.kron"], [50.0], [40.0], [30.0])
        text = to_csv(res)
        assert "l1d" in text and "pr.kron" in text


class TestWriteCSV:
    def test_writes_file(self, tmp_path):
        path = write_csv(make_result(), tmp_path / "sub" / "out.csv")
        assert path.exists()
        assert path.read_text().startswith("workloads")
