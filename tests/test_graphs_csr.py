"""Unit + property tests for the CSR/CSC graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.csr import CSRGraph, from_edges

EDGES = np.array([[0, 1], [0, 2], [1, 2], [2, 0], [3, 1]])


class TestFromEdges:
    def test_basic_counts(self):
        g = from_edges(EDGES)
        assert g.num_vertices == 4
        assert g.num_edges == 5

    def test_out_neighbors_sorted(self):
        g = from_edges(EDGES)
        assert list(g.out_neighbors(0)) == [1, 2]
        assert list(g.out_neighbors(3)) == [1]

    def test_in_neighbors(self):
        g = from_edges(EDGES)
        assert list(g.in_neighbors(1)) == [0, 3]
        assert list(g.in_neighbors(0)) == [2]

    def test_degrees(self):
        g = from_edges(EDGES)
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert list(g.out_degrees()) == [2, 1, 1, 1]
        assert list(g.in_degrees()) == [1, 2, 2, 0]

    def test_self_loops_removed(self):
        g = from_edges(np.array([[0, 0], [0, 1], [1, 1]]), num_vertices=2)
        assert g.num_edges == 1

    def test_duplicates_removed(self):
        g = from_edges(np.array([[0, 1], [0, 1], [0, 1]]), num_vertices=2)
        assert g.num_edges == 1

    def test_dedup_disabled_keeps_duplicates(self):
        g = from_edges(np.array([[0, 1], [0, 1]]), num_vertices=2,
                       dedup=False)
        assert g.num_edges == 2

    def test_symmetrize_adds_reverse_edges(self):
        g = from_edges(np.array([[0, 1]]), num_vertices=2, symmetrize=True)
        assert g.num_edges == 2
        assert g.symmetric
        assert list(g.out_neighbors(1)) == [0]

    def test_symmetric_shares_csc_arrays(self):
        g = from_edges(EDGES, symmetrize=True)
        assert g.out_oa is g.in_oa
        assert g.out_na is g.in_na

    def test_weights_follow_edges(self):
        g = from_edges(np.array([[0, 1], [1, 0]]), num_vertices=2,
                       weights=np.array([7, 9]))
        assert g.out_edge_weights(0)[0] == 7
        assert g.out_edge_weights(1)[0] == 9

    def test_missing_weights_raises(self):
        g = from_edges(EDGES)
        with pytest.raises(ValueError):
            g.out_edge_weights(0)

    def test_empty_graph(self):
        g = from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=3)
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            from_edges(np.array([1, 2, 3]))


class TestTranspose:
    def test_transpose_swaps_directions(self):
        g = from_edges(EDGES)
        t = g.transpose()
        for v in range(g.num_vertices):
            assert list(t.out_neighbors(v)) == list(g.in_neighbors(v))

    def test_double_transpose_identity(self):
        g = from_edges(EDGES)
        tt = g.transpose().transpose()
        assert np.array_equal(tt.out_na, g.out_na)
        assert np.array_equal(tt.out_oa, g.out_oa)


class TestValidation:
    def test_validate_accepts_wellformed(self, small_kron):
        small_kron.validate()

    def test_validate_rejects_bad_oa(self):
        g = from_edges(EDGES)
        bad = CSRGraph(out_oa=g.out_oa.copy(), out_na=g.out_na,
                       in_oa=g.in_oa, in_na=g.in_na)
        bad.out_oa[1] = 99
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_rejects_out_of_range_vertex(self):
        g = from_edges(EDGES)
        bad_na = g.out_na.copy()
        bad_na[0] = 100
        bad = CSRGraph(out_oa=g.out_oa, out_na=bad_na,
                       in_oa=g.in_oa, in_na=g.in_na)
        with pytest.raises(ValueError):
            bad.validate()


class TestScipyInterop:
    def test_to_scipy_roundtrip(self):
        g = from_edges(EDGES)
        m = g.to_scipy()
        assert m.shape == (4, 4)
        assert m.nnz == 5
        coo = m.tocoo()
        pairs = set(zip(coo.row.tolist(), coo.col.tolist()))
        assert pairs == {(0, 1), (0, 2), (1, 2), (2, 0), (3, 1)}


@st.composite
def edge_lists(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    m = draw(st.integers(min_value=0, max_value=120))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m))
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


class TestProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_structural_invariants(self, case):
        n, edges = case
        g = from_edges(edges, num_vertices=n)
        g.validate()
        # Every stored edge was in the input, and in-degree sum equals
        # out-degree sum equals the arc count.
        assert g.out_degrees().sum() == g.num_edges
        assert g.in_degrees().sum() == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_symmetrize_makes_adjacency_symmetric(self, case):
        n, edges = case
        g = from_edges(edges, num_vertices=n, symmetrize=True)
        g.validate()
        m = g.to_scipy()
        assert (m != m.T).nnz == 0

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csc_is_transpose_of_csr(self, case):
        n, edges = case
        g = from_edges(edges, num_vertices=n)
        for v in range(n):
            for u in g.in_neighbors(v):
                assert v in g.out_neighbors(int(u))
