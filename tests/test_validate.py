"""Tests for the repro.validate harness: invariant checks, the
periodic run-loop hook, and the differential pairs.

The differential tests are the executable form of PR 1's promise that
every hot-path specialisation has an equivalent generic twin; the
invariant tests both exercise the checkers on healthy systems and prove
they actually fire on corrupted state.
"""

import dataclasses

import numpy as np
import pytest

from repro.config import CacheConfig, SDCDirConfig, SystemConfig, \
    scaled_config
from repro.core.multicore import MultiCoreSystem
from repro.core.sdcdir import SDCDirectory
from repro.core.system import SingleCoreSystem
from repro.mem.cache import SetAssocCache
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace
from repro.validate import (DEFAULT_CHECK_INTERVAL, InvariantViolation,
                            check_interval, check_single_core_system)
from repro.validate.differential import (DifferentialMismatch,
                                         assert_stats_equal,
                                         diff_access_vs_access_fast,
                                         diff_inlined_vs_generic_lru,
                                         diff_multicore1_vs_single,
                                         diff_pow2_vs_divmod,
                                         force_divmod)
from repro.validate.invariants import (check_cache_stats,
                                       check_lru_order,
                                       check_multicore_system,
                                       check_sdc_coherence,
                                       check_sdcdir_structure)


def mixed_trace(n=4000, seed=7, write_frac=0.25) -> Trace:
    """Half-sequential half-random synthetic trace (golden-trace shape,
    smaller)."""
    space = AddressSpace()
    space.add("seq", 4, 1 << 12)
    rnd = space.add("rnd", 4, 1 << 16, irregular_hint=True)
    seq = space["seq"]
    rng = np.random.default_rng(seed)
    acc = np.zeros(n, dtype=ACCESS_DTYPE)
    seq_idx = np.arange(n) % (1 << 12)
    rnd_idx = rng.integers(0, 1 << 16, size=n)
    use_rnd = rng.random(n) < 0.5
    acc["addr"] = np.where(use_rnd, rnd.addr(rnd_idx), seq.addr(seq_idx))
    acc["pc"] = np.where(use_rnd, 0x400024, 0x400048)
    acc["write"] = rng.random(n) < write_frac
    acc["gap"] = 2
    acc["dep"] = -1
    return Trace(acc, space)


@pytest.fixture(scope="module")
def trace():
    return mixed_trace()


@pytest.fixture(scope="module")
def config():
    return scaled_config(64)


# ---------------------------------------------------------------------------
# check_interval / REPRO_VALIDATE parsing
# ---------------------------------------------------------------------------

class TestCheckInterval:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert check_interval(128) == 128

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert check_interval() == 0

    def test_env_one_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert check_interval() == DEFAULT_CHECK_INTERVAL

    def test_env_n_is_interval(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "500")
        assert check_interval() == 500

    def test_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "0")
        assert check_interval() == 0

    def test_garbage_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "yes")
        assert check_interval() == DEFAULT_CHECK_INTERVAL


# ---------------------------------------------------------------------------
# Invariants pass on healthy systems and fire on corrupted state
# ---------------------------------------------------------------------------

class TestInvariantsOnHealthySystems:
    @pytest.mark.parametrize("variant",
                             ["baseline", "sdc_lp", "topt", "victim"])
    def test_single_core_run_with_checking(self, trace, config, variant):
        system = SingleCoreSystem(config, variant, check_every=512)
        system.run(trace)
        check_single_core_system(system)

    def test_multicore_run_with_checking(self, trace, config):
        cfg = dataclasses.replace(config, num_cores=2)
        system = MultiCoreSystem(cfg, "sdc_lp", check_every=512)
        system.run([trace, mixed_trace(seed=11)])
        check_multicore_system(system)

    def test_warmup_reset_suspends_ledger(self, trace, config):
        # A mid-run stat reset breaks fills-evictions-invalidations ==
        # occupancy; the system must flag it so the hook skips that law.
        system = SingleCoreSystem(config, "baseline", check_every=256)
        system.run(trace, warmup=1000)
        assert system._ledger_valid is False
        check_single_core_system(system)   # still passes, ledger skipped


class TestInvariantsFireOnCorruption:
    def test_lru_order_violation(self):
        cache = SetAssocCache(CacheConfig("t", 4 * 64, 4, 1, 4, "lru"))
        for b in range(3):
            cache.fill(b)
        # Swap two priorities so dict order is no longer recency order.
        lines = cache.sets[0]
        tags = list(lines)
        lines[tags[0]][0], lines[tags[1]][0] = \
            lines[tags[1]][0], lines[tags[0]][0]
        with pytest.raises(InvariantViolation) as exc:
            check_lru_order(cache, "t")
        assert exc.value.invariant == "lru-dict-order"

    def test_stats_conservation_violation(self):
        cache = SetAssocCache(CacheConfig("t", 4 * 64, 4, 1, 4, "lru"))
        cache.access(1, False)
        cache.stats.hits += 1          # forge a hit out of thin air
        with pytest.raises(InvariantViolation) as exc:
            check_cache_stats(cache, "t")
        assert exc.value.invariant == "stats-conservation"

    def test_fill_ledger_violation(self):
        cache = SetAssocCache(CacheConfig("t", 4 * 64, 4, 1, 4, "lru"))
        cache.fill(1)
        del cache.sets[0][cache._split(1)[1]]     # drop behind the stats
        with pytest.raises(InvariantViolation) as exc:
            check_cache_stats(cache, "t")
        assert exc.value.invariant == "fill-ledger"

    def test_sdc_subset_violation(self, config):
        system = SingleCoreSystem(config, "sdc_lp")
        system.sdc.fill(42)            # resident but never registered
        with pytest.raises(InvariantViolation) as exc:
            check_sdc_coherence([system.sdc], system.sdcdir,
                                [system.hierarchy], system.hierarchy.llc)
        assert exc.value.invariant == "sdc-subset"

    def test_sdc_dirty_owner_violation(self, config):
        system = SingleCoreSystem(config, "sdc_lp")
        system.sdcdir.insert(42, 0, dirty=True)
        system.sdc.fill(42, dirty=False)   # directory says owner, line clean
        with pytest.raises(InvariantViolation) as exc:
            check_sdc_coherence([system.sdc], system.sdcdir,
                                [system.hierarchy], system.hierarchy.llc)
        assert exc.value.invariant == "sdc-dirty-owner"

    def test_hierarchy_dirty_exclusive_violation(self, config):
        system = SingleCoreSystem(config, "sdc_lp")
        system.sdcdir.insert(42, 0, dirty=False)
        system.sdc.fill(42)
        system.hierarchy.l2c.fill(42, dirty=True)   # stale SDC duplicate
        with pytest.raises(InvariantViolation) as exc:
            check_sdc_coherence([system.sdc], system.sdcdir,
                                [system.hierarchy], system.hierarchy.llc)
        assert exc.value.invariant == "hierarchy-dirty-exclusive"

    def test_sdcdir_occupancy_violation(self):
        d = SDCDirectory(SDCDirConfig(entries_per_core=8, ways=2))
        d.sets[0][1] = [1, -1, 1]
        d.sets[0][2] = [1, -1, 2]
        d.sets[0][3] = [1, -1, 3]      # 3 entries in a 2-way set
        with pytest.raises(InvariantViolation) as exc:
            check_sdcdir_structure(d)
        assert exc.value.invariant == "sdcdir-occupancy"

    def test_hook_fires_during_run(self, trace, config):
        system = SingleCoreSystem(config, "sdc_lp", check_every=64)

        original = system.sdc.fill
        calls = {"n": 0}

        def sabotage(block, **kw):
            calls["n"] += 1
            if calls["n"] == 20:
                # Install a line the SDCDir never hears about.
                return original(block + 9999, **kw)
            return original(block, **kw)

        system.sdc.fill = sabotage
        with pytest.raises(InvariantViolation) as exc:
            system.run(trace)
        assert "access" in exc.value.context

    def test_violation_carries_context(self):
        err = InvariantViolation("demo", "something broke",
                                 {"access": 7, "block": 42})
        assert err.invariant == "demo"
        assert err.context["access"] == 7
        assert "block" in str(err)


# ---------------------------------------------------------------------------
# Differential pairs: redundant implementations agree bit-for-bit
# ---------------------------------------------------------------------------

class TestDifferentialPairs:
    @pytest.mark.parametrize("variant", ["baseline", "sdc_lp", "victim"])
    def test_inlined_vs_generic_lru(self, trace, config, variant):
        fast, generic = diff_inlined_vs_generic_lru(trace, config, variant)
        assert fast.cycles == generic.cycles
        assert dataclasses.asdict(fast.l1d) == dataclasses.asdict(
            generic.l1d)

    def test_access_vs_access_fast(self, trace, config):
        diff_access_vs_access_fast(trace, config)

    @pytest.mark.parametrize("variant", ["baseline", "sdc_lp"])
    def test_pow2_vs_divmod(self, trace, config, variant):
        pow2, fallback = diff_pow2_vs_divmod(trace, config, variant)
        assert pow2.cycles == fallback.cycles
        assert dataclasses.asdict(pow2.dram) == dataclasses.asdict(
            fallback.dram)

    @pytest.mark.parametrize("variant", ["baseline", "sdc_lp", "topt"])
    def test_multicore1_vs_single(self, trace, config, variant):
        single, multi = diff_multicore1_vs_single(trace, config, variant)
        assert single.cycles == multi.cycles

    def test_multicore1_vs_single_without_sdc_prefetcher(self, trace,
                                                         config):
        # Regression: the multi-core SDC prefetcher ignored
        # ``sdc.prefetcher is None`` and kept prefetching, so a 1-core
        # system diverged from the single-core one under that config.
        cfg = dataclasses.replace(
            config, sdc=dataclasses.replace(config.sdc, prefetcher=None))
        diff_multicore1_vs_single(trace, cfg, "sdc_lp")

    def test_mismatch_is_reported(self, trace, config):
        a = SingleCoreSystem(config, "baseline").run(trace)
        b = SingleCoreSystem(config, "baseline").run(trace)
        b = dataclasses.replace(b, cycles=b.cycles + 1)
        with pytest.raises(DifferentialMismatch) as exc:
            assert_stats_equal(a, b, "forged")
        assert "cycles" in str(exc.value)


# ---------------------------------------------------------------------------
# Non-pow2 geometries, end to end
# ---------------------------------------------------------------------------

def confined_trace(n=3000, seed=3, modulus=48, residues=6) -> Trace:
    """Blocks confined to residues [0, residues) mod ``modulus``.

    48 is a common multiple of the set counts used below (6, 8, 12, 16),
    so any two such blocks collide in the 6-set cache iff they collide
    in the padded 8-set one (and likewise 12 vs 16) — the two runs see
    identical per-set streams and must behave identically.
    """
    space = AddressSpace()
    region = space.add("blocks", 64, 1 << 16)
    rng = np.random.default_rng(seed)
    acc = np.zeros(n, dtype=ACCESS_DTYPE)
    idx = (rng.integers(0, 40, size=n) * modulus
           + rng.integers(0, residues, size=n))
    acc["addr"] = region.addr(idx)
    acc["pc"] = 0x400100
    acc["write"] = rng.random(n) < 0.3
    acc["gap"] = 1
    acc["dep"] = -1
    return Trace(acc, space)


class TestNonPow2EndToEnd:
    def test_non_pow2_matches_padded_divmod(self, config):
        def with_sets(c, sets):
            return c.resized(sets * c.ways * c.block_size)

        cfg_np = dataclasses.replace(config,
                                     l1d=with_sets(config.l1d, 6),
                                     l2c=with_sets(config.l2c, 12))
        cfg_p2 = dataclasses.replace(config,
                                     l1d=with_sets(config.l1d, 8),
                                     l2c=with_sets(config.l2c, 16))
        trace = confined_trace()
        # Prefetching is off: a next-line candidate crosses residue
        # classes, which would legitimately differ between geometries.
        sys_np = SingleCoreSystem(cfg_np, "baseline",
                                  enable_prefetch=False)
        # Non-pow2 geometry must auto-select the div/mod fallback.
        assert sys_np.hierarchy.l1d._set_mask == -1
        assert sys_np.hierarchy.l2c._set_mask == -1
        a = sys_np.run(trace, record_levels=True)

        sys_p2 = force_divmod(SingleCoreSystem(cfg_p2, "baseline",
                                               enable_prefetch=False))
        b = sys_p2.run(trace, record_levels=True)

        np.testing.assert_array_equal(a.levels, b.levels)
        assert a.cycles == b.cycles
        assert dataclasses.asdict(a.dram) == dataclasses.asdict(b.dram)

    def test_non_pow2_run_under_checking(self, config):
        def with_sets(c, sets):
            return c.resized(sets * c.ways * c.block_size)

        cfg = dataclasses.replace(config, l1d=with_sets(config.l1d, 6),
                                  l2c=with_sets(config.l2c, 12))
        system = SingleCoreSystem(cfg, "baseline", check_every=128)
        system.run(confined_trace(n=1500))
        check_single_core_system(system)
