"""Integration tests asserting the paper's headline *shapes* in the
reproduction regime (medium-tier graphs + scale-16 caches, the defaults
of the experiment harness).

These are the claims EXPERIMENTS.md tracks:

* Finding 1/2: high MPKI at every level; most L1D misses reach DRAM.
* Finding 3: DRAM probability grows with PC-local stride.
* §V-A: SDC+LP speeds up graph workloads and collapses L2C/LLC MPKI;
  the SDC absorbs the bulk of former L1D misses.
* §V-B3: regular workloads are unharmed.

Traces are shared via the on-disk cache, so the expensive generation
happens once per (kernel, graph, length) across the whole test session.
"""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.experiments.runner import default_config, run_variant, speedup
from repro.experiments.workloads import workload_trace
from repro.mem.hierarchy import DRAM

LENGTH = 150_000     # enough for stable MPKI, small enough for CI


@pytest.fixture(scope="module")
def cfg():
    return default_config()


@pytest.fixture(scope="module")
def pr_kron(cfg):
    return workload_trace("pr.kron", length=LENGTH)


@pytest.fixture(scope="module")
def cc_friendster(cfg):
    return workload_trace("cc.friendster", length=LENGTH)


class TestFindings:
    def test_finding1_high_mpki_all_levels(self, cfg, pr_kron):
        """Fig. 2: graph workloads show double-digit MPKI everywhere."""
        stats = run_variant(pr_kron, "baseline", cfg)
        assert stats.mpki("l1d") > 10
        assert stats.mpki("l2c") > 10
        assert stats.mpki("llc") > 10

    def test_finding2_most_l1_misses_reach_dram(self, cfg, cc_friendster):
        """§I: a large share of L1D misses miss all the way to DRAM."""
        stats = run_variant(cc_friendster, "baseline", cfg)
        assert stats.dram.reads / stats.l1d.misses > 0.4

    def test_finding3_dram_probability_grows_with_stride(self, cfg,
                                                         cc_friendster):
        """Fig. 3: small-stride accesses rarely reach DRAM; large-stride
        accesses often do."""
        from repro.experiments.figures import pc_local_strides
        stats = run_variant(cc_friendster, "baseline", cfg,
                            record_levels=True)
        strides = pc_local_strides(cc_friendster)
        is_dram = stats.levels == DRAM
        small = (strides >= 0) & (strides <= 1)
        large = strides > 10
        assert is_dram[small].mean() < 0.25
        assert is_dram[large].mean() > 2 * max(is_dram[small].mean(), 0.01)


class TestHeadlineSpeedup:
    def test_sdc_lp_beats_baseline_on_pr_kron(self, cfg, pr_kron):
        base = run_variant(pr_kron, "baseline", cfg)
        prop = run_variant(pr_kron, "sdc_lp", cfg)
        assert speedup(base, prop) > 0.05

    def test_sdc_lp_beats_baseline_on_cc_friendster(self, cfg,
                                                    cc_friendster):
        base = run_variant(cc_friendster, "baseline", cfg)
        prop = run_variant(cc_friendster, "sdc_lp", cfg)
        assert speedup(base, prop) > 0.10

    def test_l2_llc_mpki_collapse(self, cfg, pr_kron):
        """Fig. 8: SDC+LP removes most L2C/LLC traffic."""
        base = run_variant(pr_kron, "baseline", cfg)
        prop = run_variant(pr_kron, "sdc_lp", cfg)
        assert prop.mpki("l2c") < base.mpki("l2c") * 0.4
        assert prop.mpki("llc") < base.mpki("llc") * 0.4

    def test_sdc_absorbs_l1_misses(self, cfg, pr_kron):
        """Fig. 9: the SDC handles the bulk of former L1D misses."""
        base = run_variant(pr_kron, "baseline", cfg)
        prop = run_variant(pr_kron, "sdc_lp", cfg)
        assert prop.mpki("l1d") < base.mpki("l1d") * 0.5
        assert prop.sdc.accesses > 0
        # First-level pressure is conserved within a factor of ~2.
        first_level = prop.l1d.accesses + prop.sdc.accesses
        assert first_level == base.l1d.accesses

    def test_ordering_l1iso_near_zero(self, cfg, pr_kron):
        """Fig. 7: +8 KiB of L1D does nothing for these footprints."""
        base = run_variant(pr_kron, "baseline", cfg)
        iso = run_variant(pr_kron, "l1iso", cfg)
        assert abs(speedup(base, iso)) < 0.05

    def test_ordering_sdc_lp_beats_topt_and_llc2x(self, cfg, pr_kron):
        base = run_variant(pr_kron, "baseline", cfg)
        sp = {v: speedup(base, run_variant(pr_kron, v, cfg))
              for v in ("topt", "llc2x", "sdc_lp")}
        assert sp["sdc_lp"] > sp["topt"]
        assert sp["sdc_lp"] > sp["llc2x"]


class TestExpertComparison:
    def test_expert_close_to_lp(self, cfg, pr_kron):
        """Fig. 13: LP matches the profiling-driven expert within a few
        points."""
        from repro.core.expert import expert_regions_for
        base = run_variant(pr_kron, "baseline", cfg)
        regions = expert_regions_for(pr_kron, cfg)
        lp_sp = speedup(base, run_variant(pr_kron, "sdc_lp", cfg))
        ex_sp = speedup(base, run_variant(
            pr_kron, "expert", cfg, expert_regions=regions))
        assert abs(lp_sp - ex_sp) < 0.15


class TestLPQuality:
    def test_lp_agrees_with_expert_on_irregular_stream(self, cfg, pr_kron):
        """LP's per-access decisions should substantially overlap the
        address-region ground truth."""
        from repro.core.system import irregular_access_mask
        system = SingleCoreSystem(cfg, "sdc_lp")
        acc = pr_kron.accesses
        blocks = (acc["addr"] >> 6).astype(np.int64)
        truth = irregular_access_mask(pr_kron)
        pred = np.zeros(len(acc), dtype=bool)
        for i in range(len(acc)):
            pred[i] = system.lp.predict_and_update(int(acc["pc"][i]),
                                                   int(blocks[i]))
        # Among accesses LP sends to the SDC, most are truly irregular.
        if pred.sum() > 100:
            precision = (truth & pred).sum() / pred.sum()
            assert precision > 0.6
