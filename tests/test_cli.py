"""Tests for the CLI entry point (cheap commands only)."""

import pytest

from repro.cli import QUICK_WORKLOADS, main
from repro.experiments.workloads import WORKLOADS


class TestCheapCommands:
    def test_config(self, capsys):
        assert main(["config"]) == 0
        out = capsys.readouterr().out
        assert "L1D" in out and "SDC" in out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "Pull-Only" in capsys.readouterr().out

    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "SDCDir" in out
        assert "LP fits in one CPU cycle: True" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 54  # 36 GAP + 18 post-paper family cells
        assert "rw.kron" in lines and "gs.urand" in lines \
            and "dyn.web" in lines

    def test_workloads_json_families(self, capsys):
        import json
        assert main(["workloads", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 54
        fams = {r["family"] for r in rows}
        assert fams == {"gap", "rw", "gs", "dyn"}
        assert sum(r["family"] == "gap" for r in rows) == 36

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestQuickSubset:
    def test_quick_workloads_valid(self):
        names = {w.name for w in WORKLOADS}
        for wl in QUICK_WORKLOADS:
            assert wl in names

    def test_quick_covers_all_kernels(self):
        kernels = {wl.split(".")[0] for wl in QUICK_WORKLOADS}
        assert kernels == {"bc", "bfs", "cc", "pr", "tc", "sssp"}


class TestFigureCommand:
    def test_fig2_micro(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig2", "--quick", "--tier", "tiny",
                     "--length", "3000"]) == 0
        assert "MPKI" in capsys.readouterr().out

    def test_run_command(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "pr.urand", "--variant", "sdc_lp",
                     "--tier", "tiny", "--length", "4000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "LP:" in out
        assert "served by:" in out

    def test_run_baseline_variant(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["run", "cc.urand", "--variant", "baseline",
                     "--tier", "tiny", "--length", "4000"]) == 0
        out = capsys.readouterr().out
        assert "LP:" not in out
