"""Tests for the :mod:`repro.dse` design-space exploration subsystem:
sampler determinism, Pareto-dominance properties, the successive-halving
driver, study-ledger resume and the Table IV storage calculator."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.config import paper_config, storage_overhead_bits
from repro.core.budget import hardware_budget
from repro.dse import (Choice, FrontierPoint, ParamSpace, SEARCH_VARIANTS,
                       StudyManifest, default_space, derive_study_id,
                       dominates, frontier_csv, pareto_frontier,
                       render_frontier, run_study, sample, to_config)
from repro.experiments import results_cache as rc
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import default_config

QUICK = dict(seed=1, n=8, rungs=2, base_length=3000, tier="tiny",
             workloads=("pr.urand", "cc.urand"))


def _study(tmp: Path, sub: str = "a", **kw):
    """One quick study rooted under ``tmp/sub`` (own ledger + cache)."""
    merged = {**QUICK, **kw}
    return run_study(manifest_dir=tmp / sub / "runs",
                     cache=rc.ResultsCache(tmp / sub / "results"), **merged)


# --------------------------------------------------------------------------
# Parameter space


class TestSpace:
    def test_size_is_dim_product(self):
        space = default_space()
        expect = 1
        for d in space.dims:
            expect *= len(d.values)
        assert space.size() == expect

    def test_decode_covers_space(self):
        space = ParamSpace(dims=(Choice("a", (1, 2)),
                                 Choice("b", ("x", "y", "z"))))
        assert space.size() == 6
        seen = {tuple(sorted(space.decode(i).items()))
                for i in range(space.size())}
        assert len(seen) == 6
        assert space.decode(0) == {"a": 1, "b": "x"}

    def test_decode_every_default_space_index_valid(self):
        space = default_space()
        names = {d.name for d in space.dims}
        for i in range(0, space.size(), 97):
            point = space.decode(i)
            assert set(point) == names
            for d in space.dims:
                assert point[d.name] in d.values

    def test_digest_tracks_declaration(self):
        a = ParamSpace(dims=(Choice("a", (1, 2)),))
        b = ParamSpace(dims=(Choice("a", (1, 3)),))
        assert len(a.digest()) == 16
        assert a.digest() != b.digest()
        assert a.digest() == ParamSpace(dims=(Choice("a", (1, 2)),)).digest()

    def test_empty_choice_rejected(self):
        with pytest.raises(ValueError):
            Choice("a", ())

    def test_to_config_rejects_impossible_geometry(self):
        base = default_config()
        point = default_space().decode(0)
        point["sdc_size_x2"] = 1
        point["sdc_ways"] = 8
        small = {**point, "lp_entries": 16, "lp_ways": 4}
        # Some geometries are representable; the invalid ones return
        # None rather than raising mid-search.
        out = to_config(small, base)
        assert out is None or isinstance(out, tuple)


# --------------------------------------------------------------------------
# Sampler determinism


class TestSampler:
    def test_same_seed_same_sequence(self):
        space, base = default_space(), default_config()
        a = sample(space, 7, 12, base)
        b = sample(space, 7, 12, base)
        assert [c.key for c in a] == [c.key for c in b]
        assert [c.index for c in a] == [c.index for c in b]
        assert a == b

    def test_different_seeds_diverge(self):
        space, base = default_space(), default_config()
        a = sample(space, 0, 12, base)
        b = sample(space, 1, 12, base)
        assert [c.key for c in a] != [c.key for c in b]

    def test_no_duplicate_candidates(self):
        cands = sample(default_space(), 3, 24, default_config())
        keys = [c.key for c in cands]
        assert len(keys) == len(set(keys)) == 24

    def test_candidates_are_valid_configs(self):
        for c in sample(default_space(), 5, 16, default_config()):
            assert c.variant in SEARCH_VARIANTS
            assert c.storage_bits > 0
            assert c.key == f"{c.variant}:{c.config.digest()}"

    def test_cross_process_determinism(self):
        src = str(Path(__file__).resolve().parents[1] / "src")
        script = (
            "import json, sys\n"
            "from repro.dse import default_space, sample\n"
            "from repro.experiments.runner import default_config\n"
            "cands = sample(default_space(), 7, 12, default_config())\n"
            "print(json.dumps([c.key for c in cands]))\n")
        env = {**os.environ, "PYTHONPATH": src}
        out = subprocess.run([sys.executable, "-c", script], env=env,
                             capture_output=True, text=True, check=True)
        local = [c.key for c in sample(default_space(), 7, 12,
                                       default_config())]
        assert json.loads(out.stdout) == local


# --------------------------------------------------------------------------
# Pareto dominance (hypothesis property tests)

_points = st.lists(
    st.builds(FrontierPoint,
              key=st.text(alphabet="0123456789abcdef",
                          min_size=4, max_size=8),
              variant=st.sampled_from(SEARCH_VARIANTS),
              speedup=st.floats(min_value=-0.5, max_value=2.0,
                                allow_nan=False),
              bits=st.integers(min_value=0, max_value=1 << 20)),
    max_size=24, unique_by=lambda p: p.key)


class TestPareto:
    @given(_points)
    @settings(max_examples=60, deadline=None)
    def test_dominance_irreflexive_and_antisymmetric(self, pts):
        for p in pts:
            assert not dominates(p, p)
            for q in pts:
                assert not (dominates(p, q) and dominates(q, p))

    @given(_points)
    @settings(max_examples=60, deadline=None)
    def test_frontier_minimal_and_complete(self, pts):
        frontier = pareto_frontier(pts)
        fkeys = {p.key for p in frontier}
        # No frontier point is dominated by anything.
        for f in frontier:
            assert not any(dominates(p, f) for p in pts)
        # Every excluded point is dominated by some frontier point.
        for p in pts:
            if p.key not in fkeys:
                assert any(dominates(f, p) for f in frontier)

    @given(_points)
    @settings(max_examples=30, deadline=None)
    def test_frontier_order_deterministic(self, pts):
        a = pareto_frontier(pts)
        b = pareto_frontier(list(reversed(pts)))
        assert a == b

    def test_equal_points_both_survive(self):
        a = FrontierPoint(key="a", variant="sdc_lp", speedup=0.1, bits=10)
        b = FrontierPoint(key="b", variant="sdc_lp", speedup=0.1, bits=10)
        assert not dominates(a, b) and not dominates(b, a)
        assert len(pareto_frontier([a, b])) == 2


# --------------------------------------------------------------------------
# The successive-halving driver + resume


class TestStudy:
    def test_quick_study_and_resume_byte_identical(self, tmp_path):
        res = _study(tmp_path)
        assert res.cells_simulated > 0
        assert res.resumed_rungs == 0
        assert len(res.rung_scores) == 2
        assert res.frontier and set(res.frontier) <= set(res.points)
        # Successive halving: rung 1 scores at most half the field.
        assert len(res.rung_scores[1]) <= max(1, QUICK["n"] // 2)
        assert res.full_enumeration_cells > res.cells_evaluated

        res2 = _study(tmp_path)
        assert res2.resumed_rungs == 2
        assert res2.counters == {}          # no cells touched at all
        assert frontier_csv(res2.points) == frontier_csv(res.points)
        assert render_frontier(res2) == render_frontier(res)

    def test_interrupt_then_resume_no_redundant_sims(self, tmp_path):
        clean = _study(tmp_path, sub="clean")
        total = clean.cells_simulated

        ran = {"n": 0}

        def bomb(p):
            if p.source == "run":
                ran["n"] += 1
                if ran["n"] == 3:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            _study(tmp_path, sub="b", progress=bomb)
        resumed = _study(tmp_path, sub="b")
        # Every cell simulated exactly once across interrupt + resume:
        # the interrupted run checkpointed 3, the resume did the rest.
        assert ran["n"] + resumed.cells_simulated == total
        assert resumed.cells_cached == ran["n"]
        assert frontier_csv(resumed.points) == frontier_csv(clean.points)

    def test_study_id_is_deterministic(self, tmp_path):
        params = {"seed": 4, "space": "abc", "n": 8}
        assert derive_study_id(params) == derive_study_id(dict(params))
        assert derive_study_id(params).startswith("dse-s4-")

    def test_params_mismatch_refused(self, tmp_path):
        res = _study(tmp_path)
        with pytest.raises(ValueError, match="different parameters"):
            _study(tmp_path, n=9, study_id=res.study_id)

    def test_ledger_on_disk_and_complete(self, tmp_path):
        res = _study(tmp_path)
        path = tmp_path / "a" / "runs" / f"{res.study_id}.dse.json"
        assert path.exists()
        data = json.loads(path.read_text())
        assert data["status"] == "complete"
        assert len(data["rungs"]) == 2
        assert all(r["complete"] for r in data["rungs"])
        assert data["frontier"]

    def test_rejects_zero_rungs(self, tmp_path):
        with pytest.raises(ValueError):
            _study(tmp_path, rungs=0)


# --------------------------------------------------------------------------
# Satellites: manifest.latest() skip, Table IV bits, workloads --json


def test_run_manifest_latest_skips_dse_ledgers(tmp_path):
    m = RunManifest.open("base", tmp_path)
    m.save()
    s = StudyManifest.open("dse-s0-cafecafe00", tmp_path, {"seed": 0})
    s.save()
    os.utime(m.path, (1000, 1000))
    os.utime(s.path, (2000, 2000))       # the DSE ledger is newer...
    assert RunManifest.latest(tmp_path).run_id == "base"


class TestStorageOverheadBits:
    def test_table_iv_sdc_lp_pin(self):
        cfg = paper_config()
        # Table IV: 128-entry SDC at 556 b/block + 32-entry LP at
        # 138 b/entry + SDC directory = 81,856 bits (~10 KB).
        assert storage_overhead_bits(cfg, "sdc_lp") == 81_856
        assert storage_overhead_bits(cfg, "sdc_lp") == sum(
            r.total_bits for r in hardware_budget(cfg))

    def test_variant_accounting(self):
        cfg = paper_config()
        assert storage_overhead_bits(cfg, "baseline") == 0
        assert storage_overhead_bits(cfg, "topt") == 0
        assert storage_overhead_bits(cfg, "expert") == 77_440
        assert storage_overhead_bits(cfg, "sdc_clp") == 86_528
        assert storage_overhead_bits(cfg, "sdc_lp_tagless") == 86_784
        lp_only = storage_overhead_bits(cfg, "lp_bypass")
        assert lp_only == cfg.lp.entries * 138

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            storage_overhead_bits(paper_config(), "nope")


def test_workloads_json_cli(capsys):
    assert main(["workloads", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {"name", "kernel", "graph"} <= set(rows[0])
    names = [r["name"] for r in rows]
    assert "pr.kron" in names and len(names) == len(set(names))
