"""Tests for the run-manifest checkpoint layer (manifest.py)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import manifest as mod
from repro.experiments.manifest import (MANIFEST_VERSION, MAX_MANIFESTS,
                                        RunManifest, new_run_id)


@pytest.fixture
def runs(tmp_path):
    return tmp_path / "runs"


def test_run_ids_are_unique():
    assert new_run_id() != new_run_id()


def test_round_trip(runs):
    m = RunManifest.open("rt", runs)
    m.register("k1", "pr.urand/baseline")
    m.register("k2", "pr.urand/sdc_lp", status="done", source="cache")
    m.save()
    loaded = RunManifest.load("rt", runs)
    assert loaded.data["status"] == "running"
    assert loaded.cells["k1"]["status"] == "pending"
    assert loaded.cells["k2"] == m.cells["k2"]
    assert loaded.data["total_cells"] == 2


def test_load_rejects_unknown_version(runs):
    m = RunManifest.open("vx", runs)
    m.save()
    data = json.loads(m.path.read_text())
    data["version"] = MANIFEST_VERSION + 1
    m.path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="unsupported version"):
        RunManifest.load("vx", runs)


def test_save_is_atomic_no_tmp_left_behind(runs):
    m = RunManifest.open("at", runs)
    m.register("k", "lbl")
    for status in ("running", "done"):
        m.mark("k", status)
    assert not list(runs.glob("*.tmp.*"))
    assert RunManifest.load("at", runs).cells["k"]["status"] == "done"


def test_mark_updates_and_persists(runs):
    m = RunManifest.open("mk", runs)
    m.register("k", "lbl")
    m.mark("k", "retrying", attempts=1, error="boom", seconds=0.51234)
    cell = RunManifest.load("mk", runs).cells["k"]
    assert cell["status"] == "retrying"
    assert cell["attempts"] == 1
    assert cell["error"] == "boom"
    assert cell["seconds"] == 0.512
    m.mark("k", "done", attempts=2, source="run")
    cell = RunManifest.load("mk", runs).cells["k"]
    assert cell["error"] is None          # success clears the last error
    assert cell["source"] == "run"


def test_open_resumes_existing_run(runs):
    m = RunManifest.open("rs", runs)
    m.register("k1", "a", status="done", source="run")
    m.register("k2", "b")
    m.mark("k2", "failed", attempts=3, error="boom")
    m.finalize("failed")

    again = RunManifest.open("rs", runs)
    assert again.data["resumes"] == 1
    assert again.data["status"] == "running"
    assert again.settled_keys() == {"k1"}
    # Re-registering the unfinished cell resets transient state but
    # keeps the cumulative attempt counter.
    again.register("k2", "b")
    assert again.cells["k2"]["status"] == "pending"
    assert again.cells["k2"]["attempts"] == 3
    assert again.cells["k2"]["error"] is None


def test_open_with_explicit_id_but_no_file_starts_fresh(runs):
    m = RunManifest.open("fresh-id", runs)
    assert m.run_id == "fresh-id"
    assert m.data["resumes"] == 0
    assert m.cells == {}


def test_finalize_demotes_inflight_cells(runs):
    m = RunManifest.open("fin", runs)
    m.register("k1", "a", status="done", source="run")
    m.register("k2", "b")
    m.mark("k2", "running", save=False)
    m.register("k3", "c")
    m.mark("k3", "retrying", save=False)
    m.finalize("interrupted")
    loaded = RunManifest.load("fin", runs)
    assert loaded.data["status"] == "interrupted"
    assert loaded.counts() == {"done": 1, "pending": 2}


def test_counts_failed_cells_and_summary(runs):
    m = RunManifest.open("sm", runs)
    m.register("k1", "a", status="done", source="cache")
    m.register("k2", "b")
    m.mark("k2", "failed", error="exploded", save=False)
    m.register("k3", "c")
    assert m.counts() == {"done": 1, "failed": 1, "pending": 1}
    assert m.failed_cells() == {"b": "exploded"}
    s = m.summary()
    assert "1/3 unique cells done" in s
    assert "1 failed" in s and "1 pending" in s


def test_prune_caps_manifest_count(runs, monkeypatch):
    monkeypatch.setattr(mod, "MAX_MANIFESTS", 5)
    for i in range(8):
        m = RunManifest.open(directory=runs)
        m.path = runs / f"run-{i:03d}.json"   # deterministic names
        m.finalize("complete")                # finalized => prunable
        os.utime(m.path, (1000 + i, 1000 + i))
    survivors = sorted(p.name for p in runs.glob("*.json"))
    assert len(survivors) == 5
    assert survivors[-1] == "run-007.json"
    assert "run-000.json" not in survivors


def test_prune_spares_live_and_resumable_manifests(runs, monkeypatch):
    monkeypatch.setattr(mod, "MAX_MANIFESTS", 2)
    statuses = ("running", "interrupted", "complete", "failed",
                "complete")
    for i, status in enumerate(statuses):
        m = RunManifest.open(directory=runs)
        m.path = runs / f"run-{i:03d}.json"
        if status == "running":
            m.save()
        else:
            m.finalize(status)
        os.utime(m.path, (1000 + i, 1000 + i))
    RunManifest._prune(runs)
    survivors = sorted(p.name for p in runs.glob("*.json"))
    # Only cleanly finalized runs are reclaimed; a concurrent
    # supervisor's live sweep and resume state survive any cap.
    assert survivors == ["run-000.json", "run-001.json"]


def test_latest_and_prune_tolerate_vanished_files(runs):
    m = RunManifest.open("keep", runs)
    m.save()
    # A broken symlink stats like a file a sibling pruned between the
    # glob and the stat — the exact TOCTOU race, minus the timing.
    (runs / "ghost.json").symlink_to(runs / "nope.json")
    assert RunManifest.latest(runs).run_id == "keep"
    RunManifest._prune(runs)        # must not raise
    assert (runs / "keep.json").exists()


def test_latest_skips_shard_manifests(runs):
    m = RunManifest.open("base", runs)
    m.save()
    s = RunManifest.open("sharded", runs, shard=(0, 2))
    s.save()
    os.utime(m.path, (1000, 1000))
    os.utime(s.path, (2000, 2000))  # shard manifest is newer...
    assert RunManifest.latest(runs).run_id == "base"


def test_open_with_shard_names_per_shard_manifest(runs):
    m = RunManifest.open("sh", runs, shard=(1, 4))
    m.save()
    assert m.path.name == "sh.shard-1-of-4.json"
    assert m.data["shard"] == {"index": 1, "count": 4}
    again = RunManifest.open("sh", runs, shard=(1, 4))
    assert again.data["resumes"] == 1


def test_summary_reports_sibling_shard_cells(runs):
    m = RunManifest.open("sib", runs, shard=(0, 2))
    m.register("k1", "a", status="done", source="run", shard=0)
    m.register("k2", "b", status="elsewhere", shard=1)
    s = m.summary()
    assert "1/1 unique cells done" in s
    assert "1 owned by sibling shards" in s
    assert m.cells["k2"]["shard"] == 1
