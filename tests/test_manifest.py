"""Tests for the run-manifest checkpoint layer (manifest.py)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import manifest as mod
from repro.experiments.manifest import (MANIFEST_VERSION, MAX_MANIFESTS,
                                        RunManifest, new_run_id)


@pytest.fixture
def runs(tmp_path):
    return tmp_path / "runs"


def test_run_ids_are_unique():
    assert new_run_id() != new_run_id()


def test_round_trip(runs):
    m = RunManifest.open("rt", runs)
    m.register("k1", "pr.urand/baseline")
    m.register("k2", "pr.urand/sdc_lp", status="done", source="cache")
    m.save()
    loaded = RunManifest.load("rt", runs)
    assert loaded.data["status"] == "running"
    assert loaded.cells["k1"]["status"] == "pending"
    assert loaded.cells["k2"] == m.cells["k2"]
    assert loaded.data["total_cells"] == 2


def test_load_rejects_unknown_version(runs):
    m = RunManifest.open("vx", runs)
    m.save()
    data = json.loads(m.path.read_text())
    data["version"] = MANIFEST_VERSION + 1
    m.path.write_text(json.dumps(data))
    with pytest.raises(ValueError, match="unsupported version"):
        RunManifest.load("vx", runs)


def test_save_is_atomic_no_tmp_left_behind(runs):
    m = RunManifest.open("at", runs)
    m.register("k", "lbl")
    for status in ("running", "done"):
        m.mark("k", status)
    assert not list(runs.glob("*.tmp.*"))
    assert RunManifest.load("at", runs).cells["k"]["status"] == "done"


def test_mark_updates_and_persists(runs):
    m = RunManifest.open("mk", runs)
    m.register("k", "lbl")
    m.mark("k", "retrying", attempts=1, error="boom", seconds=0.51234)
    cell = RunManifest.load("mk", runs).cells["k"]
    assert cell["status"] == "retrying"
    assert cell["attempts"] == 1
    assert cell["error"] == "boom"
    assert cell["seconds"] == 0.512
    m.mark("k", "done", attempts=2, source="run")
    cell = RunManifest.load("mk", runs).cells["k"]
    assert cell["error"] is None          # success clears the last error
    assert cell["source"] == "run"


def test_open_resumes_existing_run(runs):
    m = RunManifest.open("rs", runs)
    m.register("k1", "a", status="done", source="run")
    m.register("k2", "b")
    m.mark("k2", "failed", attempts=3, error="boom")
    m.finalize("failed")

    again = RunManifest.open("rs", runs)
    assert again.data["resumes"] == 1
    assert again.data["status"] == "running"
    assert again.settled_keys() == {"k1"}
    # Re-registering the unfinished cell resets transient state but
    # keeps the cumulative attempt counter.
    again.register("k2", "b")
    assert again.cells["k2"]["status"] == "pending"
    assert again.cells["k2"]["attempts"] == 3
    assert again.cells["k2"]["error"] is None


def test_open_with_explicit_id_but_no_file_starts_fresh(runs):
    m = RunManifest.open("fresh-id", runs)
    assert m.run_id == "fresh-id"
    assert m.data["resumes"] == 0
    assert m.cells == {}


def test_finalize_demotes_inflight_cells(runs):
    m = RunManifest.open("fin", runs)
    m.register("k1", "a", status="done", source="run")
    m.register("k2", "b")
    m.mark("k2", "running", save=False)
    m.register("k3", "c")
    m.mark("k3", "retrying", save=False)
    m.finalize("interrupted")
    loaded = RunManifest.load("fin", runs)
    assert loaded.data["status"] == "interrupted"
    assert loaded.counts() == {"done": 1, "pending": 2}


def test_counts_failed_cells_and_summary(runs):
    m = RunManifest.open("sm", runs)
    m.register("k1", "a", status="done", source="cache")
    m.register("k2", "b")
    m.mark("k2", "failed", error="exploded", save=False)
    m.register("k3", "c")
    assert m.counts() == {"done": 1, "failed": 1, "pending": 1}
    assert m.failed_cells() == {"b": "exploded"}
    s = m.summary()
    assert "1/3 unique cells done" in s
    assert "1 failed" in s and "1 pending" in s


def test_prune_caps_manifest_count(runs, monkeypatch):
    monkeypatch.setattr(mod, "MAX_MANIFESTS", 5)
    for i in range(8):
        m = RunManifest.open(directory=runs)
        m.path = runs / f"run-{i:03d}.json"   # deterministic names
        m.save()
    survivors = sorted(p.name for p in runs.glob("*.json"))
    assert len(survivors) == 5
    assert survivors[-1] == "run-007.json"
    assert "run-000.json" not in survivors
