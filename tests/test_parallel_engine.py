"""Tests for the parallel experiment engine and the result cache.

The engine's contract (parallel.py): ``run_grid(jobs=N)`` is
bit-identical to ``jobs=1`` for every N, cells dedup within a grid, and
a warm cache makes a figure rerun simulation-free.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import figures, parallel
from repro.experiments import results_cache as rc
from repro.experiments.parallel import EXPERT_BEST, Job, run_grid
from repro.experiments.runner import default_config, run_variant
from repro.experiments.workloads import workload_trace

MICRO = dict(tier="tiny", length=6_000)
GRID_WORKLOADS = ("pr.urand", "cc.urand", "bfs.urand", "sssp.road")
GRID_VARIANTS = ("baseline", "sdc_lp", "lp_bypass")


@pytest.fixture
def cache(tmp_path):
    return rc.ResultsCache(tmp_path / "results")


def micro_grid(cfg):
    return [Job(wl, v, cfg, **MICRO)
            for wl in GRID_WORKLOADS for v in GRID_VARIANTS]


class TestResultKeys:
    def test_key_is_deterministic(self):
        cfg = default_config()
        k1 = rc.result_key("wl:pr.urand:tiny:6000:v1", "baseline",
                           cfg.digest())
        k2 = rc.result_key("wl:pr.urand:tiny:6000:v1", "baseline",
                           cfg.digest())
        assert k1 == k2
        assert len(k1) == 64

    def test_key_varies_with_each_component(self):
        cfg = default_config()
        base = rc.result_key("fp", "baseline", cfg.digest())
        assert rc.result_key("fp2", "baseline", cfg.digest()) != base
        assert rc.result_key("fp", "sdc_lp", cfg.digest()) != base
        other = dataclasses.replace(cfg, num_cores=2)
        assert rc.result_key("fp", "baseline", other.digest()) != base
        assert rc.result_key("fp", "baseline", cfg.digest(),
                             extra="regions:1") != base

    def test_trace_fingerprint_tracks_content(self):
        trace = workload_trace("pr.urand", **MICRO)
        assert rc.trace_fingerprint(trace) == rc.trace_fingerprint(trace)
        from repro.experiments.figures import Trace_without_deps
        nodep = Trace_without_deps(trace)
        assert rc.trace_fingerprint(nodep) != rc.trace_fingerprint(trace)


class TestConfigDigest:
    def test_equal_configs_share_digest(self):
        assert default_config().digest() == default_config().digest()

    def test_resized_cache_changes_digest(self):
        cfg = default_config()
        bigger = dataclasses.replace(
            cfg, llc=cfg.llc.resized(cfg.llc.size_bytes * 2))
        assert bigger.digest() != cfg.digest()

    def test_nested_field_changes_digest(self):
        cfg = default_config()
        tweaked = dataclasses.replace(
            cfg, lp=dataclasses.replace(cfg.lp, tau_glob=cfg.lp.tau_glob
                                        + 1))
        assert tweaked.digest() != cfg.digest()


class TestResultsCache:
    def test_miss_then_hit(self, cache):
        key = "ab" + "0" * 62
        assert cache.get(key) is None
        assert cache.misses == 1
        cache.put(key, {"x": 1.5})
        assert cache.get(key) == {"x": 1.5}
        assert cache.hits == 1
        assert len(cache) == 1

    def test_corrupt_entry_is_quarantined_not_missed(self, cache):
        key = "cd" + "1" * 62
        cache.put(key, {"x": 1})
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None
        # Unreadable != absent: the corrupt counter takes it, and the
        # poisoned file is moved aside so it is never re-read.
        assert cache.misses == 0
        assert cache.corrupt == 1
        assert cache.quarantined == 1
        assert not path.exists()
        assert list(cache.quarantine_dir.glob("*.bad"))
        # The entry is recomputable: a fresh put makes it a hit again.
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}

    def test_checksum_mismatch_is_corrupt(self, cache):
        import json
        key = "ce" + "3" * 62
        cache.put(key, {"x": 1.5})
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["payload"]["x"] = 2.5        # valid JSON, wrong checksum
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.hits == 0

    def test_clear(self, cache):
        for i in range(3):
            cache.put(f"{i:02d}" + "2" * 62, {"i": i})
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_len_and_clear_account_stray_tmp_files(self, cache):
        cache.put("ab" + "4" * 62, {"x": 1})
        stray = cache.root / "ab" / ("cd" + "5" * 62 + ".json.tmp.999")
        stray.write_text("half-written")
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_stale_tmp_sweep(self, cache):
        import os
        cache.put("ab" + "6" * 62, {"x": 1})
        stray = cache.root / "ab" / ("ef" + "7" * 62 + ".json.tmp.1")
        stray.write_text("orphan")
        old = 10_000.0
        os.utime(stray, (old, old))
        fresh = rc.ResultsCache(cache.root)    # sweeps at construction
        assert fresh.swept == 1
        assert not stray.exists()
        assert len(fresh) == 1                 # committed entry survives

    def test_young_tmp_files_survive_sweep(self, cache):
        stray = cache.root / "ab" / ("aa" + "8" * 62 + ".json.tmp.2")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_text("live writer")
        fresh = rc.ResultsCache(cache.root)
        assert fresh.swept == 0
        assert stray.exists()


class TestRunGrid:
    def test_serial_matches_direct_run(self, cache):
        cfg = default_config()
        trace = workload_trace("pr.urand", **MICRO)
        direct = run_variant(trace, "sdc_lp", cfg)
        [res] = run_grid([Job("pr.urand", "sdc_lp", cfg, **MICRO)],
                         cache=cache)
        assert res.as_dict() == direct.as_dict()

    def test_parallel_bit_identical_to_serial(self, tmp_path):
        cfg = default_config()
        serial = run_grid(micro_grid(cfg),
                          cache=rc.ResultsCache(tmp_path / "a"))
        parallel_res = run_grid(micro_grid(cfg), jobs=2,
                                cache=rc.ResultsCache(tmp_path / "b"))
        assert len(serial) == len(GRID_WORKLOADS) * len(GRID_VARIANTS)
        for s, p in zip(serial, parallel_res):
            assert s.as_dict() == p.as_dict()

    def test_duplicate_cells_dedup(self, cache):
        cfg = default_config()
        grid = [Job("pr.urand", "baseline", cfg, **MICRO)] * 3
        events = []
        res = run_grid(grid, cache=cache, progress=events.append)
        assert len(res) == 3
        assert res[0].as_dict() == res[1].as_dict() == res[2].as_dict()
        assert sorted(e.source for e in events) == ["dedup", "dedup",
                                                    "run"]
        assert [e.done for e in events] == [1, 2, 3]
        assert cache.stores == 1

    def test_cache_hit_skips_simulation(self, cache, monkeypatch):
        cfg = default_config()
        grid = [Job("pr.urand", "baseline", cfg, **MICRO)]
        first = run_grid(grid, cache=cache)
        assert cache.stores == 1
        monkeypatch.setattr(parallel, "_execute", _boom)
        events = []
        second = run_grid(grid, cache=cache, progress=events.append)
        assert second[0].as_dict() == first[0].as_dict()
        assert [e.source for e in events] == ["cache"]

    def test_no_cache_bypasses_store_and_load(self, cache):
        cfg = default_config()
        grid = [Job("pr.urand", "baseline", cfg, **MICRO)]
        run_grid(grid, use_cache=False, cache=cache)
        assert cache.stores == 0 and len(cache) == 0
        # A poisoned cache entry must be ignored when use_cache=False.
        run_grid(grid, cache=cache)
        _, key = parallel._job_spec(grid[0])
        cache.put(key, {"poison": True})
        fresh = run_grid(grid, use_cache=False, cache=cache)
        assert "poison" not in fresh[0].as_dict()

    def test_expert_best_pseudo_variant(self, cache):
        cfg = default_config()
        [base, best] = run_grid(
            [Job("pr.urand", "baseline", cfg, **MICRO),
             Job("pr.urand", EXPERT_BEST, cfg, **MICRO)], cache=cache)
        # At micro scale the best region set is usually empty, so the
        # expert run degenerates to baseline — the point here is that
        # the pseudo-variant executes and caches under its own key.
        assert best.cycles > 0
        assert cache.stores == 2

    def test_multicore_job(self, cache):
        cfg = dataclasses.replace(default_config(), num_cores=2)
        [res] = run_grid([Job(("pr.urand", "cc.urand"), "baseline", cfg,
                              **MICRO)], cache=cache)
        assert len(res.per_core) == 2
        assert res.llc_accesses > 0
        # Warm rerun reconstructs the same MultiCoreResult from cache.
        [again] = run_grid([Job(("pr.urand", "cc.urand"), "baseline",
                                cfg, **MICRO)], cache=cache)
        assert [s.as_dict() for s in again.per_core] == \
            [s.as_dict() for s in res.per_core]


def _boom(spec):
    raise AssertionError("simulation ran despite a warm cache")


class TestWarmFigureRerun:
    def test_fig7_warm_rerun_runs_zero_simulations(self, cache,
                                                   monkeypatch):
        cfg = default_config()
        wls = ["pr.urand", "cc.urand"]
        # Point the engine's default cache at this test's tmp cache.
        monkeypatch.setattr(rc, "ResultsCache", lambda: cache)
        first = figures.fig7_single_core(
            wls, variants=("sdc_lp",), config=cfg, **MICRO)
        assert cache.stores == len(wls) * 2
        # Warm rerun: every cell must come from the cache — any call
        # into the simulation path fails the test.
        monkeypatch.setattr(parallel, "_execute", _boom)
        warm = figures.fig7_single_core(
            wls, variants=("sdc_lp",), config=cfg, **MICRO)
        assert warm.speedups == first.speedups
        assert warm.baseline_cycles == first.baseline_cycles

    def test_fig2_parallel_matches_serial(self, tmp_path):
        wls = ["pr.urand", "cc.urand"]
        serial = figures.fig2_mpki(wls, use_cache=False, **MICRO)
        par = figures.fig2_mpki(wls, jobs=2, use_cache=False, **MICRO)
        assert serial == par


class TestWorkerTraceLRU:
    def test_trace_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(parallel, "_worker_traces", {})
        monkeypatch.setattr(parallel, "workload_trace",
                            lambda name, tier, length: object())
        cap = parallel._WORKER_TRACE_CAP
        for i in range(3 * cap):
            parallel._resolve_trace(("spec", f"wl{i}", "tiny", 1000))
        assert len(parallel._worker_traces) == cap
        # Most recently used specs are the ones retained, and every key
        # carries the trace format version (a mid-sweep bump must never
        # serve a stale mapped trace).
        from repro.experiments.workloads import TRACE_FORMAT_VERSION
        kept = {name for name, _, _, ver in parallel._worker_traces
                if ver == TRACE_FORMAT_VERSION}
        assert kept == {f"wl{i}" for i in range(2 * cap, 3 * cap)}

    def test_lru_refresh_on_reuse(self, monkeypatch):
        monkeypatch.setattr(parallel, "_worker_traces", {})
        loads = []
        monkeypatch.setattr(parallel, "workload_trace",
                            lambda name, tier, length:
                            loads.append(name) or object())
        cap = parallel._WORKER_TRACE_CAP
        for i in range(cap):
            parallel._resolve_trace(("spec", f"wl{i}", "tiny", 1000))
        # Touch wl0, then add one more spec: wl1 (now oldest) evicts.
        parallel._resolve_trace(("spec", "wl0", "tiny", 1000))
        parallel._resolve_trace(("spec", "new", "tiny", 1000))
        assert loads.count("wl0") == 1
        kept = {name for name, _, _, _ in parallel._worker_traces}
        assert "wl0" in kept and "wl1" not in kept
