"""Tests for the synthetic regular workloads (SPEC surrogate)."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.trace.synthetic import (hot_working_set_trace, regular_suite,
                                   stencil_trace, streaming_trace)


class TestGenerators:
    def test_streaming_sequential(self):
        t = streaming_trace(1000)
        t.validate()
        loads = t.accesses[t.accesses["write"] == 0]
        diffs = np.diff(loads["addr"].astype(np.int64))
        assert (diffs == 8).all()

    def test_streaming_has_stores(self):
        t = streaming_trace(1000)
        assert (t.accesses["write"] == 1).sum() == 500

    def test_stencil_point_major_order(self):
        t = stencil_trace(600, grid_side=32)
        t.validate()
        pcs = t.accesses["pc"]
        # 6 records per point, repeating pattern of distinct PCs.
        assert len(set(pcs[:6].tolist())) == 6
        assert list(pcs[:6]) == list(pcs[6:12])

    def test_hot_set_bounded(self):
        t = hot_working_set_trace(2000, ws_kib=8)
        span = int(t.accesses["addr"].max() - t.accesses["addr"].min())
        assert span <= 8 * 1024

    def test_suite_contents(self):
        suite = regular_suite(500)
        assert set(suite) == {"stream", "stencil", "hotset"}
        for t in suite.values():
            assert len(t) > 0


class TestRegularity:
    """The surrogate's defining property: these workloads are
    cache-friendly, so SDC+LP must not slow them down (§V-B3).  They run
    on the unscaled paper configuration, as the paper's τ sweep does."""

    @pytest.mark.parametrize("name", ["stream", "stencil"])
    def test_lp_routes_little_to_sdc(self, name):
        from repro.config import paper_config
        cfg = paper_config()
        trace = regular_suite(20_000)[name]
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        frac = stats.lp.predicted_irregular / max(1, stats.lp.lookups)
        assert frac < 0.05, f"{name}: {frac:.2%} routed to SDC"

    @pytest.mark.parametrize("name", ["stream", "stencil", "hotset"])
    def test_sdc_lp_does_not_hurt(self, name):
        """§V-B3's guardrail: tau=8 keeps regular workloads unharmed.

        The hotset case is routed to the SDC (random = large strides)
        but fits it, so it runs at SDC latency — still no slowdown."""
        from repro.config import paper_config
        cfg = paper_config()
        trace = regular_suite(20_000)[name]
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert prop.cycles <= base.cycles * 1.02


class TestAdversarial:
    def test_mid_size_hot_set_thrashes_sdc(self):
        """Documented design sensitivity: a random working set that is
        larger than the SDC but smaller than the L2 is misrouted by LP
        and pays DRAM latency on every SDC miss.  This is the trade-off
        τ_glob = 8 accepts (§V-B3); the test pins the behaviour so any
        change to the routing policy is noticed."""
        from repro.config import paper_config
        cfg = paper_config()
        trace = hot_working_set_trace(20_000, ws_kib=64)   # SDC < ws < L2
        base = SingleCoreSystem(cfg, "baseline").run(trace)
        prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert prop.cycles > base.cycles
