"""Failure-path tests for the resilient experiment engine.

Every failure mode the engine recovers from — transient exceptions,
worker crashes, hung workers, corrupt cache entries, ^C — is injected
deterministically through :mod:`repro.faults` and checked against the
engine's contract: recovered runs are bit-identical to clean runs, and
completed work is never lost or repeated (docs/RESILIENCE.md).
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.core.batch import resolve_backend
from repro.experiments import parallel
from repro.experiments import results_cache as rc
from repro.experiments.manifest import RunManifest
from repro.experiments.parallel import (GridError, GridInterrupted, Job,
                                        RunPolicy, _job_spec, run_grid)
from repro.experiments.runner import default_config

MICRO = dict(tier="tiny", length=6_000)
WLS = ("pr.urand", "cc.urand")
VARIANTS = ("baseline", "sdc_lp")

#: Fast-failure policy for tests: short backoff, no multi-second waits.
FAST = dict(backoff=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    faults.deactivate()


@pytest.fixture
def grid():
    cfg = default_config()
    return [Job(wl, v, cfg, **MICRO) for wl in WLS for v in VARIANTS]


@pytest.fixture
def clean(grid, tmp_path):
    """Fault-free serial reference results for the micro grid."""
    return run_grid(grid, cache=rc.ResultsCache(tmp_path / "ref"),
                    manifest_dir=tmp_path / "runs")


def grid_keys(grid):
    # Keys must match what run_grid computes, which folds in the
    # ambient backend (REPRO_BACKEND) — seed searches over these keys
    # would otherwise target cells run_grid never executes.
    backend = resolve_backend(None)
    return [_job_spec(job, backend=backend)[1] for job in grid]


def find_seed(predicate, limit=500):
    """Smallest plan seed satisfying ``predicate(seed)``."""
    for seed in range(limit):
        if predicate(seed):
            return seed
    raise AssertionError("no satisfying fault seed found")


def assert_identical(results, reference):
    assert len(results) == len(reference)
    for got, want in zip(results, reference):
        assert got.as_dict() == want.as_dict()


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = faults.FaultPlan.parse(
            "seed=7, exc:0.25, crash:0.1:2, hang:0.05:1:120")
        assert plan.seed == 7
        assert [s.kind for s in plan.specs] == ["exc", "crash", "hang"]
        assert plan.spec("crash").max_attempt == 2
        assert plan.spec("hang").arg == 120.0
        assert plan.spec("slow") is None

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultPlan.parse("explode:0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="rate"):
            faults.FaultPlan.parse("exc:1.5")

    def test_decisions_are_deterministic(self):
        plan = faults.FaultPlan.parse("seed=3,exc:0.5")
        draws = [plan.fires("exc", f"site{i}") for i in range(64)]
        again = [plan.fires("exc", f"site{i}") for i in range(64)]
        assert draws == again
        assert any(draws) and not all(draws)      # rate actually bites

    def test_seed_changes_schedule(self):
        a = faults.FaultPlan.parse("seed=1,exc:0.5")
        b = faults.FaultPlan.parse("seed=2,exc:0.5")
        assert [a.fires("exc", f"s{i}") for i in range(64)] != \
            [b.fires("exc", f"s{i}") for i in range(64)]

    def test_transience_bound(self):
        plan = faults.FaultPlan.parse("exc:1.0:2")
        assert plan.fires("exc", "s", attempt=1)
        assert plan.fires("exc", "s", attempt=2)
        assert not plan.fires("exc", "s", attempt=3)

    def test_env_activation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert faults.active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed=9,exc:0.5")
        assert faults.active_plan().seed == 9
        faults.activate(faults.FaultPlan.parse("seed=1,crash:1.0"))
        assert faults.active_plan().seed == 1    # explicit plan wins

    def test_in_process_crash_raises_instead_of_exiting(self):
        faults.activate(faults.FaultPlan.parse("crash:1.0"))
        with pytest.raises(faults.FaultInjected, match="crash"):
            faults.inject_execution("some-site", attempt=1)


class TestTransientRetry:
    def test_retry_then_succeed_bit_identical(self, grid, clean,
                                              tmp_path):
        # Every cell fails its first attempt, succeeds on retry.
        faults.activate(faults.FaultPlan.parse("seed=1,exc:1.0"))
        cache = rc.ResultsCache(tmp_path / "c")
        res = run_grid(grid, cache=cache,
                       policy=RunPolicy(retries=2, **FAST),
                       manifest_dir=tmp_path / "runs", run_id="retry")
        assert_identical(res, clean)
        assert cache.stores == len(grid)
        m = RunManifest.load("retry", tmp_path / "runs")
        assert all(c["status"] == "done" and c["attempts"] == 2
                   for c in m.cells.values())

    def test_serial_parallel_equivalence_under_faults(self, grid, clean,
                                                      tmp_path):
        plan = faults.FaultPlan.parse("seed=5,exc:0.5:2")
        pol = RunPolicy(retries=3, **FAST)
        faults.activate(plan)
        serial = run_grid(grid, cache=rc.ResultsCache(tmp_path / "s"),
                          policy=pol, manifest_dir=tmp_path / "runs")
        par = run_grid(grid, jobs=2,
                       cache=rc.ResultsCache(tmp_path / "p"),
                       policy=pol, manifest_dir=tmp_path / "runs")
        assert_identical(serial, clean)
        assert_identical(par, clean)

    def test_retries_exhausted_raises_grid_error(self, grid, tmp_path):
        faults.activate(faults.FaultPlan.parse("seed=1,exc:1.0:99"))
        with pytest.raises(GridError) as ei:
            run_grid(grid, cache=rc.ResultsCache(tmp_path / "c"),
                     policy=RunPolicy(retries=1, **FAST),
                     manifest_dir=tmp_path / "runs")
        assert len(ei.value.failures) == len(grid)
        assert ei.value.run_id is not None

    def test_allow_partial_returns_none_for_failed_cells(self, grid,
                                                         tmp_path):
        keys = grid_keys(grid)

        def one_cell_always_fails(seed):
            # Exactly one cell fails all 3 attempts (retries=2); the
            # rest succeed at some attempt within the budget.
            plan = faults.FaultPlan.parse(f"seed={seed},exc:0.5:99")
            doomed = [k for k in keys
                      if all(plan.fires("exc", k, a) for a in (1, 2, 3))]
            return len(doomed) == 1

        seed = find_seed(one_cell_always_fails)
        faults.activate(faults.FaultPlan.parse(f"seed={seed},exc:0.5:99"))
        res = run_grid(grid, cache=rc.ResultsCache(tmp_path / "c"),
                       policy=RunPolicy(retries=2, allow_partial=True,
                                        **FAST),
                       manifest_dir=tmp_path / "runs")
        assert sum(r is None for r in res) == 1
        assert sum(r is not None for r in res) == len(grid) - 1

    def test_fail_fast_aborts_immediately(self, grid, tmp_path):
        faults.activate(faults.FaultPlan.parse("seed=1,exc:1.0:99"))
        executed = []
        real = parallel._execute

        def counting(spec):
            executed.append(spec["variant"])
            return real(spec)

        parallel._execute = counting
        try:
            with pytest.raises(GridError, match="fail-fast"):
                run_grid(grid, cache=rc.ResultsCache(tmp_path / "c"),
                         policy=RunPolicy(fail_fast=True, **FAST),
                         manifest_dir=tmp_path / "runs")
        finally:
            parallel._execute = real
        assert executed == []     # first cell aborted before simulating


class TestWorkerCrash:
    def test_crash_mid_grid_recovers_bit_identical(self, grid, clean,
                                                   tmp_path):
        keys = grid_keys(grid)
        plan_of = lambda s: faults.FaultPlan.parse(f"seed={s},crash:0.5")
        seed = find_seed(
            lambda s: sum(plan_of(s).fires("crash", k) for k in keys)
            in (1, 2))
        faults.activate(plan_of(seed))
        cache = rc.ResultsCache(tmp_path / "c")
        res = run_grid(grid, jobs=2, cache=cache,
                       policy=RunPolicy(retries=2, **FAST),
                       manifest_dir=tmp_path / "runs")
        assert_identical(res, clean)
        # Every completed payload was checkpointed to the cache.
        assert len(cache) == len(grid)

    def test_completed_payloads_survive_crash(self, grid, tmp_path):
        # All cells crash on every attempt -> the grid fails, but any
        # cell that completed before/with the crashes stays cached.
        faults.activate(faults.FaultPlan.parse("seed=2,crash:0.5:99"))
        cache = rc.ResultsCache(tmp_path / "c")
        try:
            run_grid(grid, jobs=2, cache=cache,
                     policy=RunPolicy(retries=1, max_pool_rebuilds=2,
                                      **FAST),
                     manifest_dir=tmp_path / "runs", run_id="crashed")
        except GridError:
            pass
        m = RunManifest.load("crashed", tmp_path / "runs")
        done = m.settled_keys()
        assert all(cache.get(k) is not None for k in done)

    def test_degrades_to_serial_after_repeated_pool_failures(
            self, grid, clean, tmp_path, capsys):
        # Crash every first attempt of every cell: the pool breaks
        # until the engine gives up on it; the serial fallback turns
        # crashes into in-process FaultInjected and the retry succeeds.
        faults.activate(faults.FaultPlan.parse("seed=4,crash:1.0"))
        res = run_grid(grid, jobs=2,
                       cache=rc.ResultsCache(tmp_path / "c"),
                       policy=RunPolicy(retries=2, max_pool_rebuilds=1,
                                        **FAST),
                       manifest_dir=tmp_path / "runs")
        assert_identical(res, clean)
        assert "degrading to in-process serial" in capsys.readouterr().err


class TestHungWorker:
    def test_timeout_recovers_without_stalling_siblings(self, grid,
                                                        clean, tmp_path):
        keys = grid_keys(grid)
        spec = "hang:0.5:1:30"
        seed = find_seed(lambda s: sum(
            faults.FaultPlan.parse(f"seed={s},{spec}").fires("hang", k)
            for k in keys) == 1)
        faults.activate(faults.FaultPlan.parse(f"seed={seed},{spec}"))
        import time
        t0 = time.monotonic()
        res = run_grid(grid, jobs=2,
                       cache=rc.ResultsCache(tmp_path / "c"),
                       policy=RunPolicy(timeout=2.0, retries=2, **FAST),
                       manifest_dir=tmp_path / "runs", run_id="hung")
        elapsed = time.monotonic() - t0
        assert_identical(res, clean)
        # The 30s hang never ran to completion: the worker was killed.
        assert elapsed < 25.0
        errors = [c["error"] for c in
                  RunManifest.load("hung", tmp_path / "runs")
                  .cells.values()]
        assert not any(errors)    # final state: everything clean

    def test_timeout_marks_cell_failed_when_out_of_retries(
            self, grid, tmp_path):
        keys = grid_keys(grid)
        spec = "hang:0.5:99:30"
        seed = find_seed(lambda s: sum(
            faults.FaultPlan.parse(f"seed={s},{spec}").fires("hang", k)
            for k in keys) == 1)
        faults.activate(faults.FaultPlan.parse(f"seed={seed},{spec}"))
        res = run_grid(grid, jobs=2,
                       cache=rc.ResultsCache(tmp_path / "c"),
                       policy=RunPolicy(timeout=1.0, retries=0,
                                        allow_partial=True, **FAST),
                       manifest_dir=tmp_path / "runs", run_id="perma")
        assert sum(r is None for r in res) == 1
        assert sum(r is not None for r in res) == len(grid) - 1
        m = RunManifest.load("perma", tmp_path / "runs")
        failed = [c for c in m.cells.values() if c["status"] == "failed"]
        assert len(failed) == 1 and "timeout" in failed[0]["error"]


class TestCacheCorruption:
    def test_injected_corruption_quarantined_then_recomputed(
            self, grid, clean, tmp_path):
        # Corrupt the first write of every entry; the warm rerun must
        # quarantine each, recompute, and still match the reference.
        faults.activate(faults.FaultPlan.parse("seed=3,corrupt:1.0"))
        cache = rc.ResultsCache(tmp_path / "c")
        first = run_grid(grid, cache=cache,
                         manifest_dir=tmp_path / "runs")
        assert_identical(first, clean)   # results never pass via cache
        faults.deactivate()
        warm = run_grid(grid, cache=cache, manifest_dir=tmp_path / "runs")
        assert_identical(warm, clean)
        assert cache.corrupt == len(grid)
        assert cache.quarantined == len(grid)
        assert len(list(cache.quarantine_dir.glob("*.bad"))) == len(grid)
        # Third run: the recomputed entries are clean cache hits now.
        third = run_grid(grid, cache=cache,
                         manifest_dir=tmp_path / "runs")
        assert_identical(third, clean)
        assert cache.hits == len(grid)

    def test_truncation_fault_detected(self, grid, tmp_path):
        faults.activate(faults.FaultPlan.parse("seed=3,truncate:1.0"))
        cache = rc.ResultsCache(tmp_path / "c")
        run_grid(grid[:1], cache=cache, manifest_dir=tmp_path / "runs")
        faults.deactivate()
        key = grid_keys(grid)[0]
        assert cache.get(key) is None
        assert cache.corrupt == 1

    def test_legacy_unenveloped_entry_quarantined(self, tmp_path):
        cache = rc.ResultsCache(tmp_path / "c")
        key = "ab" + "0" * 62
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"cycles": 1.0}))   # pre-envelope
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.quarantined == 1


class TestInterruptAndResume:
    def test_sigint_writes_partial_manifest_and_resumes(
            self, grid, clean, tmp_path):
        real = parallel._execute
        ran = {"n": 0}

        def interrupt_after_one(spec):
            ran["n"] += 1
            if ran["n"] == 2:
                raise KeyboardInterrupt
            return real(spec)

        parallel._execute = interrupt_after_one
        cache = rc.ResultsCache(tmp_path / "c")
        try:
            with pytest.raises(GridInterrupted) as ei:
                run_grid(grid, cache=cache,
                         manifest_dir=tmp_path / "runs", run_id="intr")
        finally:
            parallel._execute = real
        assert ei.value.run_id == "intr"
        m = RunManifest.load("intr", tmp_path / "runs")
        assert m.data["status"] == "interrupted"
        assert m.counts() == {"done": 1, "pending": len(grid) - 1}

        # Resume: only the 3 unfinished cells simulate; the completed
        # one is a cache hit (zero redundant work).
        executed = []

        def counting(spec):
            executed.append(spec["variant"])
            return real(spec)

        parallel._execute = counting
        try:
            res = run_grid(grid, cache=cache,
                           manifest_dir=tmp_path / "runs", run_id="intr")
        finally:
            parallel._execute = real
        assert_identical(res, clean)
        assert len(executed) == len(grid) - 1
        assert cache.hits == 1
        m = RunManifest.load("intr", tmp_path / "runs")
        assert m.data["status"] == "complete"
        assert m.data["resumes"] == 1

    def test_grid_interrupted_not_swallowed_by_except_exception(self):
        with pytest.raises(KeyboardInterrupt):
            try:
                raise GridInterrupted("rid", "summary")
            except Exception:      # figure-layer handlers must not eat it
                pytest.fail("GridInterrupted caught as Exception")


class TestZeroOverheadWhenOff:
    def test_no_plan_means_no_injection_calls(self, grid, tmp_path,
                                              monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        faults.deactivate()

        def forbidden(*a, **k):
            raise AssertionError("fault decision taken with no plan")

        monkeypatch.setattr(faults.FaultPlan, "fires", forbidden)
        res = run_grid(grid[:1], cache=rc.ResultsCache(tmp_path / "c"),
                       manifest_dir=tmp_path / "runs")
        assert res[0].cycles > 0
