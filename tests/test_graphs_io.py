"""Tests for graph file I/O (GAP edge lists + binary container)."""

import numpy as np
import pytest

from repro.graphs.csr import from_edges
from repro.graphs.generators import grid_road_graph, kronecker_graph
from repro.graphs.io import (load_binary, load_edgelist, save_binary,
                             save_edgelist)


@pytest.fixture
def small(tmp_path):
    return kronecker_graph(7, 4, seed=41), tmp_path


class TestEdgeList:
    def test_el_roundtrip(self, small):
        g, tmp = small
        path = save_edgelist(g, tmp / "g.el")
        loaded = load_edgelist(path, num_vertices=g.num_vertices)
        assert loaded.num_edges == g.num_edges
        assert np.array_equal(loaded.out_oa, g.out_oa)
        assert np.array_equal(loaded.out_na, g.out_na)

    def test_wel_roundtrip(self, tmp_path):
        g = grid_road_graph(6, seed=42)
        path = save_edgelist(g, tmp_path / "g.wel")
        loaded = load_edgelist(path, num_vertices=g.num_vertices)
        assert loaded.out_weights is not None
        assert np.array_equal(loaded.out_oa, g.out_oa)
        assert np.array_equal(loaded.out_weights, g.out_weights)

    def test_wel_requires_weights(self, small):
        g, tmp = small
        with pytest.raises(ValueError, match="weighted"):
            save_edgelist(g, tmp / "g.wel")

    def test_comments_and_format(self, tmp_path):
        p = tmp_path / "hand.el"
        p.write_text("# a comment\n0 1\n1 2\n2 0\n")
        g = load_edgelist(p)
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_symmetrize_on_load(self, tmp_path):
        p = tmp_path / "dir.el"
        p.write_text("0 1\n")
        g = load_edgelist(p, symmetrize=True)
        assert g.num_edges == 2

    def test_wrong_columns_rejected(self, tmp_path):
        p = tmp_path / "bad.wel"
        p.write_text("0 1\n")
        with pytest.raises(ValueError, match="columns"):
            load_edgelist(p)

    def test_name_from_stem(self, tmp_path):
        p = tmp_path / "mygraph.el"
        p.write_text("0 1\n")
        assert load_edgelist(p).name == "mygraph"


class TestBinary:
    def test_roundtrip(self, small):
        g, tmp = small
        path = save_binary(g, tmp / "g.npz")
        loaded = load_binary(path)
        assert np.array_equal(loaded.out_oa, g.out_oa)
        assert np.array_equal(loaded.in_na, g.in_na)
        assert loaded.symmetric == g.symmetric
        assert loaded.name == g.name

    def test_weights_roundtrip(self, tmp_path):
        g = grid_road_graph(5, seed=43)
        loaded = load_binary(save_binary(g, tmp_path / "w.npz"))
        assert np.array_equal(loaded.out_weights, g.out_weights)

    def test_unweighted_loads_none(self, small):
        g, tmp = small
        loaded = load_binary(save_binary(g, tmp / "g.npz"))
        assert loaded.out_weights is None

    def test_kernels_run_on_loaded_graph(self, small):
        from repro.kernels import pagerank
        g, tmp = small
        loaded = load_binary(save_binary(g, tmp / "g.npz"))
        assert np.allclose(pagerank(loaded, max_iterations=5),
                           pagerank(g, max_iterations=5))
