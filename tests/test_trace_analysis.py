"""Tests for the reuse-distance / footprint trace analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.analysis import (INFINITE, footprint, miss_ratio_curve,
                                  region_reuse_profile, reuse_cdf,
                                  reuse_distances)


class TestReuseDistances:
    def test_first_touches_infinite(self):
        d = reuse_distances(np.array([1, 2, 3]))
        assert (d == INFINITE).all()

    def test_immediate_reuse_zero(self):
        d = reuse_distances(np.array([5, 5]))
        assert d[1] == 0

    def test_textbook_example(self):
        # a b c a : distance of the second 'a' is 2 (b and c between).
        d = reuse_distances(np.array([1, 2, 3, 1]))
        assert d[3] == 2

    def test_duplicates_between_count_once(self):
        # a b b a : only one distinct block between the two a's.
        d = reuse_distances(np.array([1, 2, 2, 1]))
        assert d[3] == 1

    def test_cyclic_pattern(self):
        blocks = np.tile(np.arange(4), 5)
        d = reuse_distances(blocks)
        assert (d[4:] == 3).all()

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=120))
    @settings(max_examples=50, deadline=None)
    def test_matches_naive_reference(self, blocks):
        blocks = np.array(blocks)
        d = reuse_distances(blocks)
        last = {}
        for i, b in enumerate(blocks.tolist()):
            if b in last:
                expected = len(set(blocks[last[b] + 1:i].tolist()))
                assert d[i] == expected
            else:
                assert d[i] == INFINITE
            last[b] = i


class TestMissRatioCurve:
    def test_lru_equivalence(self):
        """Mattson: FA-LRU misses at capacity C == distances >= C."""
        rng = np.random.default_rng(3)
        blocks = rng.integers(0, 30, size=400)
        for cap in (4, 8, 16):
            mrc = miss_ratio_curve(blocks, [cap])[0]
            # Simulate FA-LRU directly.
            from collections import OrderedDict
            lru: OrderedDict = OrderedDict()
            misses = 0
            for b in blocks.tolist():
                if b in lru:
                    lru.move_to_end(b)
                else:
                    misses += 1
                    if len(lru) >= cap:
                        lru.popitem(last=False)
                    lru[b] = True
            assert mrc == pytest.approx(misses / len(blocks))

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(4)
        blocks = rng.integers(0, 64, size=500)
        mrc = miss_ratio_curve(blocks, [1, 4, 16, 64, 256])
        assert all(a >= b for a, b in zip(mrc, mrc[1:]))

    def test_empty(self):
        assert miss_ratio_curve(np.array([], dtype=np.int64), [8]) == [0.0]


class TestHelpers:
    def test_footprint(self):
        assert footprint(np.array([1, 1, 2, 9])) == 3

    def test_reuse_cdf_bounds(self):
        d = reuse_distances(np.tile(np.arange(8), 3))
        cdf = reuse_cdf(d, [0, 7, 100])
        assert cdf[0] <= cdf[1] <= cdf[2] == 1.0

    def test_reuse_cdf_no_reuse(self):
        d = reuse_distances(np.arange(10))
        assert reuse_cdf(d, [1000]) == [0.0]

    def test_region_profile(self, pr_trace):
        profile = region_reuse_profile(pr_trace)
        assert "outgoing_contrib" in profile
        contrib = profile["outgoing_contrib"]
        na = profile["in_na"]
        assert contrib["accesses"] > 0
        # The irregular gather has far larger reuse distances than the
        # streaming NA reads.
        assert contrib["median_reuse"] > na["median_reuse"]
