"""Tests for the graph reordering (pre-processing) algorithms."""

import numpy as np
import pytest

from repro.graphs.csr import from_edges
from repro.graphs.generators import kronecker_graph, grid_road_graph
from repro.graphs.reorder import (ORDERINGS, apply_order, bfs_order,
                                  degree_sort_order, estimated_cost,
                                  random_order, rcm_order)
from repro.kernels import connected_components, pagerank, triangle_count


@pytest.fixture(scope="module")
def kron():
    return kronecker_graph(9, 6, seed=31)


class TestApplyOrder:
    def test_identity_preserves_graph(self, kron):
        order = np.arange(kron.num_vertices)
        g = apply_order(kron, order)
        assert np.array_equal(g.out_oa, kron.out_oa)
        assert np.array_equal(g.out_na, kron.out_na)

    def test_relabeling_preserves_structure(self, kron):
        """Graph invariants survive any permutation."""
        g = apply_order(kron, random_order(kron, seed=5))
        g.validate()
        assert g.num_vertices == kron.num_vertices
        assert g.num_edges == kron.num_edges
        assert triangle_count(g) == triangle_count(kron)
        assert len(np.unique(connected_components(g))) == \
            len(np.unique(connected_components(kron)))

    def test_degree_multiset_preserved(self, kron):
        g = apply_order(kron, degree_sort_order(kron))
        assert sorted(g.out_degrees().tolist()) == \
            sorted(kron.out_degrees().tolist())

    def test_pagerank_scores_permute(self, kron):
        order = random_order(kron, seed=7)
        g = apply_order(kron, order)
        pr0 = pagerank(kron, max_iterations=20, epsilon=1e-10)
        pr1 = pagerank(g, max_iterations=20, epsilon=1e-10)
        # Old vertex order[i] became new vertex i.
        assert np.allclose(pr1, pr0[order], atol=1e-9)

    def test_weights_preserved(self):
        g0 = grid_road_graph(8, seed=3)
        g = apply_order(g0, random_order(g0, seed=1))
        assert g.out_weights is not None
        assert sorted(g.out_weights.tolist()) == \
            sorted(g0.out_weights.tolist())

    def test_invalid_order_rejected(self, kron):
        with pytest.raises(ValueError):
            apply_order(kron, np.zeros(kron.num_vertices, dtype=np.int64))
        with pytest.raises(ValueError):
            apply_order(kron, np.arange(3))


class TestOrderings:
    @pytest.mark.parametrize("name", sorted(ORDERINGS))
    def test_all_orderings_are_permutations(self, name, kron):
        order = ORDERINGS[name](kron)
        assert len(order) == kron.num_vertices
        assert len(np.unique(order)) == kron.num_vertices

    def test_degree_sort_descending(self, kron):
        order = degree_sort_order(kron)
        deg = kron.out_degrees() + kron.in_degrees()
        sorted_deg = deg[order]
        assert (np.diff(sorted_deg) <= 0).all()

    def test_bfs_order_starts_at_hub(self, kron):
        order = bfs_order(kron)
        assert order[0] == np.argmax(kron.out_degrees())

    def test_rcm_reduces_bandwidth_on_mesh(self):
        """RCM's defining property: on a banded-structure graph the
        maximum |i - j| over edges (bandwidth) shrinks vs random."""
        g = grid_road_graph(12, diagonal_fraction=0.0, seed=3)

        def bandwidth(graph):
            src = np.repeat(np.arange(graph.num_vertices),
                            np.diff(graph.out_oa))
            return int(np.abs(src - graph.out_na).max())

        shuffled = apply_order(g, random_order(g, seed=9))
        rcm = apply_order(shuffled, rcm_order(shuffled))
        assert bandwidth(rcm) < bandwidth(shuffled) // 2

    def test_rcm_covers_disconnected_components(self):
        g = from_edges(np.array([[0, 1], [2, 3]]), num_vertices=6,
                       symmetrize=True)
        order = rcm_order(g)
        assert len(np.unique(order)) == 6


class TestCostModel:
    def test_original_free(self, kron):
        assert estimated_cost("original", kron) == 0

    def test_costs_ordered_by_sophistication(self, kron):
        costs = {name: estimated_cost(name, kron)
                 for name in ("random", "degree", "bfs", "rcm")}
        assert costs["rcm"] >= costs["bfs"]
        assert all(c > 0 for c in costs.values())

    def test_cost_exceeds_single_traversal(self, kron):
        """The paper's §VI claim: preprocessing >> one traversal."""
        traversal_touches = kron.num_vertices + kron.num_edges
        assert estimated_cost("rcm", kron) > 3 * traversal_touches

    def test_unknown_ordering_raises(self, kron):
        with pytest.raises(ValueError):
            estimated_cost("hilbert", kron)
