"""Tests for the Large Predictor — the exact semantics of §III-B."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import LPConfig
from repro.core.lp import LargePredictor


def lp(entries=32, ways=8, tau=8):
    return LargePredictor(LPConfig(entries=entries, ways=ways,
                                   tau_glob=tau))


class TestPrediction:
    def test_first_access_is_regular(self):
        p = lp()
        assert p.predict_and_update(0x400, 100) is False
        assert p.stats.table_misses == 1

    def test_small_strides_stay_regular(self):
        p = lp(tau=8)
        for i in range(50):
            irregular = p.predict_and_update(0x400, 1000 + i)
            assert irregular is False

    def test_large_strides_become_irregular(self):
        p = lp(tau=8)
        p.predict_and_update(0x400, 0)
        addr = 0
        flips = []
        for _ in range(10):
            addr += 1000
            flips.append(p.predict_and_update(0x400, addr))
        assert flips[-1] is True

    def test_prediction_uses_pre_update_state(self):
        """Fig. 4: the comparison happens before the stride update."""
        p = lp(tau=8)
        p.predict_and_update(0x400, 0)
        # Second access strides 10^6: prediction still sees s_acc = 0.
        assert p.predict_and_update(0x400, 10**6) is False
        # Third access: s_acc now reflects the big stride.
        assert p.predict_and_update(0x400, 2 * 10**6) is True

    def test_threshold_boundary(self):
        """Irregular iff s_acc >= tau (not strict >)."""
        p = lp(tau=8)
        p.predict_and_update(0x400, 0)
        p.predict_and_update(0x400, 16)    # s_acc = (0 + 16) >> 1 = 8
        assert p.peek(0x400)[1] == 8
        assert p.predict_and_update(0x400, 16) is True   # 8 >= 8

    def test_tau_zero_routes_everything_after_first(self):
        p = lp(tau=0)
        p.predict_and_update(0x400, 5)
        assert p.predict_and_update(0x400, 5) is True

    def test_huge_tau_routes_nothing(self):
        # Above the 14-bit s_acc saturation value nothing can qualify.
        p = lp(tau=1 << 14)
        addr = 0
        for _ in range(30):
            addr += 10**5
            assert p.predict_and_update(0x400, addr) is False


class TestUpdate:
    def test_ema_accumulate_then_shift(self):
        """Fig. 5 step 4: s_acc' = (s_acc + |stride|) >> 1."""
        p = lp()
        p.predict_and_update(0x400, 100)
        p.predict_and_update(0x400, 110)      # stride 10
        assert p.peek(0x400) == (110, 5)      # (0 + 10) >> 1
        p.predict_and_update(0x400, 104)      # stride 6
        assert p.peek(0x400) == (104, 5)      # (5 + 6) >> 1

    def test_stride_is_absolute(self):
        p = lp()
        p.predict_and_update(0x400, 1000)
        p.predict_and_update(0x400, 0)        # stride -1000 -> |.| = 1000
        assert p.peek(0x400)[1] == 500

    def test_saturation_at_field_width(self):
        p = lp()
        p.predict_and_update(0x400, 0)
        p.predict_and_update(0x400, 1 << 40)
        assert p.peek(0x400)[1] == (1 << 14) - 1

    def test_addr_field_updated(self):
        p = lp()
        p.predict_and_update(0x400, 42)
        p.predict_and_update(0x400, 77)
        assert p.peek(0x400)[0] == 77


class TestReplacement:
    def test_lru_victim_in_set(self):
        p = lp(entries=4, ways=2)     # 2 sets, indexed by (pc >> 2) & 1
        # PCs 0, 8 and 16 all map to set 0.
        p.predict_and_update(0, 1)
        p.predict_and_update(8, 1)
        p.predict_and_update(0, 2)    # refresh PC 0
        p.predict_and_update(16, 1)   # evicts PC 8
        assert p.peek(0) is not None
        assert p.peek(8) is None
        assert p.peek(16) is not None

    def test_new_entry_initialized(self):
        """§III-B3: victim re-initialized with addr = v@, s_acc = 0."""
        p = lp(entries=4, ways=2)
        p.predict_and_update(6, 999)
        assert p.peek(6) == (999, 0)

    def test_distinct_tags_share_set(self):
        p = lp(entries=32, ways=8)    # 4 sets, indexed by (pc >> 2) & 3
        p.predict_and_update(0, 1)
        p.predict_and_update(16, 2)   # same set 0, different tag
        assert p.peek(0) == (1, 0)
        assert p.peek(16) == (2, 0)

    def test_capacity_respected(self):
        p = lp(entries=8, ways=8)     # fully associative
        for pc in range(0, 80, 4):    # 20 distinct (4-aligned) PCs
            p.predict_and_update(pc, pc)
        assert sum(len(s) for s in p.sets) == 8


class TestGeometry:
    def test_fully_associative(self):
        p = lp(entries=16, ways=16)
        assert p.num_sets == 1
        p.predict_and_update(12345, 1)
        assert p.peek(12345) is not None

    def test_direct_mapped(self):
        p = lp(entries=8, ways=1)
        assert p.num_sets == 8

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ValueError):
            lp(entries=24, ways=8)   # 3 sets


class TestStats:
    def test_counters(self):
        p = lp()
        p.predict_and_update(0x400, 0)
        p.predict_and_update(0x400, 10**6)
        p.predict_and_update(0x400, 2 * 10**6)
        s = p.stats
        assert s.lookups == 3
        assert s.table_hits == 2
        assert s.table_misses == 1
        assert s.predicted_irregular + s.predicted_regular == 3


class TestProperties:
    @given(st.lists(st.tuples(st.integers(0, 200),
                              st.integers(0, 1 << 30)),
                    min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_never_crashes_and_capacity_bounded(self, stream):
        p = lp()
        for pc, addr in stream:
            p.predict_and_update(pc, addr)
        assert sum(len(s) for s in p.sets) <= 32
        for s in p.sets:
            assert len(s) <= 8
            for entry in s.values():
                assert 0 <= entry[1] <= (1 << 14) - 1
