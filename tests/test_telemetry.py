"""Tests for repro.telemetry: metrics core, windowed probes, event
logs (with worker-shard merging), schema validation, trace export and
the run_grid integration."""

from __future__ import annotations

import json

import pytest

from repro import telemetry as tele
from repro.config import scaled_config
from repro.experiments import results_cache as rc
from repro.experiments.parallel import Job, ProgressPrinter, Progress, run_grid
from repro.experiments.runner import run_variant
from repro.experiments.workloads import workload_trace
from repro.telemetry import events as tele_events
from repro.telemetry import schema as tele_schema
from repro.telemetry import trace_export
from repro.telemetry.metrics import (NULL, Counter, Gauge, Histogram,
                                     MetricRegistry, Stopwatch,
                                     TimeSeries, format_eta)
from repro.telemetry.probes import (TIMELINE_METRICS, Timeline,
                                    WindowProbe, _Snapshot)
from repro.telemetry.render import bar_chart, render_timeline, sparkline

MICRO = dict(tier="tiny", length=6_000)


# -- metrics core ----------------------------------------------------------

class TestInstruments:
    def test_counter_and_gauge(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        g = Gauge("depth")
        g.set(3.5)
        assert g.value == 3.5

    def test_histogram_buckets_mean_quantile(self):
        h = Histogram((1, 10, 100), "lat")
        for v in (0.5, 2, 2, 50, 500):
            h.observe(v)
        assert h.total == 5
        assert h.counts == [1, 2, 1, 1]      # <=1, <=10, <=100, overflow
        assert h.mean == pytest.approx(554.5 / 5)
        assert h.quantile(0.5) == 10
        assert h.quantile(1.0) == 100        # overflow clamps to last bound

    def test_histogram_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())

    def test_timeseries_ring_drops_oldest(self):
        ts = TimeSeries(capacity=3)
        for v in range(5):
            ts.append(float(v))
        assert ts.values() == [2.0, 3.0, 4.0]
        assert ts.dropped == 2
        assert len(ts) == 3

    def test_null_twin_is_inert_and_falsy(self):
        NULL.inc()
        NULL.set(1.0)
        NULL.observe(2.0)
        NULL.append(3.0)
        assert NULL.value == 0
        assert NULL.values() == []
        assert not NULL

    def test_registry_disabled_hands_out_null(self):
        reg = MetricRegistry(enabled=False)
        assert reg.counter("x") is NULL
        assert reg.histogram("y", (1, 2)) is NULL
        assert reg.snapshot() == {}

    def test_registry_memoizes_by_name(self):
        reg = MetricRegistry()
        assert reg.counter("x") is reg.counter("x")
        reg.counter("x").inc(3)
        reg.series("s").append(1.0)
        snap = reg.snapshot()
        assert snap["x"] == 3
        assert snap["s"] == [1.0]

    def test_stopwatch_with_fake_clock(self):
        t = [10.0]
        w = Stopwatch(now=lambda: t[0])
        t[0] = 12.5
        assert w.elapsed() == pytest.approx(2.5)
        w.restart()
        assert w.elapsed() == 0.0

    def test_format_eta(self):
        assert format_eta(0) == "0:00"
        assert format_eta(65) == "1:05"
        assert format_eta(3726) == "1:02:06"
        assert format_eta(float("inf")) == "--:--"
        assert format_eta(float("nan")) == "--:--"


# -- windowed probes -------------------------------------------------------

def _snap(n: int) -> _Snapshot:
    """Synthetic cumulative counters after n windows of fixed deltas."""
    return _Snapshot(accesses=100 * n, instructions=1000 * n,
                     l1d_misses=10 * n, l2c_misses=5 * n,
                     llc_misses=2 * n, sdc_accesses=20 * n,
                     sdc_hits=15 * n, lp_lookups=50 * n,
                     lp_irregular=20 * n, dram_reads=2 * n,
                     dram_writes=n)


class TestWindowProbe:
    def test_windowed_deltas(self):
        n = [0]
        probe = WindowProbe(100, lambda: _snap(n[0]))
        for i in range(1, 4):
            n[0] = i
            probe.sample()
        t = probe.timeline()
        assert t.num_windows == 3
        assert t.metric("l1d_mpki") == [10.0] * 3
        assert t.metric("l2c_mpki") == [5.0] * 3
        assert t.metric("sdc_hit_rate") == [0.75] * 3
        assert t.metric("lp_irregular_frac") == [0.4] * 3
        assert t.metric("bypass_frac") == [0.2] * 3
        assert t.metric("dram_writes") == [1.0] * 3
        assert t.instructions == [1000] * 3

    def test_rebase_after_stats_reset(self):
        # After a warm-up reset the cumulative counters restart at 0;
        # rebase() prevents a huge negative delta window.
        n = [5]
        probe = WindowProbe(100, lambda: _snap(n[0]))
        probe.sample()
        n[0] = 1            # counters were reset, one window elapsed
        probe.rebase()
        probe.sample()
        assert probe.timeline().metric("l1d_mpki") == [10.0, 10.0]

    def test_zero_instruction_window_is_zero_not_nan(self):
        probe = WindowProbe(100, lambda: _Snapshot())
        probe.sample()
        t = probe.timeline()
        assert t.metric("l1d_mpki") == [0.0]
        assert t.metric("bypass_frac") == [0.0]

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowProbe(0, lambda: _Snapshot())

    def test_ring_capacity_reports_dropped(self):
        n = [0]
        probe = WindowProbe(10, lambda: _snap(n[0]), capacity=4)
        for i in range(1, 11):
            n[0] = i
            probe.sample()
        t = probe.timeline()
        assert t.num_windows == 4
        assert t.dropped == 6


class TestTimelinePayload:
    def test_round_trip(self):
        n = [0]
        probe = WindowProbe(64, lambda: _snap(n[0]))
        for i in range(1, 4):
            n[0] = i
            probe.sample()
        t = probe.timeline()
        back = Timeline.from_payload(
            json.loads(json.dumps(t.to_payload())))
        assert back.interval == t.interval
        assert back.series == t.series
        assert back.instructions == t.instructions
        assert back.dropped == t.dropped

    def test_unknown_version_rejected(self):
        payload = Timeline(interval=10).to_payload()
        payload["version"] = 99
        with pytest.raises(ValueError):
            Timeline.from_payload(payload)


class TestSystemIntegration:
    def test_single_core_timeline(self):
        trace = workload_trace("pr.urand", **MICRO)
        stats = run_variant(trace, "sdc_lp", scaled_config(64),
                            telemetry_every=500)
        t = stats.timeline
        assert t is not None and t.interval == 500
        assert t.num_windows >= 8
        assert set(t.series) == set(TIMELINE_METRICS)
        # Windowed MPKI must show phase structure, not a flat line.
        assert len(set(t.metric("l1d_mpki"))) > 1
        # Windowed deltas must sum back to the aggregate counters for
        # the covered windows (no drops at this size).
        assert t.dropped == 0
        covered = sum(t.instructions)
        assert covered <= stats.instructions
        # Payload round-trip through SystemStats is exact.
        back = type(stats).from_payload(stats.to_payload())
        assert back.timeline.series == t.series

    def test_telemetry_off_is_none(self):
        trace = workload_trace("pr.urand", **MICRO)
        stats = run_variant(trace, "sdc_lp", scaled_config(64))
        assert stats.timeline is None

    def test_multicore_per_core_timelines(self):
        from repro.core.multicore import MultiCoreSystem
        cfg = scaled_config(64, num_cores=2)
        traces = [workload_trace("pr.urand", **MICRO),
                  workload_trace("cc.urand", **MICRO)]
        result = MultiCoreSystem(cfg, variant="sdc_lp",
                                 telemetry_every=500).run(traces)
        for stats in result.per_core:
            assert stats.timeline is not None
            assert stats.timeline.num_windows >= 1


class TestRender:
    def test_sparkline_and_bar_chart(self):
        values = [0.0, 1.0, 2.0, 3.0]
        line = sparkline(values, width=4)
        assert len(line) == 4
        assert line[0] == " " and line[-1] == "@"
        chart = bar_chart(values, rows=3, width=4)
        assert "3.0 |" in chart and "0.0 |" in chart

    def test_render_timeline_report(self):
        n = [0]
        probe = WindowProbe(128, lambda: _snap(n[0]))
        for i in range(1, 21):
            n[0] = i
            probe.sample()
        out = render_timeline(probe.timeline(), title="demo")
        assert "demo" in out
        assert "20 windows x 128 accesses" in out
        assert "l1d_mpki" in out and "dram_writes" in out

    def test_render_empty_timeline(self):
        out = render_timeline(Timeline(interval=4096))
        assert "no complete windows" in out


# -- event logs ------------------------------------------------------------

class TestEventLog:
    def test_emit_and_read(self, tmp_path):
        log = tele_events.EventLog(tmp_path, "run1")
        log.emit("grid_started", total_cells=3)
        log.emit("cell_queued", key="k", label="w/v")
        log.close()
        records = tele_events.read_events(
            tele_events.events_path(tmp_path, "run1"))
        assert [r["event"] for r in records] == ["grid_started",
                                                 "cell_queued"]
        assert all(r["run_id"] == "run1" for r in records)
        assert tele_schema.validate_events(records) == []

    def test_shard_merge_sorts_and_removes_shards(self, tmp_path):
        log = tele_events.EventLog(tmp_path, "run1")
        log.emit("grid_started", total_cells=1)
        shard = tele_events.EventLog(
            tmp_path, "run1",
            path=tele_events.shard_path(tmp_path, "run1", 999))
        shard.emit("cell_exec_started", key="k", attempt=1)
        shard.emit("cell_exec_finished", key="k", attempt=1,
                   seconds=0.1, ok=True)
        shard.close()
        merged = log.merge_worker_shards()
        log.close()
        assert merged == 2
        assert not list(tmp_path.glob("*.w*.jsonl"))
        records = tele_events.read_events(
            tele_events.events_path(tmp_path, "run1"))
        assert len(records) == 3
        assert [r["ts"] for r in records] == sorted(
            r["ts"] for r in records)

    def test_merge_drops_torn_shard_lines(self, tmp_path):
        log = tele_events.EventLog(tmp_path, "run1")
        log.emit("grid_started", total_cells=1)
        shard_file = tele_events.shard_path(tmp_path, "run1", 7)
        shard_file.write_text(
            '{"ts": 1.0, "run_id": "run1", "pid": 7, '
            '"event": "cell_exec_started", "key": "k", "attempt": 1}\n'
            '{"ts": 2.0, "run_id": "run1", "pi', encoding="utf-8")
        assert log.merge_worker_shards() == 1
        log.close()

    def test_latest_run_id_ignores_shards(self, tmp_path):
        assert tele_events.latest_run_id(tmp_path) is None
        tele_events.EventLog(tmp_path, "a").emit("grid_started",
                                                 total_cells=1)
        tele_events.shard_path(tmp_path, "zz", 1).write_text(
            "{}\n", encoding="utf-8")
        assert tele_events.latest_run_id(tmp_path) == "a"

    def test_worker_emit_noop_when_unarmed(self):
        tele_events.worker_init(None)
        tele_events.worker_emit("cell_exec_started", key="k", attempt=1)

    def test_worker_emit_when_armed(self, tmp_path):
        import os
        tele_events.worker_init((str(tmp_path), "run9"))
        try:
            tele_events.worker_emit("cell_exec_started", key="k",
                                    attempt=1)
        finally:
            tele_events.worker_init(None)
        shard = tele_events.shard_path(tmp_path, "run9", os.getpid())
        assert shard.is_file()
        assert tele_events.read_events(shard)[0]["event"] == \
            "cell_exec_started"


class TestSchema:
    def test_rejects_unknown_event_and_missing_fields(self):
        bad = [{"ts": 1.0, "run_id": "r", "pid": 1, "event": "nope"},
               {"ts": 1.0, "run_id": "r", "pid": 1,
                "event": "cell_done", "key": "k"}]
        errors = tele_schema.validate_events(bad)
        assert any("unknown event" in e for e in errors)
        assert any("missing" in e for e in errors)

    def test_rejects_mixed_run_ids(self):
        recs = [{"ts": 1.0, "run_id": r, "pid": 1,
                 "event": "grid_started", "total_cells": 1}
                for r in ("a", "b")]
        assert any("mixes" in e
                   for e in tele_schema.validate_events(recs))

    def test_empty_log_is_an_error(self, tmp_path):
        p = tmp_path / "events-x.jsonl"
        p.write_text("", encoding="utf-8")
        assert tele_schema.validate_events_file(p)

    def test_trace_validation(self):
        good = {"traceEvents": [
            {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
             "args": {"name": "worker"}},
            {"ph": "X", "name": "cell", "cat": "run", "ts": 0,
             "dur": 5, "pid": 1, "tid": 1},
            {"ph": "i", "s": "p", "name": "mark", "ts": 1, "pid": 1,
             "tid": 0}]}
        assert tele_schema.validate_trace(good) == []
        assert tele_schema.validate_trace({"traceEvents": [
            {"ph": "X", "name": "n", "pid": 1, "tid": 1, "ts": 0}]})
        assert tele_schema.validate_trace({})

    def test_cli_validator(self, tmp_path, capsys):
        log = tele_events.EventLog(tmp_path, "r")
        log.emit("grid_started", total_cells=1)
        log.close()
        path = str(tele_events.events_path(tmp_path, "r"))
        assert tele_schema.main([path]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ts": 1}\n', encoding="utf-8")
        assert tele_schema.main([str(bad)]) == 1


# -- trace export ----------------------------------------------------------

def _rec(ts, pid, event, **fields):
    return dict({"ts": ts, "run_id": "r", "pid": pid, "event": event},
                **fields)


class TestTraceExport:
    def test_spans_from_exec_pairs(self):
        records = [
            _rec(0.0, 1, "grid_started", total_cells=2),
            _rec(0.0, 1, "cell_started", key="a", label="w/v", attempt=1),
            _rec(0.1, 2, "cell_exec_started", key="a", attempt=1),
            _rec(0.5, 2, "cell_exec_finished", key="a", attempt=1,
                 seconds=0.4, ok=True),
            _rec(0.6, 2, "cell_exec_started", key="b", attempt=2),
            _rec(0.9, 2, "cell_exec_finished", key="b", attempt=2,
                 seconds=0.3, ok=True),
            _rec(1.0, 1, "cell_cached", key="c", label="w2/v"),
            _rec(1.1, 1, "grid_finished", status="complete"),
        ]
        trace = trace_export.trace_from_events(records)
        assert tele_schema.validate_trace(trace) == []
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        cats = sorted(s["cat"] for s in spans)
        assert cats == ["cache", "retry", "run"]
        run = next(s for s in spans if s["cat"] == "run")
        assert run["name"] == "w/v"          # label joined from supervisor
        assert run["dur"] == pytest.approx(400_000, abs=2)

    def test_truncated_span_for_killed_worker(self):
        records = [
            _rec(0.0, 1, "grid_started", total_cells=1),
            _rec(0.1, 2, "cell_exec_started", key="a", attempt=1),
            _rec(0.8, 1, "grid_finished", status="failed"),
        ]
        trace = trace_export.trace_from_events(records)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        assert spans[0]["cat"] == "failed"
        assert spans[0]["args"]["truncated"] is True

    def test_fallback_to_supervisor_pairs(self):
        records = [
            _rec(0.0, 1, "grid_started", total_cells=1),
            _rec(0.1, 1, "cell_started", key="a", label="w/v", attempt=1),
            _rec(0.4, 1, "cell_done", key="a", label="w/v", source="run",
                 seconds=0.3),
            _rec(0.5, 1, "grid_finished", status="complete"),
        ]
        trace = trace_export.trace_from_events(records)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1 and spans[0]["cat"] == "run"

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            trace_export.trace_from_events([])

    def test_trace_from_manifest(self, tmp_path):
        from repro.experiments.manifest import RunManifest
        m = RunManifest.open("rid", tmp_path)
        m.register("k1", "w/v")
        m.mark("k1", "done", attempts=1, seconds=1.5, source="run")
        m.register("k2", "w2/v", status="done", source="cache")
        m.finalize("complete")
        trace = trace_export.trace_from_manifest(m)
        assert tele_schema.validate_trace(trace) == []
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert sorted(s["cat"] for s in spans) == ["cache", "run"]
        assert trace["otherData"]["source"] == "manifest"

    def test_export_trace_prefers_event_log(self, tmp_path):
        from repro.experiments.manifest import RunManifest
        m = RunManifest.open("rid", tmp_path / "runs")
        m.register("k", "w/v")
        m.mark("k", "done", attempts=1, seconds=0.1, source="run")
        m.finalize("complete")
        # No event log -> manifest replay.
        t = trace_export.export_trace("rid", telemetry_dir=tmp_path,
                                      manifest_dir=tmp_path / "runs")
        assert t["otherData"]["source"] == "manifest"
        log = tele_events.EventLog(tmp_path, "rid")
        log.emit("grid_started", total_cells=1)
        log.emit("grid_finished", status="complete")
        log.close()
        t = trace_export.export_trace("rid", telemetry_dir=tmp_path,
                                      manifest_dir=tmp_path / "runs")
        assert t["otherData"]["source"] == "event-log"

    def test_write_trace_atomic(self, tmp_path):
        out = trace_export.write_trace({"traceEvents": []},
                                       tmp_path / "t.json")
        assert json.loads(out.read_text()) == {"traceEvents": []}
        assert not list(tmp_path.glob("*.tmp.*"))


# -- engine integration ----------------------------------------------------

class TestRunGridTelemetry:
    @pytest.fixture
    def cache(self, tmp_path):
        return rc.ResultsCache(tmp_path / "results")

    def micro_grid(self):
        cfg = scaled_config(64)
        return [Job("pr.urand", "baseline", cfg, **MICRO),
                Job("pr.urand", "sdc_lp", cfg, **MICRO),
                Job("pr.urand", "baseline", cfg, **MICRO)]   # dedup

    def test_events_and_timelines(self, tmp_path, cache):
        tdir = tmp_path / "tele"
        tcfg = tele.TelemetryConfig(directory=tdir, window=500)
        results = run_grid(self.micro_grid(), cache=cache,
                           telemetry=tcfg)
        assert all(r.timeline is not None for r in results)
        run_id = tele_events.latest_run_id(tdir)
        path = tele_events.events_path(tdir, run_id)
        assert tele_schema.validate_events_file(path) == []
        names = [r["event"] for r in tele_events.read_events(path)]
        for expected in ("grid_started", "cell_queued", "cell_started",
                         "cell_exec_started", "cell_exec_finished",
                         "cell_done", "cell_dedup", "grid_finished"):
            assert expected in names, expected
        # Serial-path shards are merged into the main log.
        assert not list(tdir.glob("*.w*.jsonl"))
        # Cached rerun: cell_cached events, timelines still attached.
        results2 = run_grid(self.micro_grid(), cache=cache,
                            telemetry=tcfg)
        assert cache.hits >= 2
        assert results2[1].timeline is not None
        run_id2 = tele_events.latest_run_id(tdir)
        assert run_id2 != run_id
        names2 = [r["event"] for r in tele_events.read_events(
            tele_events.events_path(tdir, run_id2))]
        assert "cell_cached" in names2
        assert "cell_exec_started" not in names2

    def test_parallel_workers_emit_shards(self, tmp_path, cache):
        tdir = tmp_path / "tele"
        tcfg = tele.TelemetryConfig(directory=tdir, window=500)
        results = run_grid(self.micro_grid(), jobs=2, cache=cache,
                           telemetry=tcfg)
        assert all(r.timeline is not None for r in results)
        run_id = tele_events.latest_run_id(tdir)
        records = tele_events.read_events(
            tele_events.events_path(tdir, run_id))
        assert tele_schema.validate_events(records) == []
        execs = [r for r in records if r["event"] == "cell_exec_finished"]
        assert len(execs) == 2 and all(r["ok"] for r in execs)
        # Worker events came from other pids than the supervisor's.
        sup = next(r["pid"] for r in records
                   if r["event"] == "grid_started")
        assert any(r["pid"] != sup for r in execs)
        trace = trace_export.trace_from_events(records)
        assert tele_schema.validate_trace(trace) == []

    def test_telemetry_key_separate_from_plain(self, cache):
        grid = self.micro_grid()[:1]
        plain = run_grid(grid, cache=cache)
        assert plain[0].timeline is None
        stores_before = cache.stores
        with_tl = run_grid(grid, cache=cache,
                           telemetry=tele.TelemetryConfig(
                               directory=None, window=500))
        assert with_tl[0].timeline is not None
        assert cache.stores == stores_before + 1   # distinct key
        # And the plain entry still round-trips timeline-free.
        again = run_grid(grid, cache=cache)
        assert again[0].timeline is None

    def test_ambient_config_fallback(self, tmp_path, cache):
        tdir = tmp_path / "tele"
        tele.activate(tele.TelemetryConfig(directory=tdir, window=500))
        try:
            results = run_grid(self.micro_grid()[:1], cache=cache)
        finally:
            tele.deactivate()
        assert results[0].timeline is not None
        assert tele_events.latest_run_id(tdir) is not None

    def test_no_telemetry_writes_nothing(self, tmp_path, cache):
        results = run_grid(self.micro_grid()[:1], cache=cache)
        assert results[0].timeline is None
        assert tele.active() is None

    def test_fault_retry_spans_in_trace(self, tmp_path, cache):
        from repro import faults
        from repro.experiments.parallel import RunPolicy
        tdir = tmp_path / "tele"
        tcfg = tele.TelemetryConfig(directory=tdir, window=500)
        faults.activate(faults.FaultPlan.parse("seed=3,exc:1.0"))
        try:
            results = run_grid(self.micro_grid(), cache=cache,
                               telemetry=tcfg,
                               policy=RunPolicy(retries=2,
                                                backoff=0.001))
        finally:
            faults.activate(None)
        assert all(r is not None for r in results)
        records = tele_events.read_events(tele_events.events_path(
            tdir, tele_events.latest_run_id(tdir)))
        assert any(r["event"] == "cell_retried" for r in records)
        fails = [r for r in records
                 if r["event"] == "cell_exec_finished"
                 and not r["ok"]]
        assert fails and all("error" in r for r in fails)
        trace = trace_export.trace_from_events(records)
        cats = {e["cat"] for e in trace["traceEvents"]
                if e["ph"] == "X"}
        # Every first attempt faults (rate 1.0), every retry succeeds:
        # each cell contributes one failed span and one retry span.
        assert "retry" in cats and "failed" in cats

    def test_quarantine_event_on_corrupt_entry(self, tmp_path, cache):
        tdir = tmp_path / "tele"
        tcfg = tele.TelemetryConfig(directory=tdir, window=500)
        grid = self.micro_grid()[:1]
        run_grid(grid, cache=cache, telemetry=tcfg)
        # Scribble over the stored entry, then re-run.
        entry = next(p for p in cache.root.glob("*/*.json"))
        entry.write_text("{corrupt", encoding="utf-8")
        run_grid(grid, cache=cache, telemetry=tcfg)
        records = tele_events.read_events(tele_events.events_path(
            tdir, tele_events.latest_run_id(tdir)))
        assert any(r["event"] == "cell_quarantined" for r in records)


class TestStaleEnvelopes:
    def test_v1_entry_is_stale_not_corrupt(self, tmp_path):
        cache = rc.ResultsCache(tmp_path)
        key = "ab" + "0" * 62
        payload = {"x": 1}
        cache.put(key, payload)
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["v"] = 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.stale == 1 and cache.corrupt == 0
        assert not path.exists()                    # unlinked, not moved
        assert not cache.quarantine_dir.exists()
        # Absent now: plain miss, no second stale count.
        assert cache.get(key) is None
        assert cache.stale == 1 and cache.misses == 2

    def test_corrupt_entry_still_quarantined(self, tmp_path):
        cache = rc.ResultsCache(tmp_path)
        key = "cd" + "0" * 62
        cache.put(key, {"x": 1})
        cache._path(key).write_text("not json", encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.stale == 0
        assert cache.quarantined == 1

    def test_future_version_is_corrupt(self, tmp_path):
        # An envelope from *newer* code is unreadable by us: quarantine
        # rather than deleting what a newer process may still want.
        cache = rc.ResultsCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, {"x": 1})
        path = cache._path(key)
        entry = json.loads(path.read_text())
        entry["v"] = rc.ENVELOPE_VERSION + 1
        path.write_text(json.dumps(entry), encoding="utf-8")
        assert cache.get(key) is None
        assert cache.corrupt == 1 and cache.stale == 0


class TestProgressPrinter:
    def test_rate_and_eta_from_fake_clock(self):
        import io
        out = io.StringIO()
        t = [100.0]
        printer = ProgressPrinter(out=out, clock=lambda: t[0])
        t[0] = 110.0
        printer(Progress(2, 6, "w/v", 5.0, "run"))
        t[0] = 120.0
        printer(Progress(6, 6, "w2/v", 0.0, "cache"))
        lines = out.getvalue().splitlines()
        assert lines[0] == \
            "  [2/6] w/v  5.0s  (0.20 cells/s, ETA 0:20)"
        assert lines[1] == \
            "  [6/6] w2/v  0.0s  [cache]  (0.30 cells/s, ETA 0:00)"

    def test_zero_elapsed_gives_unknown_eta(self):
        import io
        out = io.StringIO()
        printer = ProgressPrinter(out=out, clock=lambda: 1.0)
        printer(Progress(1, 3, "w/v", 0.0, "run"))
        assert "ETA --:--" in out.getvalue()
