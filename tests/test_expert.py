"""Tests for the Expert Programmer classification (§IV-E / §V-C)."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.expert import (RegionProfile, classify_regions,
                               expert_regions_for, profile_regions)
from repro.trace.layout import AddressSpace
from repro.trace.record import TraceBuilder


def two_region_trace(n=4000, seed=0):
    space = AddressSpace()
    seq = space.add("friendly", 4, 1 << 13)
    rnd = space.add("averse", 4, 1 << 20, irregular_hint=True)
    tb = TraceBuilder(space)
    rng = np.random.default_rng(seed)
    tb.emit(tb.pc("s"), seq.addr(np.arange(n // 2) % (1 << 13)), gap=2)
    tb.emit(tb.pc("r"), rnd.addr(rng.integers(0, 1 << 20, n // 2)), gap=2)
    return tb.build()


@pytest.fixture(scope="module")
def cfg():
    return scaled_config(64)


class TestProfiling:
    def test_profiles_cover_all_regions(self, cfg):
        trace = two_region_trace()
        profiles = profile_regions(trace, cfg)
        assert [p.name for p in profiles] == ["friendly", "averse"]
        assert sum(p.accesses for p in profiles) == len(trace)

    def test_averse_region_has_high_dram_fraction(self, cfg):
        trace = two_region_trace()
        profiles = {p.name: p for p in profile_regions(trace, cfg)}
        assert profiles["averse"].dram_fraction > 0.5
        assert profiles["friendly"].dram_fraction < 0.1

    def test_levels_can_be_supplied(self, cfg):
        from repro.core.system import SingleCoreSystem
        trace = two_region_trace()
        levels = SingleCoreSystem(cfg, "baseline").run(
            trace, record_levels=True).levels
        profiles = profile_regions(trace, cfg, levels=levels)
        assert sum(p.accesses for p in profiles) == len(trace)


class TestClassification:
    def test_threshold_selects_averse_only(self, cfg):
        trace = two_region_trace()
        regions = expert_regions_for(trace, cfg)
        assert regions == {1}

    def test_min_accesses_filters_tiny_regions(self):
        profiles = [RegionProfile(0, "tiny", 10, 10),
                    RegionProfile(1, "big", 10_000, 9_000)]
        assert classify_regions(profiles, min_accesses=256) == {1}

    def test_threshold_zero_selects_everything_nonempty(self):
        profiles = [RegionProfile(0, "a", 1000, 0),
                    RegionProfile(1, "b", 1000, 1)]
        assert classify_regions(profiles, dram_threshold=0.0) == {0, 1}

    def test_empty_region_fraction_zero(self):
        p = RegionProfile(0, "empty", 0, 0)
        assert p.dram_fraction == 0.0


class TestJudiciousExpert:
    def test_best_never_worse_than_nothing(self, cfg):
        """The measured-candidate expert at least matches the empty
        routing set (it is among the candidates)."""
        from repro.core.expert import expert_regions_best
        from repro.core.system import SingleCoreSystem
        trace = two_region_trace()
        best = expert_regions_best(trace, cfg)
        best_cycles = SingleCoreSystem(
            cfg, "expert", expert_regions=best).run(trace).cycles
        none_cycles = SingleCoreSystem(
            cfg, "expert", expert_regions=set()).run(trace).cycles
        assert best_cycles <= none_cycles

    def test_best_picks_averse_region_when_profitable(self, cfg):
        from repro.core.expert import expert_regions_best
        trace = two_region_trace(n=6000)
        best = expert_regions_best(trace, cfg)
        assert best == {1}      # the random region pays off in the SDC
