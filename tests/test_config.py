"""Unit tests for repro.config (Table I geometry and scaling)."""

import dataclasses

import pytest

from repro.config import (BLOCK_SIZE, CacheConfig, DRAMConfig, LPConfig,
                          SystemConfig, paper_config, scaled_config)


class TestCacheConfig:
    def test_l1d_geometry_matches_table1(self):
        cfg = paper_config()
        assert cfg.l1d.size_bytes == 32 * 1024
        assert cfg.l1d.ways == 8
        assert cfg.l1d.num_sets == 64
        assert cfg.l1d.latency == 4

    def test_llc_geometry_matches_table1(self):
        # 1.375 MiB, 11-way -> the paper's 2048 sets (§IV-E mentions
        # doubling sets from 2048 to 4096 for 2xLLC).
        cfg = paper_config()
        assert cfg.llc.size_bytes == 1408 * 1024
        assert cfg.llc.num_sets == 2048

    def test_sdc_geometry_matches_table1(self):
        cfg = paper_config()
        assert cfg.sdc.size_bytes == 8 * 1024
        assert cfg.sdc.ways == 2
        assert cfg.sdc.latency == 1
        assert cfg.sdc.num_blocks == 128

    def test_num_blocks(self):
        c = CacheConfig("x", 64 * 1024, 8, 1, 8)
        assert c.num_blocks == 1024
        assert c.num_sets == 128

    def test_invalid_geometry_raises(self):
        c = CacheConfig("x", 100, 3, 1, 8)
        with pytest.raises(ValueError):
            _ = c.num_sets

    def test_resized_preserves_other_fields(self):
        cfg = paper_config().l1d
        bigger = cfg.resized(cfg.size_bytes * 2)
        assert bigger.size_bytes == 2 * cfg.size_bytes
        assert bigger.ways == cfg.ways
        assert bigger.replacement == cfg.replacement
        assert bigger.prefetcher == cfg.prefetcher


class TestLPConfig:
    def test_table1_defaults(self):
        lp = LPConfig()
        assert lp.entries == 32
        assert lp.ways == 8
        assert lp.tau_glob == 8
        assert lp.num_sets == 4

    def test_storage_matches_table4(self):
        # Table IV: 32 x (65 + 58 + 14 + 1) bits = 0.54 KB.
        lp = LPConfig()
        assert lp.storage_bits == 32 * 138
        assert abs(lp.storage_bits / 8192 - 0.54) < 0.01

    def test_indivisible_ways_raises(self):
        with pytest.raises(ValueError):
            _ = LPConfig(entries=32, ways=5).num_sets


class TestDRAMConfig:
    def test_latency_ordering(self):
        d = DRAMConfig()
        assert d.row_hit_latency < d.row_miss_latency
        assert d.row_miss_latency < d.row_conflict_latency

    def test_core_cycle_conversion(self):
        # 24 bus cycles at 1466.5 MHz against a 2.166 GHz core
        # ≈ 35 core cycles.
        d = DRAMConfig()
        assert 30 <= d._to_core(24) <= 40


class TestScaledConfig:
    def test_capacities_divided(self):
        base, scaled = paper_config(), scaled_config(8)
        assert scaled.l1d.size_bytes == base.l1d.size_bytes // 8
        assert scaled.l2c.size_bytes == base.l2c.size_bytes // 8
        assert scaled.llc.size_bytes == base.llc.size_bytes // 8

    def test_latencies_unchanged(self):
        base, scaled = paper_config(), scaled_config(16)
        for name in ("l1d", "l2c", "llc", "sdc"):
            assert getattr(scaled, name).latency == \
                getattr(base, name).latency

    def test_lp_not_scaled(self):
        assert scaled_config(32).lp == paper_config().lp

    def test_extreme_scale_keeps_valid_geometry(self):
        cfg = scaled_config(1024)
        for name in ("l1d", "l2c", "llc", "sdc"):
            cache = getattr(cfg, name)
            assert cache.num_sets >= 1
            assert cache.size_bytes >= cache.ways * BLOCK_SIZE

    def test_scale_one_is_identity(self):
        assert scaled_config(1).llc.size_bytes == \
            paper_config().llc.size_bytes

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            scaled_config(0)

    def test_all_scaled_geometries_integral(self):
        for scale in (2, 4, 8, 16, 64):
            cfg = scaled_config(scale)
            for name in ("l1d", "l2c", "llc", "sdc"):
                _ = getattr(cfg, name).num_sets   # must not raise


class TestDescribe:
    def test_describe_mentions_all_structures(self):
        text = paper_config().describe()
        for token in ("L1D", "L2C", "LLC", "SDC", "LP", "SDCDir", "DRAM"):
            assert token in text

    def test_frozen(self):
        cfg = paper_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.num_cores = 4
