"""Tests for the service lease queue (repro/service/queue.py).

The property under test is the queue's whole reason to exist: under
ANY interleaving of claim / renew / expire / revoke / complete / fail,
no cell is ever executed more than its bounded retry budget, no
result is ever accepted twice, and no cell is dropped — every cell
ends ``done``, ``failed`` or ``cancelled``.  The hypothesis machine
below drives random interleavings against a shadow model; directed
unit tests pin the individual transitions.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 rule)

from repro.experiments.parallel import RunPolicy
from repro.service.queue import (CANCELLED, DONE, FAILED, LEASED,
                                 PENDING, TERMINAL, Journal,
                                 LeaseQueue)

FAST = RunPolicy(retries=2, backoff=0.01, backoff_max=0.02, jitter=0.0)


def make_queue(keys=("k0", "k1"), policy=FAST, ttl=10.0,
               job="job") -> LeaseQueue:
    q = LeaseQueue(policy=policy, lease_ttl=ttl)
    for i, key in enumerate(keys):
        q.add(job, key, f"wl{i}/variant")
    return q


class TestLeaseLifecycle:
    def test_claim_grants_fifo_with_increasing_tokens(self):
        q = make_queue(("a", "b"))
        c1 = q.claim("w1", now=0.0)
        c2 = q.claim("w2", now=0.0)
        assert (c1.key, c2.key) == ("a", "b")
        assert c1.state == LEASED and c1.lease.token == 1
        assert q.claim("w3", now=0.0) is None       # nothing pending

    def test_complete_settles_and_is_idempotent_noop_after(self):
        q = make_queue(("a",))
        c = q.claim("w1", 0.0)
        assert q.complete("a", "w1", c.lease.token)
        assert q.cells["a"].state == DONE
        # A second complete with the same token is stale: the lease
        # is gone; done state is immutable.
        assert not q.complete("a", "w1", 1)
        assert q.cells["a"].state == DONE

    def test_stale_token_result_is_rejected(self):
        q = make_queue(("a",), ttl=5.0)
        q.claim("w1", 0.0)
        # TTL passes; the sweep requeues, w2 claims with token 2.
        [(cell, disp, worker)] = q.expire(6.0)
        assert (disp, worker) == ("retry", "w1")
        c2 = q.claim("w2", 7.0)
        assert c2.lease.token == 2
        # w1's late result (token 1) must be discarded...
        assert not q.complete("a", "w1", 1)
        assert q.fail("a", "w1", 1, "late", 7.0) == "stale"
        # ...while w2's is accepted.
        assert q.complete("a", "w2", 2)

    def test_renew_extends_only_the_held_lease(self):
        q = make_queue(("a",), ttl=5.0)
        c = q.claim("w1", 0.0)
        assert q.renew("a", "w1", c.lease.token, now=4.0)
        assert c.lease.expiry == 9.0
        assert q.expire(8.0) == []                  # renewal held it
        assert not q.renew("a", "w2", 1, 4.0)       # wrong worker
        assert not q.renew("a", "w1", 2, 4.0)       # wrong token

    def test_expiry_requeues_once_with_attempts_preserved(self):
        q = make_queue(("a",), ttl=5.0)
        q.claim("w1", 0.0)
        assert len(q.expire(6.0)) == 1
        assert q.cells["a"].state == PENDING
        assert q.cells["a"].attempts == 1           # spent, not reset
        assert q.expire(7.0) == []                  # exactly once

    def test_backoff_gates_the_requeued_claim(self):
        q = make_queue(("a",), ttl=5.0)
        q.claim("w1", 0.0)
        q.expire(6.0)
        gate = q.cells["a"].not_before
        assert gate > 6.0
        assert q.claim("w2", 6.0) is None           # still gated
        assert q.claim("w2", gate) is not None

    def test_retry_budget_bounds_leases_then_fails(self):
        q = make_queue(("a",), policy=FAST, ttl=5.0)
        now = 0.0
        for expected in ("retry", "retry", "failed"):   # 1 + 2 retries
            cell = q.claim("w1", now)
            assert cell is not None
            assert q.fail("a", "w1", cell.lease.token, "boom",
                          now) == expected
            now = max(now + 1.0, q.cells["a"].not_before)
        assert q.cells["a"].state == FAILED
        assert q.cells["a"].attempts == 1 + FAST.retries
        assert q.claim("w1", now + 100.0) is None   # terminal

    def test_revoke_requeues_a_live_lease(self):
        q = make_queue(("a",))
        q.claim("w1", 0.0)
        assert q.revoke("a", "lease lost (injected)", 0.0) == "retry"
        assert q.cells["a"].state == PENDING
        assert q.revoke("a", "again", 0.0) is None  # nothing leased

    def test_shared_cell_across_jobs_is_deduped(self):
        q = LeaseQueue(policy=FAST)
        q.add("job1", "k", "wl/v")
        q.add("job2", "k", "wl/v")
        assert len(q.cells) == 1
        assert q.cells["k"].jobs == {"job1", "job2"}
        c = q.claim("w1", 0.0)
        q.complete("k", "w1", c.lease.token)
        assert q.job_settled("job1") and q.job_settled("job2")

    def test_cancel_only_abandons_unshared_pending_cells(self):
        q = LeaseQueue(policy=FAST)
        q.add("job1", "mine", "a/v")
        q.add("job1", "ours", "b/v")
        q.add("job2", "ours", "b/v")
        cancelled = q.cancel_job("job1")
        assert cancelled == ["mine"]
        assert q.cells["mine"].state == CANCELLED
        assert q.cells["ours"].state == PENDING     # job2 still wants it

    def test_cancel_lets_a_leased_cell_finish(self):
        q = LeaseQueue(policy=FAST)
        q.add("job1", "k", "a/v")
        c = q.claim("w1", 0.0)
        assert q.cancel_job("job1") == []           # in-flight: not cut
        assert q.cells["k"].state == LEASED
        assert q.complete("k", "w1", c.lease.token)

    def test_recovered_attempts_seed_the_budget(self):
        q = LeaseQueue(policy=FAST)
        q.add("job", "k", "wl/v", attempts=FAST.retries)
        c = q.claim("w1", 0.0)
        assert c.lease.token == FAST.retries + 1    # last allowed grant
        assert q.fail("k", "w1", c.lease.token, "x", 0.0) == "failed"

    def test_settle_marks_terminal_without_a_lease_cycle(self):
        q = make_queue(("a",))
        q.settle("a", DONE)
        assert q.cells["a"].state == DONE
        q.settle("a", FAILED)                       # terminal is sticky
        assert q.cells["a"].state == DONE

    def test_next_wakeup_reports_soonest_edge(self):
        q = make_queue(("a", "b"), ttl=5.0)
        assert q.next_wakeup(0.0) is None           # both claimable now
        q.claim("w1", 0.0)
        assert q.next_wakeup(0.0) == 5.0            # lease expiry
        q.expire(6.0)
        assert q.next_wakeup(6.0) == q.cells["a"].not_before

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            LeaseQueue(lease_ttl=0.0)


# -- property: arbitrary interleavings stay safe ----------------------------

class LeaseMachine(RuleBasedStateMachine):
    """Random interleavings of the full lease lifecycle against a
    shadow model.

    Checked after every step: at most one live lease per cell, grants
    bounded by ``1 + retries``, at most one accepted result per cell,
    terminal states immutable, and no cell ever dropped.
    """

    KEYS = ("k0", "k1", "k2")
    WORKERS = ("w1", "w2")

    def __init__(self):
        super().__init__()
        self.policy = FAST
        self.q = LeaseQueue(policy=self.policy, lease_ttl=5.0)
        for i, k in enumerate(self.KEYS):
            self.q.add("job", k, f"wl{i}/v")
        self.now = 0.0
        self.grants: dict[str, list[int]] = {k: [] for k in self.KEYS}
        self.accepted: dict[str, int] = {k: 0 for k in self.KEYS}
        self.frozen: dict[str, str] = {}    # key -> terminal state

    # -- rules -------------------------------------------------------------

    @rule(worker=st.sampled_from(WORKERS))
    def claim(self, worker):
        cell = self.q.claim(worker, self.now)
        if cell is not None:
            assert cell.key not in self.frozen
            tokens = self.grants[cell.key]
            if tokens:
                assert cell.lease.token > tokens[-1]   # strictly up
            tokens.append(cell.lease.token)

    @rule(key=st.sampled_from(KEYS), worker=st.sampled_from(WORKERS),
          token=st.integers(min_value=1, max_value=4))
    def complete(self, key, worker, token):
        held = self.q._holds(key, worker, token) is not None
        ok = self.q.complete(key, worker, token)
        assert ok == held           # fencing: only the live lease wins
        if ok:
            self.accepted[key] += 1
            self.frozen[key] = DONE

    @rule(key=st.sampled_from(KEYS), worker=st.sampled_from(WORKERS),
          token=st.integers(min_value=1, max_value=4))
    def fail(self, key, worker, token):
        held = self.q._holds(key, worker, token) is not None
        disp = self.q.fail(key, worker, token, "boom", self.now)
        assert (disp == "stale") == (not held)
        if disp == "failed":
            self.frozen[key] = FAILED

    @rule(key=st.sampled_from(KEYS), worker=st.sampled_from(WORKERS),
          token=st.integers(min_value=1, max_value=4))
    def renew(self, key, worker, token):
        held = self.q._holds(key, worker, token) is not None
        assert self.q.renew(key, worker, token, self.now) == held

    @rule(delta=st.floats(min_value=0.1, max_value=8.0))
    def advance_and_expire(self, delta):
        self.now += delta
        for cell, disp, _worker in self.q.expire(self.now):
            if disp == "failed":
                self.frozen[cell.key] = FAILED

    @rule(key=st.sampled_from(KEYS))
    def revoke(self, key):
        was_leased = self.q.cells[key].state == LEASED
        disp = self.q.revoke(key, "revoked", self.now)
        assert (disp is None) == (not was_leased)
        if disp == "failed":
            self.frozen[key] = FAILED

    # -- invariants --------------------------------------------------------

    @invariant()
    def nothing_dropped(self):
        assert set(self.q.cells) == set(self.KEYS)

    @invariant()
    def bounded_grants(self):
        for key in self.KEYS:
            assert len(self.grants[key]) <= 1 + self.policy.retries
            assert self.q.cells[key].attempts == \
                (len(self.grants[key])
                 if self.q.cells[key].state != DONE or self.grants[key]
                 else 0)

    @invariant()
    def at_most_one_accepted_result(self):
        for key in self.KEYS:
            assert self.accepted[key] <= 1

    @invariant()
    def terminal_states_are_sticky(self):
        for key, state in self.frozen.items():
            assert self.q.cells[key].state == state

    @invariant()
    def lease_shape(self):
        for cell in self.q.cells.values():
            assert (cell.state == LEASED) == (cell.lease is not None)

    def teardown(self):
        # Drive to quiescence: every cell must reach a terminal state
        # within its bounded budget — no interleaving can wedge or
        # drop a cell.
        for _ in range(8 * len(self.KEYS)):
            if all(c.state in TERMINAL for c in self.q.cells.values()):
                break
            self.now += 10.0                    # open every gate/TTL
            for cell, disp, _w in self.q.expire(self.now):
                if disp == "failed":
                    self.frozen[cell.key] = FAILED
            cell = self.q.claim("w1", self.now)
            if cell is not None:
                assert self.q.complete(cell.key, "w1",
                                       cell.lease.token)
        assert all(c.state in TERMINAL for c in self.q.cells.values())
        for key in self.KEYS:
            assert len(self.grants[key]) <= 1 + self.policy.retries


LeaseMachine.TestCase.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None)
TestLeaseInterleavings = LeaseMachine.TestCase


# -- journal ----------------------------------------------------------------

class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        j = Journal(tmp_path / "journal.jsonl")
        j.append("generation", generation=1)
        j.append("lease", key="k", worker="w1", attempt=1)
        j.close()
        records = Journal(tmp_path / "journal.jsonl").replay()
        assert [r["type"] for r in records] == ["generation", "lease"]
        assert records[1]["worker"] == "w1"
        assert all("ts" in r for r in records)

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        j = Journal(path)
        j.append("generation", generation=1)
        j.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "lease", "key"')    # writer died here
        records = Journal(path).replay()
        assert [r["type"] for r in records] == ["generation"]

    def test_generation_counts_restarts(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        assert Journal(path).generation() == 0     # no file yet
        for expected in (1, 2, 3):
            j = Journal(path)
            j.append("generation", generation=j.generation() + 1)
            j.append("job_submitted", job_id="x")
            j.close()
            assert Journal(path).generation() == expected

    def test_missing_file_replays_empty(self, tmp_path):
        assert Journal(tmp_path / "none.jsonl").replay() == []
