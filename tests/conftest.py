"""Shared fixtures.

Trace/graph fixtures are session-scoped and sized for speed; tests that
need the paper's footprint>>LLC regime use the ``regime`` fixtures,
which pair a medium-tier graph with the scale-16 configuration exactly
like the experiment defaults.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Keep disk trace caching inside the repo workspace, versioned per run.
os.environ.setdefault("REPRO_CACHE_DIR", ".repro_cache")

from repro.config import SystemConfig, paper_config, scaled_config
from repro.graphs import (grid_road_graph, kronecker_graph,
                          uniform_random_graph)
from repro.trace.kernels import trace_pagerank


@pytest.fixture(scope="session")
def small_kron():
    """1k-vertex Kronecker graph (fast, power-law)."""
    return kronecker_graph(10, 8, seed=1)


@pytest.fixture(scope="session")
def small_urand():
    return uniform_random_graph(1024, 8, seed=2)


@pytest.fixture(scope="session")
def small_road():
    return grid_road_graph(16, seed=3)


@pytest.fixture(scope="session")
def weighted_kron():
    return kronecker_graph(9, 8, seed=4, weighted=True)


@pytest.fixture(scope="session")
def tiny_config() -> SystemConfig:
    """Heavily scaled config: even 1k-vertex graphs exceed the LLC."""
    return scaled_config(128)


@pytest.fixture(scope="session")
def default_cfg() -> SystemConfig:
    return scaled_config(16)


@pytest.fixture(scope="session")
def paper_cfg() -> SystemConfig:
    return paper_config()


@pytest.fixture(scope="session")
def pr_trace(small_kron):
    """A PageRank trace on the small Kronecker graph."""
    return trace_pagerank(small_kron, iterations=2, max_accesses=60_000)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)
