"""Tests for replacement policies, including the Belady optimality
property that underpins the T-OPT baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.mem.cache import SetAssocCache
from repro.mem.replacement import (BeladyOPT, DRRIPPolicy, LRUPolicy,
                                   SHiPPolicy, SRRIPPolicy, make_policy)


def simulate(policy_name, blocks, ways=4, aux_list=None):
    """Count misses of a fully-associative cache under a policy."""
    if policy_name == "opt":
        policy = BeladyOPT()
    else:
        policy = make_policy(policy_name)
    cache = SetAssocCache(CacheConfig("t", ways * 64, ways, 1, 4, "lru"),
                          policy)
    misses = 0
    for i, b in enumerate(blocks):
        aux = aux_list[i] if aux_list is not None else None
        if not cache.access(b, False, aux=aux):
            misses += 1
            cache.fill(b, aux=aux)
    return misses


def next_use(blocks):
    nxt = [BeladyOPT.NEVER] * len(blocks)
    last = {}
    for i in range(len(blocks) - 1, -1, -1):
        nxt[i] = last.get(blocks[i], BeladyOPT.NEVER)
        last[blocks[i]] = i
    return nxt


class TestMakePolicy:
    def test_known_names(self):
        assert isinstance(make_policy("lru"), LRUPolicy)
        assert isinstance(make_policy("srrip"), SRRIPPolicy)
        assert isinstance(make_policy("opt"), BeladyOPT)
        assert make_policy("topt").irregular_only

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("clock")


class TestLRU:
    def test_victim_is_least_recent(self):
        p = LRUPolicy()
        lines = {}
        for tag in (1, 2, 3):
            line = [0, 0, 0]
            p.on_fill(line, None)
            lines[tag] = line
        p.on_hit(lines[1], None)
        assert p.victim(lines) == 2


class TestSRRIP:
    def test_fill_inserts_long_rereference(self):
        p = SRRIPPolicy()
        line = [0, 0, 0]
        p.on_fill(line, None)
        assert line[0] == SRRIPPolicy.MAX_RRPV - 1

    def test_hit_promotes(self):
        p = SRRIPPolicy()
        line = [2, 0, 0]
        p.on_hit(line, None)
        assert line[0] == 0

    def test_victim_ages_until_found(self):
        p = SRRIPPolicy()
        lines = {1: [0, 0, 0], 2: [2, 0, 0]}
        assert p.victim(lines) == 2
        # Aging happened: line 1 got older.
        assert lines[1][0] >= 1

    def test_scan_resistance(self):
        """SRRIP must beat LRU on a thrash pattern with a hot subset."""
        hot = list(range(3))
        pattern = []
        for i in range(60):
            pattern.extend(hot)
            pattern.append(100 + i)   # one-shot scans
        assert simulate("srrip", pattern) <= simulate("lru", pattern)


class TestDRRIP:
    def test_leader_sets_disjoint(self):
        p = DRRIPPolicy(num_sets=2048)
        assert not (p._srrip_leaders & p._brrip_leaders)
        assert p._srrip_leaders and p._brrip_leaders

    def test_selector_moves_on_leader_misses(self):
        p = DRRIPPolicy(num_sets=64)
        start = p.psel
        p.bind_set(next(iter(p._srrip_leaders)))
        p.on_miss()
        assert p.psel == start + 1
        p.bind_set(next(iter(p._brrip_leaders)))
        p.on_miss()
        p.on_miss()
        assert p.psel == start - 1

    def test_follower_insertion_tracks_selector(self):
        p = DRRIPPolicy(num_sets=64)
        follower = next(s for s in range(64)
                        if s not in p._srrip_leaders
                        and s not in p._brrip_leaders)
        p.bind_set(follower)
        p.psel = 0                       # SRRIP wins
        line = [0, 0, 0]
        p.on_fill(line, None)
        assert line[0] == DRRIPPolicy.MAX_RRPV - 1
        p.psel = (1 << DRRIPPolicy.PSEL_BITS) - 1   # BRRIP wins
        fills = []
        for _ in range(64):
            line = [0, 0, 0]
            p.on_fill(line, None)
            fills.append(line[0])
        # Mostly distant insertions with the 1/32 exception.
        assert fills.count(DRRIPPolicy.MAX_RRPV) > 48
        assert DRRIPPolicy.MAX_RRPV - 1 in fills

    def test_runs_inside_cache(self):
        cache = SetAssocCache(CacheConfig("t", 64 * 64, 4, 1, 4, "drrip"))
        for b in range(500):
            if not cache.access(b % 97, False):
                cache.fill(b % 97)
        s = cache.stats
        assert s.hits + s.misses == s.accesses


class TestSHiP:
    def test_dead_signature_inserted_distant(self):
        p = SHiPPolicy()
        pc = 0x44
        sig = p._signature(pc)
        p.shct[sig] = 0
        line = [0, 0, 0]
        p.on_fill(line, pc)
        assert line[0] == SHiPPolicy.MAX_RRPV

    def test_reuse_trains_counter_up(self):
        p = SHiPPolicy()
        pc = 0x48
        sig = p._signature(pc)
        before = p.shct[sig]
        line = [0, 0, 0]
        p.on_fill(line, pc)
        p.on_hit(line, pc)
        assert p.shct[sig] == before + 1
        # Second hit on the same line does not double-count.
        p.on_hit(line, pc)
        assert p.shct[sig] == before + 1

    def test_dead_eviction_trains_counter_down(self):
        p = SHiPPolicy()
        pc = 0x4C
        sig = p._signature(pc)
        p.shct[sig] = 3
        lines = {}
        line = [SHiPPolicy.MAX_RRPV, 0, 0]
        p._sig[id(line)] = sig
        p._reused[id(line)] = False
        lines[1] = line
        p.victim(lines)
        assert p.shct[sig] == 2

    def test_scan_signature_learned_dead(self):
        """A PC that streams without reuse ends with a zero counter and
        distant insertions."""
        cache = SetAssocCache(CacheConfig("t", 64 * 8, 4, 1, 4, "ship"))
        scan_pc, hot_pc = 0x100, 0x200
        for rep in range(40):
            for b in (0, 2):             # hot blocks, always reused
                if not cache.access(b, False, aux=hot_pc):
                    cache.fill(b, aux=hot_pc)
            blk = 100 + rep              # scans, never reused
            if not cache.access(blk, False, aux=scan_pc):
                cache.fill(blk, aux=scan_pc)
        policy = cache.policy
        assert policy.shct[policy._signature(scan_pc)] == 0
        assert policy.shct[policy._signature(hot_pc)] > 0
        # Hot blocks still resident despite the scan stream.
        assert cache.contains(0) and cache.contains(2)


class TestBeladyOPT:
    def test_classic_opt_example(self):
        # Belady on a textbook string with 3 frames.
        blocks = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        misses = simulate("opt", blocks, ways=3,
                          aux_list=next_use(blocks))
        assert misses == 7   # known OPT result for this string

    def test_victim_is_farthest_future(self):
        p = BeladyOPT()
        lines = {}
        for tag, nxt in ((1, 10), (2, 99), (3, 5)):
            line = [0, 0, 0]
            p.on_fill(line, nxt)
            lines[tag] = line
        assert p.victim(lines) == 2

    def test_never_referenced_preferred_victim(self):
        p = BeladyOPT()
        lines = {1: [50, 0, 0], 2: [0, 0, 0]}
        p.on_fill(lines[2], None)   # aux None = never again
        assert p.victim(lines) == 2

    @given(st.lists(st.integers(0, 12), min_size=5, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_opt_never_worse_than_lru(self, blocks):
        """Belady's optimality: OPT misses <= LRU misses on any trace."""
        aux = next_use(blocks)
        assert simulate("opt", blocks, ways=3, aux_list=aux) <= \
            simulate("lru", blocks, ways=3)

    @given(st.lists(st.integers(0, 12), min_size=5, max_size=150))
    @settings(max_examples=50, deadline=None)
    def test_opt_never_worse_than_srrip(self, blocks):
        aux = next_use(blocks)
        assert simulate("opt", blocks, ways=3, aux_list=aux) <= \
            simulate("srrip", blocks, ways=3)


class TestTOPTMode:
    def test_regular_lines_fall_back_to_recency(self):
        p = BeladyOPT(irregular_only=True)
        lines = {}
        for tag in (1, 2):
            line = [0, 0, 0]
            p.on_fill(line, (0, False))   # regular line
            lines[tag] = line
        # Oracle-known irregular line with near-future reuse wins tenure.
        line3 = [0, 0, 0]
        p.on_fill(line3, (5, True))
        lines[3] = line3
        victim = p.victim(lines)
        assert victim in (1, 2)

    def test_far_future_irregular_evicted_before_regular(self):
        p = BeladyOPT(irregular_only=True)
        lines = {}
        line1 = [0, 0, 0]
        p.on_fill(line1, (BeladyOPT.NEVER, True))   # never reused
        lines[1] = line1
        line2 = [0, 0, 0]
        p.on_fill(line2, (0, False))
        lines[2] = line2
        assert p.victim(lines) == 1
