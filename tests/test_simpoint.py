"""Tests for SimPoint-style interval selection."""

import numpy as np
import pytest

from repro.trace.layout import AddressSpace
from repro.trace.record import TraceBuilder
from repro.trace.simpoint import (interval_features, select_simpoints,
                                  weighted_metric)


def phase_trace(phases, per_phase=1000):
    """Build a trace with distinct-PC phases."""
    space = AddressSpace()
    arr = space.add("a", 4, 100000)
    tb = TraceBuilder(space)
    for p in range(phases):
        pc = tb.pc(f"phase{p}")
        tb.emit(pc, arr.addr(np.arange(per_phase) + p * per_phase))
    return tb.build()


class TestFeatures:
    def test_shape(self):
        trace = phase_trace(3, 600)
        feats = interval_features(trace, 200)
        assert feats.shape == (9, 3)

    def test_rows_normalized(self):
        feats = interval_features(phase_trace(2, 500), 100)
        assert np.allclose(feats.sum(axis=1), 1.0)

    def test_pure_phases_one_hot(self):
        feats = interval_features(phase_trace(2, 400), 400)
        assert np.allclose(feats.max(axis=1), 1.0)

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            interval_features(phase_trace(1, 100), 0)


class TestSelection:
    def test_weights_sum_to_one(self):
        pts = select_simpoints(phase_trace(4, 500), 250, k=4)
        assert sum(p.weight for p in pts) == pytest.approx(1.0)

    def test_distinct_phases_get_distinct_points(self):
        pts = select_simpoints(phase_trace(3, 900), 300, k=3, seed=1)
        starts = {p.start // 900 for p in pts}
        assert len(starts) == 3   # one representative per phase

    def test_deterministic(self):
        t = phase_trace(3, 600)
        a = select_simpoints(t, 200, k=3, seed=5)
        b = select_simpoints(t, 200, k=3, seed=5)
        assert [(p.start, p.weight) for p in a] == \
            [(p.start, p.weight) for p in b]

    def test_k_larger_than_intervals(self):
        pts = select_simpoints(phase_trace(1, 300), 300, k=10)
        assert len(pts) == 1
        assert pts[0].weight == 1.0

    def test_points_sorted_by_start(self):
        pts = select_simpoints(phase_trace(4, 400), 100, k=4, seed=2)
        assert [p.start for p in pts] == sorted(p.start for p in pts)


class TestWeightedMetric:
    def test_weighted_combination(self):
        pts = select_simpoints(phase_trace(2, 500), 500, k=2)
        vals = [10.0, 30.0]
        est = weighted_metric(pts, vals)
        assert min(vals) <= est <= max(vals)

    def test_mismatched_lengths_raise(self):
        pts = select_simpoints(phase_trace(2, 500), 500, k=2)
        with pytest.raises(ValueError):
            weighted_metric(pts, [1.0])
