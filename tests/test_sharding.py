"""Tests for shard-aware sweeps (sharding.py) and the concurrent-
supervisor hardening that multi-host execution depends on.

The contract under test: N ``run_grid`` supervisors that agree only on
a run id and a shard count — nothing else, no coordination — execute
disjoint slices of one grid into a shared cache, and ``merge_shards``
stitches a result set bit-identical to the single-host run, refusing
loudly when a shard is lost, duplicated, or corrupt.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro import faults
from repro.experiments import results_cache as rc
from repro.experiments import sharding
from repro.experiments.manifest import RunManifest
from repro.experiments.parallel import (Job, RunPolicy, ShardComplete,
                                        _job_spec, run_grid)
from repro.experiments.runner import default_config
from repro.experiments.sharding import (ShardMergeError,
                                        list_shard_manifests,
                                        merge_shards, parse_shard,
                                        shard_of, shard_site,
                                        shard_suffix, validate_shard)

MICRO = dict(tier="tiny", length=6_000)
WLS = ("pr.urand", "cc.urand")
VARIANTS = ("baseline", "sdc_lp")
FAST = RunPolicy(backoff=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def _no_leaked_state():
    yield
    faults.deactivate()
    sharding.activate_shard(None)


@pytest.fixture
def grid():
    cfg = default_config()
    # Cache keys fold in the code fingerprint, so which shard owns a
    # given cell reshuffles whenever the source tree changes.  The
    # ownership assertions below need the 2-way split to land work on
    # both shards; walk the trace length deterministically until it
    # does instead of betting on the hash.
    length = MICRO["length"]
    while True:
        jobs = [Job(wl, v, cfg, tier=MICRO["tier"], length=length)
                for wl in WLS for v in VARIANTS]
        if {shard_of(_job_spec(j)[1], 2) for j in jobs} == {0, 1}:
            return jobs
        length += 2


def run_shard(grid, index, count, run_id, cache, runs, **kw):
    """Run one shard to completion, returning its ShardComplete."""
    with pytest.raises(ShardComplete) as ei:
        run_grid(grid, cache=cache, run_id=run_id, manifest_dir=runs,
                 policy=FAST, shard=(index, count), **kw)
    return ei.value


def payloads_of(results):
    return [r.to_payload() for r in results]


class TestPartition:
    def test_pure_and_in_range(self):
        keys = [f"key-{i:04d}" for i in range(500)]
        for count in (1, 2, 3, 7):
            owners = [shard_of(k, count) for k in keys]
            assert owners == [shard_of(k, count) for k in keys]
            assert all(0 <= o < count for o in owners)
            # Every shard gets work on any realistically sized grid.
            assert set(owners) == set(range(count))

    def test_independent_of_enumeration_order(self):
        keys = [f"key-{i}" for i in range(64)]
        fwd = {k: shard_of(k, 4) for k in keys}
        rev = {k: shard_of(k, 4) for k in reversed(keys)}
        assert fwd == rev

    def test_parse_shard(self):
        assert parse_shard("0/2") == (0, 2)
        assert parse_shard(" 3/8 ") == (3, 8)
        for bad in ("", "2", "2/", "/2", "a/b", "-1/2", "1/2/3"):
            with pytest.raises(ValueError):
                parse_shard(bad)
        with pytest.raises(ValueError, match="out of range"):
            parse_shard("2/2")
        with pytest.raises(ValueError, match="count"):
            validate_shard((0, 0))

    def test_suffix_and_site_are_stable(self):
        assert shard_suffix((1, 4)) == "shard-1-of-4"
        assert shard_site("rid", (1, 4)) == "shard:rid:1/4"


class TestShardedRunGrid:
    def test_requires_cache(self, grid, tmp_path):
        with pytest.raises(ValueError, match="results cache"):
            run_grid(grid, use_cache=False, run_id="x",
                     manifest_dir=tmp_path / "runs", shard=(0, 2))

    def test_merge_is_bit_identical_to_single_host(self, grid, tmp_path):
        solo_cache = rc.ResultsCache(tmp_path / "solo")
        solo = run_grid(grid, cache=solo_cache, policy=FAST,
                        manifest_dir=tmp_path / "solo-runs")

        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        for i in (0, 1):
            sc = run_shard(grid, i, 2, "rid", cache, runs)
            assert sc.run_id == "rid" and sc.shard == (i, 2)
            # The grid-aligned result list has real results for owned
            # cells and None placeholders for the sibling's.
            owned = [r for r in sc.results if r is not None]
            assert 0 < len(owned) < len(grid)

        report = merge_shards("rid", runs, cache=cache)
        assert report.count == 2
        assert report.cells == len(grid)    # no dedup in this grid
        merged = RunManifest.load("rid", runs)
        assert merged.data["status"] == "complete"
        assert merged.data["shard_count"] == 2
        assert sorted(merged.data["merged_from"]) == [
            "rid.shard-0-of-2.json", "rid.shard-1-of-2.json"]
        assert all(c["status"] == "done" for c in merged.cells.values())

        # A warm rerun against the stitched cache is simulation-free
        # and bit-identical to the single-host run.
        warm = rc.ResultsCache(tmp_path / "results")
        rerun = run_grid(grid, cache=warm, policy=FAST,
                         manifest_dir=tmp_path / "rerun-runs")
        assert warm.misses == 0 and warm.hits == len(grid)
        assert payloads_of(rerun) == payloads_of(solo)

    def test_per_shard_manifest_records_ownership(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        run_shard(grid, 0, 2, "own", cache, runs)
        m = RunManifest.load("own", runs, shard=(0, 2))
        assert m.data["shard"] == {"index": 0, "count": 2}
        statuses = {c["status"] for c in m.cells.values()}
        assert statuses == {"done", "elsewhere"}
        for key, cell in m.cells.items():
            assert cell["shard"] == shard_of(key, 2)
            assert (cell["status"] == "done") == (cell["shard"] == 0)
        assert list_shard_manifests("own", runs) == [
            (runs / "own.shard-0-of-2.json", 0, 2)]

    def test_single_shard_of_one_covers_whole_grid(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        sc = run_shard(grid, 0, 1, "one", cache, runs)
        assert all(r is not None for r in sc.results)
        report = merge_shards("one", runs, cache=cache)
        assert report.count == 1


class TestMergeValidation:
    def seed_shards(self, grid, tmp_path, run_id="v"):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        for i in (0, 1):
            run_shard(grid, i, 2, run_id, cache, runs)
        return cache, runs

    def test_no_manifests_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_shards("nope", tmp_path / "runs")

    def test_missing_shard_refused(self, grid, tmp_path):
        cache, runs = self.seed_shards(grid, tmp_path)
        (runs / "v.shard-1-of-2.json").unlink()
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs, cache=cache)
        assert any("shard 1: manifest missing" in p
                   for p in ei.value.problems)

    def test_incomplete_shard_refused(self, grid, tmp_path):
        cache, runs = self.seed_shards(grid, tmp_path)
        p = runs / "v.shard-0-of-2.json"
        data = json.loads(p.read_text())
        data["status"] = "running"
        p.write_text(json.dumps(data))
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs, cache=cache)
        assert any("status 'running'" in p for p in ei.value.problems)
        # The error names the exact repair command.
        assert any("--shard 0/2 --resume v" in p
                   for p in ei.value.problems)

    def test_disagreeing_shard_counts_refused(self, grid, tmp_path):
        cache, runs = self.seed_shards(grid, tmp_path)
        sc = run_shard(grid, 2, 3, "v", cache, runs)
        assert sc.shard == (2, 3)
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs, cache=cache)
        assert any("shard counts disagree" in p
                   for p in ei.value.problems)

    def test_missing_cache_entry_refused(self, grid, tmp_path):
        cache, runs = self.seed_shards(grid, tmp_path)
        cache.clear()
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs,
                         cache=rc.ResultsCache(tmp_path / "results"))
        assert any("missing or corrupt" in p for p in ei.value.problems)

    def test_corrupt_cache_entry_refused(self, grid, tmp_path):
        cache, runs = self.seed_shards(grid, tmp_path)
        m = RunManifest.load("v", runs, shard=(0, 2))
        key = next(k for k, c in m.cells.items()
                   if c["status"] == "done")
        path = cache._path(key)
        path.write_text(path.read_text()[:40])   # torn write
        fresh = rc.ResultsCache(tmp_path / "results")
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs, cache=fresh)
        assert any("missing or corrupt" in p for p in ei.value.problems)
        assert fresh.quarantined == 1

    def test_grid_disagreement_refused(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        run_shard(grid, 0, 2, "v", cache, runs)
        run_shard(grid[:2], 1, 2, "v", cache, runs)  # different grid
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("v", runs, cache=cache)
        assert any("disagree on the grid" in p
                   for p in ei.value.problems)


class TestShardFaults:
    def test_shard_loss_then_resume_then_merge(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        faults.activate(faults.FaultPlan.parse("seed=7,shard_loss:1.0"))
        # First run of each shard is lost right after its checkpoint.
        for i in (0, 1):
            with pytest.raises(faults.FaultInjected, match="shard loss"):
                run_grid(grid, cache=cache, run_id="lossy",
                         manifest_dir=runs, policy=FAST, shard=(i, 2))
            m = RunManifest.load("lossy", runs, shard=(i, 2))
            assert m.data["status"] == "running"   # checkpoint survives
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("lossy", runs, cache=cache)
        assert sum("lost or incomplete" in p
                   for p in ei.value.problems) == 2
        # The --resume re-run is attempt 2 and survives (max_attempt=1).
        for i in (0, 1):
            run_shard(grid, i, 2, "lossy", cache, runs)
        report = merge_shards("lossy", runs, cache=cache)
        assert report.cells == len(grid)

    def test_duplicate_shard_overlap_refused(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        runs = tmp_path / "runs"
        faults.activate(
            faults.FaultPlan.parse("seed=7,duplicate_shard:1.0"))
        # Both supervisors also claim their sibling: total overlap.
        for i in (0, 1):
            sc = run_shard(grid, i, 2, "dup", cache, runs)
            assert all(r is not None for r in sc.results)
        with pytest.raises(ShardMergeError) as ei:
            merge_shards("dup", runs, cache=cache)
        assert any("owned by shard" in p for p in ei.value.problems)
        # Repair: re-run both shards with faults cleared; the fresh
        # manifests replace the overlapping ones and the merge goes
        # through.
        faults.deactivate()
        for i in (0, 1):
            run_shard(grid, i, 2, "dup", cache, runs)
        assert merge_shards("dup", runs, cache=cache).count == 2

    def test_ambient_shard_activation(self, grid, tmp_path):
        cache = rc.ResultsCache(tmp_path / "results")
        sharding.activate_shard((0, 2))
        assert sharding.active_shard() == (0, 2)
        with pytest.raises(ShardComplete):
            run_grid(grid, cache=cache, run_id="amb",
                     manifest_dir=tmp_path / "runs", policy=FAST)
        sharding.activate_shard(None)
        assert sharding.active_shard() is None


_SUPERVISOR = """\
import sys
from repro.experiments.parallel import Job, RunPolicy, ShardComplete, \\
    run_grid
from repro.experiments.runner import default_config

cfg = default_config()
grid = [Job(wl, v, cfg, tier="tiny", length=int(sys.argv[2]))
        for wl in ("pr.urand", "cc.urand")
        for v in ("baseline", "sdc_lp")]
try:
    run_grid(grid, run_id="stress", shard=(int(sys.argv[1]), 2),
             policy=RunPolicy(backoff=0.01, backoff_max=0.05))
except ShardComplete:
    sys.exit(0)
sys.exit(3)
"""


class TestConcurrentSupervisors:
    def test_two_supervisors_share_one_cache_root(self, grid, tmp_path):
        """Two real processes, distinct shards, one REPRO_CACHE_DIR —
        no exceptions, no cross-quarantine, merged output identical to
        the in-process serial run."""
        cache_dir = tmp_path / "shared-cache"
        env = dict(os.environ, REPRO_CACHE_DIR=str(cache_dir),
                   PYTHONPATH=str(Path("src").resolve()))
        env.pop("REPRO_FAULTS", None)
        procs = [subprocess.Popen(
                    [sys.executable, "-c", _SUPERVISOR, str(i),
                     str(grid[0].length)],
                    env=env, stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE, text=True)
                 for i in (0, 1)]
        for i, proc in enumerate(procs):
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, \
                f"shard {i} supervisor failed:\n{out}\n{err}"

        cache = rc.ResultsCache(cache_dir / "results",
                                sweep_stale=False)
        report = merge_shards("stress", cache_dir / "runs", cache=cache)
        assert report.count == 2
        assert not list(cache.quarantine_dir.glob("*"))

        solo_cache = rc.ResultsCache(tmp_path / "solo")
        solo = run_grid(grid, cache=solo_cache, policy=FAST,
                        manifest_dir=tmp_path / "solo-runs")
        stitched = run_grid(grid, cache=cache, policy=FAST,
                            manifest_dir=tmp_path / "rerun-runs")
        assert cache.misses == 0
        assert payloads_of(stitched) == payloads_of(solo)


class TestCacheConcurrencyRegressions:
    def key(self, i: int) -> str:
        return f"{i:02x}" * 32

    def test_two_owners_survive_sibling_clear(self, tmp_path):
        root = tmp_path / "results"
        a = rc.ResultsCache(root)
        b = rc.ResultsCache(root)
        for i in range(8):
            a.put(self.key(i), {"i": i})
        assert b.get(self.key(3)) == {"i": 3}
        assert a.clear() == 8
        # Every view b takes after a's rmtree must degrade gracefully,
        # never raise FileNotFoundError.
        assert len(b) == 0
        assert b.get(self.key(3)) is None
        assert b.clear() == 0
        assert b.sweep_stale_tmp(max_age=0.0) == 0
        b.put(self.key(1), {"i": 1})        # root is recreated on write
        assert b.get(self.key(1)) == {"i": 1}

    def test_concurrent_clear_put_len_hammer(self, tmp_path):
        root = tmp_path / "results"
        caches = [rc.ResultsCache(root) for _ in range(2)]
        errors: list[BaseException] = []
        barrier = threading.Barrier(2)

        def hammer(c: rc.ResultsCache, base: int) -> None:
            try:
                barrier.wait()
                for round_ in range(30):
                    for i in range(4):
                        c.put(self.key(base + i), {"r": round_})
                    len(c)
                    c.sweep_stale_tmp(max_age=0.0)
                    c.clear()
            except BaseException as exc:       # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(c, 8 * n))
                   for n, c in enumerate(caches)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []

    def test_len_tolerates_vanishing_subdir(self, tmp_path):
        root = tmp_path / "results"
        c = rc.ResultsCache(root)
        c.put(self.key(1), {"x": 1})
        # A dangling symlink where a shard subdir used to be: globbing
        # through it must not blow up the counters.
        (root / "zz").symlink_to(root / "gone")
        assert len(c) == 1
        assert c.sweep_stale_tmp() == 0
