"""Tests for the SDCDir directory extension (§III-C)."""

import pytest

from repro.config import SDCDirConfig
from repro.core.sdcdir import SDCDirectory


def sdcdir(entries=16, ways=4, cores=1):
    return SDCDirectory(SDCDirConfig(entries_per_core=entries, ways=ways),
                        num_cores=cores)


class TestBasics:
    def test_insert_and_lookup(self):
        d = sdcdir()
        d.insert(100, core=0, dirty=False)
        entry = d.lookup(100)
        assert entry is not None
        assert entry[0] == 1       # core 0 sharer bit

    def test_lookup_miss(self):
        d = sdcdir()
        assert d.lookup(5) is None
        assert d.stats.lookups == 1
        assert d.stats.hits == 0

    def test_sharer_bits_accumulate(self):
        d = sdcdir(cores=4)
        d.insert(7, core=0, dirty=False)
        d.insert(7, core=2, dirty=False)
        assert d.sharers(7) == 0b101

    def test_dirty_ownership(self):
        d = sdcdir(cores=2)
        d.insert(7, core=1, dirty=True)
        assert d.lookup(7)[1] == 1
        d.mark_dirty(7, 0)
        assert d.lookup(7)[1] == 0

    def test_remove_sharer_drops_empty_entry(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=False)
        d.insert(7, core=1, dirty=False)
        d.remove_sharer(7, 0)
        assert d.sharers(7) == 0b10
        d.remove_sharer(7, 1)
        assert d.lookup(7) is None

    def test_remove_sharer_clears_ownership(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=True)
        d.insert(7, core=1, dirty=False)
        d.remove_sharer(7, 0)
        assert d.lookup(7)[1] == -1

    def test_drop(self):
        d = sdcdir()
        d.insert(3, 0, False)
        d.drop(3)
        assert d.lookup(3) is None
        d.drop(3)      # idempotent


class TestCapacity:
    def test_eviction_on_full_set(self):
        d = sdcdir(entries=4, ways=2)     # 2 sets
        nsets = d.num_sets
        d.insert(0, 0, False)
        d.insert(nsets, 0, False)
        displaced = d.insert(2 * nsets, 0, True)
        assert displaced is not None
        assert displaced[0] == 0          # LRU victim
        assert d.stats.evictions == 1

    def test_lru_respects_lookups(self):
        d = sdcdir(entries=4, ways=2)
        nsets = d.num_sets
        d.insert(0, 0, False)
        d.insert(nsets, 0, False)
        d.lookup(0)                        # refresh block 0
        displaced = d.insert(2 * nsets, 0, False)
        assert displaced[0] == nsets

    def test_displaced_entry_reports_sharers(self):
        d = sdcdir(entries=2, ways=1, cores=4)   # 2 sets x 1 way
        d.insert(0, 1, True)
        disp = d.insert(d.num_sets, 2, False)    # same set as block 0
        assert disp is not None
        assert disp[0] == 0
        assert disp[1] == 1 << 1     # core 1 held it
        assert disp[2] == 1          # dirty owner was core 1

    def test_entries_scale_with_cores(self):
        assert sdcdir(entries=128, ways=8, cores=4).entries == 512

    def test_tracked_blocks(self):
        d = sdcdir()
        for b in (1, 2, 3):
            d.insert(b, 0, False)
        assert set(d.tracked_blocks()) == {1, 2, 3}
