"""Tests for the SDCDir directory extension (§III-C)."""

import pytest

from repro.config import SDCDirConfig
from repro.core.sdcdir import SDCDirectory


def sdcdir(entries=16, ways=4, cores=1):
    return SDCDirectory(SDCDirConfig(entries_per_core=entries, ways=ways),
                        num_cores=cores)


class TestBasics:
    def test_insert_and_lookup(self):
        d = sdcdir()
        d.insert(100, core=0, dirty=False)
        entry = d.lookup(100)
        assert entry is not None
        assert entry[0] == 1       # core 0 sharer bit

    def test_lookup_miss(self):
        d = sdcdir()
        assert d.lookup(5) is None
        assert d.stats.lookups == 1
        assert d.stats.hits == 0

    def test_sharer_bits_accumulate(self):
        d = sdcdir(cores=4)
        d.insert(7, core=0, dirty=False)
        d.insert(7, core=2, dirty=False)
        assert d.sharers(7) == 0b101

    def test_dirty_ownership(self):
        d = sdcdir(cores=2)
        d.insert(7, core=1, dirty=True)
        assert d.lookup(7)[1] == 1
        d.mark_dirty(7, 0)
        assert d.lookup(7)[1] == 0

    def test_remove_sharer_drops_empty_entry(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=False)
        d.insert(7, core=1, dirty=False)
        d.remove_sharer(7, 0)
        assert d.sharers(7) == 0b10
        d.remove_sharer(7, 1)
        assert d.lookup(7) is None

    def test_remove_sharer_clears_ownership(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=True)
        d.insert(7, core=1, dirty=False)
        d.remove_sharer(7, 0)
        assert d.lookup(7)[1] == -1

    def test_drop(self):
        d = sdcdir()
        d.insert(3, 0, False)
        d.drop(3)
        assert d.lookup(3) is None
        d.drop(3)      # idempotent


class TestRemoveSharerReturns:
    """Regression: remove_sharer used to silently discard dirty
    ownership — callers could not know a writeback was owed."""

    def test_absent_block(self):
        assert sdcdir().remove_sharer(9, 0) == (False, False)

    def test_clean_sharer(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=False)
        assert d.remove_sharer(7, 0) == (True, False)

    def test_dirty_owner_reported(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=True)
        d.insert(7, core=1, dirty=False)
        assert d.remove_sharer(7, 0) == (True, True)
        # Ownership was surrendered with the flag.
        assert d.lookup(7)[1] == -1

    def test_non_owner_not_reported(self):
        d = sdcdir(cores=2)
        d.insert(7, core=0, dirty=True)
        d.insert(7, core=1, dirty=False)
        assert d.remove_sharer(7, 1) == (True, False)
        assert d.lookup(7)[1] == 0      # core 0 still owns


class TestProbeOnlyLookup:
    def test_touch_false_preserves_victim_choice(self):
        # Regression: miss-path coherence probes used to bump recency,
        # keeping dead entries alive and perturbing victim selection.
        d = sdcdir(entries=4, ways=2)
        nsets = d.num_sets
        d.insert(0, 0, False)
        d.insert(nsets, 0, False)
        d.lookup(0, touch=False)           # pure probe
        displaced = d.insert(2 * nsets, 0, False)
        assert displaced[0] == 0           # block 0 is still the LRU

    def test_touch_false_still_counts_stats(self):
        d = sdcdir()
        d.insert(5, 0, False)
        d.lookup(5, touch=False)
        assert d.stats.lookups == 1
        assert d.stats.hits == 1


class TestClearDirty:
    def test_clears_ownership(self):
        d = sdcdir(cores=2)
        d.insert(7, core=1, dirty=True)
        assert d.clear_dirty(7) is True
        assert d.lookup(7)[1] == -1

    def test_clean_or_absent_is_noop(self):
        d = sdcdir()
        assert d.clear_dirty(7) is False
        d.insert(7, core=0, dirty=False)
        assert d.clear_dirty(7) is False


class TestCapacity:
    def test_eviction_on_full_set(self):
        d = sdcdir(entries=4, ways=2)     # 2 sets
        nsets = d.num_sets
        d.insert(0, 0, False)
        d.insert(nsets, 0, False)
        displaced = d.insert(2 * nsets, 0, True)
        assert displaced is not None
        assert displaced[0] == 0          # LRU victim
        assert d.stats.evictions == 1

    def test_lru_respects_lookups(self):
        d = sdcdir(entries=4, ways=2)
        nsets = d.num_sets
        d.insert(0, 0, False)
        d.insert(nsets, 0, False)
        d.lookup(0)                        # refresh block 0
        displaced = d.insert(2 * nsets, 0, False)
        assert displaced[0] == nsets

    def test_displaced_entry_reports_sharers(self):
        d = sdcdir(entries=2, ways=1, cores=4)   # 2 sets x 1 way
        d.insert(0, 1, True)
        disp = d.insert(d.num_sets, 2, False)    # same set as block 0
        assert disp is not None
        assert disp[0] == 0
        assert disp[1] == 1 << 1     # core 1 held it
        assert disp[2] == 1          # dirty owner was core 1

    def test_entries_scale_with_cores(self):
        assert sdcdir(entries=128, ways=8, cores=4).entries == 512

    def test_tracked_blocks(self):
        d = sdcdir()
        for b in (1, 2, 3):
            d.insert(b, 0, False)
        assert set(d.tracked_blocks()) == {1, 2, 3}


class TestSystemWritebackAccounting:
    """The remove_sharer return value drives DRAM writeback accounting
    in the systems; pin both directions on a crafted fill stream."""

    def _system(self):
        from repro.config import scaled_config
        from repro.core.system import SingleCoreSystem
        return SingleCoreSystem(scaled_config(64), "sdc_lp")

    def test_dirty_sdc_eviction_writes_back(self):
        system = self._system()
        ways = system.sdc.ways * system.sdc.num_sets
        system._sdc_fill(0, dirty=True)
        nsets = system.sdc.num_sets
        for k in range(1, ways + 1):       # conflict block 0 out
            system._sdc_fill(k * nsets, dirty=False)
        assert not system.sdc.contains(0)
        assert system.hierarchy.dram.stats.writes == 1

    def test_cleaned_line_not_written_back_twice(self):
        # Regression: a shared read cleans the SDC line and writes it
        # back; the directory's dirty owner must drop with it, or the
        # later eviction pays a second, bogus writeback.
        system = self._system()
        system._sdc_fill(0, dirty=True)
        assert system.sdc.clear_dirty(0) is True
        assert system.sdcdir.clear_dirty(0) is True
        ways = system.sdc.ways * system.sdc.num_sets
        nsets = system.sdc.num_sets
        for k in range(1, ways + 1):
            system._sdc_fill(k * nsets, dirty=False)
        assert not system.sdc.contains(0)
        assert system.hierarchy.dram.stats.writes == 0
