"""Tests for the multi-core system: scheduling, shared-LLC contention,
and the MESI-style coherence protocol (exercised with shared-address
streams, since the paper's mixes are multiprogrammed)."""

import dataclasses

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.multicore import MultiCoreSystem
from repro.trace.layout import AddressSpace
from repro.trace.record import TraceBuilder


def make_trace(pattern, n=2000, seed=0, name="t"):
    space = AddressSpace()
    seq = space.add("seq", 4, 1 << 14)
    rnd = space.add("rnd", 4, 1 << 19, irregular_hint=True)
    tb = TraceBuilder(space, name=name)
    rng = np.random.default_rng(seed)
    if pattern == "seq":
        tb.emit(tb.pc("s"), seq.addr(np.arange(n) % (1 << 14)), gap=2)
    elif pattern == "random":
        tb.emit(tb.pc("r"), rnd.addr(rng.integers(0, 1 << 19, n)), gap=2)
    elif pattern == "shared_rw":
        # Alternating loads and stores over a small shared region.
        idx = np.arange(n) % 64
        tb.emit(tb.pc("l"), seq.addr(idx), gap=1)
        tb.emit(tb.pc("w"), seq.addr(idx), write=True, gap=1)
    return tb.build()


@pytest.fixture(scope="module")
def cfg():
    return dataclasses.replace(scaled_config(64), num_cores=2)


class TestConstruction:
    def test_core_count(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        assert len(s.cores) == 2
        assert s.llc.config.size_bytes == cfg.llc.size_bytes * 2

    def test_sdc_per_core(self, cfg):
        s = MultiCoreSystem(cfg, "sdc_lp")
        assert all(sdc is not None for sdc in s.sdcs)
        assert all(lp is not None for lp in s.lps)
        assert s.sdcdir.entries == \
            cfg.sdcdir.entries_per_core * 2

    def test_unknown_variant_raises(self, cfg):
        with pytest.raises(ValueError):
            MultiCoreSystem(cfg, "bogus")

    def test_wrong_trace_count_raises(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        with pytest.raises(ValueError):
            s.run([make_trace("seq")])


class TestRun:
    def test_per_core_stats(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        res = s.run([make_trace("seq"), make_trace("random")])
        assert len(res.per_core) == 2
        assert all(st.cycles > 0 for st in res.per_core)
        # The random thread is slower (lower IPC) than the sequential one.
        assert res.per_core[1].ipc < res.per_core[0].ipc

    def test_replay_keeps_first_pass_stats(self, cfg):
        """A short trace replays while the long one finishes, but its
        reported instruction count covers exactly one pass."""
        short = make_trace("seq", n=500)
        long = make_trace("random", n=4000)
        s = MultiCoreSystem(cfg, "baseline")
        res = s.run([short, long])
        assert res.per_core[0].instructions == short.num_instructions
        assert res.per_core[1].instructions == long.num_instructions

    def test_llc_contention_slows_cores(self, cfg):
        """Two LLC-thrashing threads are slower together than alone."""
        t = make_trace("random", n=4000)
        single_cfg = dataclasses.replace(cfg, num_cores=1)
        alone = MultiCoreSystem(single_cfg, "baseline").run([t])
        together = MultiCoreSystem(cfg, "baseline").run(
            [t, make_trace("random", n=4000, seed=9)])
        assert together.per_core[0].ipc <= alone.per_core[0].ipc * 1.05

    def test_sdc_lp_multicore_runs(self, cfg):
        s = MultiCoreSystem(cfg, "sdc_lp")
        res = s.run([make_trace("random"), make_trace("seq")])
        assert res.per_core[0].sdc.accesses > 0

    @pytest.mark.parametrize("variant", ["topt", "distill", "l1iso",
                                         "llc2x"])
    def test_all_variants_run(self, cfg, variant):
        s = MultiCoreSystem(cfg, variant)
        res = s.run([make_trace("seq", n=800),
                     make_trace("random", n=800)])
        assert len(res.per_core) == 2

    def test_expert_variant_routes_per_core(self, cfg):
        a, b = make_trace("random", n=1000), make_trace("seq", n=1000)
        # Region 1 (rnd) averse on core 0; nothing averse on core 1.
        s = MultiCoreSystem(cfg, "expert", expert_regions=[{1}, set()])
        res = s.run([a, b])
        assert res.per_core[0].sdc.accesses == 1000
        assert res.per_core[1].sdc.accesses == 0

    def test_tlb_stats_per_core(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        res = s.run([make_trace("random", n=1000),
                     make_trace("seq", n=1000)])
        assert res.per_core[0].tlb is not None
        # The random thread touches far more pages.
        assert res.per_core[0].tlb.walks > res.per_core[1].tlb.walks


class TestCoherence:
    def test_disjoint_offsets_by_default(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        t = make_trace("seq", n=500)
        s.run([t, t])
        # Same trace on both cores, but offset address spaces: the
        # directory never sees a block shared by both cores.
        for entry in s.directory.values():
            assert entry[0] in (0, 1, 2)   # at most one sharer bit

    def test_shared_addresses_create_sharers(self, cfg):
        s = MultiCoreSystem(cfg, "baseline")
        t = make_trace("seq", n=500)
        s.run([t, t], offset_address_spaces=False)
        shared = [e for e in s.directory.values() if e[0] == 0b11]
        assert shared, "expected blocks shared by both cores"

    def test_write_invalidates_remote_copy(self, cfg):
        """Single-writer invariant on a shared read-write stream."""
        s = MultiCoreSystem(cfg, "baseline")
        a = make_trace("shared_rw", n=600, seed=1)
        b = make_trace("shared_rw", n=600, seed=2)
        s.run([a, b], offset_address_spaces=False)
        # After the run, no block is dirty-owned by one core while
        # resident in the other core's private caches.
        for block, entry in s.directory.items():
            owner = entry[1]
            if owner >= 0:
                for c, h in enumerate(s.cores):
                    if c != owner:
                        assert not h.l1d.contains(block)
                        assert not h.l2c.contains(block)

    def test_sdc_dirty_exclusive_across_cores(self, cfg):
        """§III-C: dirty copies are exclusive across all SDCs and all
        private hierarchies (clean copies may be shared)."""
        s = MultiCoreSystem(cfg, "sdc_lp")
        a = make_trace("shared_rw", n=1500, seed=3)
        b = make_trace("shared_rw", n=1500, seed=4)
        s.run([a, b], offset_address_spaces=False)
        all_resident, all_dirty = [], []
        for sdc in s.sdcs:
            all_resident.append(set(sdc.resident_blocks()))
            all_dirty.append(set(sdc.dirty_blocks()))
        for h in s.cores:
            all_resident.append(set(h.l1d.resident_blocks())
                                | set(h.l2c.resident_blocks()))
            all_dirty.append(set(h.l1d.dirty_blocks())
                             | set(h.l2c.dirty_blocks()))
        for i, dirty in enumerate(all_dirty):
            for j, resident in enumerate(all_resident):
                if i != j:
                    assert not (dirty & resident), (i, j)

    def test_sdcdir_subset_invariant(self, cfg):
        s = MultiCoreSystem(cfg, "sdc_lp")
        s.run([make_trace("random", n=1200, seed=5),
               make_trace("random", n=1200, seed=6)])
        tracked = set(s.sdcdir.tracked_blocks())
        for sdc in s.sdcs:
            assert set(sdc.resident_blocks()) <= tracked
