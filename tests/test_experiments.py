"""Tests for the experiment harness: workloads, runner, figure entry
points (exercised on micro inputs) and text rendering."""

import dataclasses

import numpy as np
import pytest

from repro.config import scaled_config
from repro.experiments import figures, report
from repro.experiments.runner import (default_config, geomean_speedup,
                                      run_variant, run_workload, speedup)
from repro.experiments.workloads import (KERNELS, WORKLOADS, Workload,
                                         multicore_mixes, workload_trace)

# Micro settings: tiny graphs + very short windows.  The regime is wrong
# for performance claims (tiny graphs fit the caches) but exercises every
# code path quickly; regime-dependent assertions live in
# test_integration_paper.py.
MICRO = dict(tier="tiny", length=8_000)


@pytest.fixture(scope="module")
def micro_cfg():
    return scaled_config(64)


class TestWorkloads:
    def test_36_workloads(self):
        assert len(WORKLOADS) == 36
        assert len({w.name for w in WORKLOADS}) == 36

    def test_kernel_coverage(self):
        assert {w.kernel for w in WORKLOADS} == set(KERNELS)

    def test_workload_trace_generates(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        t = workload_trace("pr.urand", **MICRO)
        assert len(t) <= MICRO["length"]
        assert t.kernel == "pr"
        assert t.graph == "urand"

    def test_trace_cached_on_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = workload_trace("cc.urand", **MICRO)
        files = list(tmp_path.glob("*.trace"))
        assert len(files) == 1
        b = workload_trace("cc.urand", **MICRO)
        assert np.array_equal(a.accesses, b.accesses)
        # The cached entry is served as a read-only memory map.
        assert isinstance(b.accesses, np.memmap)
        assert not b.accesses.flags.writeable

    def test_string_and_object_equivalent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        a = workload_trace("tc.road", **MICRO)
        b = workload_trace(Workload("tc", "road"), **MICRO)
        assert np.array_equal(a.accesses, b.accesses)

    def test_mixes_deterministic(self):
        assert multicore_mixes(5, seed=1) == multicore_mixes(5, seed=1)
        assert multicore_mixes(5, seed=1) != multicore_mixes(5, seed=2)

    def test_mix_shape(self):
        mixes = multicore_mixes(50, cores=4)
        assert len(mixes) == 50
        assert all(len(m) == 4 for m in mixes)


class TestRunner:
    def test_run_workload(self, micro_cfg):
        stats = run_workload("pr.urand", "baseline", config=micro_cfg,
                             **MICRO)
        assert stats.instructions > 0

    def test_speedup_sign(self):
        class S:
            def __init__(self, c):
                self.cycles = c
        assert speedup(S(200), S(100)) == pytest.approx(1.0)
        assert speedup(S(100), S(200)) == pytest.approx(-0.5)
        assert speedup(S(100), S(0)) == 0.0

    def test_geomean_speedup(self):
        class S:
            def __init__(self, c):
                self.cycles = c
        pairs = [(S(120), S(100)), (S(100), S(100))]
        g = geomean_speedup(pairs)
        assert 0 < g < 0.2
        assert geomean_speedup([]) == 0.0


class TestFigureEntryPoints:
    """Each figure function must run end-to-end on micro inputs and
    produce structurally complete results."""

    def test_fig2(self, micro_cfg):
        res = figures.fig2_mpki(["pr.urand", "cc.road"], micro_cfg, **MICRO)
        assert len(res.workloads) == 2
        assert all(m >= 0 for m in res.l1d)
        a1, a2, a3 = res.averages
        assert a1 >= a2 >= 0 or a1 >= 0   # L1 MPKI >= deeper levels
        text = report.render_fig2(res)
        assert "AVERAGE" in text

    def test_fig3(self, micro_cfg):
        res = figures.fig3_stride_dram("pr.urand", micro_cfg, **MICRO)
        assert len(res.labels) == len(res.dram_probability)
        assert sum(res.access_counts) <= MICRO["length"]
        assert "P(DRAM)" in report.render_fig3(res)

    def test_fig7(self, micro_cfg):
        res = figures.fig7_single_core(
            ["pr.urand"], variants=("llc2x", "sdc_lp"), config=micro_cfg,
            **MICRO)
        assert set(res.speedups) == {"llc2x", "sdc_lp"}
        assert len(res.speedups["llc2x"]) == 1
        gm = res.geomeans()
        assert set(gm) == {"llc2x", "sdc_lp"}
        assert "GEOMEAN" in report.render_fig7(res)

    def test_fig8_fig9(self, micro_cfg):
        res8 = figures.fig8_l2_llc_mpki(["pr.urand"], micro_cfg, **MICRO)
        assert set(res8.baseline) == {"l2c", "llc"}
        res9 = figures.fig9_l1_sdc_mpki(["pr.urand"], micro_cfg, **MICRO)
        assert set(res9.sdc_lp) == {"l1d", "sdc"}
        text = report.render_mpki_compare(res9, ("l1d", "sdc"), "t")
        assert "AVERAGE" in text

    def test_fig10(self, micro_cfg):
        res = figures.fig10_sdc_size(["pr.urand"], micro_cfg, **MICRO)
        assert len(res.sizes_kib) == 3
        assert res.sizes_kib[1] == 2 * res.sizes_kib[0]
        assert "SDC size" in report.render_fig10(res)

    def test_fig11(self, micro_cfg):
        res = figures.fig11_lp_entries(["pr.urand"], micro_cfg,
                                       entries=(8, 32), **MICRO)
        assert res.points == [8, 32]
        assert len(res.speedup_geomean) == 2

    def test_fig12(self, micro_cfg):
        res = figures.fig12_lp_assoc(["pr.urand"], micro_cfg,
                                     ways=(1, 8), **MICRO)
        assert res.points == [1, 8]

    def test_tau_sweep(self, micro_cfg):
        res = figures.tau_sweep(["pr.urand"], micro_cfg, taus=(0, 256),
                                regular_len=4000, **MICRO)
        assert res.taus == [0, 256]
        assert len(res.regular_speedup) == 2
        # tau=256 is near-baseline for regular workloads.
        assert abs(res.regular_speedup[1]) < 0.05
        assert "tau_glob" in report.render_tau_sweep(res)

    def test_fig13(self, micro_cfg):
        res = figures.fig13_expert(["pr.urand"], micro_cfg, **MICRO)
        assert len(res.sdc_lp) == len(res.expert) == 1
        assert "Expert" in report.render_fig13(res)

    def test_fig14(self, micro_cfg):
        res = figures.fig14_multicore(num_mixes=1, cores=2,
                                      variants=("sdc_lp",),
                                      config=micro_cfg, tier="tiny",
                                      length=4000)
        assert len(res.mixes) == 1
        assert len(res.weighted_speedup["sdc_lp"]) == 1
        assert "GEOMEAN" in report.render_fig14(res)

    def test_ablation(self, micro_cfg):
        res = figures.ablation_study(["pr.urand"], micro_cfg, **MICRO)
        assert set(res.speedups) == {"victim", "lp_bypass", "sdc_lp",
                                     "sdc_lp/nodep"}
        assert "Ablation" in report.render_ablation(res)

    def test_replacement_study(self, micro_cfg):
        res = figures.replacement_study(["pr.urand"], micro_cfg,
                                        policies=("lru", "drrip"), **MICRO)
        assert res.policies == ["lru", "drrip"]
        assert res.speedup_geomean[0] == 0.0
        assert "replacement" in report.render_policy_study(res)

    def test_prefetcher_study(self, micro_cfg):
        res = figures.prefetcher_study(["pr.urand"], micro_cfg,
                                       prefetchers=("none", "stride"),
                                       **MICRO)
        assert len(res.speedup_geomean) == 2
        assert res.speedup_geomean[0] == 0.0
        assert "prefetch" in report.render_prefetcher_study(res)

    def test_preprocessing_study(self, micro_cfg):
        res = figures.preprocessing_study(
            "pr", "urand", micro_cfg, orderings=("original", "degree"),
            tier="tiny", length=6000)
        assert res.orderings == ["original", "degree"]
        assert res.cost_ratio[0] == 0.0
        assert res.cost_ratio[1] > 0
        assert "reordering" in report.render_preprocessing_study(res)

    def test_energy_study(self, micro_cfg):
        res = figures.energy_study(["pr.urand"], micro_cfg, **MICRO)
        assert len(res.baseline_epki) == 1
        assert res.baseline_epki[0] > 0
        assert "energy" in report.render_energy_study(res)

    def test_context_switch_study(self, micro_cfg):
        res = figures.context_switch_study(
            ["pr.urand"], micro_cfg, intervals=(0, 2000), **MICRO)
        assert res.intervals == [0, 2000]
        assert len(res.speedup_geomean) == 2
        assert "context" in report.render_context_switch_study(res)

    def test_table2(self):
        rows = figures.table2_kernels()
        assert len(rows) == 6
        assert "Pull-Only" in report.render_table2(rows)

    def test_table3(self):
        rows = figures.table3_graphs(tier="tiny")
        assert len(rows) == 6
        assert "friendster" in report.render_table3(rows)


class TestHelpers:
    def test_pc_local_strides(self):
        from repro.trace.layout import AddressSpace
        from repro.trace.record import TraceBuilder
        space = AddressSpace()
        arr = space.add("a", 64, 1000)
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), arr.addr(np.array([0, 10, 0])))
        tb.emit(tb.pc("y"), arr.addr(np.array([5])))
        trace = tb.build()
        strides = figures.pc_local_strides(trace)
        assert strides[0] == -1          # first access of PC x
        assert strides[1] == 10
        assert strides[2] == 10
        assert strides[3] == -1          # first access of PC y

    def test_geomean(self):
        assert figures.geomean([]) == 0.0
        assert figures.geomean([0.1, 0.1]) == pytest.approx(0.1)

    def test_default_config_regime(self):
        cfg = default_config()
        assert cfg.llc.size_bytes == scaled_config(16).llc.size_bytes
