"""Tests for the synthetic graph generators (Table III surrogates)."""

import numpy as np
import pytest

from repro.graphs.generators import (grid_road_graph, kronecker_graph,
                                     power_law_graph, uniform_random_graph)
from repro.graphs.suite import GRAPH_SUITE, SIZE_TIERS, load_graph


class TestKronecker:
    def test_vertex_count_is_power_of_two(self):
        g = kronecker_graph(8, 4, seed=1)
        assert g.num_vertices == 256

    def test_deterministic(self):
        a = kronecker_graph(8, 4, seed=7)
        b = kronecker_graph(8, 4, seed=7)
        assert np.array_equal(a.out_na, b.out_na)
        assert np.array_equal(a.out_oa, b.out_oa)

    def test_seed_changes_graph(self):
        a = kronecker_graph(8, 4, seed=7)
        b = kronecker_graph(8, 4, seed=8)
        assert not (len(a.out_na) == len(b.out_na)
                    and np.array_equal(a.out_na, b.out_na))

    def test_power_law_skew(self):
        """Kron graphs must have hub vertices far above the mean degree."""
        g = kronecker_graph(12, 8, seed=1)
        degs = g.out_degrees()
        assert degs.max() > 10 * max(1.0, degs.mean())

    def test_weighted(self):
        g = kronecker_graph(8, 4, seed=1, weighted=True)
        assert g.out_weights is not None
        assert g.out_weights.min() >= 1

    def test_symmetric_by_default(self):
        g = kronecker_graph(8, 4, seed=1)
        assert g.symmetric


class TestUniformRandom:
    def test_no_hubs(self):
        """Urand's binomial degrees have no heavy tail."""
        g = uniform_random_graph(4096, 8, seed=2)
        degs = g.out_degrees()
        assert degs.max() < 5 * degs.mean()

    def test_requested_size(self):
        g = uniform_random_graph(1000, 4, seed=2)
        assert g.num_vertices == 1000

    def test_deterministic(self):
        a = uniform_random_graph(512, 4, seed=3)
        b = uniform_random_graph(512, 4, seed=3)
        assert np.array_equal(a.out_na, b.out_na)


class TestRoadGrid:
    def test_bounded_degree(self):
        """Road-like graphs have near-constant small degree."""
        g = grid_road_graph(32, diagonal_fraction=0.0, seed=3)
        assert g.out_degrees().max() <= 4

    def test_grid_adjacency(self):
        g = grid_road_graph(4, diagonal_fraction=0.0, seed=3)
        # Vertex 5 (row 1, col 1) connects to 1, 4, 6, 9.
        assert set(g.out_neighbors(5).tolist()) == {1, 4, 6, 9}

    def test_weighted_by_default(self):
        g = grid_road_graph(8, seed=3)
        assert g.out_weights is not None

    def test_shortcuts_increase_edges(self):
        base = grid_road_graph(16, diagonal_fraction=0.0, seed=3)
        more = grid_road_graph(16, diagonal_fraction=0.2, seed=3)
        assert more.num_edges > base.num_edges


class TestPowerLaw:
    def test_exponent_controls_skew(self):
        flat = power_law_graph(2048, 8, exponent=3.5, seed=4)
        steep = power_law_graph(2048, 8, exponent=1.7, seed=4)
        assert steep.in_degrees().max() > flat.in_degrees().max()

    def test_hot_vertices_scattered(self):
        """Vertex ids of hubs must not cluster at 0 (ids are permuted)."""
        g = power_law_graph(4096, 8, exponent=2.0, seed=4)
        hubs = np.argsort(g.in_degrees())[-32:]
        assert hubs.max() > 1024


class TestSuite:
    @pytest.mark.parametrize("name", sorted(GRAPH_SUITE))
    def test_all_suite_graphs_build_tiny(self, name):
        g = load_graph(name, tier="tiny")
        g.validate()
        assert g.num_vertices > 100
        assert g.num_edges > g.num_vertices

    def test_load_graph_cached(self):
        a = load_graph("urand", tier="tiny")
        b = load_graph("urand", tier="tiny")
        assert a is b

    def test_unknown_graph_raises(self):
        with pytest.raises(ValueError, match="unknown graph"):
            load_graph("nonexistent")

    def test_unknown_tier_raises(self):
        with pytest.raises(ValueError, match="tier"):
            GRAPH_SUITE["urand"].build("huge")

    def test_tiers_scale_size(self):
        tiny = load_graph("urand", tier="tiny")
        small = load_graph("urand", tier="small")
        assert small.num_vertices > tiny.num_vertices

    def test_weighted_variants(self):
        g = load_graph("urand", tier="tiny", weighted=True)
        assert g.out_weights is not None

    def test_friendster_largest_edge_count(self):
        """Friendster is the paper's biggest input; preserve the order."""
        sizes = {name: load_graph(name, "tiny").num_edges
                 for name in ("road", "friendster")}
        assert sizes["friendster"] > sizes["road"]
