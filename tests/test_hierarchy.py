"""Tests for the three-level hierarchy: lookup cascades, fills,
writebacks, and latency accounting."""

import dataclasses

import pytest

from repro.config import SystemConfig, scaled_config
from repro.mem.hierarchy import DRAM, L1D, L2C, LLC, MemoryHierarchy


@pytest.fixture
def cfg():
    # No prefetchers: deterministic residency for these tests.
    base = scaled_config(64)
    return dataclasses.replace(
        base,
        l1d=dataclasses.replace(base.l1d, prefetcher=None),
        l2c=dataclasses.replace(base.l2c, prefetcher=None))


@pytest.fixture
def hier(cfg):
    return MemoryHierarchy(cfg, enable_prefetch=False)


class TestLookupCascade:
    def test_cold_access_reaches_dram(self, hier, cfg):
        r = hier.access(1000, False)
        assert r.level == DRAM
        assert r.latency >= (cfg.l1d.latency + cfg.l2c.latency +
                             cfg.llc.latency + cfg.dram.row_hit_latency)

    def test_second_access_hits_l1(self, hier, cfg):
        hier.access(1000, False)
        r = hier.access(1000, False)
        assert r.level == L1D
        assert r.latency == cfg.l1d.latency

    def test_fill_installs_all_levels(self, hier):
        hier.access(42, False)
        assert hier.l1d.contains(42)
        assert hier.l2c.contains(42)
        assert hier.llc.contains(42)

    def test_l2_hit_after_l1_eviction(self, hier, cfg):
        hier.access(0, False)
        # Thrash L1 set 0 without evicting from the larger L2.
        nsets_l1 = hier.l1d.num_sets
        for i in range(1, hier.l1d.ways + 1):
            hier.access(i * nsets_l1, False)
        r = hier.access(0, False)
        assert r.level in (L2C, LLC)
        assert r.latency >= cfg.l1d.latency + cfg.l2c.latency

    def test_latency_monotone_with_depth(self, hier):
        lat_dram = hier.access(7, False).latency
        lat_l1 = hier.access(7, False).latency
        assert lat_dram > lat_l1


class TestWritebacks:
    def test_dirty_l1_eviction_writes_to_l2(self, hier):
        hier.access(0, True)     # dirty in L1
        nsets_l1 = hier.l1d.num_sets
        for i in range(1, hier.l1d.ways + 1):
            hier.access(i * nsets_l1, False)
        assert not hier.l1d.contains(0)
        # L2 must hold the dirty copy now.
        assert hier.l2c.contains(0)
        _, dirty = hier.l2c.invalidate(0)
        assert dirty

    def test_llc_dirty_eviction_writes_dram(self, cfg):
        h = MemoryHierarchy(cfg, enable_prefetch=False)
        h._writeback_to_llc(1)
        # Fill the LLC set of block 1 until it evicts block 1.
        nsets = h.llc.num_sets
        for i in range(1, h.llc.ways + 1):
            h._fill_llc(1 + i * nsets)
        assert h.dram.stats.writes >= 1

    def test_write_allocates(self, hier):
        r = hier.access(55, True)
        assert r.level == DRAM
        assert hier.l1d.contains(55)


class TestCoherenceHelpers:
    def test_contains_any_level(self, hier):
        hier.access(9, False)
        assert hier.contains(9)
        hier.l1d.invalidate(9)
        assert hier.contains(9)      # still in L2/LLC

    def test_extract_removes_everywhere(self, hier):
        hier.access(9, False)
        present, lat = hier.extract(9)
        assert present
        assert lat > 0
        assert not hier.contains(9)

    def test_extract_absent(self, hier):
        present, lat = hier.extract(12345)
        assert not present
        assert lat == 0


class TestPrefetchers:
    def test_next_line_prefetch_fills_l1(self):
        cfg = scaled_config(64)
        h = MemoryHierarchy(cfg)   # prefetchers on
        h.access(100, False)
        assert h.l1d.contains(101)
        assert h.l1d.stats.prefetch_fills >= 1

    def test_sequential_stream_benefits(self):
        cfg = scaled_config(64)
        h_pf = MemoryHierarchy(cfg)
        h_no = MemoryHierarchy(cfg, enable_prefetch=False)
        for b in range(200):
            h_pf.access(b, False)
            h_no.access(b, False)
        assert h_pf.l1d.stats.misses < h_no.l1d.stats.misses


class TestSharedStructures:
    def test_external_llc_used(self, cfg):
        from repro.mem.cache import SetAssocCache
        shared = SetAssocCache(cfg.llc)
        h1 = MemoryHierarchy(cfg, llc=shared, enable_prefetch=False)
        h2 = MemoryHierarchy(cfg, llc=shared, enable_prefetch=False)
        h1.access(77, False)
        r = h2.access(77, False)
        assert r.level == LLC      # h2 hits h1's LLC fill
