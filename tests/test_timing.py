"""Tests for the interval timing model (DESIGN.md §5)."""

import pytest

from repro.config import CoreConfig
from repro.mem.timing import CoreTimer


def timer(width=4, rob=224, mshr=10, hit_lat=4):
    return CoreTimer(CoreConfig(width=width, rob_entries=rob), mshr,
                     hit_lat)


class TestIssueBandwidth:
    def test_hits_bound_by_issue_rate(self):
        t = timer()
        for _ in range(1000):
            t.access(gap=3, latency=4, dep_completion=None)
        # 4 instructions per access at width 4 = 1 cycle per access.
        assert t.cycles == pytest.approx(1000 + 4, rel=0.05)
        assert t.ipc == pytest.approx(4.0, rel=0.05)

    def test_instruction_count(self):
        t = timer()
        for _ in range(10):
            t.access(gap=2, latency=4, dep_completion=None)
        assert t.instructions == 30


class TestMLP:
    def test_independent_misses_overlap(self):
        t_many = timer(mshr=10)
        for _ in range(100):
            t_many.access(gap=0, latency=200, dep_completion=None)
        t_one = timer(mshr=1)
        for _ in range(100):
            t_one.access(gap=0, latency=200, dep_completion=None)
        # With MSHR=10 the misses pipeline ~10 deep.
        assert t_many.cycles < t_one.cycles / 5

    def test_mshr_serializes_excess_misses(self):
        t = timer(mshr=2)
        for _ in range(10):
            t.access(gap=0, latency=100, dep_completion=None)
        # 10 misses, 2 at a time -> at least 5 rounds of 100 cycles.
        assert t.cycles >= 500

    def test_hits_do_not_occupy_mshrs(self):
        t = timer(mshr=1, hit_lat=4)
        t.access(gap=0, latency=300, dep_completion=None)   # miss
        # Hits (latency == hit) should not wait for the miss.
        c = t.access(gap=0, latency=4, dep_completion=None)
        assert c < 300

    def test_invalid_mshr_raises(self):
        with pytest.raises(ValueError):
            timer(mshr=0)


class TestDependencies:
    def test_dependent_load_serializes(self):
        t = timer()
        c1 = t.access(gap=0, latency=200, dep_completion=None)
        c2 = t.access(gap=0, latency=200, dep_completion=c1)
        assert c2 >= c1 + 200

    def test_independent_load_does_not_wait(self):
        t = timer()
        c1 = t.access(gap=0, latency=200, dep_completion=None)
        c2 = t.access(gap=0, latency=200, dep_completion=None)
        assert c2 < c1 + 200

    def test_pointer_chase_is_latency_bound(self):
        """A dependent chain of N misses costs ~N x latency."""
        t = timer()
        c = None
        for _ in range(50):
            c = t.access(gap=0, latency=100, dep_completion=c)
        assert t.cycles >= 50 * 100

    def test_stale_dep_is_free(self):
        t = timer()
        c1 = t.access(gap=0, latency=4, dep_completion=None)
        for _ in range(100):
            t.access(gap=0, latency=4, dep_completion=None)
        c = t.access(gap=0, latency=4, dep_completion=c1)
        assert c > c1    # already completed; no extra stall


class TestROB:
    def test_rob_limits_runahead(self):
        # Tiny ROB: the front end cannot slide past a long miss.
        t_small = timer(rob=32, mshr=64)
        t_big = timer(rob=4096, mshr=64)
        for t in (t_small, t_big):
            t.access(gap=0, latency=5000, dep_completion=None)
            for _ in range(200):
                t.access(gap=0, latency=4, dep_completion=None)
        assert t_small.cycles >= t_big.cycles

    def test_window_size_floor(self):
        t = timer(rob=8)
        assert t.rob_window >= 8


class TestMSHRPools:
    def test_pools_independent(self):
        """SDC-pool misses do not consume L1-pool MSHRs (Table I gives
        each structure its own MSHR file)."""
        t_two_pools = timer(mshr=2)
        for i in range(20):
            t_two_pools.access(gap=0, latency=100, dep_completion=None,
                               pool=i % 2)
        t_one_pool = timer(mshr=2)
        for _ in range(20):
            t_one_pool.access(gap=0, latency=100, dep_completion=None,
                              pool=0)
        assert t_two_pools.cycles < t_one_pool.cycles

    def test_separate_sdc_pool_size(self):
        from repro.config import CoreConfig
        from repro.mem.timing import CoreTimer
        t = CoreTimer(CoreConfig(), 4, 4, sdc_mshr_entries=16)
        assert t._limits == (4, 16)

    def test_default_sdc_pool_mirrors_l1(self):
        assert timer(mshr=7)._limits == (7, 7)


class TestAggregates:
    def test_cycles_max_of_streams(self):
        t = timer()
        t.access(gap=0, latency=1000, dep_completion=None)
        assert t.cycles >= 1000

    def test_ipc_zero_before_any_access(self):
        assert timer().ipc == 0.0

    def test_completion_monotone_per_dep_chain(self):
        t = timer()
        prev = 0.0
        c = None
        for _ in range(20):
            c = t.access(gap=1, latency=50, dep_completion=c)
            assert c > prev
            prev = c
