"""Batch (structure-of-arrays) backend: bit-identity and plumbing.

The contract under test is ISSUE 6's tentpole: every run the batch
kernel accepts must produce a ``SystemStats`` payload — counters, float
cycles, per-access levels, telemetry timeline — bit-identical to the
reference Python loop, and everything it cannot accept must fall back
to the reference loop silently.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.config import scaled_config
from repro.core.batch import (BACKENDS, kernel_available, resolve_backend,
                              try_run_batch, unsupported_reason)
from repro.core.system import SingleCoreSystem
from repro.experiments import results_cache as rc
from repro.experiments.parallel import Job, RunPolicy, _job_spec, run_grid
from repro.experiments.runner import default_config
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace
from repro.validate.differential import (FIG7_VARIANTS, diff_ref_vs_batch,
                                         force_divmod, use_generic_lru)

needs_kernel = pytest.mark.skipif(not kernel_available(),
                                  reason="no C compiler for the batch "
                                         "kernel on this host")


def build_trace(ops, deps=False):
    """ops: list of (block_index, irregular, write, pc_choice, gap)."""
    space = AddressSpace()
    space.add("seq", 8, 1 << 14)
    rnd = space.add("rnd", 8, 1 << 14, irregular_hint=True)
    seq = space["seq"]
    acc = np.zeros(len(ops), dtype=ACCESS_DTYPE)
    for i, (blk, irr, write, pc, gap) in enumerate(ops):
        region = rnd if irr else seq
        acc["addr"][i] = region.addr(blk)
        acc["write"][i] = write
        acc["pc"][i] = 0x400000 + 4 * pc
        acc["gap"][i] = gap
        acc["dep"][i] = (i % 7) - 1 if deps and i % 3 == 0 else -1
    return Trace(acc, space)


ops_strategy = st.lists(
    st.tuples(st.integers(0, 2000), st.booleans(), st.booleans(),
              st.integers(0, 12), st.integers(0, 5)),
    min_size=1, max_size=300)


@pytest.fixture(scope="module")
def cfg():
    return scaled_config(64)


@pytest.fixture(scope="module")
def trace():
    rng = np.random.default_rng(13)
    ops = [(int(rng.integers(0, 2000)), bool(rng.random() < 0.5),
            bool(rng.random() < 0.25), int(rng.integers(0, 12)),
            int(rng.integers(0, 4)))
           for _ in range(3000)]
    return build_trace(ops, deps=True)


class TestResolveBackend:
    def test_default_is_ref(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None) == "ref"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batch")
        assert resolve_backend(None) == "batch"

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batch")
        assert resolve_backend("ref") == "ref"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("vectorized")
        assert set(BACKENDS) == {"ref", "batch"}


@needs_kernel
class TestBitIdentity:
    @pytest.mark.parametrize("variant", FIG7_VARIANTS)
    def test_fig7_variants_full_payload(self, trace, cfg, variant):
        # diff_ref_vs_batch raises DifferentialMismatch on any field.
        ref, batch = diff_ref_vs_batch(trace, cfg, variant)
        assert batch.l1d.accesses > 0

    @pytest.mark.parametrize("variant", ("victim", "lp_bypass", "expert"))
    def test_extra_variants(self, trace, cfg, variant):
        diff_ref_vs_batch(trace, cfg, variant)

    def test_warmup_window(self, trace, cfg):
        diff_ref_vs_batch(trace, cfg, "sdc_lp", warmup=1000)

    def test_run_seam_returns_batch_result(self, trace, cfg):
        ref = SingleCoreSystem(cfg, "baseline").run(trace, backend="ref")
        batch = SingleCoreSystem(cfg, "baseline").run(trace,
                                                      backend="batch")
        assert ref.to_payload() == batch.to_payload()

    def test_flush_sdc_every(self, trace, cfg):
        a = SingleCoreSystem(cfg, "sdc_lp").run(trace, backend="ref",
                                                flush_sdc_every=700)
        b = SingleCoreSystem(cfg, "sdc_lp").run(trace, backend="batch",
                                                flush_sdc_every=700)
        assert a.to_payload() == b.to_payload()

    def test_divmod_geometry_supported(self, trace, cfg):
        """force_divmod systems stay inside the batch envelope."""
        ref = force_divmod(SingleCoreSystem(cfg, "baseline"))
        want = ref.run(trace, backend="ref")
        sysb = force_divmod(SingleCoreSystem(cfg, "baseline"))
        got = try_run_batch(sysb, trace)
        assert got is not None
        assert want.to_payload() == got.to_payload()

    def test_back_to_back_runs_share_state_correctly(self, trace, cfg):
        """The kernel writes post-run state back into the Python
        objects, so a second (reference) run on the same system must
        continue exactly where a pure-reference pair would."""
        twice_ref = SingleCoreSystem(cfg, "baseline")
        twice_ref.run(trace, backend="ref")
        want = twice_ref.run(trace, backend="ref")
        mixed = SingleCoreSystem(cfg, "baseline")
        mixed.run(trace, backend="batch")
        got = mixed.run(trace, backend="ref")
        assert want.to_payload() == got.to_payload()


@needs_kernel
class TestPropertyEquivalence:
    @given(ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_random_traces_baseline(self, ops):
        trace = build_trace(ops)
        cfg = scaled_config(64)
        a = SingleCoreSystem(cfg, "baseline",
                             telemetry_every=64).run(trace, backend="ref")
        b = SingleCoreSystem(cfg, "baseline",
                             telemetry_every=64).run(trace,
                                                     backend="batch")
        assert a.to_payload() == b.to_payload()

    @given(ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_random_traces_sdc_lp(self, ops):
        trace = build_trace(ops, deps=True)
        cfg = scaled_config(64)
        a = SingleCoreSystem(cfg, "sdc_lp",
                             telemetry_every=64).run(trace, backend="ref")
        b = SingleCoreSystem(cfg, "sdc_lp",
                             telemetry_every=64).run(trace,
                                                     backend="batch")
        assert a.to_payload() == b.to_payload()


class TestFallback:
    def test_generic_lru_twin_falls_back(self, trace, cfg):
        """The generic-LRU differential twin must keep exercising the
        reference loop — the batch kernel refuses it."""
        system = use_generic_lru(SingleCoreSystem(cfg, "baseline"))
        assert unsupported_reason(system, trace) is not None
        assert try_run_batch(system, trace) is None

    def test_check_every_falls_back(self, trace, cfg):
        system = SingleCoreSystem(cfg, "baseline", check_every=500)
        assert unsupported_reason(system, trace) is not None

    def test_warm_system_falls_back(self, trace, cfg):
        system = SingleCoreSystem(cfg, "baseline")
        system.run(trace, backend="ref")
        assert unsupported_reason(system, trace) is not None

    def test_kill_switch_env(self, trace, cfg, monkeypatch):
        from repro.core.batch import build
        monkeypatch.setattr(build, "_cached_kernel", None)
        monkeypatch.setattr(build, "_load_attempted", False)
        monkeypatch.setenv("REPRO_NO_BATCH_KERNEL", "1")
        system = SingleCoreSystem(cfg, "baseline")
        # The seam silently lands on the reference loop.
        stats = system.run(trace, backend="batch")
        assert stats.l1d.accesses == len(trace)


class TestCacheKeying:
    def test_batch_and_ref_keys_never_alias(self):
        job = Job("pr.urand", "baseline", default_config(), tier="tiny",
                  length=5000)
        _, key_ref = _job_spec(job)
        _, key_batch = _job_spec(job, backend="batch")
        assert key_ref != key_batch

    def test_ref_key_is_unchanged_by_the_new_extra(self):
        """Reference keys stay extra-free, so pre-existing caches
        survive this PR."""
        job = Job("pr.urand", "baseline", default_config(), tier="tiny",
                  length=5000)
        _, key_default = _job_spec(job)
        _, key_explicit = _job_spec(job, backend="ref")
        assert key_default == key_explicit

    def test_code_fingerprint_covers_kernel_c(self):
        from repro.experiments.results_cache import (_FINGERPRINT_SOURCES,
                                                     _REPRO_ROOT)
        covered = []
        for entry in _FINGERPRINT_SOURCES:
            p = _REPRO_ROOT / entry
            if p.is_dir():
                covered.extend(p.rglob("*.c"))
        assert any(f.name == "kernel.c" for f in covered)


@needs_kernel
class TestGridEquivalence:
    """Fault-armed quick-fig7-shaped grid under REPRO_BACKEND=batch must
    produce byte-identical payloads to the fault-free reference grid."""

    WLS = ("pr.urand", "cc.urand")
    VARIANTS = ("baseline", "sdc_lp", "topt")
    FAST = RunPolicy(retries=2, backoff=0.01, backoff_max=0.05)

    def _grid(self):
        cfg = default_config()
        return [Job(wl, v, cfg, tier="tiny", length=8000)
                for wl in self.WLS for v in self.VARIANTS]

    def teardown_method(self):
        faults.deactivate()

    def test_fault_armed_batch_grid_matches_reference(self, tmp_path):
        ref = run_grid(self._grid(),
                       cache=rc.ResultsCache(tmp_path / "ref"),
                       manifest_dir=tmp_path / "runs", backend="ref")
        faults.activate(faults.FaultPlan.parse("seed=7,exc:0.3:2"))
        try:
            batch = run_grid(self._grid(),
                             cache=rc.ResultsCache(tmp_path / "batch"),
                             manifest_dir=tmp_path / "runs",
                             policy=self.FAST, backend="batch")
        finally:
            faults.deactivate()
        for a, b in zip(ref, batch):
            assert json.dumps(a.to_payload(), sort_keys=True) == \
                json.dumps(b.to_payload(), sort_keys=True)

    def test_env_backend_threads_into_grid(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "batch")
        grid = self._grid()[:2]
        res = run_grid(grid, cache=rc.ResultsCache(tmp_path / "env"),
                       manifest_dir=tmp_path / "runs")
        monkeypatch.delenv("REPRO_BACKEND")
        ref = run_grid(grid, cache=rc.ResultsCache(tmp_path / "ref2"),
                       manifest_dir=tmp_path / "runs")
        for a, b in zip(res, ref):
            assert a.to_payload() == b.to_payload()


@needs_kernel
class TestSoARoundTrip:
    def test_export_import_identity(self, trace, cfg):
        system = SingleCoreSystem(cfg, "baseline")
        system.run(trace, backend="ref")
        l1 = system.hierarchy.l1d
        before = [dict(s) for s in l1.sets]
        soa = l1.export_soa()
        l1.import_soa(soa, clock=soa["clock"])
        assert [dict(s) for s in l1.sets] == before
        assert dataclasses.asdict(l1.stats)  # stats untouched by export
