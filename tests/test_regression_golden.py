"""Golden-value regression tests.

A fixed synthetic trace is simulated under several variants and the
exact counter values are pinned.  Any change to the cache state
machines, routing, replacement, prefetching, DRAM or timing model shows
up here immediately — if a change is *intentional*, regenerate the
constants with the snippet in this file's git history (the simulation
is fully deterministic).
"""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace


def golden_trace() -> Trace:
    space = AddressSpace()
    space.add("seq", 4, 1 << 14)
    rnd = space.add("rnd", 4, 1 << 19, irregular_hint=True)
    seq = space["seq"]
    rng = np.random.default_rng(2026)
    n = 6000
    acc = np.zeros(n, dtype=ACCESS_DTYPE)
    seq_idx = np.arange(n) % (1 << 14)
    rnd_idx = rng.integers(0, 1 << 19, size=n)
    use_rnd = rng.random(n) < 0.5
    acc["addr"] = np.where(use_rnd, rnd.addr(rnd_idx), seq.addr(seq_idx))
    acc["pc"] = np.where(use_rnd, 0x400024, 0x400048)
    acc["write"] = rng.random(n) < 0.2
    acc["gap"] = 2
    acc["dep"] = -1
    return Trace(acc, space)


# (cycles, l1d_misses, l2c_misses, llc_misses, dram_reads, dram_writes,
#  sdc_misses-or-None) per variant at scaled_config(64).
GOLDEN = {
    "baseline": (59239.75, 3191, 3042, 3029, 3029, 753, None),
    "sdc_lp": (37604.5, 3, 3, 3, 2949, 570, 2947),
    "topt": (57916.5, 3191, 3042, 2899, 2899, 685, None),
    "victim": (59724.25, 3218, 3050, 3041, 3041, 751, None),
}


@pytest.mark.parametrize("variant", sorted(GOLDEN))
def test_golden_counters(variant):
    stats = SingleCoreSystem(scaled_config(64), variant).run(golden_trace())
    cycles, l1m, l2m, llcm, dr, dw, sdcm = GOLDEN[variant]
    assert stats.cycles == pytest.approx(cycles)
    assert stats.l1d.misses == l1m
    assert stats.l2c.misses == l2m
    assert stats.llc.misses == llcm
    assert stats.dram.reads == dr
    assert stats.dram.writes == dw
    if sdcm is None:
        assert stats.sdc is None
    else:
        assert stats.sdc.misses == sdcm


def test_golden_variant_ordering():
    """The headline relation on this trace: sdc_lp < topt < baseline."""
    assert GOLDEN["sdc_lp"][0] < GOLDEN["topt"][0] < GOLDEN["baseline"][0]
