"""Tests for the dynamic-energy accounting (§V-E extension)."""

import pytest

from repro.config import scaled_config
from repro.core.energy import (EnergyBreakdown, energy_of,
                               energy_per_kilo_instruction)
from repro.core.system import SingleCoreSystem
from tests.test_system import synthetic_trace


@pytest.fixture(scope="module")
def runs():
    cfg = scaled_config(64)
    trace = synthetic_trace("random", n=8000)
    base = SingleCoreSystem(cfg, "baseline").run(trace)
    prop = SingleCoreSystem(cfg, "sdc_lp").run(trace)
    return base, prop


class TestBreakdown:
    def test_all_components_nonnegative(self, runs):
        for stats in runs:
            e = energy_of(stats)
            assert all(x >= 0 for x in e.row())

    def test_total_is_sum(self, runs):
        e = energy_of(runs[0])
        assert e.total == pytest.approx(sum(e.row()[:-1]))

    def test_baseline_has_no_sdc_lp_energy(self, runs):
        e = energy_of(runs[0])
        assert e.sdc == 0.0
        assert e.lp == 0.0
        assert e.sdcdir == 0.0

    def test_sdc_lp_shifts_energy_from_l2_llc(self, runs):
        """The design's energy story: fewer L2C/LLC lookups on the
        cache-averse stream."""
        base, prop = runs
        eb, ep = energy_of(base), energy_of(prop)
        assert ep.l2c < eb.l2c * 0.5
        assert ep.llc < eb.llc * 0.5
        assert ep.sdc > 0 and ep.lp > 0

    def test_on_chip_excludes_dram(self, runs):
        e = energy_of(runs[0])
        assert e.on_chip == pytest.approx(e.total - e.dram)

    def test_epki_positive(self, runs):
        assert energy_per_kilo_instruction(runs[0]) > 0

    def test_epki_zero_instructions(self):
        class Empty:
            instructions = 0
        assert energy_per_kilo_instruction(Empty()) == 0.0


class TestComparison:
    def test_sdc_lp_saves_on_chip_energy_on_averse_stream(self, runs):
        """Bypassing removes whole-hierarchy lookups, so the on-chip
        energy of the irregular workload drops under SDC+LP."""
        base, prop = runs
        assert energy_of(prop).on_chip < energy_of(base).on_chip
