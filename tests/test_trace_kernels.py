"""Tests for the instrumented (trace-emitting) kernels.

Two families of checks: (1) the tracer computes the same algorithmic
result as the reference kernel, and (2) the emitted stream is
structurally faithful — addresses land in the right regions, dependency
links point at the producing NA load, and the per-region access counts
match what the algorithm must touch.
"""

import numpy as np
import pytest

from repro.graphs.generators import (grid_road_graph, kronecker_graph,
                                     uniform_random_graph)
from repro.kernels import bfs as ref_bfs
from repro.kernels import connected_components as ref_cc
from repro.kernels import sssp as ref_sssp
from repro.kernels.common import pick_source
from repro.trace.kernels import (TRACERS, generate_trace, trace_bc,
                                 trace_bfs, trace_cc, trace_pagerank,
                                 trace_sssp, trace_tc)


@pytest.fixture(scope="module")
def kron():
    return kronecker_graph(9, 6, seed=21)


@pytest.fixture(scope="module")
def road():
    return grid_road_graph(12, seed=22)


def region_counts(trace):
    space = trace.address_space
    rids = space.classify_addresses(trace.accesses["addr"].astype(np.int64))
    names = list(space.regions)
    return {names[i]: int((rids == i).sum()) for i in range(len(names))}


class TestCommon:
    @pytest.mark.parametrize("kernel", sorted(TRACERS))
    def test_all_tracers_produce_valid_traces(self, kernel, kron, road):
        graph = road if kernel == "sssp" else kron
        trace = generate_trace(kernel, graph, max_accesses=30_000)
        trace.validate()
        assert len(trace) > 100
        assert trace.kernel == kernel

    @pytest.mark.parametrize("kernel", sorted(TRACERS))
    def test_all_addresses_mapped(self, kernel, kron, road):
        graph = road if kernel == "sssp" else kron
        trace = generate_trace(kernel, graph, max_accesses=20_000)
        rids = trace.address_space.classify_addresses(
            trace.accesses["addr"].astype(np.int64))
        assert (rids >= 0).all(), f"{kernel}: unmapped addresses"

    @pytest.mark.parametrize("kernel", sorted(TRACERS))
    def test_max_accesses_respected(self, kernel, kron, road):
        graph = road if kernel == "sssp" else kron
        trace = generate_trace(kernel, graph, max_accesses=5_000)
        assert len(trace) <= 5_000

    def test_unknown_kernel_raises(self, kron):
        with pytest.raises(ValueError, match="unknown kernel"):
            generate_trace("nope", kron)


class TestPageRankTrace:
    def test_region_access_counts(self, kron):
        """One full PR iteration touches every data structure a known
        number of times (Algorithm 1)."""
        n = kron.num_vertices
        m = len(kron.in_na)
        trace = trace_pagerank(kron, iterations=1)
        counts = region_counts(trace)
        assert counts["in_na"] == m                 # one NA load per edge
        assert counts["outgoing_contrib"] == n + m  # n stores + m gathers
        assert counts["scores"] == 3 * n            # contrib + load + store
        assert counts["in_oa"] == n

    def test_gather_depends_on_na_load(self, kron):
        trace = trace_pagerank(kron, iterations=1)
        acc = trace.accesses
        space = trace.address_space
        na, contrib = space["in_na"], space["outgoing_contrib"]
        gather = np.flatnonzero(
            (acc["addr"] >= np.uint64(contrib.base))
            & (acc["addr"] < np.uint64(contrib.end)) & (acc["write"] == 0))
        deps = acc["dep"][gather]
        assert (deps >= 0).all()
        dep_addrs = acc["addr"][deps]
        assert ((dep_addrs >= np.uint64(na.base))
                & (dep_addrs < np.uint64(na.end))).all()

    def test_gather_addresses_follow_graph(self, kron):
        """The contrib gather stream must equal contrib.addr(NA)."""
        trace = trace_pagerank(kron, iterations=1)
        acc = trace.accesses
        space = trace.address_space
        contrib = space["outgoing_contrib"]
        loads = acc[(acc["addr"] >= np.uint64(contrib.base))
                    & (acc["addr"] < np.uint64(contrib.end))
                    & (acc["write"] == 0)]
        expected = contrib.addr(kron.in_na.astype(np.int64))
        assert np.array_equal(loads["addr"].astype(np.int64), expected)

    def test_writes_only_to_property_arrays(self, kron):
        trace = trace_pagerank(kron, iterations=1)
        acc = trace.accesses
        space = trace.address_space
        stores = acc[acc["write"] == 1]
        for region_name in ("in_oa", "in_na"):
            r = space[region_name]
            inside = ((stores["addr"] >= np.uint64(r.base))
                      & (stores["addr"] < np.uint64(r.end)))
            assert not inside.any()

    def test_iterations_scale_length(self, kron):
        one = trace_pagerank(kron, iterations=1)
        two = trace_pagerank(kron, iterations=2)
        assert len(two) == 2 * len(one)


class TestBFSTrace:
    def test_reaches_same_vertices_as_reference(self, kron):
        src = pick_source(kron, seed=5)
        trace_bfs(kron, source=src)
        ref = ref_bfs(kron, src)
        assert ((trace_bfs.last_parent >= 0) == (ref >= 0)).all()

    def test_parent_claims_once_per_vertex(self, kron):
        src = pick_source(kron, seed=5)
        trace = trace_bfs(kron, source=src)
        acc = trace.accesses
        parent = trace.address_space["parent"]
        claims = acc[(acc["write"] == 1)
                     & (acc["addr"] >= np.uint64(parent.base))
                     & (acc["addr"] < np.uint64(parent.end))]
        # Each vertex's parent is stored at most twice (push CAS + the
        # pull phase writes once per vertex).
        addrs, counts = np.unique(claims["addr"], return_counts=True)
        assert counts.max() <= 2

    def test_dense_graph_uses_pull_phase(self):
        g = kronecker_graph(8, 16, seed=23)
        src = pick_source(g, seed=0)
        trace = trace_bfs(g, source=src)
        bitmap = trace.address_space["depth"]
        acc = trace.accesses
        pulls = ((acc["addr"] >= np.uint64(bitmap.base))
                 & (acc["addr"] < np.uint64(bitmap.end)))
        assert pulls.any(), "expected bottom-up phase on a dense graph"

    def test_path_graph_stays_push(self):
        """Singleton frontiers never trigger the bottom-up heuristic."""
        from repro.graphs.csr import from_edges
        path = from_edges(np.array([[i, i + 1] for i in range(199)]),
                          num_vertices=200, symmetrize=True)
        trace = trace_bfs(path, source=0)
        bitmap = trace.address_space["depth"]
        acc = trace.accesses
        pulls = ((acc["addr"] >= np.uint64(bitmap.base))
                 & (acc["addr"] < np.uint64(bitmap.end)))
        assert not pulls.any()


class TestCCTrace:
    def test_components_match_reference(self, kron):
        trace_cc(kron)
        assert np.array_equal(trace_cc.last_comp, ref_cc(kron))

    def test_hook_stores_present(self, kron):
        trace = trace_cc(kron)
        acc = trace.accesses
        comp = trace.address_space["comp"]
        stores = acc[(acc["write"] == 1)
                     & (acc["addr"] >= np.uint64(comp.base))
                     & (acc["addr"] < np.uint64(comp.end))]
        assert len(stores) > 0

    def test_full_edge_scan_per_round(self, kron):
        trace = trace_cc(kron, max_rounds=1)
        counts = region_counts(trace)
        assert counts["out_na"] == len(kron.out_na)


class TestSSSPTrace:
    def test_distances_match_reference(self, road):
        trace_sssp(road, source=0)
        ref = ref_sssp(road, 0)
        assert np.array_equal(trace_sssp.last_dist, ref)

    def test_distances_match_on_powerlaw(self):
        g = kronecker_graph(8, 6, seed=24, weighted=True)
        src = pick_source(g, seed=1)
        trace_sssp(g, source=src)
        ref = ref_sssp(g, src)
        assert np.array_equal(trace_sssp.last_dist, ref)

    def test_unweighted_raises(self, kron):
        with pytest.raises(ValueError, match="weighted"):
            trace_sssp(kron, source=0)

    def test_weight_loads_accompany_na_loads(self, road):
        trace = trace_sssp(road, source=0)
        counts = region_counts(trace)
        assert counts["weights"] == counts["out_na"]


class TestTCTrace:
    def test_oa_indexed_by_graph_data(self, kron):
        """TC's OA[v] loads are the irregular stream: their addresses are
        determined by NA contents."""
        trace = trace_tc(kron)
        counts = region_counts(trace)
        assert counts["out_oa"] > kron.num_vertices  # per-edge OA loads

    def test_scan_cap_bounds_length(self, kron):
        short = trace_tc(kron, scan_cap=2)
        long = trace_tc(kron, scan_cap=16)
        assert len(short) < len(long)


class TestBCTrace:
    def test_produces_forward_and_backward_phases(self, kron):
        trace = trace_bc(kron, num_sources=1, seed=3)
        pcs = set(trace.accesses["pc"].tolist())
        assert len(pcs) > 8   # both sweeps' sites present

    def test_sigma_and_delta_touched(self, kron):
        trace = trace_bc(kron, num_sources=1, seed=3)
        counts = region_counts(trace)
        assert counts["sigma"] > 0
        assert counts["delta"] > 0

    def test_more_sources_longer_trace(self, kron):
        one = trace_bc(kron, num_sources=1, seed=3)
        two = trace_bc(kron, num_sources=2, seed=3)
        assert len(two) > len(one)
