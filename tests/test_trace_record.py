"""Tests for trace records, the builder and the stream assembler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.layout import AddressSpace
from repro.trace.record import (ACCESS_DTYPE, SegmentField, Trace,
                                TraceBuilder, assemble_vertex_edge_stream)


@pytest.fixture
def space():
    s = AddressSpace()
    s.add("arr", 4, 1000)
    return s


class TestTraceBuilder:
    def test_emit_scalar_and_vector(self, space):
        tb = TraceBuilder(space)
        pc = tb.pc("site")
        tb.emit(pc, space["arr"].addr(0))
        tb.emit(pc, space["arr"].addr(np.arange(5)))
        trace = tb.build()
        assert len(trace) == 6
        assert (trace.accesses["pc"] == pc).all()

    def test_pc_ids_stable_and_distinct(self, space):
        tb = TraceBuilder(space)
        a = tb.pc("a")
        b = tb.pc("b")
        assert a != b
        assert tb.pc("a") == a

    def test_dep_rel_links_within_run(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), space["arr"].addr(np.arange(4)), dep_rel=-1)
        deps = tb.build().accesses["dep"]
        assert list(deps) == [-1, 0, 1, 2]

    def test_dep_rebased_across_chunks(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), space["arr"].addr(np.arange(3)))
        tb.emit(tb.pc("y"), space["arr"].addr(np.arange(2)), dep_rel=-1)
        deps = tb.build().accesses["dep"]
        assert list(deps) == [-1, -1, -1, -1, 3]

    def test_write_flag_and_gap(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("w"), space["arr"].addr(0), write=True, gap=7)
        acc = tb.build().accesses
        assert acc["write"][0] == 1
        assert acc["gap"][0] == 7

    def test_wrong_dtype_chunk_rejected(self, space):
        tb = TraceBuilder(space)
        with pytest.raises(TypeError):
            tb.append_chunk(np.zeros(3, dtype=np.int64))

    def test_empty_build(self, space):
        trace = TraceBuilder(space).build()
        assert len(trace) == 0
        assert trace.num_instructions == 0


class TestTrace:
    def test_num_instructions(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), space["arr"].addr(np.arange(10)), gap=3)
        assert tb.build().num_instructions == 10 * 4

    def test_validate_rejects_forward_dep(self, space):
        acc = np.zeros(2, dtype=ACCESS_DTYPE)
        acc["dep"] = [1, -1]
        with pytest.raises(ValueError):
            Trace(acc, space).validate()

    def test_slice_clamps_deps(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), space["arr"].addr(np.arange(10)), dep_rel=-2)
        sub = tb.build().slice(3, 8)
        assert len(sub) == 5
        deps = sub.accesses["dep"]
        # Record 3 depended on 1 (outside) -> -1; record 5 on 3 -> 0.
        assert deps[0] == -1
        assert deps[2] == 0
        sub.validate()

    def test_block_addrs(self, space):
        tb = TraceBuilder(space)
        tb.emit(tb.pc("x"), np.array([0, 63, 64, 128], dtype=np.uint64))
        assert list(tb.build().block_addrs()) == [0, 0, 1, 2]

    def test_save_load_roundtrip(self, space, tmp_path):
        tb = TraceBuilder(space, name="t", kernel="pr", graph="kron")
        tb.emit(tb.pc("x"), space["arr"].addr(np.arange(20)), gap=2,
                dep_rel=-1)
        trace = tb.build()
        path = tmp_path / "trace.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.accesses, trace.accesses)
        assert loaded.kernel == "pr"
        assert loaded.graph == "kron"
        assert list(loaded.address_space.regions) == ["arr"]
        assert loaded.address_space["arr"].base == space["arr"].base


class TestAssembler:
    def _fields(self, n, m, pc=1):
        h = SegmentField(pc, np.arange(n) * 100)
        e = SegmentField(pc + 1, np.arange(m) * 10)
        f = SegmentField(pc + 2, np.arange(n) * 1000, write=True)
        return h, e, f

    def test_interleaving_order(self):
        counts = np.array([2, 0, 1])
        h, e, f = self._fields(3, 3)
        out = assemble_vertex_edge_stream(counts, [h], [e], [f])
        # Expected order: h0 e0 e1 f0 | h1 f1 | h2 e2 f2
        assert list(out["pc"]) == [1, 2, 2, 3, 1, 3, 1, 2, 3]
        assert list(out["addr"]) == [0, 0, 10, 0, 100, 1000, 200, 20, 2000]

    def test_dep_rel_resolves_to_stream_position(self):
        counts = np.array([2])
        h = SegmentField(1, np.array([5]))
        e1 = SegmentField(2, np.array([1, 2]))
        e2 = SegmentField(3, np.array([3, 4]), dep_rel=-1)
        out = assemble_vertex_edge_stream(counts, [h], [e1, e2], [])
        # Stream: h, e1(0), e2(0), e1(1), e2(1); e2 deps on preceding e1.
        assert list(out["dep"]) == [-1, -1, 1, -1, 3]

    def test_dep_rel_must_be_negative(self):
        with pytest.raises(ValueError, match="negative"):
            assemble_vertex_edge_stream(
                np.array([1]), [],
                [SegmentField(1, np.array([1]), dep_rel=0)], [])

    def test_mask_drops_records(self):
        counts = np.array([3])
        e = SegmentField(1, np.array([1, 2, 3]))
        s = SegmentField(2, np.array([9, 9, 9]), write=True, dep_rel=-1,
                         mask=np.array([True, False, True]))
        out = assemble_vertex_edge_stream(counts, [], [e, s], [])
        assert list(out["pc"]) == [1, 2, 1, 1, 2]
        # Deps of surviving stores still point at their own loads.
        assert out["dep"][1] == 0
        assert out["dep"][4] == 3

    def test_mask_on_header(self):
        counts = np.zeros(4, dtype=np.int64)
        h = SegmentField(1, np.arange(4),
                         mask=np.array([True, False, True, False]))
        out = assemble_vertex_edge_stream(counts, [h], [], [])
        assert list(out["addr"]) == [0, 2]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            assemble_vertex_edge_stream(
                np.array([1, 1]), [SegmentField(1, np.arange(3))], [], [])
        with pytest.raises(ValueError):
            assemble_vertex_edge_stream(
                np.array([1, 1]), [],
                [SegmentField(1, np.arange(3))], [])

    def test_empty_everything(self):
        out = assemble_vertex_edge_stream(np.zeros(0, dtype=np.int64),
                                          [], [], [])
        assert len(out) == 0

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=20),
           st.integers(0, 2), st.integers(0, 2), st.integers(0, 2))
    @settings(max_examples=50, deadline=None)
    def test_total_length_formula(self, counts, nh, ne, nf):
        counts = np.array(counts, dtype=np.int64)
        nv, m = len(counts), int(counts.sum())
        headers = [SegmentField(10 + i, np.arange(nv)) for i in range(nh)]
        edges = [SegmentField(20 + i, np.arange(m)) for i in range(ne)]
        footers = [SegmentField(30 + i, np.arange(nv)) for i in range(nf)]
        out = assemble_vertex_edge_stream(counts, headers, edges, footers)
        assert len(out) == nv * (nh + nf) + m * ne

    @given(st.lists(st.integers(0, 4), min_size=1, max_size=15))
    @settings(max_examples=50, deadline=None)
    def test_edge_records_grouped_by_vertex(self, counts):
        counts = np.array(counts, dtype=np.int64)
        m = int(counts.sum())
        h = SegmentField(1, np.arange(len(counts)))
        e = SegmentField(2, np.repeat(np.arange(len(counts)), counts))
        out = assemble_vertex_edge_stream(counts, [h], [e], [])
        # Edge records carry their vertex id as address; between two
        # consecutive headers all edge addresses equal the first header's.
        current_vertex = None
        for rec in out:
            if rec["pc"] == 1:
                current_vertex = rec["addr"]
            else:
                assert rec["addr"] == current_vertex
