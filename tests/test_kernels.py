"""Correctness tests for the six GAP reference kernels, cross-validated
against networkx / scipy implementations."""

import networkx as nx
import numpy as np
import pytest
from scipy.sparse.csgraph import dijkstra

from repro.graphs.csr import from_edges
from repro.graphs.generators import (grid_road_graph, kronecker_graph,
                                     uniform_random_graph)
from repro.kernels import (betweenness_centrality, bfs,
                           connected_components, pagerank, run_kernel,
                           sssp, triangle_count)
from repro.kernels.bfs import bfs_distances
from repro.kernels.common import KERNEL_TABLE, pick_source
from repro.kernels.sssp import INF


def to_nx(graph, directed=True):
    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for u in range(graph.num_vertices):
        for v in graph.out_neighbors(u):
            g.add_edge(u, int(v))
    return g


@pytest.fixture(scope="module")
def kron():
    return kronecker_graph(9, 6, seed=11)


@pytest.fixture(scope="module")
def urand():
    return uniform_random_graph(300, 5, seed=12)


class TestBFS:
    def test_reachability_matches_networkx(self, kron):
        src = pick_source(kron, seed=1)
        parent = bfs(kron, src)
        nxg = to_nx(kron)
        reachable = set(nx.descendants(nxg, src)) | {src}
        assert set(np.flatnonzero(parent >= 0).tolist()) == reachable

    def test_distances_match_networkx(self, urand):
        src = pick_source(urand, seed=2)
        dist = bfs_distances(urand, src)
        nxd = nx.single_source_shortest_path_length(to_nx(urand), src)
        for v in range(urand.num_vertices):
            expected = nxd.get(v, -1)
            assert dist[v] == expected

    def test_parents_are_valid_tree(self, kron):
        src = pick_source(kron, seed=3)
        parent = bfs(kron, src)
        assert parent[src] == src
        # Every reached vertex's parent is reached and is a real in-edge.
        for v in np.flatnonzero(parent >= 0):
            v = int(v)
            if v == src:
                continue
            p = int(parent[v])
            assert parent[p] >= 0
            assert v in kron.out_neighbors(p)

    def test_source_out_of_range(self, kron):
        with pytest.raises(ValueError):
            bfs(kron, -1)
        with pytest.raises(ValueError):
            bfs(kron, kron.num_vertices)

    def test_isolated_source(self):
        g = from_edges(np.array([[1, 2]]), num_vertices=4)
        parent = bfs(g, 0)
        assert parent[0] == 0
        assert (parent[1:] == -1).all()

    def test_direction_optimization_triggers_pull(self):
        """A dense graph must take the bottom-up path and stay correct."""
        g = kronecker_graph(8, 16, seed=5)   # very dense: pull kicks in
        src = pick_source(g, seed=0)
        parent = bfs(g, src)
        nxg = to_nx(g)
        reachable = set(nx.descendants(nxg, src)) | {src}
        assert set(np.flatnonzero(parent >= 0).tolist()) == reachable


class TestPageRank:
    def test_matches_networkx(self, urand):
        scores = pagerank(urand, damping=0.85, epsilon=1e-10,
                          max_iterations=100)
        nx_scores = nx.pagerank(to_nx(urand), alpha=0.85, tol=1e-12,
                                max_iter=200)
        ours = scores / scores.sum()
        for v in range(urand.num_vertices):
            assert ours[v] == pytest.approx(nx_scores[v], abs=1e-6)

    def test_uniform_on_cycle(self):
        n = 10
        edges = np.array([[i, (i + 1) % n] for i in range(n)])
        g = from_edges(edges, num_vertices=n)
        scores = pagerank(g, max_iterations=200, epsilon=1e-12)
        assert np.allclose(scores, scores[0])

    def test_convergence_stops_early(self, urand):
        few = pagerank(urand, max_iterations=500, epsilon=1e-3)
        many = pagerank(urand, max_iterations=500, epsilon=1e-12)
        assert np.abs(few - many).sum() < 1e-2

    def test_empty_graph(self):
        g = from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=0)
        assert len(pagerank(g)) == 0

    def test_dangling_vertices_no_nan(self):
        g = from_edges(np.array([[0, 1], [1, 2]]), num_vertices=4)
        scores = pagerank(g, max_iterations=10)
        assert np.isfinite(scores).all()


class TestConnectedComponents:
    def test_matches_networkx(self, kron):
        comp = connected_components(kron)
        nxg = to_nx(kron, directed=False)
        for cc in nx.connected_components(nxg):
            labels = {int(comp[v]) for v in cc}
            assert len(labels) == 1

    def test_label_count_matches(self, urand):
        # CC treats the graph as undirected (GAP semantics).
        comp = connected_components(urand)
        nxg = to_nx(urand, directed=False)
        assert len(np.unique(comp)) == nx.number_connected_components(nxg)

    def test_disjoint_components(self):
        g = from_edges(np.array([[0, 1], [2, 3]]), num_vertices=5)
        comp = connected_components(g)
        assert comp[0] == comp[1]
        assert comp[2] == comp[3]
        assert len({int(comp[0]), int(comp[2]), int(comp[4])}) == 3

    def test_labels_are_component_minima(self):
        g = from_edges(np.array([[3, 1], [1, 2]]), num_vertices=4)
        comp = connected_components(g)
        assert comp[1] == comp[2] == comp[3] == 1
        assert comp[0] == 0

    def test_empty_graph(self):
        g = from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=3)
        assert list(connected_components(g)) == [0, 1, 2]


class TestTriangleCount:
    def test_matches_networkx(self, kron):
        ours = triangle_count(kron)
        nxg = to_nx(kron, directed=False)
        expected = sum(nx.triangles(nxg).values()) // 3
        assert ours == expected

    def test_directed_graph_counts_undirected_triangles(self, urand):
        ours = triangle_count(urand)
        nxg = to_nx(urand, directed=False)
        expected = sum(nx.triangles(nxg).values()) // 3
        assert ours == expected

    def test_known_small_graphs(self):
        tri = from_edges(np.array([[0, 1], [1, 2], [2, 0]]),
                         num_vertices=3, symmetrize=True)
        assert triangle_count(tri) == 1
        k4 = from_edges(np.array([[a, b] for a in range(4)
                                  for b in range(a + 1, 4)]),
                        num_vertices=4, symmetrize=True)
        assert triangle_count(k4) == 4

    def test_triangle_free(self):
        path = from_edges(np.array([[0, 1], [1, 2], [2, 3]]),
                          num_vertices=4, symmetrize=True)
        assert triangle_count(path) == 0

    def test_empty(self):
        g = from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=2)
        assert triangle_count(g) == 0


class TestSSSP:
    def test_matches_scipy_dijkstra(self):
        g = grid_road_graph(12, seed=13)
        src = 0
        ours = sssp(g, src)
        m = g.to_scipy()
        ref = dijkstra(m, indices=src)
        finite = np.isfinite(ref)
        assert np.array_equal(ours[finite], ref[finite].astype(np.int64))
        assert (ours[~finite] == INF).all()

    def test_weighted_kron(self, weighted_kron):
        src = pick_source(weighted_kron, seed=3)
        ours = sssp(weighted_kron, src)
        ref = dijkstra(weighted_kron.to_scipy(), indices=src)
        finite = np.isfinite(ref)
        assert np.array_equal(ours[finite], ref[finite].astype(np.int64))

    def test_delta_insensitivity(self):
        """Distances must not depend on the bucket width."""
        g = grid_road_graph(8, seed=13)
        d1 = sssp(g, 0, delta=1)
        d64 = sssp(g, 0, delta=64)
        dbig = sssp(g, 0, delta=100000)   # degenerates to Bellman-Ford
        assert np.array_equal(d1, d64)
        assert np.array_equal(d1, dbig)

    def test_unweighted_graph_raises(self, kron):
        with pytest.raises(ValueError, match="weighted"):
            sssp(kron, 0)

    def test_source_distance_zero(self):
        g = grid_road_graph(6, seed=13)
        assert sssp(g, 7)[7] == 0

    def test_bad_source_raises(self):
        g = grid_road_graph(4, seed=13)
        with pytest.raises(ValueError):
            sssp(g, 10**6)


class TestBetweennessCentrality:
    def test_path_graph_center_highest(self):
        path = from_edges(np.array([[i, i + 1] for i in range(6)]),
                          num_vertices=7, symmetrize=True)
        scores = betweenness_centrality(path, num_sources=7, seed=0,
                                        normalize=False)
        assert np.argmax(scores) == 3

    def test_star_graph_hub_dominates(self):
        star = from_edges(np.array([[0, i] for i in range(1, 8)]),
                          num_vertices=8, symmetrize=True)
        scores = betweenness_centrality(star, num_sources=8, seed=0)
        assert np.argmax(scores) == 0
        assert scores[0] > 5 * max(scores[1], 1e-12)

    def test_all_sources_matches_networkx(self):
        g = uniform_random_graph(60, 3, seed=14)
        scores = betweenness_centrality(g, num_sources=g.num_vertices,
                                        seed=0, normalize=False)
        nxg = to_nx(g)
        ref = nx.betweenness_centrality(nxg, normalized=False)
        # All-sources Brandes equals exact betweenness.
        for v in range(g.num_vertices):
            assert scores[v] == pytest.approx(ref[v], abs=1e-6)

    def test_normalization(self, kron):
        scores = betweenness_centrality(kron, num_sources=2, seed=1)
        assert 0.0 <= scores.min()
        assert scores.max() == pytest.approx(1.0)

    def test_empty_graph(self):
        g = from_edges(np.empty((0, 2), dtype=np.int64), num_vertices=4)
        assert (betweenness_centrality(g) == 0).all()


class TestRegistry:
    def test_run_kernel_dispatch(self, kron):
        assert run_kernel("tc", kron) == triangle_count(kron)

    def test_unknown_kernel_raises(self, kron):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_kernel("nope", kron)

    def test_table2_covers_all_kernels(self):
        assert set(KERNEL_TABLE) == {"bc", "bfs", "cc", "pr", "tc", "sssp"}

    def test_table2_properties(self):
        assert KERNEL_TABLE["pr"].execution_style == "Pull-Only"
        assert KERNEL_TABLE["bfs"].uses_frontier
        assert not KERNEL_TABLE["pr"].uses_frontier
        assert KERNEL_TABLE["sssp"].weighted_input

    def test_pick_source_has_outgoing_edges(self, kron):
        src = pick_source(kron, seed=9)
        assert kron.out_degree(src) > 0
