"""Tests for the streaming graph-ingestion path (repro.graphs.ingest).

The load-bearing contract: an out-of-core ingest is byte-identical to
an in-memory ``from_edges`` build over the same rows, the store file is
checksummed with quarantine + a single rebuild on damage, and a mapped
graph is indistinguishable from an in-memory one to everything
downstream (traces, stats, results cache).
"""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro import faults
from repro.graphs import ingest
from repro.graphs.csr import from_edges
from repro.graphs.io import load_edgelist

pytestmark = pytest.mark.usefixtures("graph_cache")


@pytest.fixture
def graph_cache(tmp_path, monkeypatch):
    """Point the on-disk caches at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    ingest.reset_counters()
    ingest._store_write_seq.clear()
    yield tmp_path
    faults.deactivate()


def write_el(path, edges, weights=None, header=False, gz=False):
    opener = (lambda p: gzip.open(p, "wt")) if gz else \
        (lambda p: open(p, "w"))
    with opener(path) as fh:
        if header:
            fh.write("# comment line\n\n")
        for i, (a, b) in enumerate(edges):
            if weights is None:
                fh.write(f"{a} {b}\n")
            else:
                fh.write(f"{a} {b} {weights[i]}\n")
    return path


def messy_edges(m=3000, n=200, seed=5):
    """Edge list with self-loops, duplicates and a vertex-id gap."""
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2), dtype=np.int64)
    edges[::97, 1] = edges[::97, 0]     # self-loops
    edges[1] = edges[2]                 # exact duplicate
    edges[0] = (0, n + 13)              # id gap + pure sink
    return edges


def assert_graphs_equal(got, want, weighted=False):
    fields = ["out_oa", "out_na", "in_oa", "in_na"]
    if weighted:
        fields += ["out_weights", "in_weights"]
    for f in fields:
        a, b = np.asarray(getattr(got, f)), np.asarray(getattr(want, f))
        assert a.tobytes() == b.tobytes(), f"{f} differs"


class TestParsing:
    def test_empty_and_comment_only_files(self, tmp_path):
        for body in ("", "# only\n\n# comments\n"):
            p = tmp_path / "e.el"
            p.write_text(body)
            g = load_edgelist(p)
            assert (g.num_vertices, g.num_edges) == (0, 0)
            rep = ingest.ingest_graph(p, name="empty", force=True)
            assert (rep.num_vertices, rep.num_edges) == (0, 0)
            assert ingest.load_ingested("empty").num_edges == 0

    def test_extra_columns_rejected(self, tmp_path):
        p = tmp_path / "bad.el"
        p.write_text("0 1\n1 2 9\n")
        with pytest.raises(ValueError, match="expected 2 columns"):
            load_edgelist(p)
        p2 = tmp_path / "bad.wel"
        p2.write_text("0 1 5\n1 2\n")
        with pytest.raises(ValueError, match="expected 3 columns"):
            ingest.ingest_graph(p2)

    def test_negative_ids_rejected(self, tmp_path):
        p = write_el(tmp_path / "neg.el", [(0, 1), (-1, 2)])
        with pytest.raises(ValueError, match="negative"):
            load_edgelist(p)

    def test_gzip_roundtrip(self, tmp_path):
        edges = messy_edges()
        plain = write_el(tmp_path / "g.el", edges)
        zipped = write_el(tmp_path / "g.el.gz", edges, header=True,
                          gz=True)
        a, b = load_edgelist(plain), load_edgelist(zipped)
        assert_graphs_equal(a, b)
        assert b.name == "g"

    def test_truncated_gzip_raises(self, tmp_path):
        p = write_el(tmp_path / "t.el.gz", messy_edges(), gz=True)
        data = p.read_bytes()
        p.write_bytes(data[:len(data) // 2])
        with pytest.raises((OSError, EOFError)):
            load_edgelist(p)

    def test_chunking_is_invisible(self, tmp_path):
        edges = messy_edges()
        p = write_el(tmp_path / "c.el", edges)
        chunks = list(ingest.iter_edge_chunks(p, chunk_edges=64))
        assert len(chunks) > 1
        src = np.concatenate([c[0] for c in chunks])
        dst = np.concatenate([c[1] for c in chunks])
        assert (np.column_stack([src, dst]) == edges).all()


class TestBuildEquivalence:
    @pytest.mark.parametrize("symmetrize", [False, True])
    def test_unweighted_matches_from_edges(self, tmp_path, symmetrize):
        edges = messy_edges()
        p = write_el(tmp_path / "m.el", edges)
        ingest.ingest_graph(p, name="m", symmetrize=symmetrize,
                            chunk_edges=128)
        got = ingest.load_ingested("m")
        want = from_edges(edges, symmetrize=symmetrize)
        assert_graphs_equal(got, want)
        assert bool(got.symmetric) == symmetrize

    @pytest.mark.parametrize("symmetrize", [False, True])
    def test_weighted_matches_from_edges(self, tmp_path, symmetrize):
        edges = messy_edges()
        w = (np.arange(len(edges)) % 251 + 1).astype(np.int64)
        p = write_el(tmp_path / "w.wel", edges, weights=w)
        ingest.ingest_graph(p, name="w", symmetrize=symmetrize,
                            chunk_edges=128)
        got = ingest.load_ingested("w")
        want = from_edges(edges, weights=w, symmetrize=symmetrize)
        assert_graphs_equal(got, want, weighted=True)

    def test_num_vertices_hint(self, tmp_path):
        p = write_el(tmp_path / "h.el", [(0, 1), (1, 2)])
        ingest.ingest_graph(p, name="h", num_vertices=100)
        got = ingest.load_ingested("h")
        assert got.num_vertices == 100
        assert_graphs_equal(got, from_edges(
            np.array([[0, 1], [1, 2]]), num_vertices=100))

    def test_mapped_and_in_memory_views_agree(self, tmp_path):
        p = write_el(tmp_path / "v.el", messy_edges())
        ingest.ingest_graph(p, name="v")
        mapped = ingest.load_ingested("v", mapped=True)
        copied = ingest.load_ingested("v", mapped=False)
        assert isinstance(mapped.out_na, np.memmap)
        assert not isinstance(copied.out_na, np.memmap)
        assert_graphs_equal(mapped, copied)

    def test_reingest_is_a_noop_unless_forced(self, tmp_path):
        p = write_el(tmp_path / "n.el", messy_edges())
        first = ingest.ingest_graph(p, name="n")
        assert first.raw_edges >= 0
        mtime = ingest.store_path("n").stat().st_mtime_ns
        again = ingest.ingest_graph(p, name="n")
        assert again.raw_edges == -1          # already existed
        assert ingest.store_path("n").stat().st_mtime_ns == mtime
        forced = ingest.ingest_graph(p, name="n", force=True)
        assert forced.raw_edges >= 0
        assert ingest.has_ingested("n")
        assert "n" in ingest.list_ingested()


class TestStoreIntegrity:
    def _ingest(self, tmp_path, name="s", **kw):
        p = write_el(tmp_path / f"{name}.el", messy_edges())
        ingest.ingest_graph(p, name=name, **kw)
        return ingest.store_path(name)

    def test_header_fields(self, tmp_path):
        path = self._ingest(tmp_path)
        head = ingest.read_header(path)
        ref = from_edges(messy_edges())
        assert head["num_vertices"] == ref.num_vertices
        assert head["num_edges"] == ref.num_edges
        assert head["flags"] == 0     # directed, unweighted

    @pytest.mark.parametrize("damage", ["corrupt", "truncate"])
    def test_damage_quarantines_and_rebuilds_once(self, tmp_path,
                                                  damage):
        path = self._ingest(tmp_path)
        data = bytearray(path.read_bytes())
        if damage == "corrupt":
            mid = len(data) // 2
            data[mid:mid + 8] = b"\xde\xad\xbe\xef" * 2
        else:
            data = data[:-(len(data) // 3)]
        path.write_bytes(bytes(data))
        before = ingest.counters_snapshot()
        got = ingest.load_ingested("s")
        after = ingest.counters_snapshot()
        assert after["corrupt"] - before["corrupt"] == 1
        assert after["rebuilt"] - before["rebuilt"] == 1
        assert_graphs_equal(got, from_edges(messy_edges()))
        from repro.experiments.workloads import trace_quarantine_dir
        assert any(trace_quarantine_dir().glob("*.graph.bad"))

    def test_vanished_source_raises_after_quarantine(self, tmp_path):
        path = self._ingest(tmp_path)
        (tmp_path / "s.el").unlink()
        data = bytearray(path.read_bytes())
        data[-8:] = b"\xff" * 8       # scribble the payload tail
        path.write_bytes(bytes(data))
        with pytest.raises(ingest.GraphStoreError,
                           match="no readable source"):
            ingest.load_ingested("s")
        assert not path.exists()          # still quarantined

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(ingest.GraphStoreError,
                           match="repro ingest"):
            ingest.load_ingested("nope")

    def test_armed_fault_damages_then_recovers(self, tmp_path):
        faults.activate(faults.FaultPlan.parse("seed=7,corrupt:1.0"))
        path = self._ingest(tmp_path, name="f")
        faults.deactivate()
        before = ingest.counters_snapshot()
        got = ingest.load_ingested("f")
        after = ingest.counters_snapshot()
        assert after["rebuilt"] - before["rebuilt"] == 1
        assert_graphs_equal(got, from_edges(messy_edges()))
        assert ingest.read_header(path)  # rebuilt store is clean


class TestWorkloadIntegration:
    FAMILIES = ("rw", "gs", "dyn")

    @pytest.fixture
    def ingested(self, tmp_path):
        edges = messy_edges(m=4000, n=300, seed=9)
        p = write_el(tmp_path / "ig.el", edges)
        ingest.ingest_graph(p, name="ig", symmetrize=True)
        return ingest.load_ingested("ig"), from_edges(
            edges, symmetrize=True, name="ig")

    def test_mapped_graph_runs_identically(self, ingested):
        from repro.experiments.runner import default_config, run_variant
        from repro.trace.kernels import generate_trace
        mapped, ref = ingested
        for fam in self.FAMILIES:
            t_map = generate_trace(fam, mapped, max_accesses=8000)
            t_mem = generate_trace(fam, ref, max_accesses=8000)
            assert t_map.accesses.tobytes() == t_mem.accesses.tobytes()
            s1 = run_variant(t_map, "sdc_lp", default_config())
            s2 = run_variant(t_mem, "sdc_lp", default_config())
            assert (s1.cycles, s1.instructions, s1.ipc) == \
                (s2.cycles, s2.instructions, s2.ipc)

    def test_families_clean_under_validation(self, ingested,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        from repro.experiments.runner import default_config, run_variant
        from repro.trace.kernels import generate_trace
        mapped, _ = ingested
        for fam in self.FAMILIES:
            t = generate_trace(fam, mapped, max_accesses=6000)
            stats = run_variant(t, "sdc_lp", default_config())
            assert stats.cycles > 0

    def test_family_cells_roundtrip_results_cache(self, tmp_path):
        from repro.experiments import results_cache as rc
        from repro.experiments.parallel import Job, run_grid
        from repro.experiments.runner import default_config
        cache = rc.ResultsCache(tmp_path / "results")
        cfg = default_config()
        grid = [Job(f"{fam}.urand", "sdc_lp", cfg, tier="tiny",
                    length=6000) for fam in self.FAMILIES]
        cold = run_grid(grid, cache=cache)
        assert cache.stores == len(self.FAMILIES)
        warm = run_grid(grid, cache=cache)
        assert cache.stores == len(self.FAMILIES)  # zero new sims
        for c, w in zip(cold, warm):
            assert c.as_dict() == w.as_dict()

    def test_synthetic_weights_enable_sssp(self, ingested):
        from repro.trace.kernels import generate_trace
        mapped, ref = ingested
        wm = ingest.with_synthetic_weights(mapped)
        wr = ingest.with_synthetic_weights(ref)
        assert wm.out_weights.tobytes() == wr.out_weights.tobytes()
        t1 = generate_trace("sssp", wm, max_accesses=6000)
        t2 = generate_trace("sssp", wr, max_accesses=6000)
        assert t1.accesses.tobytes() == t2.accesses.tobytes()

    def test_suite_resolves_ingested_names(self, tmp_path):
        from repro.graphs.suite import load_graph
        p = write_el(tmp_path / "mine.el", messy_edges())
        ingest.ingest_graph(p, name="mine")
        g = load_graph("mine", tier="tiny")
        assert g.num_edges == from_edges(messy_edges()).num_edges
        with pytest.raises(ValueError, match="mine"):
            load_graph("not-there", tier="tiny")
