"""System-level property tests: invariants that must hold for *any*
access stream, checked with hypothesis-generated traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.trace.layout import AddressSpace
from repro.trace.record import ACCESS_DTYPE, Trace


def build_trace(ops):
    """ops: list of (block_index, write, pc_choice, gap)."""
    space = AddressSpace()
    space.add("arena", 64, 1 << 16)
    base = space["arena"].base
    acc = np.zeros(len(ops), dtype=ACCESS_DTYPE)
    for i, (blk, write, pc, gap) in enumerate(ops):
        acc["addr"][i] = base + blk * 64
        acc["write"][i] = write
        acc["pc"][i] = 0x400000 + 4 * pc
        acc["gap"][i] = gap
    acc["dep"] = -1
    return Trace(acc, space)


ops_strategy = st.lists(
    st.tuples(st.integers(0, 4000), st.booleans(), st.integers(0, 12),
              st.integers(0, 5)),
    min_size=1, max_size=400)


@pytest.fixture(scope="module")
def cfg():
    return scaled_config(64)


class TestInvariants:
    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_stats_conservation_baseline(self, ops):
        cfg = scaled_config(64)
        trace = build_trace(ops)
        stats = SingleCoreSystem(cfg, "baseline").run(trace)
        # Every access hits or misses; every L1 miss proceeds downward.
        assert stats.l1d.accesses == len(trace)
        assert stats.l1d.hits + stats.l1d.misses == stats.l1d.accesses
        assert stats.l2c.accesses == stats.l1d.misses
        assert stats.llc.accesses == stats.l2c.misses
        assert stats.dram.reads == stats.llc.misses

    @given(ops_strategy)
    @settings(max_examples=30, deadline=None)
    def test_first_level_conservation_sdc_lp(self, ops):
        cfg = scaled_config(64)
        trace = build_trace(ops)
        stats = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        # LP routes each access to exactly one first-level structure.
        assert stats.l1d.accesses + stats.sdc.accesses == len(trace)
        assert stats.lp.lookups == len(trace)
        assert stats.lp.predicted_irregular == stats.sdc.accesses

    @given(ops_strategy)
    @settings(max_examples=25, deadline=None)
    def test_dirty_exclusivity_any_stream(self, ops):
        cfg = scaled_config(64)
        trace = build_trace(ops)
        system = SingleCoreSystem(cfg, "sdc_lp")
        system.run(trace)
        h = system.hierarchy
        hier = (set(h.l1d.resident_blocks()) | set(h.l2c.resident_blocks())
                | set(h.llc.resident_blocks()))
        hier_dirty = (set(h.l1d.dirty_blocks())
                      | set(h.l2c.dirty_blocks())
                      | set(h.llc.dirty_blocks()))
        sdc = set(system.sdc.resident_blocks())
        sdc_dirty = set(system.sdc.dirty_blocks())
        assert not (sdc_dirty & hier)
        assert not (hier_dirty & sdc)
        assert sdc <= set(system.sdcdir.tracked_blocks())

    @given(ops_strategy)
    @settings(max_examples=20, deadline=None)
    def test_cycles_monotone_in_config_latency(self, ops):
        """A uniformly slower memory system can never run faster."""
        import dataclasses
        trace = build_trace(ops)
        fast_cfg = scaled_config(64)
        slow_cfg = dataclasses.replace(
            fast_cfg,
            l2c=dataclasses.replace(fast_cfg.l2c, latency=50),
            llc=dataclasses.replace(fast_cfg.llc, latency=200))
        fast = SingleCoreSystem(fast_cfg, "baseline").run(trace)
        slow = SingleCoreSystem(slow_cfg, "baseline").run(trace)
        assert slow.cycles >= fast.cycles

    @given(ops_strategy)
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, ops):
        cfg = scaled_config(64)
        trace = build_trace(ops)
        a = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        b = SingleCoreSystem(cfg, "sdc_lp").run(trace)
        assert a.cycles == b.cycles
        assert a.dram.reads == b.dram.reads

    @given(ops_strategy)
    @settings(max_examples=20, deadline=None)
    def test_victim_cache_never_changes_correctness_counters(self, ops):
        """The victim cache variant serves the same access stream with
        the same totals (performance differs, conservation holds)."""
        cfg = scaled_config(64)
        trace = build_trace(ops)
        stats = SingleCoreSystem(cfg, "victim").run(trace)
        assert stats.l1d.accesses == len(trace)
        assert stats.instructions == trace.num_instructions
