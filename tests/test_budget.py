"""Tests for the Table IV hardware-budget accounting."""

import pytest

from repro.config import paper_config
from repro.core.budget import (LP_ACCESS_TIME_NS, hardware_budget,
                               lp_fits_in_one_cycle, table4,
                               total_budget_kb)


class TestTable4:
    def test_rows_present(self):
        rows = {r.name: r for r in hardware_budget()}
        assert set(rows) == {"SDC", "LP", "SDCDir"}

    def test_sdc_matches_paper(self):
        """Table IV: SDC = 128 entries x (512 + 42 + 1 + 1) bits = 8.69 KB."""
        sdc = {r.name: r for r in hardware_budget()}["SDC"]
        assert sdc.entries == 128
        assert sdc.bits_per_entry == 512 + 42 + 1 + 1
        assert sdc.total_kb == pytest.approx(8.69, abs=0.01)

    def test_lp_matches_paper(self):
        """Table IV: LP = 32 x (65 + 58 + 14 + 1) bits = 0.54 KB."""
        lp = {r.name: r for r in hardware_budget()}["LP"]
        assert lp.entries == 32
        assert lp.bits_per_entry == 65 + 58 + 14 + 1
        assert lp.total_kb == pytest.approx(0.54, abs=0.01)

    def test_sdcdir_matches_paper(self):
        """Table IV: SDCDir = 128 x (42 + 6 + 1) bits = 0.77 KB."""
        sd = {r.name: r for r in hardware_budget()}["SDCDir"]
        assert sd.entries == 128
        assert sd.bits_per_entry == 42 + 6 + 1
        assert sd.total_kb == pytest.approx(0.77, abs=0.01)

    def test_total_is_10kb(self):
        """Abstract/§V-E: SDC+LP requires ~10 KB per core."""
        assert total_budget_kb() == pytest.approx(10.0, abs=0.2)

    def test_sharer_bits_scale_with_cores(self):
        four = paper_config(num_cores=4)
        sd = {r.name: r for r in hardware_budget(four)}["SDCDir"]
        assert sd.bits_per_entry == 42 + 6 + 4

    def test_render_contains_rows(self):
        text = table4()
        for token in ("SDC", "LP", "SDCDir", "Total"):
            assert token in text


class TestTiming:
    def test_lp_fits_in_cycle(self):
        """§V-E: 0.24 ns access vs 0.46 ns cycle."""
        assert lp_fits_in_one_cycle()
        cycle_ns = 1.0 / paper_config().core.frequency_ghz
        assert cycle_ns == pytest.approx(0.46, abs=0.01)
        assert LP_ACCESS_TIME_NS < cycle_ns
