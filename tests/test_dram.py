"""Tests for the DRAM open-row latency model."""

from repro.config import DRAMConfig
from repro.mem.dram import DRAMModel


def block_in_row(model, bank_row):
    """A block address guaranteed to land in the given (bank, row)."""
    # row r maps to bank r % banks; choose rows directly.
    row_bits = model._row_bits
    return (bank_row << row_bits) >> 6


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        d = DRAMModel()
        lat = d.read(0)
        assert lat == d.config.row_miss_latency
        assert d.stats.row_misses == 1

    def test_same_row_hits(self):
        d = DRAMModel()
        d.read(0)
        lat = d.read(1)      # same 8 KiB row
        assert lat == d.config.row_hit_latency
        assert d.stats.row_hits == 1

    def test_row_conflict(self):
        d = DRAMModel()
        banks = d._banks
        d.read(block_in_row(d, 0))
        lat = d.read(block_in_row(d, banks))   # same bank, another row
        assert lat == d.config.row_conflict_latency
        assert d.stats.row_conflicts == 1

    def test_different_banks_independent(self):
        d = DRAMModel()
        d.read(block_in_row(d, 0))
        d.read(block_in_row(d, 1))     # bank 1
        lat = d.read(block_in_row(d, 0) + 1)   # bank 0 row still open
        assert lat == d.config.row_hit_latency

    def test_write_counts(self):
        d = DRAMModel()
        d.write(0)
        assert d.stats.writes == 1
        assert d.stats.reads == 0
        assert d.stats.accesses == 1

    def test_latency_ordering(self):
        c = DRAMConfig()
        assert c.row_hit_latency < c.row_miss_latency \
            < c.row_conflict_latency

    def test_stats_merge(self):
        a, b = DRAMModel(), DRAMModel()
        a.read(0)
        b.write(0)
        m = a.stats.merged(b.stats)
        assert m.reads == 1 and m.writes == 1

    def test_sequential_stream_mostly_hits(self):
        d = DRAMModel()
        for blk in range(512):
            d.read(blk)
        # 8 KiB rows of 64 B blocks = 128 blocks/row: 4 misses, rest hits.
        assert d.stats.row_hits > 500
