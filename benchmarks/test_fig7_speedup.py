"""Fig. 7 — single-core speedup of every design over Baseline.

Paper result (geomeans): L1D-40KB-ISO 0.0%, Distill 0.1%, T-OPT 9.4%,
2xLLC 11.2%, SDC+LP 20.3%.  The reproduction must preserve the ordering
and the ~2x gap between SDC+LP and the best prior scheme.
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig7_single_core(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig7_single_core, bench_workloads,
                   length=bench_length)
    show(report.render_fig7(res))
    gm = res.geomeans()
    # Who wins, and by roughly what factor.
    assert gm["sdc_lp"] > 0.10
    assert gm["sdc_lp"] > gm["topt"]
    assert gm["sdc_lp"] > gm["llc2x"]
    assert gm["sdc_lp"] > 1.5 * max(gm["topt"], gm["llc2x"], 1e-3)
    # The iso-storage and Distill baselines hover near zero.
    assert abs(gm["l1iso"]) < 0.05
    assert abs(gm["distill"]) < 0.08
    # T-OPT and 2xLLC provide real but smaller gains.
    assert gm["topt"] > 0.0
    assert gm["llc2x"] > 0.0
