"""§V-B3 — global threshold (τ_glob) sweep over GAP and the SPEC
surrogate.

Paper result: τ_glob = 8 delivers the full graph-workload speedup
(20.3%) while leaving general-purpose workloads unharmed (+0.5%);
τ = 0 routes everything to the SDC, large τ degenerates to Baseline.
"""

from conftest import run_once

from repro.experiments import figures, report

TAUS = (0, 2, 4, 8, 16, 64, 256)


def test_tau_sweep(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.tau_sweep, bench_workloads,
                   taus=TAUS, length=bench_length)
    show(report.render_tau_sweep(res))
    by_tau = dict(zip(res.taus, res.gap_speedup))
    reg = dict(zip(res.taus, res.regular_speedup))
    # tau=8 captures (nearly) the peak GAP speedup.
    assert by_tau[8] > 0.10
    assert by_tau[8] >= max(by_tau.values()) - 0.05
    # The guardrail: regular workloads unharmed at tau=8.
    assert reg[8] > -0.02
    # Extremes: tau=0 (everything via the tiny SDC) underperforms tau=8.
    assert by_tau[0] < by_tau[8]
