"""Fig. 14 — multi-core weighted speedup over Baseline.

Paper result (geomeans over 50 4-thread mixes): L1D-ISO 0.02%, Distill
-0.04%, T-OPT 6.4%, 2xLLC 2.4%, SDC+LP 20.2% (max 69.3%).
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig14_multicore(benchmark, show, bench_mixes, bench_length):
    res = run_once(benchmark, figures.fig14_multicore,
                   num_mixes=bench_mixes, length=bench_length // 2)
    show(report.render_fig14(res))
    gm = res.geomeans()
    # SDC+LP dominates in the shared-LLC setting too.
    assert gm["sdc_lp"] > 0.05
    assert gm["sdc_lp"] > gm["topt"]
    assert gm["sdc_lp"] > gm["llc2x"]
    assert abs(gm["l1iso"]) < 0.05
