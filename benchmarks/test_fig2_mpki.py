"""Fig. 2 — baseline MPKI across the cache hierarchy.

Paper result: average MPKI 53.2 (L1D), 44.5 (L2C), 41.8 (LLC); the
L2C/LLC bars nearly as tall as L1D (Findings 1-2).
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig2_mpki(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig2_mpki, bench_workloads,
                   length=bench_length)
    show(report.render_fig2(res))
    a1, a2, a3 = res.averages
    # Shape checks: double-digit MPKI everywhere and a shallow hierarchy
    # gradient (most L1D misses keep missing below).
    assert a1 > 10 and a2 > 10 and a3 > 5
    assert a2 > 0.4 * a1
    assert a3 > 0.4 * a2
