"""Ablation bench — decomposing SDC+LP's benefit (DESIGN.md design
choices; not a paper figure).

Expected shape: a victim cache (iso-storage, near-L1) recovers little —
the data has no short-term reuse to capture; pure LP bypass without the
SDC recovers part of the benefit (lookup latency removed, pollution
reduced) but less than the full design; stripping dependency
serialization shrinks the modelled benefit, confirming the speedup is a
latency effect, not a bandwidth one.
"""

from conftest import run_once

from repro.experiments import figures, report


def test_ablation(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.ablation_study, bench_workloads,
                   length=bench_length)
    show(report.render_ablation(res))
    gm = res.geomeans()
    assert gm["sdc_lp"] > gm["victim"]
    assert gm["sdc_lp"] >= gm["lp_bypass"] - 0.02
    assert gm["victim"] < 0.10
