"""Benchmark-suite configuration.

Each ``test_*`` benchmark regenerates one paper table or figure and
prints the reproduced rows/series (captured with ``-s`` or in the
pytest-benchmark report context), so ``pytest benchmarks/
--benchmark-only`` doubles as the paper-reproduction run.

Scaling knobs (environment):

* ``REPRO_BENCH_FULL=1``  — run all 36 workloads / 50 mixes as the paper
  does (tens of minutes) instead of the representative quick subset.
* ``REPRO_BENCH_LENGTH``  — trace window length (default 200000).
"""

from __future__ import annotations

import os

import pytest

QUICK_WORKLOADS = ("pr.kron", "cc.friendster", "bfs.urand", "sssp.road",
                   "bc.twitter", "tc.web")


@pytest.fixture
def show(capsys):
    """Print a reproduced paper table bypassing pytest's capture, so it
    appears in plain `pytest benchmarks/ --benchmark-only` output (and
    thus in the committed bench_output.txt) without needing -s."""
    def _show(*chunks):
        with capsys.disabled():
            print()
            for chunk in chunks:
                print(chunk)
    return _show

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", "200000"))


@pytest.fixture(scope="session")
def bench_workloads():
    """Workload subset for single-core benches."""
    if FULL:
        return None      # the figure functions default to all 36
    return list(QUICK_WORKLOADS)


@pytest.fixture(scope="session")
def bench_length():
    return LENGTH


@pytest.fixture(scope="session")
def bench_mixes():
    return 50 if FULL else 4


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
