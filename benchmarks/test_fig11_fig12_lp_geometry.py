"""Figs. 11 & 12 — LP table geometry sweeps.

Paper result: fully-associative LP speedups 13.7 / 17.9 / 20.7 / 20.7 %
for 8/16/32/64 entries (saturating at 32); with 32 entries, 17.0 / 20.3
/ 20.7 / 20.7 % for direct-mapped/2/8/fully-assoc (8-way ~ optimal).
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig11_lp_entries(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig11_lp_entries, bench_workloads,
                   length=bench_length)
    show(report.render_sweep(res, "entries"))
    sp = res.speedup_geomean
    # Monotone non-decreasing and saturating: 64 entries buy nothing
    # meaningful over 32.
    assert sp[-1] >= sp[0] - 0.01
    assert abs(sp[3] - sp[2]) < 0.03
    assert sp[2] > 0.1


def test_fig12_lp_assoc(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig12_lp_assoc, bench_workloads,
                   length=bench_length)
    show(report.render_sweep(res, "ways"))
    sp = res.speedup_geomean
    # 8-way approaches the fully-associative result.
    assert abs(sp[2] - sp[3]) < 0.03
    assert sp[3] >= sp[0] - 0.02
