"""Fig. 13 — SDC+LP vs the Expert Programmer oracle.

Paper result: Expert 19.1% vs SDC+LP 20.3% geomean — the dynamic
predictor matches a profiling-driven manual classification.
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig13_expert(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig13_expert, bench_workloads,
                   length=bench_length)
    show(report.render_fig13(res))
    gm_lp, gm_expert = res.geomeans()
    assert gm_lp > 0.10
    assert gm_expert > 0.05
    # LP tracks the expert within a few points overall.
    assert abs(gm_lp - gm_expert) < 0.10
