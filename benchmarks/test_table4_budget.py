"""Table IV — hardware budget per core.

Paper result: SDC 8.69 KB, LP 0.54 KB, SDCDir 0.77 KB — 10 KB total;
LP access (0.24 ns) fits in one 2.166 GHz cycle (§V-E).
"""

import pytest
from conftest import run_once

from repro.core.budget import (hardware_budget, lp_fits_in_one_cycle,
                               table4, total_budget_kb)


def test_table4_budget(benchmark, show):
    rows = run_once(benchmark, hardware_budget)
    show("Table IV — hardware budget per core")
    show(table4())
    by_name = {r.name: r for r in rows}
    assert by_name["SDC"].total_kb == pytest.approx(8.69, abs=0.01)
    assert by_name["LP"].total_kb == pytest.approx(0.54, abs=0.01)
    assert by_name["SDCDir"].total_kb == pytest.approx(0.77, abs=0.01)
    assert total_budget_kb() == pytest.approx(10.0, abs=0.2)
    assert lp_fits_in_one_cycle()
