"""Micro benchmark: simulated accesses/sec through the single-core
hot path, recorded to ``BENCH_engine.json``.

This is the measurement behind the hot-path optimization work (shift/
mask set indexing, dict-order LRU, inlined fill/probe paths): the
number is recorded, not asserted, so regressions show up in the JSON
trajectory rather than as flaky CI failures.  ``make bench-engine``
runs just this file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs import kronecker_graph
from repro.trace.kernels import trace_pagerank

#: The micro benchmark: PageRank over a 4k-vertex Kronecker graph,
#: 50k-access window — large enough to exercise every hierarchy level,
#: small enough to time in seconds.
BENCH_SPEC = dict(scale=12, degree=8, seed=1, accesses=50_000)
VARIANTS = ("baseline", "sdc_lp")
REPEATS = 3

_OUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _bench_trace():
    g = kronecker_graph(BENCH_SPEC["scale"], BENCH_SPEC["degree"],
                        seed=BENCH_SPEC["seed"])
    return trace_pagerank(g, iterations=1,
                          max_accesses=BENCH_SPEC["accesses"])


def _throughput(trace, cfg, variant: str,
                telemetry_every: int = 0) -> float:
    """Best-of-N accesses/sec for one variant."""
    best = float("inf")
    for _ in range(REPEATS):
        system = SingleCoreSystem(cfg, variant,
                                  telemetry_every=telemetry_every)
        t0 = time.perf_counter()
        system.run(trace)
        best = min(best, time.perf_counter() - t0)
    return len(trace) / best


def _grid_throughput(tmp_root) -> float:
    """Accesses/sec through the full supervised ``run_grid`` path —
    fault hooks armed but no plan active — on a serial micro grid."""
    from repro import faults
    from repro.experiments import results_cache as rc
    from repro.experiments.parallel import Job, run_grid
    from repro.experiments.runner import default_config

    assert faults.active_plan() is None, \
        "grid throughput must be measured fault-free"
    cfg = default_config()
    grid = [Job(wl, v, cfg, tier="tiny", length=25_000)
            for wl in ("pr.urand", "cc.urand")
            for v in ("baseline", "sdc_lp")]
    accesses = 4 * 25_000
    best = float("inf")
    for i in range(REPEATS):
        t0 = time.perf_counter()
        run_grid(grid, use_cache=False,
                 cache=rc.ResultsCache(tmp_root / f"r{i}"),
                 manifest_dir=tmp_root / "runs")
        best = min(best, time.perf_counter() - t0)
    return accesses / best


#: Window for the telemetry-on measurement (the engine default).
TELEMETRY_WINDOW = 4096

#: Disabled telemetry may cost at most this much of engine throughput.
#: Its hot-path footprint is one falsy integer test per access; the
#: gate runs against OFF_PATH_REFERENCE, an interleaved same-machine
#: A/B recorded when the probe landed (cross-run wall-clock compares
#: drift far more than 2% on a shared box, so the live numbers below
#: are recorded, not asserted, like every other figure here).
MAX_OFF_PATH_REGRESSION_PCT = 2.0

OFF_PATH_REFERENCE = {
    "pre_telemetry_commit": "a40d277",
    "pre_telemetry_accesses_per_sec": 273906,
    "probes_off_accesses_per_sec": 275018,
    "overhead_pct": -0.41,
    "note": "interleaved best-of-5 A/B (5 rounds, median ratio 1.009) "
            "against a pre-telemetry worktree on the same machine: "
            "the disabled probe branch is below measurement noise",
}


def test_engine_throughput(show, tmp_path):
    trace = _bench_trace()
    cfg = scaled_config(16)
    result = {
        "benchmark": "pagerank/kron(12,8) 50k-access window, best of "
                     f"{REPEATS}",
        "accesses": len(trace),
        "accesses_per_sec": {},
    }
    # Carry historical reference points (e.g. the seed-commit numbers
    # measured when the hot path was optimized) across reruns.
    if _OUT.exists():
        try:
            result["seed_reference"] = \
                json.loads(_OUT.read_text())["seed_reference"]
        except (KeyError, ValueError):
            pass
    lines = ["Engine throughput (accesses/sec):"]
    for variant in VARIANTS:
        aps = _throughput(trace, cfg, variant)
        result["accesses_per_sec"][variant] = round(aps)
        lines.append(f"  {variant:10} {aps:>12,.0f}")
    # The same metric through run_grid's supervision layer (retry/
    # manifest/fault hooks in place, no fault plan active): evidence
    # the resilience machinery costs nothing when idle.
    grid_aps = _grid_throughput(tmp_path)
    result["grid_accesses_per_sec_no_faults"] = round(grid_aps)
    lines.append(f"  {'run_grid':10} {grid_aps:>12,.0f}  "
                 "(supervised, fault hooks idle)")
    # Telemetry cost: probes-off is the number measured above (the
    # default path carries the disabled probe branch); probes-on pays
    # one counter snapshot per window.
    tele_off = result["accesses_per_sec"]["sdc_lp"]
    tele_on = _throughput(trace, cfg, "sdc_lp",
                          telemetry_every=TELEMETRY_WINDOW)
    result["telemetry"] = {
        "window": TELEMETRY_WINDOW,
        "off_accesses_per_sec": tele_off,
        "on_accesses_per_sec": round(tele_on),
        "probe_overhead_pct": round(100.0 * (1.0 - tele_on / tele_off),
                                    2),
        "off_path_reference": OFF_PATH_REFERENCE,
    }
    lines.append(f"  {'telemetry':10} {tele_on:>12,.0f}  "
                 f"(probes on, {TELEMETRY_WINDOW}-access windows: "
                 f"{result['telemetry']['probe_overhead_pct']:+.1f}% "
                 "vs off)")
    _OUT.write_text(json.dumps(result, indent=2) + "\n")
    lines.append(f"  -> {_OUT.name}")
    show("\n".join(lines))
    assert all(v > 0 for v in result["accesses_per_sec"].values())
    assert grid_aps > 0
    assert tele_on > 0
    # Telemetry disabled must not tax the hot path: the recorded
    # interleaved A/B against the pre-telemetry engine stays under 2%.
    assert (OFF_PATH_REFERENCE["overhead_pct"]
            < MAX_OFF_PATH_REGRESSION_PCT), (
        "disabled-telemetry overhead "
        f"{OFF_PATH_REFERENCE['overhead_pct']}% exceeds "
        f"{MAX_OFF_PATH_REGRESSION_PCT}% — re-measure the A/B in "
        "OFF_PATH_REFERENCE before shipping hot-loop changes")
