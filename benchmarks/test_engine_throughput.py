"""Micro benchmark: simulated accesses/sec through the single-core
hot path, recorded to ``BENCH_engine.json``.

This is the measurement behind the hot-path optimization work (shift/
mask set indexing, dict-order LRU, inlined fill/probe paths): the
number is recorded, not asserted, so regressions show up in the JSON
trajectory rather than as flaky CI failures.  ``make bench-engine``
runs just this file.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs import kronecker_graph
from repro.trace.kernels import trace_pagerank

#: The micro benchmark: PageRank over a 4k-vertex Kronecker graph,
#: 50k-access window — large enough to exercise every hierarchy level,
#: small enough to time in seconds.
BENCH_SPEC = dict(scale=12, degree=8, seed=1, accesses=50_000)
VARIANTS = ("baseline", "sdc_lp")
REPEATS = 3

_OUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _bench_trace():
    g = kronecker_graph(BENCH_SPEC["scale"], BENCH_SPEC["degree"],
                        seed=BENCH_SPEC["seed"])
    return trace_pagerank(g, iterations=1,
                          max_accesses=BENCH_SPEC["accesses"])


def _throughput(trace, cfg, variant: str,
                telemetry_every: int = 0) -> float:
    """Best-of-N accesses/sec for one variant."""
    best = float("inf")
    for _ in range(REPEATS):
        system = SingleCoreSystem(cfg, variant,
                                  telemetry_every=telemetry_every)
        t0 = time.perf_counter()
        system.run(trace)
        best = min(best, time.perf_counter() - t0)
    return len(trace) / best


def _grid_throughput(tmp_root) -> float:
    """Accesses/sec through the full supervised ``run_grid`` path —
    fault hooks armed but no plan active — on a serial micro grid."""
    from repro import faults
    from repro.experiments import results_cache as rc
    from repro.experiments.parallel import Job, run_grid
    from repro.experiments.runner import default_config

    assert faults.active_plan() is None, \
        "grid throughput must be measured fault-free"
    cfg = default_config()
    grid = [Job(wl, v, cfg, tier="tiny", length=25_000)
            for wl in ("pr.urand", "cc.urand")
            for v in ("baseline", "sdc_lp")]
    accesses = 4 * 25_000
    best = float("inf")
    for i in range(REPEATS):
        t0 = time.perf_counter()
        run_grid(grid, use_cache=False,
                 cache=rc.ResultsCache(tmp_root / f"r{i}"),
                 manifest_dir=tmp_root / "runs")
        best = min(best, time.perf_counter() - t0)
    return accesses / best


# -- trace store: zero-copy mapped traces vs v7-style private copies -------

#: Workload specs for the trace-store measurement: enough distinct
#: traces at a length where a private in-RAM copy is clearly visible in
#: per-worker memory (~4.6 MB of records each).
STORE_SPECS = (("pr.urand", "small", 200_000),
               ("cc.urand", "small", 200_000),
               ("bfs.urand", "small", 200_000),
               ("sssp.urand", "small", 200_000))

STORE_JOBS = 4

#: Per-worker private trace memory must shrink at least this much with
#: mapped traces versus v7-style private in-RAM copies (ISSUE 5 gate).
MIN_RSS_REDUCTION_X = 2.0

#: Anonymous-delta readings below this are allocator/interpreter noise;
#: the mapped path routinely measures ~0 (even slightly negative after
#: gc), so the reduction ratio clamps its denominator here to stay
#: meaningful and conservative.
NOISE_FLOOR_KB = 1024


def _anon_kb() -> int:
    """Anonymous (private, non-file-backed) memory of this process in
    KiB — the metric a mapped trace must *not* grow.  File-backed
    mapped pages live in the shared OS page cache instead."""
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Anonymous:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _worker_trace_memory(args) -> dict:
    """Pool-worker probe: load every spec'd trace (mapped or private
    copy), touch all records, report this worker's anonymous-memory
    delta and peak RSS."""
    import gc

    from repro.experiments.workloads import workload_trace

    specs, mapped = args
    gc.collect()
    before = _anon_kb()
    traces = [workload_trace(name, tier=tier, length=length,
                             mapped=mapped)
              for name, tier, length in specs]
    # Touch every record so mapped pages actually fault in; the
    # checksum keeps the work from being optimized away.
    touched = sum(int(t.accesses["addr"].sum() & 0xFFFF) for t in traces)
    gc.collect()
    after = _anon_kb()
    return {"pid": os.getpid(),
            "anon_delta_kb": after - before,
            "peak_rss_kb": resource.getrusage(
                resource.RUSAGE_SELF).ru_maxrss,
            "touched": touched}


def _trace_store_bench(monkeypatch, tmp_path) -> dict:
    """Cold/warm trace-path wall-clock, per-worker memory at
    ``STORE_JOBS`` workers, and the mapped-vs-v7 bit-identical gate."""
    import numpy as np

    from repro.experiments import workloads
    from repro.experiments.runner import run_variant
    from repro.experiments.workloads import workload_trace
    from repro.trace.record import Trace

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store-bench"))

    # Cold: generate + write every store file (fresh cache directory).
    t0 = time.perf_counter()
    traces = [workload_trace(n, tier=t, length=ln)
              for n, t, ln in STORE_SPECS]
    cold_s = time.perf_counter() - t0
    trace_bytes = [int(t.accesses.nbytes) for t in traces]

    # Warm: re-open all entries memory-mapped (checksummed open, zero
    # copies) versus the v7-era path (decompress + private copy of a
    # compressed .npz of the same trace).
    t0 = time.perf_counter()
    for n, t, ln in STORE_SPECS:
        workload_trace(n, tier=t, length=ln)
    warm_mapped_s = time.perf_counter() - t0

    npz_paths = []
    for trace, (n, t, ln) in zip(traces, STORE_SPECS):
        p = tmp_path / f"{n}.{t}.{ln}.v7.npz"
        with open(p, "wb") as fh:
            trace.save(fh)
        npz_paths.append(p)
    t0 = time.perf_counter()
    v7_traces = [Trace.load(p) for p in npz_paths]
    warm_npz_s = time.perf_counter() - t0

    # Per-worker trace memory at jobs >= 4: each worker loads the full
    # spec set, mapped versus v7-style private copies.  The pool uses
    # the *spawn* start method: a forked child inherits the parent's
    # allocator arenas (with enough free space to absorb every trace
    # without mapping a single new page), which hides exactly the
    # allocation this probe exists to measure.
    ctx = multiprocessing.get_context("spawn")
    per_worker = {}
    for label, mapped in (("mapped_v8", True), ("private_v7_style",
                                                False)):
        with ProcessPoolExecutor(max_workers=STORE_JOBS,
                                 mp_context=ctx) as pool:
            reports = list(pool.map(
                _worker_trace_memory,
                [(STORE_SPECS, mapped)] * STORE_JOBS))
        per_worker[label] = {
            "anon_delta_kb": [r["anon_delta_kb"] for r in reports],
            "peak_rss_kb": [r["peak_rss_kb"] for r in reports],
            "distinct_workers": len({r["pid"] for r in reports}),
        }

    worst_mapped = max(per_worker["mapped_v8"]["anon_delta_kb"])
    best_private = min(per_worker["private_v7_style"]["anon_delta_kb"])
    reduction = best_private / max(worst_mapped, NOISE_FLOOR_KB)

    # Bit-identical gate: the mapped v8 trace must simulate exactly
    # like its v7 (.npz round-tripped, private in-RAM) twin.
    cfg = scaled_config(16)
    mapped_trace = workload_trace(*STORE_SPECS[0][:1],
                                  tier=STORE_SPECS[0][1],
                                  length=STORE_SPECS[0][2])
    assert isinstance(mapped_trace.accesses, np.memmap)
    identical = (
        run_variant(mapped_trace, "sdc_lp", cfg).to_payload()
        == run_variant(v7_traces[0], "sdc_lp", cfg).to_payload())

    assert identical, "mapped v8 trace diverged from the v7 .npz twin"
    assert reduction >= MIN_RSS_REDUCTION_X, (
        f"per-worker trace memory shrank only {reduction:.2f}x "
        f"(mapped worst {worst_mapped} KiB vs private best "
        f"{best_private} KiB); the mmap store must save >= "
        f"{MIN_RSS_REDUCTION_X}x at jobs >= {STORE_JOBS}")
    assert warm_mapped_s < warm_npz_s, (
        f"warm mapped open ({warm_mapped_s:.3f}s) should beat the v7 "
        f"decompress+copy path ({warm_npz_s:.3f}s)")

    return {
        "specs": [f"{n}.{t}.{ln}" for n, t, ln in STORE_SPECS],
        "record_bytes_per_trace": trace_bytes,
        "cold_populate_seconds": round(cold_s, 3),
        "warm_mapped_open_seconds": round(warm_mapped_s, 4),
        "warm_v7_npz_load_seconds": round(warm_npz_s, 4),
        "jobs": STORE_JOBS,
        "per_worker": per_worker,
        "per_worker_trace_memory_reduction_x": round(reduction, 1),
        "bit_identical_to_v7": identical,
    }


# -- batch (structure-of-arrays) backend A/B -------------------------------

#: CI bench-smoke gate: the batch backend must deliver at least this
#: multiple of reference throughput on the BENCH_engine workload.  The
#: ISSUE 6 target is 5x (stretch 10x); the asserted floor is 2x so a
#: loaded CI box cannot flake the job while a real regression (e.g. the
#: kernel silently falling back to reference) still fails loudly.
MIN_BATCH_SPEEDUP_X = 2.0

BATCH_AB_ROUNDS = 5


def _batch_ab(trace, cfg) -> dict:
    """Interleaved best-of-N ref-vs-batch A/B per variant.

    Interleaving (ref, batch, ref, batch, …) shares thermal and cache
    state between the two arms, so the ratio is stable even when the
    absolute numbers drift between runs on a shared machine.
    """
    from repro.core.batch import kernel_available, source_digest

    if not kernel_available():
        return {"available": False,
                "note": "no C compiler on this host; backend falls "
                        "back to reference"}
    out = {"available": True, "kernel_digest": source_digest()[:16],
           "rounds": BATCH_AB_ROUNDS, "variants": {}}
    for variant in VARIANTS:
        best = {"ref": float("inf"), "batch": float("inf")}
        for _ in range(BATCH_AB_ROUNDS):
            for backend in ("ref", "batch"):
                system = SingleCoreSystem(cfg, variant)
                t0 = time.perf_counter()
                system.run(trace, backend=backend)
                best[backend] = min(best[backend],
                                    time.perf_counter() - t0)
        out["variants"][variant] = {
            "ref_accesses_per_sec": round(len(trace) / best["ref"]),
            "batch_accesses_per_sec": round(len(trace) / best["batch"]),
            "speedup_x": round(best["ref"] / best["batch"], 1),
        }
    return out


# -- service path: HTTP API + lease queue vs direct run_grid ---------------

#: Grid for the service A/B: 3 workloads x (baseline, sdc_lp), big
#: enough that per-cell simulation dominates the fixed per-sweep cost
#: (HTTP round-trips, lease bookkeeping, journal appends, poll ticks).
SERVICE_WORKLOADS = ("pr.urand", "cc.urand", "bfs.urand")
SERVICE_VARIANTS = ("baseline", "sdc_lp")
SERVICE_LENGTH = 50_000
SERVICE_JOBS = 2
SERVICE_REPEATS = 2

#: ISSUE 8 acceptance gate: a sweep submitted over the service API may
#: cost at most this much wall-clock over the same grid run directly
#: through ``run_grid`` at the same worker count.
MAX_SERVICE_OVERHEAD_PCT = 10.0


def _service_bench(tmp_path, monkeypatch) -> dict:
    """Interleaved A/B: the same fresh-cache sweep through
    ``run_grid(jobs=2)`` versus submitted over the service HTTP API
    (orchestrator + lease queue + 2 leased workers).

    Every repeat of either arm gets its own ``REPRO_CACHE_DIR``, so
    both pay trace generation, cache writes and manifest I/O — the
    measured difference is exactly the service machinery.
    """
    import threading

    from repro import faults
    from repro.experiments.parallel import Job, run_grid
    from repro.experiments.runner import default_config
    from repro.service import (JobRequest, Orchestrator, ServiceClient,
                               ServiceConfig)
    from repro.service.api import serve_in_thread

    assert faults.active_plan() is None, \
        "service overhead must be measured fault-free"
    cfg = default_config()
    grid = [Job(wl, v, cfg, tier="tiny", length=SERVICE_LENGTH)
            for wl in SERVICE_WORKLOADS for v in SERVICE_VARIANTS]
    request = JobRequest(workloads=list(SERVICE_WORKLOADS),
                         variants=tuple(v for v in SERVICE_VARIANTS
                                        if v != "baseline"),
                         tier="tiny", length=SERVICE_LENGTH)

    def direct_seconds(root) -> float:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        t0 = time.perf_counter()
        results = run_grid(grid, jobs=SERVICE_JOBS, run_id="direct",
                           manifest_dir=root / "runs")
        dt = time.perf_counter() - t0
        assert len(results) == len(grid)
        return dt

    def service_seconds(root) -> float:
        monkeypatch.setenv("REPRO_CACHE_DIR", str(root))
        orc = Orchestrator(ServiceConfig(workers=SERVICE_JOBS))
        server, _ = serve_in_thread(orc)
        loop = threading.Thread(target=orc.run, kwargs={"poll": 0.05},
                                daemon=True)
        t0 = time.perf_counter()
        loop.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}")
        resp = client.submit(request)
        status = client.wait(resp.job_id, timeout=600.0, poll=0.1)
        dt = time.perf_counter() - t0
        orc.request_drain()
        loop.join(60.0)
        assert status.state == "complete", status.error
        assert status.progress.done == len(grid)
        return dt

    best = {"direct": float("inf"), "service": float("inf")}
    for i in range(SERVICE_REPEATS):
        best["direct"] = min(best["direct"],
                             direct_seconds(tmp_path / f"svc-d{i}"))
        best["service"] = min(best["service"],
                              service_seconds(tmp_path / f"svc-s{i}"))
    overhead = 100.0 * (best["service"] / best["direct"] - 1.0)
    return {
        "grid_cells": len(grid),
        "length": SERVICE_LENGTH,
        "jobs": SERVICE_JOBS,
        "repeats": SERVICE_REPEATS,
        "direct_seconds": round(best["direct"], 3),
        "service_seconds": round(best["service"], 3),
        "direct_cells_per_sec": round(len(grid) / best["direct"], 2),
        "service_cells_per_sec": round(len(grid) / best["service"], 2),
        "overhead_pct": round(overhead, 1),
    }


#: Window for the telemetry-on measurement (the engine default).
TELEMETRY_WINDOW = 4096

# -- DSE search efficiency -------------------------------------------------

#: A small-but-real successive-halving study for the search-efficiency
#: gate: enough candidates that the rung-1 cut is visible, short traces
#: so the block times in seconds.
DSE_SEED = 5
DSE_CANDIDATES = 16
DSE_RUNGS = 2
DSE_LENGTH = 2_500
DSE_WORKLOADS = ("pr.urand", "cc.urand")

#: ISSUE 9 acceptance gate: the search must simulate fewer than this
#: fraction of the cells a full enumeration of the declared space
#: would cost.
MAX_DSE_FRACTION = 0.5


def _dse_bench(tmp_path, monkeypatch) -> dict:
    """One quick ``run_study`` with fresh caches; wall-clock plus the
    simulated-cells-vs-full-enumeration ratio the CI gate asserts."""
    from repro.dse import run_study
    from repro.experiments import results_cache as rc

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "dse-bench"))
    t0 = time.perf_counter()
    res = run_study(seed=DSE_SEED, n=DSE_CANDIDATES, rungs=DSE_RUNGS,
                    base_length=DSE_LENGTH, tier="tiny",
                    workloads=DSE_WORKLOADS,
                    manifest_dir=tmp_path / "dse-runs",
                    cache=rc.ResultsCache(tmp_path / "dse-results"))
    seconds = time.perf_counter() - t0
    fraction = res.cells_simulated / res.full_enumeration_cells
    return {
        "seed": DSE_SEED,
        "candidates": DSE_CANDIDATES,
        "rungs": DSE_RUNGS,
        "base_length": DSE_LENGTH,
        "workloads": list(DSE_WORKLOADS),
        "cells_simulated": res.cells_simulated,
        "full_enumeration_cells": res.full_enumeration_cells,
        "fraction_of_full_enumeration": round(fraction, 4),
        "frontier_size": len(res.frontier),
        "variants_on_frontier": sorted({p.variant
                                        for p in res.frontier}),
        "seconds": round(seconds, 2),
        "cells_per_sec": round(res.cells_simulated / seconds, 2),
    }


#: Disabled telemetry may cost at most this much of engine throughput.
#: Its hot-path footprint is one falsy integer test per access; the
#: gate runs against OFF_PATH_REFERENCE, an interleaved same-machine
#: A/B recorded when the probe landed (cross-run wall-clock compares
#: drift far more than 2% on a shared box, so the live numbers below
#: are recorded, not asserted, like every other figure here).
MAX_OFF_PATH_REGRESSION_PCT = 2.0

OFF_PATH_REFERENCE = {
    "pre_telemetry_commit": "a40d277",
    "pre_telemetry_accesses_per_sec": 273906,
    "probes_off_accesses_per_sec": 275018,
    "overhead_pct": -0.41,
    "note": "interleaved best-of-5 A/B (5 rounds, median ratio 1.009) "
            "against a pre-telemetry worktree on the same machine: "
            "the disabled probe branch is below measurement noise",
}


def test_engine_throughput(show, tmp_path, monkeypatch):
    trace = _bench_trace()
    cfg = scaled_config(16)
    result = {
        "benchmark": "pagerank/kron(12,8) 50k-access window, best of "
                     f"{REPEATS}",
        "accesses": len(trace),
        "accesses_per_sec": {},
    }
    # Carry historical reference points (e.g. the seed-commit numbers
    # measured when the hot path was optimized) across reruns.
    if _OUT.exists():
        try:
            result["seed_reference"] = \
                json.loads(_OUT.read_text())["seed_reference"]
        except (KeyError, ValueError):
            pass
    lines = ["Engine throughput (accesses/sec):"]
    for variant in VARIANTS:
        aps = _throughput(trace, cfg, variant)
        result["accesses_per_sec"][variant] = round(aps)
        lines.append(f"  {variant:10} {aps:>12,.0f}")
    # The same metric through run_grid's supervision layer (retry/
    # manifest/fault hooks in place, no fault plan active): evidence
    # the resilience machinery costs nothing when idle.
    grid_aps = _grid_throughput(tmp_path)
    result["grid_accesses_per_sec_no_faults"] = round(grid_aps)
    lines.append(f"  {'run_grid':10} {grid_aps:>12,.0f}  "
                 "(supervised, fault hooks idle)")
    # Telemetry cost: probes-off is the number measured above (the
    # default path carries the disabled probe branch); probes-on pays
    # one counter snapshot per window.
    tele_off = result["accesses_per_sec"]["sdc_lp"]
    tele_on = _throughput(trace, cfg, "sdc_lp",
                          telemetry_every=TELEMETRY_WINDOW)
    result["telemetry"] = {
        "window": TELEMETRY_WINDOW,
        "off_accesses_per_sec": tele_off,
        "on_accesses_per_sec": round(tele_on),
        "probe_overhead_pct": round(100.0 * (1.0 - tele_on / tele_off),
                                    2),
        "off_path_reference": OFF_PATH_REFERENCE,
    }
    lines.append(f"  {'telemetry':10} {tele_on:>12,.0f}  "
                 f"(probes on, {TELEMETRY_WINDOW}-access windows: "
                 f"{result['telemetry']['probe_overhead_pct']:+.1f}% "
                 "vs off)")
    # Batch backend A/B: interleaved ref-vs-batch wall clocks plus the
    # CI bench-smoke floor (ISSUE 6 acceptance).
    ab = _batch_ab(trace, cfg)
    result["batch_backend"] = ab
    if ab["available"]:
        for variant, row in ab["variants"].items():
            lines.append(
                f"  {variant:10} {row['batch_accesses_per_sec']:>12,} "
                f" (batch backend, {row['speedup_x']}x ref)")
        worst = min(row["speedup_x"] for row in ab["variants"].values())
        assert worst >= MIN_BATCH_SPEEDUP_X, (
            f"batch backend speedup {worst}x below the "
            f"{MIN_BATCH_SPEEDUP_X}x bench-smoke floor — the kernel is "
            "slow or (more likely) silently falling back to reference")
    else:
        lines.append(f"  {'batch':10} unavailable: {ab['note']}")
    # Service A/B: the same sweep over the HTTP API (orchestrator +
    # lease queue) versus direct run_grid at the same worker count
    # (ISSUE 8 acceptance: the service must cost < 10% wall-clock).
    svc = _service_bench(tmp_path, monkeypatch)
    result["service"] = svc
    lines.append(
        f"  {'service':10} {svc['service_cells_per_sec']:>12,.2f}  "
        f"cells/sec over the API ({svc['overhead_pct']:+.1f}% vs "
        f"run_grid jobs={svc['jobs']})")
    assert svc["overhead_pct"] < MAX_SERVICE_OVERHEAD_PCT, (
        f"service API overhead {svc['overhead_pct']}% at "
        f"jobs={SERVICE_JOBS} exceeds the {MAX_SERVICE_OVERHEAD_PCT}% "
        "gate — the orchestrator is adding per-cell latency (check "
        "poll intervals and lease bookkeeping)")
    # Trace-store cost model: cold populate, warm mapped open vs the
    # v7 decompress+copy path, per-worker trace memory at 4 jobs, and
    # the mapped-vs-v7 bit-identical gate (ISSUE 5 acceptance).
    ts = _trace_store_bench(monkeypatch, tmp_path)
    result["trace_store"] = ts
    lines.append(
        f"  {'trace store':10} warm open {ts['warm_mapped_open_seconds']}s"
        f" (v7 npz {ts['warm_v7_npz_load_seconds']}s), per-worker "
        f"trace memory {ts['per_worker_trace_memory_reduction_x']}x "
        f"smaller at {ts['jobs']} jobs, bit-identical to v7")
    # DSE search efficiency: successive halving must simulate well
    # under half the cells a full enumeration of the declared space
    # would need, while still producing a frontier (ISSUE 9 gate).
    dse = _dse_bench(tmp_path, monkeypatch)
    result["dse"] = dse
    lines.append(
        f"  {'dse':10} {dse['cells_simulated']:>12,}  cells for "
        f"{dse['candidates']} candidates "
        f"({100 * dse['fraction_of_full_enumeration']:.2f}% of the "
        f"{dse['full_enumeration_cells']:,}-cell full enumeration)")
    assert dse["fraction_of_full_enumeration"] < MAX_DSE_FRACTION, (
        f"DSE search simulated {dse['cells_simulated']} cells — "
        f"{100 * dse['fraction_of_full_enumeration']:.1f}% of the full "
        f"enumeration, above the {100 * MAX_DSE_FRACTION:.0f}% gate: "
        "the halving schedule or dominance pruning has regressed")
    assert dse["frontier_size"] > 0
    _OUT.write_text(json.dumps(result, indent=2) + "\n")
    lines.append(f"  -> {_OUT.name}")
    show("\n".join(lines))
    assert all(v > 0 for v in result["accesses_per_sec"].values())
    assert grid_aps > 0
    assert tele_on > 0
    # Telemetry disabled must not tax the hot path: the recorded
    # interleaved A/B against the pre-telemetry engine stays under 2%.
    assert (OFF_PATH_REFERENCE["overhead_pct"]
            < MAX_OFF_PATH_REGRESSION_PCT), (
        "disabled-telemetry overhead "
        f"{OFF_PATH_REFERENCE['overhead_pct']}% exceeds "
        f"{MAX_OFF_PATH_REGRESSION_PCT}% — re-measure the A/B in "
        "OFF_PATH_REFERENCE before shipping hot-loop changes")
