"""Micro benchmark: simulated accesses/sec through the single-core
hot path, recorded to ``BENCH_engine.json``.

This is the measurement behind the hot-path optimization work (shift/
mask set indexing, dict-order LRU, inlined fill/probe paths): the
number is recorded, not asserted, so regressions show up in the JSON
trajectory rather than as flaky CI failures.  ``make bench-engine``
runs just this file.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config import scaled_config
from repro.core.system import SingleCoreSystem
from repro.graphs import kronecker_graph
from repro.trace.kernels import trace_pagerank

#: The micro benchmark: PageRank over a 4k-vertex Kronecker graph,
#: 50k-access window — large enough to exercise every hierarchy level,
#: small enough to time in seconds.
BENCH_SPEC = dict(scale=12, degree=8, seed=1, accesses=50_000)
VARIANTS = ("baseline", "sdc_lp")
REPEATS = 3

_OUT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def _bench_trace():
    g = kronecker_graph(BENCH_SPEC["scale"], BENCH_SPEC["degree"],
                        seed=BENCH_SPEC["seed"])
    return trace_pagerank(g, iterations=1,
                          max_accesses=BENCH_SPEC["accesses"])


def _throughput(trace, cfg, variant: str) -> float:
    """Best-of-N accesses/sec for one variant."""
    best = float("inf")
    for _ in range(REPEATS):
        system = SingleCoreSystem(cfg, variant)
        t0 = time.perf_counter()
        system.run(trace)
        best = min(best, time.perf_counter() - t0)
    return len(trace) / best


def _grid_throughput(tmp_root) -> float:
    """Accesses/sec through the full supervised ``run_grid`` path —
    fault hooks armed but no plan active — on a serial micro grid."""
    from repro import faults
    from repro.experiments import results_cache as rc
    from repro.experiments.parallel import Job, run_grid
    from repro.experiments.runner import default_config

    assert faults.active_plan() is None, \
        "grid throughput must be measured fault-free"
    cfg = default_config()
    grid = [Job(wl, v, cfg, tier="tiny", length=25_000)
            for wl in ("pr.urand", "cc.urand")
            for v in ("baseline", "sdc_lp")]
    accesses = 4 * 25_000
    best = float("inf")
    for i in range(REPEATS):
        t0 = time.perf_counter()
        run_grid(grid, use_cache=False,
                 cache=rc.ResultsCache(tmp_root / f"r{i}"),
                 manifest_dir=tmp_root / "runs")
        best = min(best, time.perf_counter() - t0)
    return accesses / best


def test_engine_throughput(show, tmp_path):
    trace = _bench_trace()
    cfg = scaled_config(16)
    result = {
        "benchmark": "pagerank/kron(12,8) 50k-access window, best of "
                     f"{REPEATS}",
        "accesses": len(trace),
        "accesses_per_sec": {},
    }
    # Carry historical reference points (e.g. the seed-commit numbers
    # measured when the hot path was optimized) across reruns.
    if _OUT.exists():
        try:
            result["seed_reference"] = \
                json.loads(_OUT.read_text())["seed_reference"]
        except (KeyError, ValueError):
            pass
    lines = ["Engine throughput (accesses/sec):"]
    for variant in VARIANTS:
        aps = _throughput(trace, cfg, variant)
        result["accesses_per_sec"][variant] = round(aps)
        lines.append(f"  {variant:10} {aps:>12,.0f}")
    # The same metric through run_grid's supervision layer (retry/
    # manifest/fault hooks in place, no fault plan active): evidence
    # the resilience machinery costs nothing when idle.
    grid_aps = _grid_throughput(tmp_path)
    result["grid_accesses_per_sec_no_faults"] = round(grid_aps)
    lines.append(f"  {'run_grid':10} {grid_aps:>12,.0f}  "
                 "(supervised, fault hooks idle)")
    _OUT.write_text(json.dumps(result, indent=2) + "\n")
    lines.append(f"  -> {_OUT.name}")
    show("\n".join(lines))
    assert all(v > 0 for v in result["accesses_per_sec"].values())
    assert grid_aps > 0
