"""§V-E energy study — whole-system dynamic energy of Baseline vs
SDC+LP.

The paper reports only the new structures' per-access energies (all
tiny: 0.010-0.034 nJ); this bench extends to a full comparison.  The
robust expectation: removing the useless L2C/LLC lookups saves on-chip
energy overall (geomean), partially offset on some workloads by DRAM
reads the bypass no longer shares through the LLC.
"""

from conftest import run_once

from repro.experiments import figures, report


def test_energy_study(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.energy_study, bench_workloads,
                   length=bench_length)
    show(report.render_energy_study(res))
    assert res.onchip_saving_geomean() > 0.0
    assert all(e > 0 for e in res.baseline_epki)
    assert all(e > 0 for e in res.sdc_lp_epki)
