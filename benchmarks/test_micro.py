"""Microbenchmarks of the simulator substrate itself: these track the
throughput of the hot paths (cache access loop, LP, trace generation,
timing model) so performance regressions in the infrastructure are
visible independently of the paper experiments."""

import numpy as np
import pytest

from repro.config import scaled_config
from repro.core.lp import LargePredictor
from repro.core.system import SingleCoreSystem
from repro.graphs.generators import kronecker_graph
from repro.mem.cache import SetAssocCache
from repro.mem.timing import CoreTimer
from repro.trace.kernels import trace_pagerank


@pytest.fixture(scope="module")
def kron12():
    return kronecker_graph(12, 8, seed=1)


@pytest.fixture(scope="module")
def trace50k(kron12):
    return trace_pagerank(kron12, iterations=1, max_accesses=50_000)


def test_cache_access_throughput(benchmark):
    cfg = scaled_config(16)
    cache = SetAssocCache(cfg.llc)
    rng = np.random.default_rng(0)
    blocks = rng.integers(0, 1 << 16, size=20_000).tolist()

    def run():
        for b in blocks:
            if not cache.access(b, False):
                cache.fill(b)

    benchmark(run)


def test_lp_throughput(benchmark):
    lp = LargePredictor()
    rng = np.random.default_rng(0)
    pcs = rng.integers(0, 64, size=20_000).tolist()
    addrs = rng.integers(0, 1 << 24, size=20_000).tolist()

    def run():
        for pc, addr in zip(pcs, addrs):
            lp.predict_and_update(pc, addr)

    benchmark(run)


def test_timing_model_throughput(benchmark):
    cfg = scaled_config(16)
    rng = np.random.default_rng(0)
    lats = rng.choice([4, 14, 70, 120], size=20_000).tolist()

    def run():
        t = CoreTimer(cfg.core, 10, 4)
        for lat in lats:
            t.access(2, lat, None)

    benchmark(run)


def test_trace_generation_throughput(benchmark, kron12):
    result = benchmark(trace_pagerank, kron12, iterations=1,
                       max_accesses=100_000)
    assert len(result) > 0


def test_end_to_end_simulation_throughput(benchmark, trace50k):
    cfg = scaled_config(16)

    def run():
        return SingleCoreSystem(cfg, "sdc_lp").run(trace50k)

    stats = benchmark.pedantic(run, rounds=2, iterations=1)
    assert stats.instructions > 0


def test_graph_generation_throughput(benchmark):
    g = benchmark.pedantic(kronecker_graph, args=(14, 8),
                           kwargs={"seed": 3}, rounds=1, iterations=1)
    assert g.num_vertices == 1 << 14
