"""Figs. 8 & 9 — MPKI shifts under SDC+LP.

Paper result: average L2C MPKI 44.5 -> 4.4 and LLC MPKI 41.8 -> 2.8
(Fig. 8); L1D MPKI 53.2 -> 7.4 with the SDC absorbing the bulk at an
average MPKI of 48.3 (Fig. 9).
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig8_l2_llc_mpki(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig8_l2_llc_mpki, bench_workloads,
                   length=bench_length)
    show(report.render_mpki_compare(
        res, ("l2c", "llc"), "Fig. 8 — L2C/LLC MPKI, Baseline vs SDC+LP"))
    # The collapse: SDC+LP removes the vast majority of L2C/LLC misses.
    assert res.average("sdc_lp", "l2c") < 0.35 * res.average("baseline",
                                                             "l2c")
    assert res.average("sdc_lp", "llc") < 0.35 * res.average("baseline",
                                                             "llc")


def test_fig9_l1_sdc_mpki(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig9_l1_sdc_mpki, bench_workloads,
                   length=bench_length)
    show(report.render_mpki_compare(
        res, ("l1d", "sdc"), "Fig. 9 — L1D/SDC MPKI, Baseline vs SDC+LP"))
    # The SDC takes over most former L1D misses ...
    assert res.average("sdc_lp", "l1d") < 0.5 * res.average("baseline",
                                                            "l1d")
    # ... and its own MPKI is of the same order as the baseline L1D's
    # (48.3 vs 53.2 in the paper): the redirected accesses stay averse.
    assert res.average("sdc_lp", "sdc") > 0.3 * res.average("baseline",
                                                            "l1d")
