"""§III-E study — context-switch robustness of the SDC + LP state.

The paper argues the VIPT SDC needs no flush on context switches.  The
complementary measurement: even when the SDC and LP *are* flushed (as a
virtually-tagged design would require), the 10 KB structures retrain so
fast that the speedup is unaffected at OS-realistic switch intervals.
"""

from conftest import run_once

from repro.experiments import figures, report

INTERVALS = (0, 50_000, 10_000)


def test_context_switch_robustness(benchmark, show, bench_workloads,
                                   bench_length):
    res = run_once(benchmark, figures.context_switch_study,
                   bench_workloads, intervals=INTERVALS,
                   length=bench_length)
    show(report.render_context_switch_study(res))
    never = res.speedup_geomean[0]
    assert never > 0.10
    # OS-realistic flushing (every 10k+ accesses) moves the geomean by
    # at most a few points.
    for sp in res.speedup_geomean[1:]:
        assert abs(sp - never) < 0.05
