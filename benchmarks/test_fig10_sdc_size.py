"""Fig. 10 — SDC size exploration (8/16/32 KiB classes).

Paper result: SDC MPKI barely improves with size (50.5 / 49.1 / 48.0)
while the larger SDCs' longer latencies erode the speedup — the
smallest SDC is the sweet spot (§V-B1).
"""

from conftest import run_once

from repro.experiments import figures, report


def test_fig10_sdc_size(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.fig10_sdc_size, bench_workloads,
                   length=bench_length)
    show(report.render_fig10(res))
    # MPKI decreases only marginally with capacity ...
    assert res.sdc_mpki[2] <= res.sdc_mpki[0]
    assert res.sdc_mpki[2] > 0.8 * res.sdc_mpki[0]
    # ... so the 1-cycle small SDC wins (or ties) end-to-end.
    assert res.speedup_geomean[0] >= max(res.speedup_geomean) - 0.02
