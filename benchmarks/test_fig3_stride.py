"""Fig. 3 — probability of a DRAM access per PC-local stride bucket,
characterized on cc.friendster.

Paper result: 11.6% for strides in (10^0, 10^1], rising steeply with
stride (97.6% at (10^5, 10^6]).  Our scaled surrogate compresses the
stride range (~10^4 blocks max), but the monotone small-vs-large split
must hold.
"""

import math

from conftest import run_once

from repro.experiments import figures, report


def test_fig3_stride_dram(benchmark, show, bench_length):
    res = run_once(benchmark, figures.fig3_stride_dram, "cc.friendster",
                   length=bench_length)
    show(report.render_fig3(res))
    probs = res.dram_probability
    counts = res.access_counts
    # Stride-0/1 accesses rarely reach DRAM ...
    assert probs[0] < 0.15
    # ... while populated large-stride buckets often do.
    large = [p for p, c in zip(probs[2:], counts[2:])
             if c > 100 and not math.isnan(p)]
    assert large, "no populated large-stride buckets"
    assert max(large) > 4 * max(probs[0], 0.01)
