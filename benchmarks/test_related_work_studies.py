"""§VI related-work studies (claims the paper makes in prose; these
benches turn them into measured tables).

* Replacement: "complex cache replacement policies ... struggle with
  graph-processing workloads" — DRRIP/SHiP gain little; T-OPT more.
* Prefetching: "stream and strided cache prefetchers struggle with
  indirect memory access patterns"; and the paper's future work — SDC+LP
  combined with prefetching — composes positively.
* Pre-processing: reordering helps locality but costs far more memory
  touches than the single traversal it accelerates; SDC+LP needs none.
"""

from conftest import run_once

from repro.experiments import figures, report


def test_replacement_study(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.replacement_study, bench_workloads,
                   length=bench_length)
    show(report.render_policy_study(res))
    by = dict(zip(res.policies, res.speedup_geomean))
    # Smarter retention helps only marginally on graph workloads ...
    assert by["drrip"] < 0.10
    assert by["ship"] < 0.10
    # ... and the oracle-fed T-OPT caps what replacement alone can do.
    assert by["topt"] >= max(by["drrip"], by["ship"]) - 0.02


def test_prefetcher_study(benchmark, show, bench_workloads, bench_length):
    res = run_once(benchmark, figures.prefetcher_study, bench_workloads,
                   length=bench_length)
    show(report.render_prefetcher_study(res))
    by_base = dict(zip(res.l1_prefetchers, res.speedup_geomean))
    by_sdc = dict(zip(res.l1_prefetchers, res.sdc_lp_speedup))
    # IP-stride finds (almost) nothing in graph access streams.
    assert by_base["stride"] < 0.03
    # SDC+LP composes positively with prefetching (the future work).
    assert by_sdc["next_line"] > by_sdc["none"]
    assert all(s > 0.05 for s in res.sdc_lp_speedup)


def test_preprocessing_study(benchmark, show, bench_length):
    res = run_once(benchmark, figures.preprocessing_study, "pr", "kron",
                   length=bench_length)
    show(report.render_preprocessing_study(res))
    by = dict(zip(res.orderings, res.speedup))
    cost = dict(zip(res.orderings, res.cost_ratio))
    # Reordering can beat the baseline substantially ...
    assert max(by["degree"], by["rcm"], by["bfs"]) > 0.2
    # ... but costs many traversals' worth of preprocessing touches,
    assert all(cost[o] > 10 for o in ("degree", "bfs", "rcm"))
    # while SDC+LP gains double digits with zero preprocessing.
    assert res.sdc_lp_original > 0.10
