#!/usr/bin/env python
"""CI smoke for the DSE subsystem (make check-dse).

The acceptance scenario, with real processes and a real SIGINT:

1. run a clean quick study (>= 32 candidates, 2 halving rungs) to
   completion against cache A, exporting the frontier CSV;
2. launch the identical study against cache B and SIGINT it after the
   first few simulated cells — the process must exit 130 and print a
   resume hint;
3. rerun the same command (the deterministic study id lands on the
   same ledger, so the plain rerun *is* the resume) and let it finish;
4. assert the interrupted+resumed frontier CSV is byte-identical to
   the clean run's, and that no cell was simulated twice across the
   interrupt boundary;
5. assert the search simulated strictly fewer cells than a full
   enumeration of the declared space would.

Run from the repo root: ``PYTHONPATH=src python tools/dse_smoke.py``
(options: ``--candidates``, ``--length``, ``--keep``).
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# One progress line per finished cell; simulated cells carry no
# "[cache]"/"[dedup]" source note.
PROGRESS_RE = re.compile(r"^  \[\d+/\d+\] ")
SIMULATED_RE = re.compile(r"^  \[\d+/\d+\] (?!.*\[(cache|dedup)\])")
CELLS_RE = re.compile(r"cells: (\d+) simulated")
ENUM_RE = re.compile(r"full enumeration of the space would be (\d+) cells")


def log(msg: str) -> None:
    print(f"[dse-smoke] {msg}", flush=True)


def fail(msg: str) -> None:
    print(f"[dse-smoke] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def dse_cmd(csv: Path, candidates: int, length: int) -> list[str]:
    return [sys.executable, "-m", "repro", "dse", "--seed", "5",
            "--candidates", str(candidates), "--rungs", "2",
            "--tier", "tiny", "--length", str(length),
            "--workloads", "pr.urand", "cc.urand",
            "--progress", "--csv", str(csv)]


def run_env(cache: Path) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["REPRO_CACHE_DIR"] = str(cache)
    return env


def count_simulated(output: str) -> int:
    return sum(1 for line in output.splitlines()
               if SIMULATED_RE.match(line))


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--candidates", type=int, default=32)
    ap.add_argument("--length", type=int, default=2_500)
    ap.add_argument("--keep", action="store_true",
                    help="keep the work dir for inspection")
    args = ap.parse_args()
    if args.candidates < 32:
        fail("the smoke contract requires >= 32 candidates")

    work = Path(tempfile.mkdtemp(prefix="dse-smoke-"))
    try:
        smoke(work, args.candidates, args.length)
    finally:
        if args.keep:
            log(f"work dir kept at {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


def smoke(work: Path, candidates: int, length: int) -> None:
    csv_a = work / "a.csv"
    csv_b = work / "b.csv"

    log(f"clean study: {candidates} candidates, 2 rungs, cache A")
    clean = subprocess.run(dse_cmd(csv_a, candidates, length),
                           env=run_env(work / "cache-a"), cwd=REPO,
                           capture_output=True, text=True)
    if clean.returncode != 0:
        fail(f"clean run exited {clean.returncode}:\n{clean.stderr}")
    m = CELLS_RE.search(clean.stdout)
    if not m:
        fail("clean run printed no simulated-cell count")
    clean_cells = int(m.group(1))
    enum = ENUM_RE.search(clean.stdout)
    if not enum:
        fail("clean run printed no full-enumeration count")
    if clean_cells * 2 >= int(enum.group(1)):
        fail(f"search simulated {clean_cells} cells, not < 50% of the "
             f"{enum.group(1)}-cell full enumeration")
    log(f"clean study done: {clean_cells} cells simulated "
        f"(full enumeration {enum.group(1)})")

    log("interrupting the same study against cache B with SIGINT")
    proc = subprocess.Popen(dse_cmd(csv_b, candidates, length),
                            env=run_env(work / "cache-b"), cwd=REPO,
                            stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    seen: list[str] = []
    assert proc.stdout is not None
    for line in proc.stdout:
        seen.append(line)
        if sum(1 for l in seen if PROGRESS_RE.match(l)) >= 3:
            proc.send_signal(signal.SIGINT)
            break
    seen.extend(proc.stdout)                  # drain to EOF
    rc = proc.wait(timeout=120)
    out = "".join(seen)
    if rc != 130:
        fail(f"interrupted run exited {rc}, expected 130:\n{out}")
    if "Resume with: repro dse --resume" not in out:
        fail(f"interrupted run printed no resume hint:\n{out}")
    interrupted_cells = count_simulated(out)
    log(f"interrupted after {interrupted_cells} simulated cells "
        f"(exit 130, resume hint printed)")

    log("resuming (same command, same ledger)")
    resumed = subprocess.run(dse_cmd(csv_b, candidates, length),
                             env=run_env(work / "cache-b"), cwd=REPO,
                             capture_output=True, text=True)
    if resumed.returncode != 0:
        fail(f"resume exited {resumed.returncode}:\n{resumed.stderr}")
    m = CELLS_RE.search(resumed.stdout)
    if not m:
        fail("resume printed no simulated-cell count")
    resumed_cells = int(m.group(1))
    if resumed_cells >= clean_cells:
        fail(f"resume re-simulated the study ({resumed_cells} cells, "
             f"clean run needed {clean_cells})")
    if interrupted_cells + resumed_cells > clean_cells:
        fail(f"cells simulated twice across the interrupt: "
             f"{interrupted_cells} + {resumed_cells} > {clean_cells}")
    log(f"resume simulated {resumed_cells} cells "
        f"({interrupted_cells + resumed_cells} total across the "
        f"interrupt, clean run {clean_cells})")

    a = csv_a.read_bytes()
    b = csv_b.read_bytes()
    if a != b:
        fail("frontier CSV differs between clean and interrupted+resumed "
             f"runs:\n--- clean ---\n{a.decode()}\n--- resumed ---\n"
             f"{b.decode()}")
    if len(a.decode().splitlines()) < 2:
        fail("frontier CSV is empty")
    log(f"frontier CSV byte-identical across the interrupt "
        f"({len(a.decode().splitlines()) - 1} rows)")
    log("OK")


if __name__ == "__main__":
    main()
