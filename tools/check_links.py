#!/usr/bin/env python
"""Offline markdown link checker (stdlib only).

Validates every inline ``[text](target)`` link in the given markdown
files:

* relative file targets must exist on disk (resolved against the
  containing file's directory);
* ``file#anchor`` / ``#anchor`` targets must also name a heading in
  the target file (GitHub-style slugs);
* ``http(s)://`` and ``mailto:`` targets are skipped — CI has no
  business depending on the network.

Fenced code blocks are ignored, so ASCII diagrams mentioning
``[TRACES.md]`` don't produce false positives.

Usage: ``python tools/check_links.py README.md docs/*.md``
Exits non-zero listing every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links; deliberately does not match reference-style
#: definitions (unused in this repo) or bare [bracketed] text.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _strip_fences(text: str) -> list[str]:
    kept, fenced = [], False
    for line in text.splitlines():
        if _FENCE.match(line):
            fenced = not fenced
            continue
        kept.append("" if fenced else line)
    return kept


def _anchors(path: Path) -> set[str]:
    slugs: set[str] = set()
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        m = _HEADING.match(line)
        if m:
            slugs.add(_slug(m.group(1)))
    return slugs


def check_file(path: Path) -> list[str]:
    errors = []
    text = "\n".join(_strip_fences(path.read_text(encoding="utf-8")))
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        dest = (path.parent / file_part).resolve() if file_part else path
        if not dest.exists():
            errors.append(f"{path}: broken link -> {target} "
                          f"(missing {dest})")
            continue
        if anchor and dest.suffix == ".md":
            if _slug(anchor) not in _anchors(dest):
                errors.append(f"{path}: broken anchor -> {target}")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    paths = [Path(a) for a in argv]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"no such file: {p}", file=sys.stderr)
        return 2
    errors = [e for p in paths for e in check_file(p)]
    for e in errors:
        print(e, file=sys.stderr)
    checked = sum(len(_LINK.findall(
        "\n".join(_strip_fences(p.read_text(encoding='utf-8')))))
        for p in paths)
    print(f"check_links: {len(paths)} files, {checked} links, "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
