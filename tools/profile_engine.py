"""Hotspot harness for the simulation engine (``make profile-engine``).

Profiles the reference backend over the BENCH_engine workload (PageRank
on kron(12,8), 50k-access window) with :mod:`cProfile` and prints the
top-20 functions by cumulative and by self time, then times both
backends with ``timeit``-style best-of-N wall clocks for a quick A/B.

Usage::

    make profile-engine                        # or:
    PYTHONPATH=src python tools/profile_engine.py [--variant sdc_lp]
        [--accesses 50000] [--repeats 3] [--no-batch]

The cProfile pass always runs the *reference* loop — the batch backend
spends its time inside one C call, which a Python profiler cannot
decompose; its cost shows up in the wall-clock A/B below instead.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def build_workload(accesses: int):
    from repro.graphs import kronecker_graph
    from repro.trace.kernels import trace_pagerank
    g = kronecker_graph(12, 8, seed=1)
    return trace_pagerank(g, iterations=1, max_accesses=accesses)


def profile_reference(trace, cfg, variant: str, top: int = 20) -> None:
    from repro.core.system import SingleCoreSystem
    system = SingleCoreSystem(cfg, variant)
    prof = cProfile.Profile()
    prof.enable()
    system.run(trace, backend="ref")
    prof.disable()
    for sort, title in (("cumulative", "cumulative time"),
                        ("tottime", "self time")):
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.strip_dirs().sort_stats(sort).print_stats(top)
        print(f"\n== top {top} by {title} [{variant}] " + "=" * 30)
        print(buf.getvalue())


def time_backends(trace, cfg, variant: str, repeats: int,
                  with_batch: bool) -> None:
    from repro.core.batch import kernel_available
    from repro.core.system import SingleCoreSystem
    backends = ["ref"]
    if with_batch and kernel_available():
        backends.append("batch")
    elif with_batch:
        print("(batch kernel unavailable — timing reference only)")
    best = {b: float("inf") for b in backends}
    for _ in range(repeats):
        for b in backends:            # interleaved to share thermal state
            system = SingleCoreSystem(cfg, variant)
            t0 = time.perf_counter()
            system.run(trace, backend=b)
            best[b] = min(best[b], time.perf_counter() - t0)
    n = len(trace)
    print(f"\n== wall clock, best of {repeats} [{variant}] " + "=" * 26)
    for b in backends:
        print(f"  {b:5}: {best[b]:.3f}s  {n / best[b]:>12,.0f} acc/s")
    if len(backends) == 2:
        print(f"  batch speedup: {best['ref'] / best['batch']:.1f}x")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--variant", default="sdc_lp")
    ap.add_argument("--accesses", type=int, default=50_000)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--top", type=int, default=20)
    ap.add_argument("--no-batch", action="store_true",
                    help="skip the batch-backend wall-clock A/B")
    args = ap.parse_args(argv)

    from repro.config import scaled_config
    cfg = scaled_config(16)
    print(f"tracing pagerank/kron(12,8), {args.accesses:,}-access window…")
    trace = build_workload(args.accesses)
    profile_reference(trace, cfg, args.variant, top=args.top)
    time_backends(trace, cfg, args.variant, args.repeats,
                  with_batch=not args.no_batch)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
