#!/usr/bin/env python
"""CI smoke for the simulation service (make check-service).

The full acceptance scenario, with real processes:

1. start `repro serve` with ``worker_vanish`` + ``lease_loss`` +
   ``orchestrator_crash`` faults armed (hard crashes: the orchestrator
   process really dies);
2. submit the quick fig7 sweep over the HTTP API;
3. the orchestrator kills itself after the first journaled completion
   (exit code 173) — restart it and let generation 2 resume the job
   from the journal/manifests/cache and run it to completion;
4. drain generation 2 with SIGTERM (must exit 0);
5. assert, from the service event log, that no cell was executed more
   than its bounded retry budget;
6. assert the results are byte-identical to a fault-free CLI
   ``repro fig7`` run: a warm rerun against the service's cache must
   print exactly the clean run's report.

Run from the repo root: ``PYTHONPATH=src python tools/service_smoke.py``
(options: ``--length``, ``--workers``, ``--keep``).
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import CRASH_EXIT_CODE                  # noqa: E402
from repro.service import JobRequest, ServiceClient       # noqa: E402
from repro.service.queue import Journal                   # noqa: E402
from repro.telemetry import events as tele_events         # noqa: E402

FAULTS = ("seed=11,worker_vanish:0.5:1,lease_loss:0.3:1,"
          "orchestrator_crash:1.0:1")
RETRIES = 2
FIG = ("fig7", "--quick", "--tier", "tiny")


def log(msg: str) -> None:
    print(f"[service-smoke] {msg}", flush=True)


def fail(msg: str) -> "NoReturn":        # noqa: F821
    print(f"[service-smoke] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def start_serve(work: Path, env: dict, tag: str, faulty: bool,
                workers: int) -> tuple[subprocess.Popen, str]:
    """Launch `repro serve` on an ephemeral port; return (proc, url)."""
    out = work / f"serve-{tag}.log"
    serve_env = dict(env)
    if faulty:
        serve_env["REPRO_FAULTS"] = FAULTS
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--workers", str(workers), "--lease-ttl", "10",
         "--retries", str(RETRIES),
         "--telemetry", str(work / "telemetry")],
        env=serve_env, stdout=open(out, "w"), stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        text = out.read_text() if out.exists() else ""
        m = re.search(r"listening on (http://[0-9.]+:[0-9]+)", text)
        if m:
            log(f"serve[{tag}] pid {proc.pid} at {m.group(1)}")
            return proc, m.group(1)
        if proc.poll() is not None:
            fail(f"serve[{tag}] died at startup:\n{text}")
        time.sleep(0.2)
    fail(f"serve[{tag}] never announced its port")


def run_fig(env: dict, length: int, extra=()) -> str:
    """One CLI fig7 run; returns the report (progress lines stripped)."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *FIG,
         "--length", str(length), "--jobs", "2", *extra],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"CLI {' '.join(FIG)} failed:\n{proc.stdout}"
             f"\n{proc.stderr}")
    return "".join(line for line in proc.stdout.splitlines(True)
                   if not line.startswith("  ["))


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--length", type=int, default=20_000)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--keep", action="store_true",
                    help="keep the work dir for inspection")
    args = ap.parse_args()

    work = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    cache = work / "cache"
    env = {k: v for k, v in os.environ.items()
           if k not in ("REPRO_FAULTS",)}
    env["REPRO_CACHE_DIR"] = str(cache)
    env["PYTHONPATH"] = str(Path("src").resolve())
    request = JobRequest(workloads="quick", tier="tiny",
                         length=args.length)

    # 1-2: faulty serve, submit over HTTP.
    proc1, url1 = start_serve(work, env, "gen1", faulty=True,
                              workers=args.workers)
    client = ServiceClient(url1, timeout=30.0)
    resp = client.submit(request, max_retries=3)
    log(f"submitted {resp.job_id}: {resp.cells} unique cells")

    # 3: the armed orchestrator_crash must really kill the process.
    rc = proc1.wait(timeout=600)
    if rc != CRASH_EXIT_CODE:
        fail(f"gen1 exit code {rc}, expected injected crash "
             f"{CRASH_EXIT_CODE}")
    log(f"gen1 crashed as planned (exit {rc}); restarting")

    proc2, url2 = start_serve(work, env, "gen2", faulty=True,
                              workers=args.workers)
    client = ServiceClient(url2, timeout=30.0)
    health = client.health()
    if health["generation"] != 2:
        fail(f"expected generation 2 after restart, got {health}")
    status = client.wait(resp.job_id, timeout=1800.0, poll=1.0)
    if status.state != "complete":
        fail(f"job {resp.job_id} ended {status.state!r}: "
             f"{status.error}")
    p = status.progress
    log(f"job complete after restart: {p.done}/{p.total} done, "
        f"{p.cached} recovered from cache")
    if p.cached < 1:
        fail("restart re-simulated everything: recovery found no "
             "cached cells")

    # 4: graceful drain.
    proc2.send_signal(signal.SIGTERM)
    rc = proc2.wait(timeout=120)
    if rc != 0:
        fail(f"gen2 drain exited {rc}, expected 0")
    log("gen2 drained cleanly (exit 0)")
    generations = Journal(cache / "service" / "journal.jsonl"
                          ).generation()
    if generations != 2:
        fail(f"journal records {generations} generations, expected 2")

    # 5: bounded per-cell work, from the merged service event log.
    events = tele_events.read_events(
        tele_events.events_path(work / "telemetry", "service"))
    execs: dict[str, int] = {}
    for record in events:
        if record["event"] == "cell_exec_started":
            execs[record["key"]] = execs.get(record["key"], 0) + 1
    if not execs:
        fail("no cell_exec_started events in the service log")
    worst = max(execs.values())
    if worst > 1 + RETRIES:
        fail(f"a cell was executed {worst} times, budget is "
             f"{1 + RETRIES}")
    log(f"retry budget held: {len(execs)} executed cells, worst "
        f"{worst}/{1 + RETRIES} attempts, "
        f"{sum(execs.values())} executions total")

    # 6: byte-identity with the fault-free CLI run.
    solo_env = dict(env, REPRO_CACHE_DIR=str(work / "solo-cache"))
    clean = run_fig(solo_env, args.length, extra=("--no-cache",))
    warm = run_fig(env, args.length)
    if clean != warm:
        (work / "clean.txt").write_text(clean)
        (work / "warm.txt").write_text(warm)
        fail(f"service results are NOT byte-identical to the clean "
             f"CLI run (see {work}/clean.txt vs warm.txt)")
    log("byte-identity: warm CLI rerun over the service cache "
        "matches the fault-free run exactly")

    if not args.keep:
        import shutil
        shutil.rmtree(work, ignore_errors=True)
    log("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
