#!/usr/bin/env python
"""CI smoke for the streaming graph-ingestion path (make check-ingest).

The acceptance scenario, end to end with real subprocesses:

1. generate a small gzipped edge list (dupes, self-loops, a gap in the
   vertex ids) and ``repro ingest`` it into a fresh cache;
2. assert the mapped store round-trips byte-identical to an in-memory
   ``from_edges`` build over the same rows (every CSR/CSC array);
3. run one simulation cell per post-paper workload family
   (``rw``/``gs``/``dyn``) over the *ingested* graph and diff the
   printed stats against the same cells run from the in-memory build —
   mapped and in-memory inputs must be indistinguishable downstream;
4. corrupt the store file in place and assert the next load
   quarantines it and rebuilds from the recorded source exactly once.

Run from the repo root: ``PYTHONPATH=src python tools/ingest_smoke.py``
(options: ``--edges``, ``--keep``).
"""

from __future__ import annotations

import argparse
import gzip
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
FAMILIES = ("rw", "gs", "dyn")


def log(msg: str) -> None:
    print(f"[ingest-smoke] {msg}", flush=True)


def fail(msg: str) -> None:
    print(f"[ingest-smoke] FAIL: {msg}", file=sys.stderr, flush=True)
    sys.exit(1)


def run(cmd: list[str], cache: Path) -> str:
    env = dict(os.environ,
               PYTHONPATH=f"src{os.pathsep}" + os.environ.get(
                   "PYTHONPATH", ""),
               REPRO_CACHE_DIR=str(cache))
    proc = subprocess.run(cmd, cwd=REPO, env=env, text=True,
                          capture_output=True)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
             f"{proc.stdout}\n{proc.stderr}")
    return proc.stdout


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--edges", type=int, default=60_000)
    ap.add_argument("--keep", action="store_true",
                    help="keep the scratch directory")
    args = ap.parse_args()

    work = Path(tempfile.mkdtemp(prefix="ingest-smoke-"))
    cache = work / "cache"
    try:
        rng = np.random.default_rng(17)
        n_hint = max(args.edges // 16, 64)
        edges = rng.integers(0, n_hint, size=(args.edges, 2),
                             dtype=np.int64)
        edges[::251, 1] = edges[::251, 0]          # self-loops
        edges[1] = edges[2]                        # duplicate edge
        edges[0] = (0, n_hint + 7)                 # id gap + pure sink
        el = work / "smoke.el.gz"
        with gzip.open(el, "wt") as fh:
            fh.write("# ingest-smoke graph\n\n")
            for a, b in edges:
                fh.write(f"{a} {b}\n")
        log(f"wrote {args.edges:,} edges to {el.name}")

        out = run([sys.executable, "-m", "repro", "ingest", str(el),
                   "--name", "smoke", "--symmetrize"], cache)
        log(out.strip().splitlines()[0])

        # 2. mapped store == in-memory from_edges, byte for byte.
        sys.path.insert(0, str(REPO / "src"))
        os.environ["REPRO_CACHE_DIR"] = str(cache)
        from repro.graphs import ingest
        from repro.graphs.csr import from_edges
        mapped = ingest.load_ingested("smoke")
        ref = from_edges(edges, symmetrize=True, name="smoke")
        for f in ("out_oa", "out_na", "in_oa", "in_na"):
            got = np.asarray(getattr(mapped, f))
            want = np.asarray(getattr(ref, f))
            if got.tobytes() != want.tobytes():
                fail(f"mapped {f} differs from in-memory from_edges")
        log("mapped CSR byte-identical to in-memory from_edges")

        # 3. one cell per family over the ingested graph: the mapped
        # and in-memory graphs must produce identical stats output.
        from repro.experiments.runner import default_config, run_variant
        from repro.trace.kernels import generate_trace
        for fam in FAMILIES:
            out_cli = run([sys.executable, "-m", "repro", "run",
                           f"{fam}.smoke", "--variant", "sdc_lp",
                           "--length", "20000"], cache)
            t_mem = generate_trace(fam, ref, max_accesses=20000)
            t_map = generate_trace(fam, mapped, max_accesses=20000)
            if t_mem.accesses.tobytes() != t_map.accesses.tobytes():
                fail(f"{fam}: mapped vs in-memory traces differ")
            s1 = run_variant(t_map, "sdc_lp", default_config())
            s2 = run_variant(t_mem, "sdc_lp", default_config())
            if (s1.cycles, s1.instructions) != (s2.cycles,
                                                s2.instructions):
                fail(f"{fam}: mapped vs in-memory stats differ")
            head = out_cli.strip().splitlines()[0]
            log(f"{fam}.smoke OK — {head}")

        # 4. corrupt the store; next load must quarantine + rebuild.
        store_file = ingest.store_path("smoke")
        data = bytearray(store_file.read_bytes())
        mid = len(data) // 2
        data[mid:mid + 9] = b"\x00CORRUPT\x00"
        store_file.write_bytes(bytes(data))
        before = ingest.COUNTERS["rebuilt"].value
        rebuilt = ingest.load_ingested("smoke")
        if ingest.COUNTERS["rebuilt"].value != before + 1:
            fail("corrupt store was not rebuilt exactly once")
        if np.asarray(rebuilt.out_na).tobytes() != \
                np.asarray(ref.out_na).tobytes():
            fail("rebuilt store differs from reference build")
        qdir = cache / "results" / "quarantine"
        if not any(qdir.glob("*.bad")):
            fail("corrupt store file was not quarantined")
        log("corrupt store quarantined and rebuilt from source")

        log("OK: ingest pipeline, family cells, and quarantine "
            "recovery all verified")
    finally:
        if args.keep:
            log(f"scratch kept at {work}")
        else:
            shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
