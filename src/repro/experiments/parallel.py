"""Parallel experiment engine: fan a grid of simulations over processes.

Every figure in :mod:`repro.experiments.figures` is grid-shaped — a loop
over (workload × variant × config) cells whose simulations are fully
independent.  :func:`run_grid` is the one engine behind all of them:

* **Deduplication** — cells that resolve to the same content-addressed
  key (same trace, variant, config digest and code fingerprint) are
  simulated once and fanned back out to every requesting cell.
* **Result caching** — finished cells are stored in the on-disk
  :class:`repro.experiments.results_cache.ResultsCache`; a warm rerun
  of a figure performs zero simulations.
* **Process parallelism** — with ``jobs > 1`` the remaining cells run
  under a ``ProcessPoolExecutor``.  Workers receive either a workload
  *spec* (they load the trace from the shared on-disk trace cache,
  whose writes are atomic) or a pickled in-memory trace, and return the
  lossless ``SystemStats`` payload dict.  Serial runs round-trip
  through the same payload encoding, so ``jobs=N`` is bit-identical to
  ``jobs=1`` for every N.

The per-cell unit of work is a :class:`Job`.  ``Job.workload`` may be a
workload name/``Workload`` (single-core), an in-memory ``Trace``
(single-core, content-hashed for caching), or a tuple of workload
names/``Workload``s (one per core — a multi-core mix returning a
:class:`repro.core.multicore.MultiCoreResult`).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable

from repro.config import SystemConfig
from repro.core.multicore import MultiCoreResult, MultiCoreSystem
from repro.core.system import SystemStats
from repro.experiments import results_cache as rc
from repro.experiments.runner import default_config, run_variant
from repro.experiments.workloads import (DEFAULT_TIER, DEFAULT_TRACE_LEN,
                                         Workload, workload_trace)
from repro.trace.record import Trace

#: Pseudo-variant: profile ``expert_regions_best`` on the trace, then
#: run the ``expert`` variant with the best region set — one cacheable
#: unit of work (used by fig13).
EXPERT_BEST = "expert_best"


@dataclass
class Job:
    """One cell of an experiment grid."""

    workload: object            # str | Workload | Trace | tuple of them
    variant: str
    config: SystemConfig | None = None
    tier: str = DEFAULT_TIER
    length: int = DEFAULT_TRACE_LEN
    expert_regions: frozenset | None = None
    tag: object = None          # opaque caller identifier, untouched

    @property
    def label(self) -> str:
        wl = self.workload
        if isinstance(wl, tuple):
            name = "+".join(_workload_name(w) for w in wl)
        else:
            name = _workload_name(wl)
        return f"{name}/{self.variant}"


@dataclass
class Progress:
    """One per-cell completion report passed to the progress callback."""

    done: int                   # cells finished so far (including this)
    total: int                  # cells in the grid
    label: str                  # job label, e.g. "pr.kron/sdc_lp"
    seconds: float              # wall time of this cell
    source: str                 # "run" | "cache" | "dedup"


ProgressFn = Callable[[Progress], None]


def print_progress(p: Progress) -> None:
    """Default CLI progress printer (one line per finished cell)."""
    note = "" if p.source == "run" else f"  [{p.source}]"
    print(f"  [{p.done}/{p.total}] {p.label}  {p.seconds:.1f}s{note}",
          flush=True)


def _workload_name(wl) -> str:
    if isinstance(wl, Workload):
        return wl.name
    if isinstance(wl, Trace):
        return wl.name
    return str(wl)


def _trace_ref(wl, tier: str, length: int):
    """Picklable trace reference + cache fingerprint for one workload."""
    if isinstance(wl, Trace):
        return ("obj", wl), rc.trace_fingerprint(wl)
    name = wl.name if isinstance(wl, Workload) else str(wl)
    return (("spec", name, tier, length),
            rc.workload_fingerprint(name, tier, length))


def _job_spec(job: Job) -> tuple[dict, str]:
    """Compile a Job into a picklable work spec and its cache key."""
    cfg = job.config or default_config()
    extra = ""
    if job.expert_regions is not None:
        extra = "regions:" + ",".join(map(str, sorted(job.expert_regions)))
    if isinstance(job.workload, tuple):
        refs, fps = zip(*(_trace_ref(w, job.tier, job.length)
                          for w in job.workload))
        fp = "mc[" + "+".join(fps) + "]"
        spec = {"kind": "multi", "traces": list(refs),
                "variant": job.variant, "config": cfg}
    else:
        ref, fp = _trace_ref(job.workload, job.tier, job.length)
        spec = {"kind": "single", "trace": ref,
                "variant": job.variant, "config": cfg,
                "expert_regions": (set(job.expert_regions)
                                   if job.expert_regions is not None
                                   else None)}
    return spec, rc.result_key(fp, job.variant, cfg.digest(), extra)


# -- worker side (also used by the in-process serial path) -----------------

_worker_traces: dict = {}       # per-process trace cache


def _resolve_trace(ref) -> Trace:
    if ref[0] == "obj":
        return ref[1]
    _, name, tier, length = ref
    trace = _worker_traces.get((name, tier, length))
    if trace is None:
        trace = workload_trace(name, tier=tier, length=length)
        _worker_traces[(name, tier, length)] = trace
    return trace


def _execute(spec: dict) -> dict:
    """Run one cell; returns its lossless JSON payload."""
    cfg = spec["config"]
    variant = spec["variant"]
    if spec["kind"] == "multi":
        traces = [_resolve_trace(r) for r in spec["traces"]]
        expert_regions = None
        if variant == "expert":
            from repro.core.expert import expert_regions_for
            expert_regions = [expert_regions_for(t, cfg) for t in traces]
        system = MultiCoreSystem(cfg, variant=variant,
                                 expert_regions=expert_regions)
        result = system.run(traces)
        return {"multi": True,
                "per_core": [s.to_payload() for s in result.per_core],
                "llc_accesses": result.llc_accesses,
                "llc_misses": result.llc_misses}
    trace = _resolve_trace(spec["trace"])
    if variant == EXPERT_BEST:
        from repro.core.expert import expert_regions_best
        regions = expert_regions_best(trace, cfg)
        stats = run_variant(trace, "expert", cfg, expert_regions=regions)
    else:
        stats = run_variant(trace, variant, cfg,
                            expert_regions=spec["expert_regions"])
    return stats.to_payload()


def _materialize(payload: dict):
    if payload.get("multi"):
        return MultiCoreResult(
            per_core=[SystemStats.from_payload(p)
                      for p in payload["per_core"]],
            llc_accesses=payload["llc_accesses"],
            llc_misses=payload["llc_misses"])
    return SystemStats.from_payload(payload)


# -- engine ----------------------------------------------------------------

def run_grid(grid: list[Job], jobs: int = 1, use_cache: bool = True,
             cache: rc.ResultsCache | None = None,
             progress: ProgressFn | None = None) -> list:
    """Execute a grid of jobs; returns results aligned with ``grid``.

    ``jobs`` is the worker-process count (``<= 1`` runs in-process);
    ``use_cache=False`` bypasses the persistent result cache entirely
    (no reads, no writes) but still deduplicates within the grid.
    Results are ``SystemStats`` for single-core jobs and
    ``MultiCoreResult`` for mix jobs, always reconstructed from the
    payload encoding so parallel and serial runs are bit-identical.
    """
    total = len(grid)
    if cache is None and use_cache:
        cache = rc.ResultsCache()
    payloads: dict[str, dict] = {}          # key -> payload
    keys: list[str] = []                    # per-cell key, grid order
    cell_sources: list[str] = []            # per-cell "run"/"cache"/"dedup"
    pending: dict[str, dict] = {}           # key -> spec (first wins)
    done = 0

    for job in grid:
        spec, key = _job_spec(job)
        keys.append(key)
        if key in payloads or key in pending:
            cell_sources.append("dedup")
            continue
        if use_cache:
            hit = cache.get(key)
            if hit is not None:
                payloads[key] = hit
                cell_sources.append("cache")
                continue
        pending[key] = spec
        cell_sources.append("run")

    def report(label: str, seconds: float, source: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(Progress(done, total, label, seconds, source))

    labels = {}
    for job, key in zip(grid, keys):
        labels.setdefault(key, job.label)

    def store(key: str) -> None:
        # Store each cell as soon as it finishes, so an interrupted
        # sweep keeps every completed simulation.
        if use_cache:
            cache.put(key, payloads[key])

    if pending:
        if jobs > 1 and len(pending) > 1:
            _run_parallel(pending, payloads, jobs, report, labels, store)
        else:
            for key, spec in pending.items():
                t0 = time.perf_counter()
                payloads[key] = _execute(spec)
                store(key)
                report(labels[key], time.perf_counter() - t0, "run")

    # Report cache hits and dedup'd cells after the real work so the
    # done/total counter stays monotonic.
    for job, source in zip(grid, cell_sources):
        if source != "run":
            report(job.label, 0.0, source)

    return [_materialize(payloads[key]) for key in keys]


def _run_parallel(pending: dict, payloads: dict, jobs: int,
                  report, labels: dict, store) -> None:
    max_workers = min(jobs, len(pending))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {}
        started = {}
        for key, spec in pending.items():
            started[key] = time.perf_counter()
            futures[pool.submit(_execute, spec)] = key
        outstanding = set(futures)
        while outstanding:
            finished, outstanding = wait(outstanding,
                                         return_when=FIRST_COMPLETED)
            for fut in finished:
                key = futures[fut]
                payloads[key] = fut.result()
                store(key)
                report(labels[key], time.perf_counter() - started[key],
                       "run")
