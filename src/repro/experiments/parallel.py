"""Parallel experiment engine: fan a grid of simulations over processes.

Every figure in :mod:`repro.experiments.figures` is grid-shaped — a loop
over (workload × variant × config) cells whose simulations are fully
independent.  :func:`run_grid` is the one engine behind all of them:

* **Deduplication** — cells that resolve to the same content-addressed
  key (same trace, variant, config digest and code fingerprint) are
  simulated once and fanned back out to every requesting cell.
* **Result caching** — finished cells are stored in the on-disk
  :class:`repro.experiments.results_cache.ResultsCache`; a warm rerun
  of a figure performs zero simulations.
* **Process parallelism** — with ``jobs > 1`` the remaining cells run
  under a ``ProcessPoolExecutor``.  Workers receive either a workload
  *spec* — they ``np.memmap`` the trace from the shared on-disk v8
  trace store (:mod:`repro.trace.store`), so every worker shares one
  page-cache copy of each trace instead of holding a private
  deserialized clone — or a pickled in-memory trace, and return the
  lossless ``SystemStats`` payload dict.  Serial runs round-trip
  through the same payload encoding, so ``jobs=N`` is bit-identical to
  ``jobs=1`` for every N.
* **Fault tolerance** — each cell runs under per-cell supervision
  governed by a :class:`RunPolicy`: bounded retries with exponential
  backoff + deterministic jitter, a per-cell timeout with hung-worker
  detection (the pool is rebuilt and the stranded workers terminated),
  ``BrokenProcessPool`` recovery that requeues only unfinished cells,
  and graceful degradation to in-process serial execution when the
  pool breaks repeatedly.  Every grid execution checkpoints per-cell
  state to a :class:`repro.experiments.manifest.RunManifest`, so an
  interrupted sweep resumes via ``run_grid(run_id=...)`` with zero
  redundant simulation; ^C raises :class:`GridInterrupted` carrying
  the resume id instead of a bare traceback.  All failure modes are
  reproducible in tests through :mod:`repro.faults` (see
  docs/RESILIENCE.md).
* **Telemetry** — with a :class:`repro.telemetry.TelemetryConfig`
  (explicit argument or the ambient one the CLI's ``--telemetry``
  installs), every manifest transition is mirrored into a
  run_id-correlated JSONL event log, workers append
  ``cell_exec_started/finished`` pairs to private shards merged on
  completion, and per-cell simulations record windowed timelines —
  exportable as a Perfetto trace (see docs/OBSERVABILITY.md).

The per-cell unit of work is a :class:`Job`.  ``Job.workload`` may be a
workload name/``Workload`` (single-core), an in-memory ``Trace``
(single-core, content-hashed for caching), or a tuple of workload
names/``Workload``s (one per core — a multi-core mix returning a
:class:`repro.core.multicore.MultiCoreResult`).
"""

from __future__ import annotations

import hashlib
import heapq
import math
import sys
import time
from collections import deque
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor,
                                ProcessPoolExecutor, wait)
from dataclasses import dataclass
from typing import Callable

from repro import faults
from repro import telemetry as tele
from repro.config import SystemConfig
from repro.core.multicore import MultiCoreResult, MultiCoreSystem
from repro.core.system import SystemStats
from repro.experiments import results_cache as rc
from repro.experiments import sharding
from repro.experiments import workloads
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import default_config, run_variant
from repro.experiments.workloads import (DEFAULT_TIER, DEFAULT_TRACE_LEN,
                                         Workload, workload_trace)
from repro.telemetry import events as tele_events
from repro.telemetry.metrics import Stopwatch, format_eta
from repro.trace.record import Trace

#: Pseudo-variant: profile ``expert_regions_best`` on the trace, then
#: run the ``expert`` variant with the best region set — one cacheable
#: unit of work (used by fig13).
EXPERT_BEST = "expert_best"


@dataclass
class Job:
    """One cell of an experiment grid."""

    workload: object            # str | Workload | Trace | tuple of them
    variant: str
    config: SystemConfig | None = None
    tier: str = DEFAULT_TIER
    length: int = DEFAULT_TRACE_LEN
    expert_regions: frozenset | None = None
    tag: object = None          # opaque caller identifier, untouched

    @property
    def label(self) -> str:
        wl = self.workload
        if isinstance(wl, tuple):
            name = "+".join(_workload_name(w) for w in wl)
        else:
            name = _workload_name(wl)
        return f"{name}/{self.variant}"


@dataclass
class Progress:
    """One per-cell completion report passed to the progress callback."""

    done: int                   # cells finished so far (including this)
    total: int                  # cells in the grid
    label: str                  # job label, e.g. "pr.kron/sdc_lp"
    seconds: float              # wall time of this cell
    source: str                 # "run" | "cache" | "dedup" | "failed"


ProgressFn = Callable[[Progress], None]


def print_progress(p: Progress) -> None:
    """Minimal progress printer (one line per finished cell)."""
    note = "" if p.source == "run" else f"  [{p.source}]"
    print(f"  [{p.done}/{p.total}] {p.label}  {p.seconds:.1f}s{note}",
          flush=True)


class ProgressPrinter:
    """Stateful CLI progress printer with throughput and ETA.

    The sweep rate (cells/s) comes from a telemetry
    :class:`~repro.telemetry.metrics.Stopwatch` started at construction
    — construct the printer immediately before ``run_grid`` — and the
    ETA is the remaining-cell count divided by the observed rate.
    Each report is emitted as a single ``write`` + ``flush`` so output
    never interleaves mid-line when stdout is a pipe or CI log
    collector rather than a TTY.
    """

    def __init__(self, out=None, clock: Callable[[], float] | None = None):
        self._out = out
        self._watch = Stopwatch(clock) if clock is not None \
            else Stopwatch()

    def __call__(self, p: Progress) -> None:
        out = self._out if self._out is not None else sys.stdout
        elapsed = self._watch.elapsed()
        rate = p.done / elapsed if elapsed > 0 else 0.0
        if p.done >= p.total:
            eta = format_eta(0)
        else:
            eta = format_eta((p.total - p.done) / rate if rate > 0
                             else float("inf"))
        note = "" if p.source == "run" else f"  [{p.source}]"
        out.write(f"  [{p.done}/{p.total}] {p.label}  "
                  f"{p.seconds:.1f}s{note}  "
                  f"({rate:.2f} cells/s, ETA {eta})\n")
        out.flush()


@dataclass(frozen=True)
class RunPolicy:
    """Failure-handling policy for one grid execution.

    ``timeout`` is per-cell wall seconds and only enforced for
    parallel runs (a single process cannot preempt itself);
    ``retries`` bounds *additional* attempts after the first, so a
    cell executes at most ``1 + retries`` times.  Backoff before the
    n-th retry is ``min(backoff_max, backoff * 2**(n-1))`` scaled by a
    deterministic jitter in ``[1, 1 + jitter)`` keyed on the cell, so
    retry schedules are reproducible.  After ``max_pool_rebuilds``
    pool failures the engine degrades to in-process serial execution.
    ``fail_fast`` aborts the grid on the first permanent cell failure;
    ``allow_partial`` returns ``None`` for permanently failed cells
    instead of raising :class:`GridError` at the end.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.25
    backoff_max: float = 30.0
    jitter: float = 0.5
    max_pool_rebuilds: int = 3
    fail_fast: bool = False
    allow_partial: bool = False


DEFAULT_POLICY = RunPolicy()


class GridError(RuntimeError):
    """One or more cells failed permanently (retries exhausted)."""

    def __init__(self, message: str, failures: dict[str, str],
                 run_id: str | None = None):
        super().__init__(message)
        self.failures = failures        # label -> error
        self.run_id = run_id


class GridInterrupted(KeyboardInterrupt):
    """^C during a sweep; the manifest holds a clean partial snapshot.

    Subclasses ``KeyboardInterrupt`` so intermediate ``except
    Exception`` handlers cannot swallow it; carries the ``run_id`` to
    resume from and a human-readable ``summary``.
    """

    def __init__(self, run_id: str, summary: str):
        super().__init__(run_id)
        self.run_id = run_id
        self.summary = summary


class ShardComplete(Exception):
    """One shard of a sharded sweep finished cleanly.

    A ``run_grid(shard=(I, N))`` execution owns only the cells hashing
    to shard ``I`` — it cannot return the full grid's results, so
    instead of handing figure code a result list full of ``None``
    placeholders it raises this control-flow exception after
    finalizing the shard manifest.  ``results`` still carries the
    grid-aligned list (``None`` for cells owned by sibling shards) for
    programmatic callers; the CLI prints the summary and the
    ``repro merge`` next step.
    """

    def __init__(self, run_id: str, shard: tuple[int, int],
                 summary: str, results: list):
        super().__init__(f"shard {shard[0]}/{shard[1]} of run "
                         f"{run_id} complete ({summary})")
        self.run_id = run_id
        self.shard = shard
        self.summary = summary
        self.results = results


def _workload_name(wl) -> str:
    if isinstance(wl, Workload):
        return wl.name
    if isinstance(wl, Trace):
        return wl.name
    return str(wl)


def _trace_ref(wl, tier: str, length: int):
    """Picklable trace reference + cache fingerprint for one workload."""
    if isinstance(wl, Trace):
        return ("obj", wl), rc.trace_fingerprint(wl)
    name = wl.name if isinstance(wl, Workload) else str(wl)
    return (("spec", name, tier, length),
            rc.workload_fingerprint(name, tier, length))


def _job_spec(job: Job, telemetry_window: int = 0,
              backend: str = "ref") -> tuple[dict, str]:
    """Compile a Job into a picklable work spec and its cache key.

    A non-zero ``telemetry_window`` rides on the spec (workers enable
    :class:`~repro.telemetry.probes.WindowProbe` sampling at that
    interval) *and* joins the cache key, because a payload carrying a
    timeline is a different artifact than one without.  A non-default
    ``backend`` joins the key too: batch results are bit-identical by
    contract, but the artifacts must never alias so a differential
    sweep can hold both and diff them.  (The reference backend keeps
    its historical extra-free keys.)
    """
    cfg = job.config or default_config()
    extras = []
    if job.expert_regions is not None:
        extras.append("regions:"
                      + ",".join(map(str, sorted(job.expert_regions))))
    if telemetry_window:
        extras.append(f"tele:{telemetry_window}")
    if backend != "ref":
        extras.append(f"backend:{backend}")
    extra = "|".join(extras)
    if isinstance(job.workload, tuple):
        refs, fps = zip(*(_trace_ref(w, job.tier, job.length)
                          for w in job.workload))
        fp = "mc[" + "+".join(fps) + "]"
        spec = {"kind": "multi", "traces": list(refs),
                "variant": job.variant, "config": cfg}
    else:
        ref, fp = _trace_ref(job.workload, job.tier, job.length)
        spec = {"kind": "single", "trace": ref,
                "variant": job.variant, "config": cfg,
                "expert_regions": (set(job.expert_regions)
                                   if job.expert_regions is not None
                                   else None)}
    spec["telemetry"] = telemetry_window or None
    spec["backend"] = backend
    return spec, rc.result_key(fp, job.variant, cfg.digest(), extra)


# -- worker side (also used by the in-process serial path) -----------------

#: Per-process cache of opened workload traces.  Since the v8 trace
#: store, a cached entry is a read-only ``np.memmap`` whose pages live
#: in the shared OS page cache — holding many open costs file
#: descriptors and address space, not private RSS, so the bound exists
#: only to keep descriptor usage sane on very heterogeneous grids (it
#: was 4 when every entry was a private in-RAM copy).
_WORKER_TRACE_CAP = 64

#: ``(name, tier, length, trace-format-version)`` -> Trace, LRU order.
#: The format version is part of the key so a version bump mid-process
#: (e.g. a test monkeypatching ``workloads.TRACE_FORMAT_VERSION``) can
#: never be served a stale mapped trace from the old format.
_worker_traces: dict = {}


def _resolve_trace(ref) -> Trace:
    if ref[0] == "obj":
        return ref[1]
    _, name, tier, length = ref
    key = (name, tier, length, workloads.TRACE_FORMAT_VERSION)
    trace = _worker_traces.pop(key, None)   # pop+reinsert refreshes LRU
    if trace is None:
        trace = workload_trace(name, tier=tier, length=length)
    _worker_traces[key] = trace
    while len(_worker_traces) > _WORKER_TRACE_CAP:
        _worker_traces.pop(next(iter(_worker_traces)))
    return trace


def _execute(spec: dict) -> dict:
    """Run one cell; returns its lossless JSON payload."""
    cfg = spec["config"]
    variant = spec["variant"]
    # The spec's window always wins over REPRO_TELEMETRY (0 disables),
    # so cells only grow timelines when the grid asked — otherwise an
    # ambient env var would poison cache entries keyed without "tele:".
    tele_every = spec.get("telemetry") or 0
    # The spec's backend pins the engine at grid-compile time, so pool
    # workers can never diverge from the supervisor via a different
    # ambient REPRO_BACKEND.
    backend = spec.get("backend") or "ref"
    if spec["kind"] == "multi":
        traces = [_resolve_trace(r) for r in spec["traces"]]
        expert_regions = None
        if variant == "expert":
            from repro.core.expert import expert_regions_for
            expert_regions = [expert_regions_for(t, cfg) for t in traces]
        system = MultiCoreSystem(cfg, variant=variant,
                                 expert_regions=expert_regions,
                                 telemetry_every=tele_every)
        result = system.run(traces, backend=backend)
        return {"multi": True,
                "per_core": [s.to_payload() for s in result.per_core],
                "llc_accesses": result.llc_accesses,
                "llc_misses": result.llc_misses}
    trace = _resolve_trace(spec["trace"])
    if variant == EXPERT_BEST:
        from repro.core.expert import expert_regions_best
        regions = expert_regions_best(trace, cfg)
        stats = run_variant(trace, "expert", cfg, expert_regions=regions,
                            telemetry_every=tele_every, backend=backend)
    else:
        stats = run_variant(trace, variant, cfg,
                            expert_regions=spec["expert_regions"],
                            telemetry_every=tele_every, backend=backend)
    return stats.to_payload()


def _execute_cell(spec: dict, key: str, attempt: int = 1) -> dict:
    """Supervised cell entry point: fault-injection hook, then run.

    ``key`` (the cell's content-addressed cache key) is the injection
    site, so a fault plan makes identical decisions in serial and
    parallel runs and across resumes.  Looks ``_execute`` up through
    the module so tests may monkeypatch it.

    Emits ``cell_exec_started``/``cell_exec_finished`` to the worker's
    telemetry shard when armed — *started* fires before the fault hook,
    so crash/hang faults show up in trace exports as truncated spans.
    """
    tele_events.worker_emit("cell_exec_started", key=key, attempt=attempt)
    t0 = time.perf_counter()
    try:
        faults.inject_execution(key, attempt)
        payload = _execute(spec)
    except BaseException as exc:
        tele_events.worker_emit("cell_exec_finished", key=key,
                                attempt=attempt,
                                seconds=time.perf_counter() - t0,
                                ok=False, error=_errstr(exc))
        raise
    tele_events.worker_emit("cell_exec_finished", key=key, attempt=attempt,
                            seconds=time.perf_counter() - t0, ok=True)
    return payload


def _materialize(payload: dict):
    if payload.get("multi"):
        return MultiCoreResult(
            per_core=[SystemStats.from_payload(p)
                      for p in payload["per_core"]],
            llc_accesses=payload["llc_accesses"],
            llc_misses=payload["llc_misses"])
    return SystemStats.from_payload(payload)


# -- engine ----------------------------------------------------------------

class _ManifestEvents:
    """RunManifest decorator mirroring cell state changes into the
    telemetry event log, so supervision code keeps its single
    checkpoint call site and events can never drift from the manifest.
    A ``None`` event log degrades it to a transparent pass-through.
    """

    _MARK_EVENTS = {"running": "cell_started", "retrying": "cell_retried",
                    "failed": "cell_failed", "done": "cell_done",
                    "pending": "cell_requeued"}

    def __init__(self, manifest: RunManifest,
                 events: tele_events.EventLog | None):
        self._manifest = manifest
        self._events = events

    @property
    def run_id(self) -> str:
        return self._manifest.run_id

    def save(self) -> None:
        self._manifest.save()

    def finalize(self, status: str) -> None:
        self._manifest.finalize(status)

    def summary(self) -> str:
        return self._manifest.summary()

    def engine_event(self, event: str, **fields) -> None:
        """Emit a non-cell engine event (pool rebuilds, degradation)."""
        if self._events is not None:
            self._events.emit(event, **fields)

    def register(self, key: str, label: str, status: str = "pending",
                 source: str | None = None, fanout: int = 1,
                 shard: int | None = None) -> None:
        self._manifest.register(key, label, status=status, source=source,
                                fanout=fanout, shard=shard)
        if self._events is None or status == "elsewhere":
            return      # sibling-owned cells are the sibling's story
        event = "cell_cached" if status == "done" else "cell_queued"
        self._events.emit(event, key=key, label=label)

    def mark(self, key: str, status: str, attempts: int | None = None,
             error: str | None = None, seconds: float | None = None,
             source: str | None = None, save: bool = True) -> None:
        self._manifest.mark(key, status, attempts=attempts, error=error,
                            seconds=seconds, source=source, save=save)
        event = self._MARK_EVENTS.get(status)
        if self._events is None or event is None:
            return
        cell = self._manifest.cells.get(key, {})
        fields = {"key": key, "label": cell.get("label", "?")}
        if event in ("cell_started", "cell_retried", "cell_failed"):
            fields["attempt"] = (attempts if attempts is not None
                                 else cell.get("attempts", 0))
        if event in ("cell_retried", "cell_failed"):
            fields["error"] = error or "unknown error"
        if event == "cell_done":
            fields["source"] = source or cell.get("source") or "run"
            fields["seconds"] = round(seconds, 3) \
                if seconds is not None else 0.0
        self._events.emit(event, **fields)


def run_grid(grid: list[Job], jobs: int = 1, use_cache: bool = True,
             cache: rc.ResultsCache | None = None,
             progress: ProgressFn | None = None,
             policy: RunPolicy | None = None,
             run_id: str | None = None,
             manifest_dir=None,
             telemetry: "tele.TelemetryConfig | None" = None,
             backend: str | None = None,
             shard: tuple[int, int] | None = None) -> list:
    """Execute a grid of jobs; returns results aligned with ``grid``.

    ``jobs`` is the worker-process count (``<= 1`` runs in-process);
    ``use_cache=False`` bypasses the persistent result cache entirely
    (no reads, no writes) but still deduplicates within the grid.
    ``backend`` selects the simulation engine for every cell (``"ref"``
    / ``"batch"``; ``None`` defers to ``REPRO_BACKEND``), resolved once
    here and pinned into each worker spec and cache key.
    ``policy`` configures retries/timeout/failure handling (defaults to
    :data:`DEFAULT_POLICY`); ``run_id`` names the checkpoint manifest —
    pass the id of an interrupted run to resume it, re-simulating only
    cells the manifest + cache do not already settle.  ``telemetry``
    (default: the ambient :func:`repro.telemetry.active` config, which
    the CLI's ``--telemetry`` flag installs) turns on per-window
    metric sampling in every cell and writes a run_id-correlated JSONL
    event log to ``telemetry.directory`` (per-worker shards merged by
    the supervisor on exit — see docs/OBSERVABILITY.md).  Results are
    ``SystemStats`` for single-core jobs and ``MultiCoreResult`` for
    mix jobs, always reconstructed from the payload encoding so
    parallel and serial runs are bit-identical; permanently failed
    cells are ``None`` when ``policy.allow_partial``, otherwise the
    grid raises :class:`GridError` after every other cell finished.

    ``shard=(I, N)`` (default: the ambient
    :func:`repro.experiments.sharding.active_shard`, which the CLI's
    ``--shard`` flag installs) restricts execution to the cells whose
    key hashes to shard ``I`` of ``N`` (pure, enumeration-order
    independent — :func:`repro.experiments.sharding.shard_of`): sibling
    shards' cells are recorded as ``elsewhere`` in the per-shard
    manifest ``<run_id>.shard-I-of-N.json`` and never simulated or
    cache-probed.  A sharded run requires the results cache (the merge
    validates stitched results out of it) and finishes by raising
    :class:`ShardComplete` instead of returning; ``repro merge
    <run_id>`` stitches the shards (docs/RESILIENCE.md § Sharded
    sweeps).
    """
    policy = policy or DEFAULT_POLICY
    total = len(grid)
    tcfg = telemetry if telemetry is not None else tele.active()
    tele_window = tcfg.window if tcfg is not None else 0
    from repro.core.batch import resolve_backend
    backend = resolve_backend(backend)
    shard = shard if shard is not None else sharding.active_shard()
    if shard is not None:
        sharding.validate_shard(shard)
        if not use_cache:
            raise ValueError("sharded runs require the results cache "
                             "(repro merge validates shard results "
                             "out of it); drop --no-cache")
    if cache is None and use_cache:
        cache = rc.ResultsCache()

    raw_manifest = RunManifest.open(run_id, manifest_dir, shard=shard)
    # The shard fault site/attempt are fixed before any work: attempt
    # counts shard executions (resumes + 1), so an injected shard loss
    # or duplicate claim hits the first run and its --resume re-run
    # deterministically survives.
    claimed = None
    if shard is not None:
        site = sharding.shard_site(raw_manifest.run_id, shard)
        shard_attempt = raw_manifest.data.get("resumes", 0) + 1
        claimed = {shard[0]}
        if faults.shard_duplicates(site, shard_attempt):
            claimed.add((shard[0] + 1) % shard[1])

    payloads: dict[str, dict] = {}          # key -> payload
    keys: list[str] = []                    # per-cell key, grid order
    cell_sources: list[str] = []    # "run"/"cache"/"dedup"/"elsewhere"
    pending: dict[str, dict] = {}           # key -> spec (first wins)
    owners: dict[str, str] = {}             # key -> owning cell's label
    quarantined: list[tuple[str, str]] = []  # (key, label) during scan
    shard_owner: dict[str, int] = {}        # key -> owning shard index
    done = 0

    for job in grid:
        spec, key = _job_spec(job, tele_window, backend)
        keys.append(key)
        if shard is not None:
            shard_owner[key] = sharding.shard_of(key, shard[1])
            if shard_owner[key] not in claimed:
                cell_sources.append("elsewhere")
                continue
        if key in payloads or key in pending:
            cell_sources.append("dedup")
            continue
        if use_cache:
            corrupt_before = cache.corrupt
            hit = cache.get(key)
            if cache.corrupt > corrupt_before:
                quarantined.append((key, job.label))
            if hit is not None:
                payloads[key] = hit
                cell_sources.append("cache")
                continue
        pending[key] = spec
        owners[key] = job.label         # each cell registers its own label
        cell_sources.append("run")

    events: tele_events.EventLog | None = None
    tele_ctx: tuple | None = None
    if tcfg is not None and tcfg.directory is not None:
        events = tele_events.EventLog(tcfg.directory,
                                      raw_manifest.run_id, shard=shard)
        tele_ctx = (str(tcfg.directory), raw_manifest.run_id, shard)
    manifest = _ManifestEvents(raw_manifest, events)
    if events is not None:
        events.emit("grid_started", total_cells=total,
                    unique_cells=len(pending), jobs=jobs,
                    window=tele_window)
        if shard is not None:
            events.emit("shard_started", shard=shard[0],
                        shard_count=shard[1], cells=len(pending))
        for key, label in quarantined:
            events.emit("cell_quarantined", key=key, label=label)
    fanout: dict[str, int] = {}
    for key in keys:
        fanout[key] = fanout.get(key, 0) + 1
    registered_elsewhere: set[str] = set()
    for job, key, source in zip(grid, keys, cell_sources):
        if source == "run":
            manifest.register(key, job.label, fanout=fanout[key],
                              shard=shard_owner.get(key))
        elif source == "cache":
            manifest.register(key, job.label, status="done",
                              source="cache", fanout=fanout[key],
                              shard=shard_owner.get(key))
        elif source == "elsewhere":
            if key not in registered_elsewhere:
                registered_elsewhere.add(key)
                manifest.register(key, job.label, status="elsewhere",
                                  fanout=fanout[key],
                                  shard=shard_owner[key])
        elif events is not None:        # dedup'd onto an earlier cell
            events.emit("cell_dedup", key=key, label=job.label)
    manifest.save()

    def report(label: str, seconds: float, source: str) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(Progress(done, total, label, seconds, source))

    def store(key: str) -> None:
        # Store each cell as soon as it finishes, so an interrupted
        # sweep keeps every completed simulation.
        if use_cache:
            cache.put(key, payloads[key])

    failures: dict[str, str] = {}           # key -> error (permanent)

    # Arm worker-side event emission in this process too, covering the
    # serial path and pool degradation (pool workers are armed through
    # the pool initializer with the same context).
    if tele_ctx is not None:
        tele_events.worker_init(tele_ctx)
    try:
        try:
            if shard is not None:
                # Simulated host death: the shard manifest is already
                # checkpointed (status "running"), so the merge step
                # detects the loss and a --resume re-run survives.
                faults.inject_shard_loss(site, shard_attempt)
            if pending:
                if jobs > 1 and len(pending) > 1:
                    _run_parallel(pending, payloads, jobs, report, owners,
                                  store, policy, manifest, failures,
                                  tele_ctx=tele_ctx)
                else:
                    _run_serial(list(pending), pending, payloads, report,
                                owners, store, policy, manifest, failures)
        except GridError:
            manifest.finalize("failed")
            raise
        except KeyboardInterrupt:
            manifest.finalize("interrupted")
            raise GridInterrupted(manifest.run_id, manifest.summary()) \
                from None

        # Report cache hits and dedup'd cells after the real work so
        # the done/total counter stays monotonic.
        for job, source in zip(grid, cell_sources):
            if source != "run":
                report(job.label, 0.0, source)

        if failures:
            manifest.finalize("failed")
            if not policy.allow_partial:
                raise GridError(
                    f"{len(failures)} of {len(pending)} simulated "
                    f"cell(s) failed permanently after {policy.retries} "
                    f"retr{'y' if policy.retries == 1 else 'ies'} "
                    f"(run {manifest.run_id})",
                    failures={owners[k]: err
                              for k, err in failures.items()},
                    run_id=manifest.run_id)
        else:
            manifest.finalize("complete")
        results = [_materialize(payloads[key]) if key in payloads
                   else None for key in keys]
        if shard is not None:
            raise ShardComplete(manifest.run_id, shard,
                                manifest.summary(), results)
        return results
    finally:
        if tele_ctx is not None:
            tele_events.worker_init(None)
        if events is not None:
            events.emit("grid_finished",
                        status=raw_manifest.data["status"])
            events.merge_worker_shards()
            events.close()


def _errstr(exc: BaseException) -> str:
    return f"{type(exc).__name__}: {exc}"


def _backoff_delay(policy: RunPolicy, key: str, attempt: int) -> float:
    """Exponential backoff with deterministic per-(cell, attempt) jitter."""
    base = min(policy.backoff_max, policy.backoff * 2.0 ** (attempt - 1))
    h = hashlib.sha256(f"backoff|{key}|{attempt}".encode()).digest()
    unit = int.from_bytes(h[:8], "big") / 2.0 ** 64
    return base * (1.0 + policy.jitter * unit)


def _engine_event(manifest, event: str, **fields) -> None:
    """Emit a supervision event when the manifest carries an event log
    (plain ``RunManifest`` instances, as tests construct, don't)."""
    emit = getattr(manifest, "engine_event", None)
    if emit is not None:
        emit(event, **fields)


def _run_serial(order: list[str], pending: dict, payloads: dict, report,
                owners: dict, store, policy: RunPolicy,
                manifest, failures: dict,
                attempts: dict | None = None) -> None:
    """In-process executor with the same retry semantics as the pool
    path (also the degradation target when the pool keeps breaking)."""
    if attempts is None:
        attempts = dict.fromkeys(order, 0)
    for key in order:
        t0 = time.perf_counter()
        while True:
            attempts[key] += 1
            manifest.mark(key, "running", attempts=attempts[key])
            try:
                payload = _execute_cell(pending[key], key, attempts[key])
            except Exception as exc:
                err = _errstr(exc)
                if policy.fail_fast or attempts[key] > policy.retries:
                    failures[key] = err
                    manifest.mark(key, "failed", attempts=attempts[key],
                                  error=err)
                    report(owners[key], time.perf_counter() - t0,
                           "failed")
                    if policy.fail_fast:
                        raise GridError(
                            f"cell {owners[key]} failed "
                            f"(--fail-fast): {err}",
                            failures={owners[key]: err},
                            run_id=manifest.run_id) from exc
                    break
                manifest.mark(key, "retrying", attempts=attempts[key],
                              error=err)
                time.sleep(_backoff_delay(policy, key, attempts[key]))
            else:
                payloads[key] = payload
                store(key)
                seconds = time.perf_counter() - t0
                manifest.mark(key, "done", attempts=attempts[key],
                              seconds=seconds, source="run")
                report(owners[key], seconds, "run")
                break


def _worker_init(fault_plan, tele_ctx=None) -> None:
    """Pool-process initializer: arm fault injection and telemetry."""
    faults.worker_init(fault_plan)
    tele_events.worker_init(tele_ctx)


def _new_pool(max_workers: int, tele_ctx=None) -> ProcessPoolExecutor:
    """Worker pool whose processes know the active fault plan and
    telemetry context (passed explicitly so any multiprocessing start
    method behaves alike)."""
    return ProcessPoolExecutor(max_workers=max_workers,
                               initializer=_worker_init,
                               initargs=(faults.active_plan(), tele_ctx))


def _shutdown_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down without waiting on hung workers.

    ``shutdown(wait=False)`` alone would leave a hung worker sleeping
    (and block interpreter exit on its join), so the worker processes
    are terminated outright — safe because results are only consumed
    from completed futures and cache writes are atomic.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            proc.terminate()
        except Exception:
            pass


def _run_parallel(pending: dict, payloads: dict, jobs: int, report,
                  owners: dict, store, policy: RunPolicy,
                  manifest, failures: dict, tele_ctx=None) -> None:
    """Supervised pool executor: per-cell timeout, retry with backoff,
    broken-pool recovery, and serial degradation."""
    max_workers = min(jobs, len(pending))
    ready: deque = deque(pending)
    delayed: list = []                  # (due, seq, key) heap
    attempts = dict.fromkeys(pending, 0)
    t_first: dict[str, float] = {}      # key -> first-submit wall clock
    inflight: dict = {}                 # future -> key
    deadlines: dict[str, float] = {}    # key -> monotonic deadline
    rebuilds = 0
    seq = 0
    pool = _new_pool(max_workers, tele_ctx)

    def fail_or_retry(key: str, err: str) -> None:
        nonlocal seq
        if not policy.fail_fast and attempts[key] <= policy.retries:
            manifest.mark(key, "retrying", attempts=attempts[key],
                          error=err)
            seq += 1
            heapq.heappush(delayed,
                           (time.monotonic()
                            + _backoff_delay(policy, key, attempts[key]),
                            seq, key))
            return
        failures[key] = err
        manifest.mark(key, "failed", attempts=attempts[key], error=err)
        report(owners[key],
               time.monotonic() - t_first.get(key, time.monotonic()),
               "failed")
        if policy.fail_fast:
            raise GridError(f"cell {owners[key]} failed "
                            f"(--fail-fast): {err}",
                            failures={owners[key]: err},
                            run_id=manifest.run_id)

    def settle(fut, key) -> bool:
        """Consume one completed future; True when it broke the pool."""
        try:
            payload = fut.result()
        except BrokenExecutor:
            # The pool died under this cell (or an innocent
            # neighbour); which worker crashed is unknowable, so
            # every completed-broken cell spends one attempt.
            fail_or_retry(key, "worker crashed (process pool broken)")
            return True
        except Exception as exc:
            fail_or_retry(key, _errstr(exc))
        else:
            payloads[key] = payload
            store(key)
            seconds = time.monotonic() - t_first[key]
            manifest.mark(key, "done", attempts=attempts[key],
                          seconds=seconds, source="run")
            report(owners[key], seconds, "run")
        return False

    try:
        while ready or delayed or inflight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                ready.append(heapq.heappop(delayed)[2])
            broken = False
            # Submit at most max_workers cells so everything in flight
            # is actually running — a queued cell must not "time out".
            while ready and len(inflight) < max_workers:
                key = ready.popleft()
                attempts[key] += 1
                t_first.setdefault(key, time.monotonic())
                manifest.mark(key, "running", attempts=attempts[key])
                try:
                    fut = pool.submit(_execute_cell, pending[key], key,
                                      attempts[key])
                except BrokenExecutor:
                    # A worker died between submits; requeue this cell
                    # untouched and go handle the break.
                    attempts[key] -= 1
                    ready.appendleft(key)
                    broken = True
                    break
                inflight[fut] = key
                deadlines[key] = (time.monotonic() + policy.timeout
                                  if policy.timeout else math.inf)
            if not broken:
                if not inflight:
                    if delayed:     # everything is backing off
                        time.sleep(max(0.0, delayed[0][0]
                                       - time.monotonic()))
                    continue
                bound = min(deadlines[k] for k in inflight.values())
                if delayed:
                    bound = min(bound, delayed[0][0])
                wait_t = (None if bound == math.inf
                          else max(0.01, bound - time.monotonic()))
                finished, _ = wait(set(inflight), timeout=wait_t,
                                   return_when=FIRST_COMPLETED)
                for fut in finished:
                    broken |= settle(fut, inflight.pop(fut))
                # Hung-worker detection: a running cell past its
                # deadline cannot be cancelled, so abandon its future
                # and rebuild the pool (terminating stranded workers).
                now = time.monotonic()
                overdue = [fut for fut, key in inflight.items()
                           if deadlines[key] <= now]
                if overdue:
                    broken = True
                    for fut in overdue:
                        key = inflight.pop(fut)
                        fail_or_retry(key, "timeout: no result after "
                                           f"{policy.timeout:.1f}s "
                                           "(worker hung or overloaded)")
            if broken:
                rebuilds += 1
                # Futures that completed while the pool collapsed get
                # settled normally; the rest are abandoned with their
                # attempt refunded, so the fault schedule replays
                # exactly on the rebuilt pool.
                for fut, key in list(inflight.items()):
                    if fut.done():
                        settle(fut, key)
                    else:
                        attempts[key] -= 1
                        manifest.mark(key, "pending",
                                      attempts=attempts[key],
                                      save=False)
                        ready.append(key)
                manifest.save()
                inflight.clear()
                _shutdown_pool(pool)
                if rebuilds > policy.max_pool_rebuilds:
                    print(f"  [engine] process pool failed {rebuilds} "
                          "times; degrading to in-process serial "
                          "execution", file=sys.stderr, flush=True)
                    _engine_event(manifest, "degraded_serial",
                                  rebuilds=rebuilds)
                    remaining = list(ready) + [k for _, _, k in
                                               sorted(delayed)]
                    ready.clear()
                    delayed.clear()
                    _run_serial(remaining, pending, payloads, report,
                                owners, store, policy, manifest,
                                failures, attempts=attempts)
                    return
                print(f"  [engine] rebuilding process pool "
                      f"(failure {rebuilds}/{policy.max_pool_rebuilds})",
                      file=sys.stderr, flush=True)
                _engine_event(manifest, "pool_rebuilt", rebuilds=rebuilds)
                pool = _new_pool(max_workers, tele_ctx)
    finally:
        _shutdown_pool(pool)
