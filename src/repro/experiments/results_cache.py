"""Content-addressed on-disk cache for simulation results.

A cached entry is the lossless JSON payload of one ``SystemStats`` (or a
multi-core result), keyed by everything that determines it:

* the **trace fingerprint** — for disk-cached workload traces this is
  the ``(name, tier, length, format-version)`` spec, which is enough
  because trace generation is deterministic; for in-memory traces
  (synthetic suites, derived no-dep copies) it is a content hash of the
  access records;
* the **variant** name plus any variant extras (e.g. expert regions);
* the **config digest** (:meth:`repro.config.SystemConfig.digest`);
* the **code fingerprint** — a hash over the simulator sources, so any
  change to the model automatically invalidates every cached result.

Entries live under ``REPRO_CACHE_DIR`` (default ``.repro_cache/``) in
``results/<first-2-hex>/<key>.json``.  Writes are atomic (temp file +
rename), so concurrent ``run_grid`` workers can share one cache
directory safely.  Set the ``REPRO_CACHE_DIR`` environment variable to
relocate the whole cache (traces and results) — see docs/PERFORMANCE.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path

from repro.experiments.workloads import TRACE_FORMAT_VERSION, cache_dir

# Sources whose content defines the simulation model.  A change to any
# of these files must invalidate cached results; experiment-layer files
# (figures, CLI, reporting) deliberately do not.
_REPRO_ROOT = Path(__file__).resolve().parents[1]
_FINGERPRINT_SOURCES = ("config.py", "mem", "core", "trace", "graphs",
                        "kernels")

_code_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hash of the simulator sources (memoized per process)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        h = hashlib.sha256()
        files: list[Path] = []
        for entry in _FINGERPRINT_SOURCES:
            p = _REPRO_ROOT / entry
            if p.is_file():
                files.append(p)
            elif p.is_dir():
                files.extend(p.rglob("*.py"))
        for f in sorted(files):
            h.update(str(f.relative_to(_REPRO_ROOT)).encode())
            h.update(b"\0")
            h.update(f.read_bytes())
            h.update(b"\0")
        _code_fingerprint = h.hexdigest()[:16]
    return _code_fingerprint


def workload_fingerprint(name: str, tier: str, length: int) -> str:
    """Fingerprint of a disk-cached workload trace, without loading it.

    Trace generation is deterministic in (name, tier, length) and the
    trace format version, so the spec alone identifies the content —
    this is what makes a warm-cache figure rerun trace-load-free.
    """
    return f"wl:{name}:{tier}:{length}:v{TRACE_FORMAT_VERSION}"


def trace_fingerprint(trace) -> str:
    """Content hash of an in-memory :class:`repro.trace.record.Trace`."""
    acc = trace.accesses
    h = hashlib.sha256()
    h.update(str(acc.dtype).encode())
    h.update(acc.tobytes())
    return f"tr:{trace.name}:{h.hexdigest()[:16]}"


def result_key(trace_fp: str, variant: str, config_digest: str,
               extra: str = "") -> str:
    """Content-addressed key for one simulation result."""
    blob = "|".join((trace_fp, variant, config_digest, code_fingerprint(),
                     extra))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultsCache:
    """On-disk result store with hit/miss accounting."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None \
            else cache_dir() / "results"
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Load a cached payload; None (and a miss) when absent."""
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store a payload atomically (temp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        self.stores += 1

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            removed = sum(1 for _ in self.root.glob("*/*.json"))
            shutil.rmtree(self.root)
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json")) \
            if self.root.is_dir() else 0
