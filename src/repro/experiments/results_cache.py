"""Content-addressed on-disk cache for simulation results.

A cached entry is the lossless JSON payload of one ``SystemStats`` (or a
multi-core result), keyed by everything that determines it:

* the **trace fingerprint** — for disk-cached workload traces this is
  the ``(name, tier, length, format-version)`` spec, which is enough
  because trace generation is deterministic; for in-memory traces
  (synthetic suites, derived no-dep copies) it is a content hash of the
  access records;
* the **variant** name plus any variant extras (e.g. expert regions);
* the **config digest** (:meth:`repro.config.SystemConfig.digest`);
* the **code fingerprint** — a hash over the simulator sources, so any
  change to the model automatically invalidates every cached result.

Entries live under ``REPRO_CACHE_DIR`` (default ``.repro_cache/``) in
``results/<first-2-hex>/<key>.json``.  Writes are atomic (temp file +
rename), so concurrent ``run_grid`` workers can share one cache
directory safely.  Set the ``REPRO_CACHE_DIR`` environment variable to
relocate the whole cache (traces and results) — see docs/PERFORMANCE.md.

Entries are stored inside a checksummed **envelope**
(``{"v": 2, "sha": <sha256 of canonical payload JSON>, "payload": …}``)
and validated on every read.  A file that fails to parse, does not
match the envelope schema, or fails its checksum is **quarantined** —
moved to ``results/quarantine/<name>.bad`` and counted in ``corrupt``
(absent entries count in ``misses``) — so one flipped bit costs one
recompute instead of poisoning a figure or re-missing forever.  A
well-formed entry from an *older envelope version* is not corrupt,
just outdated (v1 predates ``SystemStats.timeline``): it is unlinked
and counted in ``stale``, then served as a miss.  Construction also
sweeps stale ``*.tmp.<pid>`` droppings left by writers that crashed
mid-``put``.  See docs/RESILIENCE.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

from repro import faults
from repro.experiments.workloads import TRACE_FORMAT_VERSION, cache_dir
from repro.trace import store

# Sources whose content defines the simulation model.  A change to any
# of these files must invalidate cached results; experiment-layer files
# (figures, CLI, reporting) deliberately do not.
_REPRO_ROOT = Path(__file__).resolve().parents[1]
_FINGERPRINT_SOURCES = ("config.py", "mem", "core", "trace", "graphs",
                        "kernels")

ENVELOPE_VERSION = 2
"""v2 (telemetry): payloads may carry ``timeline`` (windowed metric
series, :mod:`repro.telemetry.probes`).  v1 entries are treated as
stale — unlinked and recomputed, never quarantined as corrupt."""

#: A ``*.tmp.<pid>`` file older than this is presumed orphaned by a
#: crashed writer (live writers hold theirs for milliseconds).
STALE_TMP_AGE_SECONDS = 3600.0

_code_fingerprint: str | None = None


def code_fingerprint() -> str:
    """Hash of the simulator sources (memoized per process)."""
    global _code_fingerprint
    if _code_fingerprint is None:
        h = hashlib.sha256()
        files: list[Path] = []
        for entry in _FINGERPRINT_SOURCES:
            p = _REPRO_ROOT / entry
            if p.is_file():
                files.append(p)
            elif p.is_dir():
                files.extend(p.rglob("*.py"))
                # The batch backend's semantics live in C sources
                # (core/batch/kernel.c) — a kernel edit must invalidate
                # cached results exactly like a .py edit does.
                files.extend(p.rglob("*.c"))
        for f in sorted(files):
            h.update(str(f.relative_to(_REPRO_ROOT)).encode())
            h.update(b"\0")
            h.update(f.read_bytes())
            h.update(b"\0")
        _code_fingerprint = h.hexdigest()[:16]
    return _code_fingerprint


def workload_fingerprint(name: str, tier: str, length: int) -> str:
    """Fingerprint of a disk-cached workload trace, without loading it.

    Trace generation is deterministic in (name, tier, length) and the
    trace format version, so the spec alone identifies the content —
    this is what makes a warm-cache figure rerun trace-load-free.
    """
    return f"wl:{name}:{tier}:{length}:v{TRACE_FORMAT_VERSION}"


def trace_fingerprint(trace) -> str:
    """Content hash of an in-memory :class:`repro.trace.record.Trace`."""
    acc = trace.accesses
    h = hashlib.sha256()
    h.update(str(acc.dtype).encode())
    h.update(acc.tobytes())
    return f"tr:{trace.name}:{h.hexdigest()[:16]}"


def result_key(trace_fp: str, variant: str, config_digest: str,
               extra: str = "") -> str:
    """Content-addressed key for one simulation result."""
    blob = "|".join((trace_fp, variant, config_digest, code_fingerprint(),
                     extra))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_checksum(payload: dict) -> str:
    """sha256 over the canonical JSON form of a payload."""
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


class ResultsCache:
    """On-disk result store with hit/miss/corruption accounting.

    Counters: ``hits`` (valid entry served), ``misses`` (entry absent),
    ``corrupt`` (entry present but unreadable — quarantined, served as
    a miss), ``stale`` (well-formed entry from an older envelope
    version — unlinked, served as a miss), ``stores`` (entries
    written), ``quarantined`` (files moved to ``quarantine/``),
    ``swept`` (stale temp files removed at construction).
    """

    def __init__(self, root: str | os.PathLike | None = None,
                 sweep_stale: bool = True,
                 stale_tmp_age: float = STALE_TMP_AGE_SECONDS):
        self.root = Path(root) if root is not None \
            else cache_dir() / "results"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.stale = 0
        self.quarantined = 0
        self.swept = 0
        self._write_seq: dict[str, int] = {}
        if sweep_stale:
            self.swept = self.sweep_stale_tmp(stale_tmp_age)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _glob(self, pattern: str) -> list[Path]:
        """Snapshot a glob, tolerating a concurrent supervisor pruning
        or ``clear()``-ing directories mid-scan: a subdirectory that
        vanishes between listing and descent is simply not there any
        more — not an error."""
        try:
            return list(self.root.glob(pattern))
        except OSError:
            return []

    def _tmp_files(self) -> list[Path]:
        """Stray ``<key>.json.tmp.<pid>`` files from in-flight or
        crashed writers."""
        return self._glob("[0-9a-f][0-9a-f]/*.json.tmp.*")

    def sweep_stale_tmp(self,
                        max_age: float = STALE_TMP_AGE_SECONDS) -> int:
        """Remove temp files older than ``max_age`` seconds; returns
        the number removed.  Young temp files belong to live writers
        and are left alone."""
        removed = 0
        now = time.time()
        for tmp in self._tmp_files():
            try:
                if now - tmp.stat().st_mtime >= max_age:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass        # raced with the writer's own rename/cleanup
        return removed

    def _quarantine(self, path: Path) -> None:
        """Move an unreadable entry aside (``.bad`` suffix keeps it out
        of entry globs) so it is recomputed once, not re-missed forever.
        Shares :func:`repro.trace.store.quarantine_file` with the trace
        store, so every corrupt on-disk artifact lands in one place."""
        store.quarantine_file(path, self.quarantine_dir)
        self.quarantined += 1

    def get(self, key: str) -> dict | None:
        """Load a cached payload.

        Returns ``None`` both when the entry is absent (counted in
        ``misses``) and when it is present but unreadable — bad JSON,
        wrong envelope schema, checksum mismatch — in which case it is
        quarantined and counted in ``corrupt`` instead.
        """
        path = self._path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            self._quarantine(path)
            return None
        if self._is_stale(entry):
            self.stale += 1
            self.misses += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass    # raced with a concurrent reader's unlink
            return None
        payload = self._validate(entry)
        if payload is None:
            self.corrupt += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return payload

    @staticmethod
    def _is_stale(entry) -> bool:
        """A structurally sound envelope whose version predates ours —
        written by older code, not damaged, so it is dropped silently
        rather than quarantined as corrupt."""
        return (isinstance(entry, dict)
                and isinstance(entry.get("v"), int)
                and not isinstance(entry.get("v"), bool)
                and entry["v"] < ENVELOPE_VERSION
                and isinstance(entry.get("payload"), dict)
                and isinstance(entry.get("sha"), str))

    @staticmethod
    def _validate(entry) -> dict | None:
        """Envelope schema + checksum validation; None when invalid."""
        if (not isinstance(entry, dict)
                or entry.get("v") != ENVELOPE_VERSION
                or not isinstance(entry.get("payload"), dict)
                or not isinstance(entry.get("sha"), str)):
            return None
        payload = entry["payload"]
        if payload_checksum(payload) != entry["sha"]:
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Store a payload atomically (temp file + rename) inside a
        checksummed envelope.  A concurrent supervisor ``clear()``-ing
        the store can rmtree the entry directory between the mkdir and
        the write/rename — transient by construction, so the write is
        retried on a freshly recreated directory."""
        path = self._path(key)
        entry = {"v": ENVELOPE_VERSION, "sha": payload_checksum(payload),
                 "payload": payload}
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        for attempt in range(5):
            try:
                # Inside the retry: recursive mkdir itself raises
                # FileNotFoundError when a concurrent rmtree removes
                # the just-created ancestor mid-recursion.
                path.parent.mkdir(parents=True, exist_ok=True)
                with open(tmp, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh, separators=(",", ":"))
                os.replace(tmp, path)
                break
            except FileNotFoundError:
                tmp.unlink(missing_ok=True)
                if attempt == 4:
                    raise
            except BaseException:
                tmp.unlink(missing_ok=True)
                raise
        self.stores += 1
        if faults.active_plan() is not None:
            seq = self._write_seq[key] = self._write_seq.get(key, 0) + 1
            faults.mangle_cache_entry(path, key, seq)

    def clear(self) -> int:
        """Delete the whole store — committed entries, stray temp files
        and the quarantine; returns committed entries + temp files
        removed.  Safe against a concurrent supervisor clearing or
        writing the same root: files that vanish mid-walk are treated
        as already gone (``ignore_errors``), never as an exception."""
        removed = 0
        if self.root.is_dir():
            removed = len(self._glob("*/*.json"))
            removed += len(self._tmp_files())
            shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def __len__(self) -> int:
        """Files the store currently owns: committed entries plus stray
        temp files (quarantined files are not counted — they are dead)."""
        return len(self._glob("*/*.json")) + len(self._tmp_files())
