"""CSV export of experiment results (for external plotting/analysis).

Every figure-function result is a flat dataclass of parallel lists;
:func:`to_csv` turns any of them into a CSV string, and
:func:`write_csv` saves it.  Column discovery is by dataclass fields, so
new result types export without changes here.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from pathlib import Path


def _columns(result) -> dict[str, list]:
    """Extract the parallel-list columns of a result dataclass."""
    if not dataclasses.is_dataclass(result):
        raise TypeError("result must be a dataclass instance")
    cols: dict[str, list] = {}
    length = None
    for field in dataclasses.fields(result):
        value = getattr(result, field.name)
        if isinstance(value, dict):
            for key, sub in value.items():
                if isinstance(sub, list):
                    cols[f"{field.name}.{key}"] = sub
        elif isinstance(value, list):
            cols[field.name] = value
    for name, col in cols.items():
        if length is None:
            length = len(col)
        elif len(col) != length:
            raise ValueError(f"column {name!r} length {len(col)} != "
                             f"{length}; result is not tabular")
    if not cols:
        raise ValueError("result has no list columns to export")
    return cols


def to_csv(result) -> str:
    """Render a figure result as CSV text (header + one row per point)."""
    cols = _columns(result)
    names = list(cols)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(names)
    for row in zip(*cols.values()):
        writer.writerow(row)
    return buf.getvalue()


def write_csv(result, path) -> Path:
    """Save a figure result to ``path``; returns the Path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(result))
    return path
