"""Workload definitions: 6 kernels × 6 graphs = 36 single-core workloads
(paper §IV-C), the random 4-thread mixes (§IV-D), and the three
post-paper families (``rw``/``gs``/``dyn`` × the same graphs — see
docs/WORKLOADS.md, :data:`EXTRA_WORKLOADS`).

Traces are generated once per (kernel, graph, tier, length) and cached
on disk under ``REPRO_CACHE_DIR`` (default ``.repro_cache/`` in the
working directory) in the v8 memory-mapped store format
(:mod:`repro.trace.store`, docs/TRACES.md): the supervisor and every
``run_grid`` worker open the same file through ``np.memmap`` and share
one page-cache copy instead of each deserializing a private clone.
v7-era compressed ``.npz`` entries are migrated in place the first
time they are requested (loaded once, rewritten as a v8 store file,
counted in the store's ``migrations``/``stale`` counters); corrupt or
truncated store files are quarantined to ``results/quarantine/`` and
regenerated exactly once.

Each workload's trace is a *mid-stream window* of the full
instrumented run — the SimPoint-flavoured choice that avoids measuring
only a kernel's sequential warm-up phase (e.g. PageRank's contrib
loop).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.graphs.suite import GRAPH_SUITE, load_graph
from repro.kernels.common import kernel_info, pick_source
from repro.trace import store
from repro.trace.kernels import generate_trace
from repro.trace.record import Trace

KERNELS = ("bc", "bfs", "cc", "pr", "tc", "sssp")
#: Post-paper trace families (docs/WORKLOADS.md): random-walk
#: sampling, gather-scatter aggregation, dynamic-graph updates.
EXTRA_KERNELS = ("rw", "gs", "dyn")
GRAPHS = tuple(GRAPH_SUITE)

DEFAULT_TIER = "medium"        # ~10^5 vertices; pairs with scaled_config(16)
DEFAULT_TRACE_LEN = 400_000
TRACE_FORMAT_VERSION = 8       # bump to invalidate cached traces
LEGACY_TRACE_FORMAT_VERSION = 7  # newest .npz-era version we migrate

# The generator over-produces this many windows' worth of accesses; the
# measurement window is the *tail* of what was generated, which lands
# past each kernel's sequential warm-up phase (e.g. PageRank's contrib
# loop) regardless of the window length chosen.
WINDOW_OVERGEN_FACTOR = 3


@dataclass(frozen=True)
class Workload:
    """One (kernel, graph) single-core workload."""

    kernel: str
    graph: str

    @property
    def name(self) -> str:
        return f"{self.kernel}.{self.graph}"


WORKLOADS: tuple[Workload, ...] = tuple(
    Workload(k, g) for k in KERNELS for g in GRAPHS)

#: The new-family grid.  Kept separate from :data:`WORKLOADS` — the
#: paper figures enumerate exactly the 6 × 6 GAP grid — but every
#: entry is a first-class workload: same trace cache, result cache
#: keys, telemetry, shard partition and DSE reachability.
EXTRA_WORKLOADS: tuple[Workload, ...] = tuple(
    Workload(k, g) for k in EXTRA_KERNELS for g in GRAPHS)

ALL_WORKLOADS: tuple[Workload, ...] = WORKLOADS + EXTRA_WORKLOADS


def cache_dir() -> Path:
    d = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    d.mkdir(parents=True, exist_ok=True)
    return d


def _trace_path(wl: Workload, tier: str, length: int) -> Path:
    return cache_dir() / (f"{wl.name}.{tier}.{length}."
                          f"v{TRACE_FORMAT_VERSION}.trace")


def _legacy_trace_path(wl: Workload, tier: str, length: int) -> Path:
    """Pre-store (compressed ``.npz``) cache entry for the same spec."""
    return cache_dir() / (f"{wl.name}.{tier}.{length}."
                          f"v{LEGACY_TRACE_FORMAT_VERSION}.npz")


def trace_quarantine_dir() -> Path:
    """Where corrupt trace-store files are moved — the same
    ``results/quarantine/`` directory the results cache uses (one
    quarantine for every on-disk artifact)."""
    return cache_dir() / "results" / "quarantine"


def _generate(wl: Workload, tier: str, length: int) -> Trace:
    weighted = kernel_info(wl.kernel).weighted_input
    graph = load_graph(wl.graph, tier=tier, weighted=weighted)
    # Over-generate so a post-warm-up window of `length` exists.
    budget = length * WINDOW_OVERGEN_FACTOR
    kwargs = {}
    if wl.kernel in ("bfs", "sssp"):
        # crc32, not hash(): str hashing is salted per process, and
        # trace generation must be deterministic in the (name, tier,
        # length) spec — the result cache fingerprints traces by spec.
        kwargs["source"] = pick_source(
            graph, seed=zlib.crc32(wl.name.encode()) % 1000)
    if wl.kernel == "pr":
        kwargs["iterations"] = 3
    if wl.kernel == "bc":
        kwargs["num_sources"] = 2
    if wl.kernel == "rw":
        # Scale the walk set to the access budget (~3 records per
        # walker step) so the post-warm-up window exists at any length.
        kwargs["seed"] = zlib.crc32(wl.name.encode()) % 1000
        kwargs["num_walks"] = 1024
        kwargs["walk_length"] = max(16, budget // (3 * 1024) + 1)
    if wl.kernel == "gs":
        kwargs["feature_dim"] = 16
        # Each round emits ~2.5 accesses per in-edge; repeat rounds
        # until the budget is covered.
        per_round = max(1, int(2.5 * max(len(graph.in_na), 1)))
        kwargs["rounds"] = max(2, budget // per_round + 1)
    if wl.kernel == "dyn":
        kwargs["seed"] = zlib.crc32(wl.name.encode()) % 1000
        # Each batch replays a full query pass (~3 accesses per edge);
        # batches scale with the budget so updates stay interleaved
        # throughout the window.
        per_batch = max(1, 3 * max(graph.num_edges, 1))
        kwargs["batch_size"] = 1024
        kwargs["batches"] = max(4, budget // per_batch + 1)
    trace = generate_trace(wl.kernel, graph, max_accesses=budget, **kwargs)
    if len(trace) > length:
        skip = len(trace) - length
        trace = trace.slice(skip, skip + length)
    trace.name = wl.name
    trace.kernel = wl.kernel
    trace.graph = wl.graph
    return trace


#: Per-process count of store writes per path, feeding the fault
#: injector's ``write_seq`` (mirrors ``ResultsCache._write_seq``): with
#: the default ``max_attempt=1`` only the *first* write of a trace file
#: is damaged, so the regeneration after a quarantine lands clean.
_store_write_seq: dict[str, int] = {}


def _store_trace(trace: Trace, path: Path) -> None:
    """Write a trace store entry (atomic inside :func:`store.write_trace`)
    and apply any armed ``corrupt``/``truncate`` fault to the result.

    Parallel workers may race to generate the same trace; the atomic
    temp-file + rename write guarantees no reader ever sees a
    half-written store file, and the last writer simply wins with an
    identical file.
    """
    store.write_trace(trace, path)
    if faults.active_plan() is not None:
        site = f"trace:{path.name}"
        seq = _store_write_seq[site] = _store_write_seq.get(site, 0) + 1
        faults.mangle_trace_file(path, site, seq)


def _quarantine_trace(path: Path) -> None:
    store.COUNTERS["corrupt"].inc()
    store.quarantine_file(path, trace_quarantine_dir())


def _migrate_legacy(wl: Workload, tier: str, length: int,
                    path: Path) -> bool:
    """Convert a v7 ``.npz`` entry to a v8 store file, once.

    Returns True when a migration happened.  The record bytes are
    identical after migration (the npz holds the same ``ACCESS_DTYPE``
    array), so migrated and freshly generated traces simulate
    bit-identically.  An unreadable legacy file is quarantined and the
    trace regenerated instead.
    """
    legacy = _legacy_trace_path(wl, tier, length)
    if not legacy.exists():
        return False
    try:
        trace = Trace.load(legacy)
    except Exception:
        _quarantine_trace(legacy)
        return False
    _store_trace(trace, path)
    legacy.unlink(missing_ok=True)
    store.COUNTERS["migrations"].inc()
    store.COUNTERS["stale"].inc()
    return True


def workload_trace(wl: Workload | str, tier: str = DEFAULT_TIER,
                   length: int = DEFAULT_TRACE_LEN,
                   use_cache: bool = True, mapped: bool = True) -> Trace:
    """Load (or generate and cache) a workload's trace.

    With ``use_cache`` the trace lives in the on-disk v8 store and the
    returned ``Trace.accesses`` is a **read-only memory map** of the
    cache file (``mapped=False`` forces a private in-RAM copy; without
    a cache the freshly generated in-memory trace is returned as-is).
    A store file that fails validation — bad magic, checksum mismatch,
    truncation — is quarantined to ``results/quarantine/`` and the
    trace regenerated exactly once; a v7-era ``.npz`` entry for the
    same spec is transparently migrated to the store format first.
    """
    if isinstance(wl, str):
        kernel, graph = wl.split(".", 1)
        wl = Workload(kernel, graph)
    if not use_cache:
        return _generate(wl, tier, length)
    path = _trace_path(wl, tier, length)
    if not path.exists():
        _migrate_legacy(wl, tier, length, path)
    # Two rounds: a file that fails validation is quarantined and
    # regenerated once; a second consecutive failure (e.g. a fault plan
    # damaging every write) falls back to the in-memory trace rather
    # than looping.
    for _ in range(2):
        if path.exists():
            try:
                return store.open_trace(path, mapped=mapped)
            except store.TraceStoreError:
                _quarantine_trace(path)
                store.COUNTERS["regenerated"].inc()
        trace = _generate(wl, tier, length)
        _store_trace(trace, path)
    return trace


def multicore_mixes(num_mixes: int = 50, cores: int = 4, seed: int = 42
                    ) -> list[tuple[Workload, ...]]:
    """The paper's randomly generated 4-thread workload mixes (§IV-D)."""
    rng = np.random.default_rng(seed)
    mixes = []
    for _ in range(num_mixes):
        idx = rng.integers(0, len(WORKLOADS), size=cores)
        mixes.append(tuple(WORKLOADS[i] for i in idx))
    return mixes
