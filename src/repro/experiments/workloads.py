"""Workload definitions: 6 kernels × 6 graphs = 36 single-core workloads
(paper §IV-C) plus the random 4-thread mixes (§IV-D).

Traces are generated once per (kernel, graph, tier, length) and cached
on disk under ``REPRO_CACHE_DIR`` (default ``.repro_cache/`` in the
working directory).  Each workload's trace is a *mid-stream window* of
the full instrumented run — the SimPoint-flavoured choice that avoids
measuring only a kernel's sequential warm-up phase (e.g. PageRank's
contrib loop).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.graphs.suite import GRAPH_SUITE, load_graph
from repro.kernels.common import KERNEL_TABLE, pick_source
from repro.trace.kernels import generate_trace
from repro.trace.record import Trace

KERNELS = ("bc", "bfs", "cc", "pr", "tc", "sssp")
GRAPHS = tuple(GRAPH_SUITE)

DEFAULT_TIER = "medium"        # ~10^5 vertices; pairs with scaled_config(16)
DEFAULT_TRACE_LEN = 400_000
TRACE_FORMAT_VERSION = 7       # bump to invalidate cached traces

# The generator over-produces this many windows' worth of accesses; the
# measurement window is the *tail* of what was generated, which lands
# past each kernel's sequential warm-up phase (e.g. PageRank's contrib
# loop) regardless of the window length chosen.
WINDOW_OVERGEN_FACTOR = 3


@dataclass(frozen=True)
class Workload:
    """One (kernel, graph) single-core workload."""

    kernel: str
    graph: str

    @property
    def name(self) -> str:
        return f"{self.kernel}.{self.graph}"


WORKLOADS: tuple[Workload, ...] = tuple(
    Workload(k, g) for k in KERNELS for g in GRAPHS)


def cache_dir() -> Path:
    d = Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))
    d.mkdir(parents=True, exist_ok=True)
    return d


def _trace_path(wl: Workload, tier: str, length: int) -> Path:
    return cache_dir() / (f"{wl.name}.{tier}.{length}."
                          f"v{TRACE_FORMAT_VERSION}.npz")


def _generate(wl: Workload, tier: str, length: int) -> Trace:
    weighted = KERNEL_TABLE[wl.kernel].weighted_input
    graph = load_graph(wl.graph, tier=tier, weighted=weighted)
    # Over-generate so a post-warm-up window of `length` exists.
    budget = length * WINDOW_OVERGEN_FACTOR
    kwargs = {}
    if wl.kernel in ("bfs", "sssp"):
        # crc32, not hash(): str hashing is salted per process, and
        # trace generation must be deterministic in the (name, tier,
        # length) spec — the result cache fingerprints traces by spec.
        kwargs["source"] = pick_source(
            graph, seed=zlib.crc32(wl.name.encode()) % 1000)
    if wl.kernel == "pr":
        kwargs["iterations"] = 3
    if wl.kernel == "bc":
        kwargs["num_sources"] = 2
    trace = generate_trace(wl.kernel, graph, max_accesses=budget, **kwargs)
    if len(trace) > length:
        skip = len(trace) - length
        trace = trace.slice(skip, skip + length)
    trace.name = wl.name
    trace.kernel = wl.kernel
    trace.graph = wl.graph
    return trace


def _atomic_save(trace: Trace, path: Path) -> None:
    """Write a trace cache entry atomically (temp file + rename).

    Parallel workers may race to generate the same trace; writing to a
    process-unique temp file and renaming guarantees no reader ever
    sees a half-written .npz, and the last writer simply wins with an
    identical file.
    """
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            trace.save(fh)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def workload_trace(wl: Workload | str, tier: str = DEFAULT_TIER,
                   length: int = DEFAULT_TRACE_LEN,
                   use_cache: bool = True) -> Trace:
    """Load (or generate and cache) a workload's trace."""
    if isinstance(wl, str):
        kernel, graph = wl.split(".", 1)
        wl = Workload(kernel, graph)
    path = _trace_path(wl, tier, length)
    if use_cache and path.exists():
        try:
            return Trace.load(path)
        except Exception:
            path.unlink(missing_ok=True)
    trace = _generate(wl, tier, length)
    if use_cache:
        _atomic_save(trace, path)
    return trace


def multicore_mixes(num_mixes: int = 50, cores: int = 4, seed: int = 42
                    ) -> list[tuple[Workload, ...]]:
    """The paper's randomly generated 4-thread workload mixes (§IV-D)."""
    rng = np.random.default_rng(seed)
    mixes = []
    for _ in range(num_mixes):
        idx = rng.integers(0, len(WORKLOADS), size=cores)
        mixes.append(tuple(WORKLOADS[i] for i in idx))
    return mixes
