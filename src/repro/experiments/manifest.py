"""Per-sweep run manifests: the checkpoint/resume state of ``run_grid``.

Every grid execution writes a small JSON manifest to
``<REPRO_CACHE_DIR>/runs/<run_id>.json`` recording, per unique cell
(content-addressed cache key): its label, status, attempt count, last
error, wall seconds and result source.  The manifest is updated with an
atomic write on every state change, so at any instant — including the
instant a sweep is OOM-killed or ^C'd — the file on disk is a valid
snapshot of exactly which cells completed.

Resuming (``run_grid(run_id=...)`` / ``repro <fig> --resume <run_id>``)
re-opens the manifest: completed cells are satisfied from the results
cache (zero redundant simulation) and only the interrupted/failed
remainder executes.  See docs/RESILIENCE.md for the format and
workflow.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

from repro.experiments.workloads import cache_dir

MANIFEST_VERSION = 1

#: Newest manifests kept per runs/ directory; older ones are pruned at
#: creation time so unattended sweeps don't grow the cache unboundedly.
MAX_MANIFESTS = 200

#: Cell statuses a resumed run does not need to re-execute.
_SETTLED = ("done",)


def new_run_id() -> str:
    return (time.strftime("%Y%m%d-%H%M%S") + "-"
            + uuid.uuid4().hex[:6])


def runs_dir() -> Path:
    return cache_dir() / "runs"


class RunManifest:
    """Mutable per-run state with atomic on-disk persistence."""

    def __init__(self, run_id: str, path: Path, data: dict | None = None):
        self.run_id = run_id
        self.path = path
        self.data = data if data is not None else {
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "status": "running",
            "total_cells": 0,
            "resumes": 0,
            "cells": {},
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def _path_for(cls, run_id: str, directory: Path | None) -> Path:
        return (directory or runs_dir()) / f"{run_id}.json"

    @classmethod
    def load(cls, run_id: str,
             directory: Path | None = None) -> "RunManifest":
        path = cls._path_for(run_id, directory)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(f"manifest {path} has unsupported version "
                             f"{data.get('version')!r}")
        return cls(run_id, path, data)

    @classmethod
    def open(cls, run_id: str | None = None,
             directory: Path | None = None) -> "RunManifest":
        """Resume the manifest for ``run_id`` if one exists on disk,
        else start a fresh one (generating an id when none is given)."""
        if run_id is not None:
            try:
                m = cls.load(run_id, directory)
            except FileNotFoundError:
                m = cls(run_id, cls._path_for(run_id, directory))
            else:
                m.data["resumes"] = m.data.get("resumes", 0) + 1
                m.data["status"] = "running"
            return m
        run_id = new_run_id()
        cls._prune(directory)
        return cls(run_id, cls._path_for(run_id, directory))

    @classmethod
    def latest(cls, directory: Path | None = None) -> "RunManifest":
        """Load the most recently modified manifest in ``directory``
        (``repro trace-export latest`` resolves run ids through this).
        Raises ``FileNotFoundError`` when no runs exist."""
        d = directory or runs_dir()
        manifests = sorted(d.glob("*.json"),
                           key=lambda p: p.stat().st_mtime) \
            if d.is_dir() else []
        if not manifests:
            raise FileNotFoundError(f"no run manifests in {d}")
        return cls.load(manifests[-1].stem, directory)

    @classmethod
    def _prune(cls, directory: Path | None) -> None:
        d = directory or runs_dir()
        if not d.is_dir():
            return
        manifests = sorted(d.glob("*.json"),
                           key=lambda p: p.stat().st_mtime)
        for p in manifests[:max(0, len(manifests) - (MAX_MANIFESTS - 1))]:
            p.unlink(missing_ok=True)

    # -- cell state --------------------------------------------------------

    @property
    def cells(self) -> dict:
        return self.data["cells"]

    def settled_keys(self) -> set[str]:
        """Keys a resumed run can treat as complete."""
        return {k for k, c in self.cells.items()
                if c["status"] in _SETTLED}

    def register(self, key: str, label: str, status: str = "pending",
                 source: str | None = None, fanout: int = 1) -> None:
        """Record one unique cell with its current-run initial state.

        ``fanout`` counts how many grid cells dedup onto this key.
        Re-registering (a resume) resets transient state but keeps the
        cumulative attempt counter.
        """
        prior = self.cells.get(key, {})
        self.cells[key] = {
            "label": label,
            "status": status,
            "attempts": prior.get("attempts", 0),
            "error": None,
            "seconds": prior.get("seconds"),
            "source": source,
            "fanout": fanout,
        }

    def mark(self, key: str, status: str, attempts: int | None = None,
             error: str | None = None, seconds: float | None = None,
             source: str | None = None, save: bool = True) -> None:
        cell = self.cells[key]
        cell["status"] = status
        if attempts is not None:
            cell["attempts"] = attempts
        cell["error"] = error
        if seconds is not None:
            cell["seconds"] = round(seconds, 3)
        if source is not None:
            cell["source"] = source
        if save:
            self.save()

    def finalize(self, status: str) -> None:
        """Close out the run: demote in-flight cells to pending (they
        never completed) and persist the final status."""
        for cell in self.cells.values():
            if cell["status"] in ("running", "retrying"):
                cell["status"] = "pending"
        self.data["status"] = status
        self.save()

    # -- reporting ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for cell in self.cells.values():
            out[cell["status"]] = out.get(cell["status"], 0) + 1
        return out

    def failed_cells(self) -> dict[str, str]:
        """label -> error for permanently failed cells."""
        return {c["label"]: c["error"] or "unknown error"
                for c in self.cells.values() if c["status"] == "failed"}

    def summary(self) -> str:
        counts = self.counts()
        total = len(self.cells)
        done = counts.get("done", 0)
        parts = [f"{done}/{total} unique cells done"]
        for status in ("failed", "pending", "running", "retrying"):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        return ", ".join(parts)

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        """Atomic write (temp file + rename), crash-safe at any point."""
        self.data["total_cells"] = len(self.cells)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self.data, fh, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
