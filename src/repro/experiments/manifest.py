"""Per-sweep run manifests: the checkpoint/resume state of ``run_grid``.

Every grid execution writes a small JSON manifest to
``<REPRO_CACHE_DIR>/runs/<run_id>.json`` recording, per unique cell
(content-addressed cache key): its label, status, attempt count, last
error, wall seconds and result source.  The manifest is updated with an
atomic write on every state change, so at any instant — including the
instant a sweep is OOM-killed or ^C'd — the file on disk is a valid
snapshot of exactly which cells completed.

Resuming (``run_grid(run_id=...)`` / ``repro <fig> --resume <run_id>``)
re-opens the manifest: completed cells are satisfied from the results
cache (zero redundant simulation) and only the interrupted/failed
remainder executes.  See docs/RESILIENCE.md for the format and
workflow.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path

from repro.experiments.workloads import cache_dir

MANIFEST_VERSION = 1

#: Newest manifests kept per runs/ directory; older ones are pruned at
#: creation time so unattended sweeps don't grow the cache unboundedly.
MAX_MANIFESTS = 200

#: Cell statuses a resumed run does not need to re-execute.
_SETTLED = ("done",)

#: Run statuses _prune may delete.  ``running`` manifests belong to a
#: live (possibly concurrent) supervisor and ``interrupted`` ones are
#: resume state — deleting either would strand an in-flight sweep, so
#: only cleanly finalized runs are reclaimed.
_PRUNABLE = ("complete", "failed")


def new_run_id() -> str:
    return (time.strftime("%Y%m%d-%H%M%S") + "-"
            + uuid.uuid4().hex[:6])


def runs_dir() -> Path:
    return cache_dir() / "runs"


class RunManifest:
    """Mutable per-run state with atomic on-disk persistence."""

    def __init__(self, run_id: str, path: Path, data: dict | None = None):
        self.run_id = run_id
        self.path = path
        self.data = data if data is not None else {
            "version": MANIFEST_VERSION,
            "run_id": run_id,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "status": "running",
            "total_cells": 0,
            "resumes": 0,
            "cells": {},
        }

    # -- construction ------------------------------------------------------

    @classmethod
    def _path_for(cls, run_id: str, directory: Path | None,
                  shard: tuple[int, int] | None = None,
                  service: bool = False) -> Path:
        name = run_id if shard is None \
            else f"{run_id}.shard-{shard[0]}-of-{shard[1]}"
        if service:
            name += ".service"
        return (directory or runs_dir()) / f"{name}.json"

    @classmethod
    def load(cls, run_id: str, directory: Path | None = None,
             shard: tuple[int, int] | None = None,
             service: bool = False) -> "RunManifest":
        path = cls._path_for(run_id, directory, shard, service)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != MANIFEST_VERSION:
            raise ValueError(f"manifest {path} has unsupported version "
                             f"{data.get('version')!r}")
        return cls(run_id, path, data)

    @classmethod
    def open(cls, run_id: str | None = None,
             directory: Path | None = None,
             shard: tuple[int, int] | None = None,
             service: bool = False) -> "RunManifest":
        """Resume the manifest for ``run_id`` if one exists on disk,
        else start a fresh one (generating an id when none is given).
        ``shard=(I, N)`` names the per-shard manifest
        ``<run_id>.shard-I-of-N.json`` of a sharded sweep;
        ``service=True`` names a service-owned job manifest
        ``<run_id>.service.json`` (:mod:`repro.service` — skipped by
        :meth:`latest` alongside shard manifests, so ``repro
        trace-export latest`` never resolves to a half-built service
        job)."""
        if run_id is not None:
            try:
                m = cls.load(run_id, directory, shard, service)
            except FileNotFoundError:
                m = cls(run_id,
                        cls._path_for(run_id, directory, shard, service))
            else:
                m.data["resumes"] = m.data.get("resumes", 0) + 1
                m.data["status"] = "running"
        else:
            run_id = new_run_id()
            cls._prune(directory)
            m = cls(run_id,
                    cls._path_for(run_id, directory, shard, service))
        if shard is not None:
            m.data["shard"] = {"index": shard[0], "count": shard[1]}
        if service:
            m.data["service"] = True
        return m

    @classmethod
    def latest(cls, directory: Path | None = None) -> "RunManifest":
        """Load the most recently modified (non-shard, non-service)
        manifest in ``directory`` (``repro trace-export latest``
        resolves run ids through this).  Raises ``FileNotFoundError``
        when no runs exist.  A manifest pruned by a concurrent
        supervisor between glob and stat is skipped, not an error.
        Shard manifests (one host's slice of a sharded sweep),
        service-owned job manifests (``<run_id>.service.json``, which
        a live :mod:`repro.service` orchestrator may be mid-way
        through) and DSE study manifests (``<study_id>.dse.json``,
        :mod:`repro.dse` — a search ledger, not a sweep) are skipped —
        none is a complete sweep ``latest`` should hand to an
        exporter."""
        d = directory or runs_dir()
        best: tuple[float, str] | None = None
        if d.is_dir():
            for p in d.glob("*.json"):
                if (".shard-" in p.stem or p.stem.endswith(".service")
                        or p.stem.endswith(".dse")):
                    continue
                try:
                    mtime = p.stat().st_mtime
                except OSError:
                    continue        # vanished under a sibling's prune
                if best is None or mtime > best[0]:
                    best = (mtime, p.stem)
        if best is None:
            raise FileNotFoundError(f"no run manifests in {d}")
        return cls.load(best[1], directory)

    @classmethod
    def _prune(cls, directory: Path | None) -> None:
        """Reclaim the oldest *finalized* manifests beyond the cap.

        Runs that are still ``running`` (a concurrent supervisor's
        live sweep) or ``interrupted`` (resume state) are never
        deleted, so a shared ``runs/`` directory cannot strand an
        in-flight sweep; entries vanishing mid-scan (a sibling pruning
        the same directory) are tolerated, not raised.
        """
        d = directory or runs_dir()
        if not d.is_dir():
            return
        entries = []
        for p in d.glob("*.json"):
            try:
                entries.append((p.stat().st_mtime, p))
            except OSError:
                continue            # vanished under a sibling's prune
        entries.sort(key=lambda e: e[0])
        excess = len(entries) - (MAX_MANIFESTS - 1)
        for _, p in entries:
            if excess <= 0:
                break
            try:
                with open(p, encoding="utf-8") as fh:
                    status = json.load(fh).get("status")
            except (OSError, ValueError):
                excess -= 1         # vanished or unreadable: skip it
                continue
            if status in _PRUNABLE:
                p.unlink(missing_ok=True)
                excess -= 1

    # -- cell state --------------------------------------------------------

    @property
    def cells(self) -> dict:
        return self.data["cells"]

    def settled_keys(self) -> set[str]:
        """Keys a resumed run can treat as complete."""
        return {k for k, c in self.cells.items()
                if c["status"] in _SETTLED}

    def register(self, key: str, label: str, status: str = "pending",
                 source: str | None = None, fanout: int = 1,
                 shard: int | None = None) -> None:
        """Record one unique cell with its current-run initial state.

        ``fanout`` counts how many grid cells dedup onto this key.
        Re-registering (a resume) resets transient state but keeps the
        cumulative attempt counter.  ``shard`` records the cell's
        owning shard index in a sharded sweep (cells owned by sibling
        shards are registered with status ``elsewhere``).
        """
        prior = self.cells.get(key, {})
        self.cells[key] = {
            "label": label,
            "status": status,
            "attempts": prior.get("attempts", 0),
            "error": None,
            "seconds": prior.get("seconds"),
            "source": source,
            "fanout": fanout,
        }
        if shard is not None:
            self.cells[key]["shard"] = shard

    def mark(self, key: str, status: str, attempts: int | None = None,
             error: str | None = None, seconds: float | None = None,
             source: str | None = None, save: bool = True) -> None:
        cell = self.cells[key]
        cell["status"] = status
        if attempts is not None:
            cell["attempts"] = attempts
        cell["error"] = error
        if seconds is not None:
            cell["seconds"] = round(seconds, 3)
        if source is not None:
            cell["source"] = source
        if save:
            self.save()

    def finalize(self, status: str) -> None:
        """Close out the run: demote in-flight cells to pending (they
        never completed) and persist the final status."""
        for cell in self.cells.values():
            if cell["status"] in ("running", "retrying"):
                cell["status"] = "pending"
        self.data["status"] = status
        self.save()

    # -- reporting ---------------------------------------------------------

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for cell in self.cells.values():
            out[cell["status"]] = out.get(cell["status"], 0) + 1
        return out

    def failed_cells(self) -> dict[str, str]:
        """label -> error for permanently failed cells."""
        return {c["label"]: c["error"] or "unknown error"
                for c in self.cells.values() if c["status"] == "failed"}

    def summary(self) -> str:
        counts = self.counts()
        total = len(self.cells)
        done = counts.get("done", 0)
        elsewhere = counts.get("elsewhere", 0)
        if elsewhere:
            total -= elsewhere
        parts = [f"{done}/{total} unique cells done"]
        if elsewhere:
            parts.append(f"{elsewhere} owned by sibling shards")
        for status in ("failed", "pending", "running", "retrying"):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        return ", ".join(parts)

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        """Atomic write (temp file + rename), crash-safe at any point."""
        self.data["total_cells"] = len(self.cells)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self.data, fh, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
