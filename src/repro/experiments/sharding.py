"""Shard-aware sweeps: split one grid across N hosts, merge bit-identically.

The full fig7 matrix (216 cells) is embarrassingly parallel, and every
artifact it produces is already content-addressed and corruption-safe
(the v8 trace store, the checksummed results cache).  This module adds
the missing layer: a deterministic cell→shard partition so N independent
``run_grid`` supervisors — on N hosts sharing one artifact store, or N
sequential invocations on one machine — each execute a disjoint slice of
the grid, and a merge step that validates the slices and stitches a
result set byte-identical to the single-host run.

Partitioning
------------

:func:`shard_of` assigns each cell to a shard by a pure SHA-256 hash of
its content-addressed cache key.  The assignment therefore

* is independent of grid enumeration order (two hosts building the same
  grid in different orders agree on ownership),
* is stable under resume (a re-run of shard ``I`` owns exactly the same
  cells), and
* needs no coordination: hosts never communicate; they only agree on
  the run id and the shard count.

Execution
---------

``run_grid(..., shard=(I, N))`` — or ``repro <fig> --shard I/N
--resume <run_id>`` — simulates only the cells hashing to shard ``I``,
records the rest as ``elsewhere`` in a per-shard manifest
(``runs/<run_id>.shard-I-of-N.json``, written through the same
atomic-save path as ordinary manifests), and raises
:class:`repro.experiments.parallel.ShardComplete` instead of returning
a full result set.

Merge
-----

:func:`merge_shards` (CLI: ``repro merge <run_id>``) collects the shard
manifests for one run id and validates, before stitching anything:

* **shard set** — every index ``0..N-1`` present exactly once, all
  manifests agreeing on ``N`` (a host that ran ``--shard 1/2`` next to
  a ``--shard 1/4`` sibling is caught here);
* **completion** — every shard manifest finalized ``complete``; a
  manifest still ``running`` (host died mid-sweep, or an armed
  ``shard_loss`` fault) or absent is reported as a lost shard;
* **ownership** — every cell a shard claims hashes to that shard, and
  no cell is claimed by two shards (``duplicate_shard`` faults and
  misconfigured hosts are caught here);
* **coverage** — all shards saw the same grid (same full key set);
* **results** — every cell's payload is present in the shared results
  cache and passes its checksummed-envelope validation.

Only then is the merged manifest (``runs/<run_id>.json``, status
``complete``) written, after which a figure rerun against the same
cache is satisfied entirely from validated entries — byte-identical to
a single-host run.  Failure paths are deterministically testable via
the ``shard_loss`` / ``duplicate_shard`` fault kinds in
:mod:`repro.faults`.  See docs/RESILIENCE.md § Sharded sweeps.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.manifest import MANIFEST_VERSION, RunManifest, runs_dir

#: ``<run_id>.shard-<index>-of-<count>.json`` manifest file names.
_SHARD_FILE_RE = re.compile(r"\.shard-(\d+)-of-(\d+)\.json$")


def parse_shard(text: str) -> tuple[int, int]:
    """Parse an ``I/N`` shard spec (``"0/2"`` → ``(0, 2)``)."""
    m = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not m:
        raise ValueError(f"bad shard spec {text!r} (expected I/N, "
                         "e.g. 0/2)")
    index, count = int(m.group(1)), int(m.group(2))
    validate_shard((index, count))
    return index, count


def validate_shard(shard: tuple[int, int]) -> tuple[int, int]:
    index, count = shard
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} out of range for "
                         f"{count} shard(s) (expected 0..{count - 1})")
    return index, count


def shard_of(key: str, count: int) -> int:
    """Owning shard of one cell, by pure hash of its cache key.

    Independent of grid enumeration order and of everything else —
    two supervisors that agree only on the shard count agree on the
    whole partition.
    """
    h = hashlib.sha256(f"shard|{key}".encode("utf-8")).digest()
    return int.from_bytes(h[:8], "big") % count


def shard_suffix(shard: tuple[int, int]) -> str:
    """Filename infix naming one shard (``"shard-0-of-2"``)."""
    index, count = shard
    return f"shard-{index}-of-{count}"


def shard_site(run_id: str, shard: tuple[int, int]) -> str:
    """Fault-injection site for one shard of one run: pure in
    (run_id, index, count), so a fault plan makes the same
    lost/duplicate decision on every host and every resume."""
    return f"shard:{run_id}:{shard[0]}/{shard[1]}"


# -- merge ------------------------------------------------------------------

class ShardMergeError(RuntimeError):
    """The shard set cannot be stitched; ``problems`` lists every
    reason at once (missing shards, incomplete shards, ownership
    violations, corrupt cache entries) so one merge attempt reports
    the full repair list."""

    def __init__(self, run_id: str, problems: list[str]):
        super().__init__(
            f"cannot merge run {run_id}: {len(problems)} problem(s)")
        self.run_id = run_id
        self.problems = problems


@dataclass
class ShardMergeReport:
    """Outcome of a successful merge."""

    run_id: str
    count: int                          # shard count N
    cells: int                          # unique cells stitched
    manifest_path: Path                 # merged runs/<run_id>.json
    per_shard: list[dict] = field(default_factory=list)
    events_merged: int = 0              # telemetry records folded in

    def summary(self) -> str:
        parts = ", ".join(f"shard {s['index']}: {s['cells']} cells"
                          for s in self.per_shard)
        return (f"merged {self.count} shard(s), {self.cells} unique "
                f"cells ({parts})")


def list_shard_manifests(run_id: str, directory: Path | None = None
                         ) -> list[tuple[Path, int, int]]:
    """``(path, index, count)`` for every shard manifest of ``run_id``,
    sorted by index.  Tolerates files vanishing under a concurrent
    prune."""
    d = directory or runs_dir()
    out = []
    if not d.is_dir():
        return out
    for p in sorted(d.glob(f"{run_id}.shard-*.json")):
        m = _SHARD_FILE_RE.search(p.name)
        if m is None or p.name[:-len(m.group(0))] != run_id:
            continue
        out.append((p, int(m.group(1)), int(m.group(2))))
    out.sort(key=lambda e: (e[2], e[1]))
    return out


def _load_manifest_data(path: Path) -> dict | None:
    """Parse one shard manifest; None when vanished or unreadable."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    if data.get("version") != MANIFEST_VERSION:
        return None
    return data


def merge_shards(run_id: str, directory: Path | None = None,
                 cache=None, telemetry_dir=None) -> ShardMergeReport:
    """Validate and stitch the shard manifests of one run.

    Raises :class:`FileNotFoundError` when no shard manifests exist,
    :class:`ShardMergeError` (with the full problem list) when the
    shard set is inconsistent, incomplete, overlapping, or any cell's
    cached result fails envelope validation.  On success, writes the
    merged ``runs/<run_id>.json`` manifest and — when
    ``telemetry_dir`` is given — folds per-shard event logs into the
    main ``events-<run_id>.jsonl``, appending one ``shard_merged``
    event per shard.
    """
    d = directory or runs_dir()
    entries = list_shard_manifests(run_id, d)
    if not entries:
        raise FileNotFoundError(
            f"no shard manifests for run {run_id!r} in {d}")

    problems: list[str] = []
    counts = sorted({count for _, _, count in entries})
    if len(counts) > 1:
        problems.append(
            "shard counts disagree: manifests claim "
            + ", ".join(f"N={c}" for c in counts)
            + " — every host must run the same --shard I/N count")
    count = counts[-1]

    seen: dict[int, Path] = {}
    shards: list[tuple[int, dict]] = []
    for path, index, n in entries:
        if n != count:
            continue                    # already reported above
        if index in seen:
            problems.append(f"shard {index}: duplicate manifests "
                            f"({seen[index].name}, {path.name})")
            continue
        seen[index] = path
        data = _load_manifest_data(path)
        if data is None:
            problems.append(f"shard {index}: manifest {path.name} "
                            "unreadable or vanished")
            continue
        shards.append((index, data))

    for index in sorted(set(range(count)) - set(seen)):
        problems.append(f"shard {index}: manifest missing — shard "
                        "never ran, or its host was lost before "
                        "writing (re-run with "
                        f"--shard {index}/{count} --resume {run_id})")

    owned: dict[str, tuple[int, dict]] = {}     # key -> (shard, cell)
    key_sets: dict[int, frozenset] = {}
    for index, data in shards:
        status = data.get("status")
        if status != "complete":
            problems.append(
                f"shard {index}: status {status!r} — lost or "
                f"incomplete (re-run with --shard {index}/{count} "
                f"--resume {run_id})")
            continue
        cells = data.get("cells", {})
        key_sets[index] = frozenset(cells)
        for key, cell in cells.items():
            if cell.get("status") == "elsewhere":
                continue
            owner = shard_of(key, count)
            if owner != index:
                problems.append(
                    f"shard {index}: claims cell "
                    f"{cell.get('label', key[:12])} owned by shard "
                    f"{owner} (duplicate/overlapping shard work)")
                continue
            if cell.get("status") != "done":
                problems.append(
                    f"shard {index}: cell "
                    f"{cell.get('label', key[:12])} status "
                    f"{cell.get('status')!r} (not done)")
                continue
            if key in owned:
                problems.append(
                    f"cell {cell.get('label', key[:12])} claimed by "
                    f"shards {owned[key][0]} and {index}")
                continue
            owned[key] = (index, cell)

    # Every complete shard must have seen the same grid: a disagreement
    # means the hosts ran different figures (or tiers/lengths) under
    # one run id, and the "merged" result would be a chimera.
    if len(set(key_sets.values())) > 1:
        sizes = ", ".join(f"shard {i}: {len(ks)} cells"
                          for i, ks in sorted(key_sets.items()))
        problems.append(f"shards disagree on the grid ({sizes}) — "
                        "all hosts must run the same figure command")

    if cache is None:
        from repro.experiments import results_cache as rc
        cache = rc.ResultsCache(sweep_stale=False)
    if not problems:
        for key, (index, cell) in sorted(owned.items()):
            if cache.get(key) is None:
                problems.append(
                    f"cell {cell.get('label', key[:12])} (shard "
                    f"{index}): cached result missing or corrupt — "
                    "the shared results cache must hold every "
                    "shard's validated entries")

    if problems:
        raise ShardMergeError(run_id, problems)

    merged = RunManifest(run_id, RunManifest._path_for(run_id, d))
    for key, (index, cell) in owned.items():
        merged.cells[key] = dict(cell, shard=index)
    merged.data["shard_count"] = count
    merged.data["merged_from"] = [seen[i].name
                                  for i, _ in sorted(shards)]
    merged.data["status"] = "complete"
    merged.save()

    per_shard = [{"index": index,
                  "cells": sum(1 for k, (i, _) in owned.items()
                               if i == index)}
                 for index, _ in sorted(shards)]
    report = ShardMergeReport(run_id=run_id, count=count,
                              cells=len(owned),
                              manifest_path=merged.path,
                              per_shard=per_shard)
    if telemetry_dir is not None:
        report.events_merged = _merge_telemetry(
            telemetry_dir, run_id, count, per_shard)
    return report


def _merge_telemetry(telemetry_dir, run_id: str, count: int,
                     per_shard: list[dict]) -> int:
    """Fold per-shard event logs into the main run log and stamp one
    ``shard_merged`` event per shard; returns records merged."""
    from repro.telemetry import events as tele_events
    merged = tele_events.merge_shard_logs(telemetry_dir, run_id)
    log = tele_events.EventLog(telemetry_dir, run_id)
    try:
        for s in per_shard:
            log.emit("shard_merged", shard=s["index"],
                     shard_count=count, cells=s["cells"])
    finally:
        log.close()
    return merged


# -- watch: poll until a shard set is whole ---------------------------------

def shards_status(run_id: str, directory: Path | None = None
                  ) -> tuple[bool, str]:
    """Whether every shard of ``run_id`` has reported complete.

    Returns ``(ready, summary)``: ``ready`` is True exactly when a
    consistent shard set exists (all manifests agree on ``N``, every
    index ``0..N-1`` present, every manifest finalized ``complete``) —
    the precondition :func:`merge_shards` validates in full.  The
    summary names what is still missing, for progress display.
    """
    entries = list_shard_manifests(run_id, directory)
    if not entries:
        return False, "no shard manifests yet"
    counts = sorted({count for _, _, count in entries})
    if len(counts) > 1:
        return False, ("shard counts disagree ("
                       + ", ".join(f"N={c}" for c in counts) + ")")
    count = counts[0]
    status: dict[int, str] = {}
    for path, index, _ in entries:
        data = _load_manifest_data(path)
        status[index] = (data or {}).get("status", "unreadable")
    missing = sorted(set(range(count)) - set(status))
    incomplete = sorted(i for i, s in status.items() if s != "complete")
    if not missing and not incomplete:
        return True, f"all {count} shard(s) complete"
    parts = [f"{len(status)}/{count} shard manifest(s) present"]
    if missing:
        parts.append("missing: " + ", ".join(map(str, missing)))
    if incomplete:
        parts.append("incomplete: "
                     + ", ".join(f"{i} ({status[i]})"
                                 for i in incomplete))
    return False, "; ".join(parts)


def wait_for_shards(run_id: str, directory: Path | None = None,
                    poll: float = 2.0, timeout: float | None = None,
                    on_poll=None) -> str:
    """Block until every shard of ``run_id`` reports complete.

    Polls :func:`shards_status` every ``poll`` seconds (the merge's
    ``--watch`` mode, and the wait step of a :mod:`repro.service`
    merge job).  ``on_poll(ready, summary)`` is invoked after each
    probe for progress display.  Returns the final summary; raises
    :class:`TimeoutError` when ``timeout`` seconds elapse first —
    carrying the last summary, so the caller can print exactly which
    shard never arrived.
    """
    import time as _time
    deadline = None if timeout is None else _time.monotonic() + timeout
    while True:
        ready, summary = shards_status(run_id, directory)
        if on_poll is not None:
            on_poll(ready, summary)
        if ready:
            return summary
        if deadline is not None and _time.monotonic() >= deadline:
            raise TimeoutError(
                f"shards of run {run_id} not complete after "
                f"{timeout:g}s ({summary})")
        _time.sleep(poll)


# -- ambient activation (CLI) ----------------------------------------------

_active_shard: tuple[int, int] | None = None


def activate_shard(shard: tuple[int, int] | None) -> None:
    """Install the process-wide shard for subsequent ``run_grid`` calls
    (the CLI's ``--shard`` sets this; figure functions stay unchanged)."""
    global _active_shard
    _active_shard = validate_shard(shard) if shard is not None else None


def active_shard() -> tuple[int, int] | None:
    return _active_shard
