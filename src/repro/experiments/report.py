"""Plain-text rendering of experiment results, matching the rows/series
of the paper's tables and figures."""

from __future__ import annotations

def _fmt_pct(x: float) -> str:
    return f"{100 * x:6.1f}%"


def table(headers: list[str], rows: list[list], title: str = "") -> str:
    cols = [[str(h)] + [f"{r[i]:.2f}" if isinstance(r[i], float)
                        else str(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r_i in range(len(rows)):
        lines.append("  ".join(cols[c_i][r_i + 1].ljust(widths[c_i])
                               for c_i in range(len(headers))))
    return "\n".join(lines)


def render_fig2(res) -> str:
    rows = [[w, l1, l2, llc] for w, l1, l2, llc in
            zip(res.workloads, res.l1d, res.l2c, res.llc)]
    a1, a2, a3 = res.averages
    rows.append(["AVERAGE", a1, a2, a3])
    return table(["workload", "L1D MPKI", "L2C MPKI", "LLC MPKI"], rows,
                 "Fig. 2 — baseline MPKI across the cache hierarchy")


def render_fig3(res) -> str:
    rows = [[lbl, f"{100 * p:.1f}%" if p == p else "n/a", c]
            for lbl, p, c in zip(res.labels, res.dram_probability,
                                 res.access_counts)]
    return table(["stride bucket (blocks)", "P(DRAM)", "accesses"], rows,
                 f"Fig. 3 — DRAM probability by PC-local stride "
                 f"({res.workload})")


def render_fig7(res) -> str:
    variants = list(res.speedups)
    rows = []
    for i, w in enumerate(res.workloads):
        rows.append([w] + [_fmt_pct(res.speedups[v][i]) for v in variants])
    rows.append(["GEOMEAN"] + [_fmt_pct(res.geomean(v)) for v in variants])
    return table(["workload"] + variants, rows,
                 "Fig. 7 — single-core speedup over Baseline")


def render_mpki_compare(res, caches, title) -> str:
    rows = []
    for i, w in enumerate(res.workloads):
        row = [w]
        for c in caches:
            row += [res.baseline[c][i], res.sdc_lp[c][i]]
        rows.append(row)
    avg = ["AVERAGE"]
    for c in caches:
        avg += [res.average("baseline", c), res.average("sdc_lp", c)]
    rows.append(avg)
    headers = ["workload"]
    for c in caches:
        headers += [f"{c} base", f"{c} sdc+lp"]
    return table(headers, rows, title)


def render_fig10(res) -> str:
    rows = [[f"{s:g} KiB", m, _fmt_pct(sp)] for s, m, sp in
            zip(res.sizes_kib, res.sdc_mpki, res.speedup_geomean)]
    return table(["SDC size", "SDC MPKI (avg)", "speedup (gmean)"], rows,
                 "Fig. 10 — SDC size exploration")


def render_sweep(res, xlabel) -> str:
    rows = [[p, _fmt_pct(s)] for p, s in zip(res.points,
                                             res.speedup_geomean)]
    return table([xlabel, "speedup (gmean)"], rows, res.label)


def render_tau_sweep(res) -> str:
    rows = [[t, _fmt_pct(g), _fmt_pct(r)] for t, g, r in
            zip(res.taus, res.gap_speedup, res.regular_speedup)]
    return table(["tau_glob", "GAP speedup", "regular speedup"], rows,
                 "§V-B3 — global threshold sweep")


def render_fig13(res) -> str:
    rows = [[w, _fmt_pct(s), _fmt_pct(e)] for w, s, e in
            zip(res.workloads, res.sdc_lp, res.expert)]
    gs, ge = res.geomeans()
    rows.append(["GEOMEAN", _fmt_pct(gs), _fmt_pct(ge)])
    return table(["workload", "SDC+LP", "Expert Programmer"], rows,
                 "Fig. 13 — SDC+LP vs Expert Programmer")


def render_fig14(res) -> str:
    variants = list(res.weighted_speedup)
    rows = []
    for i, m in enumerate(res.mixes):
        rows.append([m[:48]] + [_fmt_pct(res.weighted_speedup[v][i])
                                for v in variants])
    rows.append(["GEOMEAN"] + [_fmt_pct(res.geomean(v)) for v in variants])
    return table(["mix"] + variants, rows,
                 "Fig. 14 — multi-core weighted speedup over Baseline")


def render_ablation(res) -> str:
    labels = list(res.speedups)
    rows = []
    for i, w in enumerate(res.workloads):
        rows.append([w] + [_fmt_pct(res.speedups[v][i]) for v in labels])
    gm = res.geomeans()
    rows.append(["GEOMEAN"] + [_fmt_pct(gm[v]) for v in labels])
    return table(["workload"] + labels, rows,
                 "Ablation — decomposing the SDC+LP benefit")


def render_policy_study(res) -> str:
    rows = [[p, _fmt_pct(s)] for p, s in zip(res.policies,
                                             res.speedup_geomean)]
    return table(["LLC replacement", "speedup vs LRU"], rows,
                 "§VI study — LLC replacement policies on graph "
                 "workloads")


def render_prefetcher_study(res) -> str:
    rows = [[p, _fmt_pct(b), _fmt_pct(s)] for p, b, s in
            zip(res.l1_prefetchers, res.speedup_geomean,
                res.sdc_lp_speedup)]
    return table(["L1/SDC prefetcher", "baseline", "SDC+LP"], rows,
                 "§VI study — prefetching, alone and combined with "
                 "SDC+LP (vs no-prefetch baseline)")


def render_preprocessing_study(res) -> str:
    rows = [[o, _fmt_pct(s), f"{c:8.1f}x"] for o, s, c in
            zip(res.orderings, res.speedup, res.cost_ratio)]
    out = table(["ordering", "baseline speedup", "preprocess cost "
                 "(vs one traversal)"], rows,
                "§VI study — graph reordering vs SDC+LP")
    out += (f"\nSDC+LP on the original ordering: "
            f"{_fmt_pct(res.sdc_lp_original)} (zero preprocessing)")
    return out


def render_context_switch_study(res) -> str:
    rows = [["never" if i == 0 else f"every {i:,}", _fmt_pct(s)]
            for i, s in zip(res.intervals, res.speedup_geomean)]
    return table(["SDC/LP flush", "SDC+LP speedup"], rows,
                 "§III-E study — context-switch flushing "
                 "(VIPT = never flush)")


def render_energy_study(res) -> str:
    rows = []
    for i, w in enumerate(res.workloads):
        saving = (res.baseline_onchip_mj[i] / res.sdc_lp_onchip_mj[i] - 1
                  if res.sdc_lp_onchip_mj[i] else 0.0)
        rows.append([w, f"{res.baseline_epki[i]:.2f}",
                     f"{res.sdc_lp_epki[i]:.2f}", _fmt_pct(saving)])
    rows.append(["GEOMEAN", "", "",
                 _fmt_pct(res.onchip_saving_geomean())])
    return table(["workload", "base EPKI (uJ)", "SDC+LP EPKI (uJ)",
                  "on-chip saving"], rows,
                 "§V-E study — dynamic energy, Baseline vs SDC+LP")


def render_table2(rows) -> str:
    return table(["kernel", "irregData", "style", "frontier", "weighted"],
                 [[r["name"], r["irreg_elem_bytes"], r["execution_style"],
                   "Yes" if r["uses_frontier"] else "No",
                   "Yes" if r["weighted_input"] else "No"] for r in rows],
                 "Table II — graph kernels")


def render_table3(rows) -> str:
    return table(["graph", "kind", "vertices", "edges",
                  "paper |V| (M)", "paper |E| (M)"],
                 [[r["name"], r["kind"], r["vertices"], r["edges"],
                   r["paper_vertices_m"], r["paper_edges_m"]]
                  for r in rows],
                 "Table III — input graphs (scaled surrogates)")
