"""Experiment harness: the 36 workloads, runners, and one entry point per
paper table/figure (see DESIGN.md §4 for the experiment index)."""

from repro.experiments.workloads import (WORKLOADS, Workload,
                                         multicore_mixes, workload_trace)
from repro.experiments.runner import run_variant, run_workload

__all__ = [
    "WORKLOADS",
    "Workload",
    "workload_trace",
    "multicore_mixes",
    "run_workload",
    "run_variant",
]
