"""One entry point per paper table and figure (DESIGN.md §4).

Every function returns a plain result object with the series the paper
plots, plus a ``format()``-style text rendering via
:mod:`repro.experiments.report`.  Absolute numbers come from our
substituted substrate; the claims being reproduced are the *shapes*:
orderings, ratios and crossovers (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import LPConfig, SystemConfig
from repro.experiments.parallel import EXPERT_BEST, Job, run_grid
from repro.experiments.runner import (GEOMEAN_CLAMP, default_config,
                                      run_variant, speedup)
from repro.experiments.workloads import (DEFAULT_TIER, DEFAULT_TRACE_LEN,
                                         WORKLOADS, Workload,
                                         multicore_mixes, workload_trace)
from repro.mem.hierarchy import DRAM


def _workload_list(workloads) -> list[Workload]:
    if workloads is None:
        return list(WORKLOADS)
    out = []
    for wl in workloads:
        if isinstance(wl, str):
            kernel, graph = wl.split(".", 1)
            wl = Workload(kernel, graph)
        out.append(wl)
    return out


def geomean(values: list[float]) -> float:
    """Geometric mean of (1 + x) ratios, reported as a fraction."""
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(GEOMEAN_CLAMP, 1.0 + v))
                        for v in values) / len(values)) - 1.0


# ---------------------------------------------------------------------------
# Fig. 2 — baseline MPKI across the hierarchy.
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    workloads: list[str]
    l1d: list[float]
    l2c: list[float]
    llc: list[float]

    @property
    def averages(self) -> tuple[float, float, float]:
        return (float(np.mean(self.l1d)), float(np.mean(self.l2c)),
                float(np.mean(self.llc)))


def fig2_mpki(workloads=None, config: SystemConfig | None = None,
              tier: str = DEFAULT_TIER, length: int = DEFAULT_TRACE_LEN,
              jobs: int = 1, use_cache: bool = True,
              progress=None, policy=None,
              run_id=None) -> Fig2Result:
    """Baseline L1D/L2C/LLC MPKI per workload (paper Fig. 2)."""
    cfg = config or default_config()
    wls = _workload_list(workloads)
    grid = [Job(wl, "baseline", cfg, tier, length) for wl in wls]
    stats_list = run_grid(grid, jobs=jobs, use_cache=use_cache,
                          progress=progress, policy=policy,
                          run_id=run_id)
    res = Fig2Result([], [], [], [])
    for wl, stats in zip(wls, stats_list):
        res.workloads.append(wl.name)
        res.l1d.append(stats.mpki("l1d"))
        res.l2c.append(stats.mpki("l2c"))
        res.llc.append(stats.mpki("llc"))
    return res


# ---------------------------------------------------------------------------
# Fig. 3 — P(DRAM) by PC-local stride bucket.
# ---------------------------------------------------------------------------

STRIDE_BUCKETS = ((0, 0), (1, 1), (2, 10), (11, 100), (101, 1000),
                  (1001, 10_000), (10_001, 100_000), (100_001, 1_000_000),
                  (1_000_001, None))

BUCKET_LABELS = ("0", "1", "(10^0,10^1]", "(10^1,10^2]", "(10^2,10^3]",
                 "(10^3,10^4]", "(10^4,10^5]", "(10^5,10^6]", ">10^6")


@dataclass
class Fig3Result:
    workload: str
    labels: list[str]
    dram_probability: list[float]    # NaN for empty buckets
    access_counts: list[int]


def pc_local_strides(trace) -> np.ndarray:
    """|block stride| w.r.t. the previous access by the same PC
    (-1 for the first access of each PC)."""
    pcs = trace.accesses["pc"].astype(np.int64)
    blocks = trace.block_addrs()
    n = len(pcs)
    order = np.lexsort((np.arange(n), pcs))
    sp, sb = pcs[order], blocks[order]
    strides = np.full(n, -1, dtype=np.int64)
    same = sp[1:] == sp[:-1]
    strides[order[1:][same]] = np.abs(sb[1:] - sb[:-1])[same]
    return strides


def fig3_stride_dram(workload: str = "cc.friendster",
                     config: SystemConfig | None = None,
                     tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN) -> Fig3Result:
    """Probability of an access being DRAM-served per stride bucket
    (paper Fig. 3, characterized on cc.friendster)."""
    cfg = config or default_config()
    trace = workload_trace(workload, tier=tier, length=length)
    stats = run_variant(trace, "baseline", cfg, record_levels=True)
    strides = pc_local_strides(trace)
    is_dram = stats.levels == DRAM

    probs, counts = [], []
    valid = strides >= 0
    for lo, hi in STRIDE_BUCKETS:
        sel = valid & (strides >= lo)
        if hi is not None:
            sel &= strides <= hi
        total = int(sel.sum())
        counts.append(total)
        probs.append(float(is_dram[sel].mean()) if total else float("nan"))
    return Fig3Result(workload, list(BUCKET_LABELS), probs, counts)


# ---------------------------------------------------------------------------
# Fig. 7 — single-core speedups of all designs over Baseline.
# ---------------------------------------------------------------------------

SINGLE_CORE_VARIANTS = ("l1iso", "distill", "topt", "llc2x", "sdc_lp")


@dataclass
class Fig7Result:
    workloads: list[str]
    speedups: dict[str, list[float]]          # variant -> per-workload
    baseline_cycles: list[float] = field(default_factory=list)

    def geomean(self, variant: str) -> float:
        return geomean(self.speedups[variant])

    def geomeans(self) -> dict[str, float]:
        return {v: self.geomean(v) for v in self.speedups}


def fig7_single_core(workloads=None, variants=SINGLE_CORE_VARIANTS,
                     config: SystemConfig | None = None,
                     tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                     use_cache: bool = True, progress=None, policy=None,
                     run_id=None) -> Fig7Result:
    """Speedup of each design over Baseline, per workload (paper Fig. 7)."""
    cfg = config or default_config()
    wls = _workload_list(workloads)
    all_variants = ("baseline",) + tuple(variants)
    grid = [Job(wl, v, cfg, tier, length)
            for wl in wls for v in all_variants]
    results = iter(run_grid(grid, jobs=jobs, use_cache=use_cache,
                            progress=progress, policy=policy,
                            run_id=run_id))
    res = Fig7Result([w.name for w in wls], {v: [] for v in variants})
    for wl in wls:
        base = next(results)
        res.baseline_cycles.append(base.cycles)
        for v in variants:
            res.speedups[v].append(speedup(base, next(results)))
    return res


# ---------------------------------------------------------------------------
# Fig. 8 / Fig. 9 — MPKI deltas between Baseline and SDC+LP.
# ---------------------------------------------------------------------------

@dataclass
class MPKICompareResult:
    workloads: list[str]
    baseline: dict[str, list[float]]     # cache -> per-workload MPKI
    sdc_lp: dict[str, list[float]]

    def average(self, design: str, cache: str) -> float:
        vals = getattr(self, design)[cache]
        return float(np.mean(vals)) if vals else 0.0


def fig8_l2_llc_mpki(workloads=None, config: SystemConfig | None = None,
                     tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                     use_cache: bool = True,
                     progress=None, policy=None,
                     run_id=None) -> MPKICompareResult:
    """L2C and LLC MPKI, Baseline vs SDC+LP (paper Fig. 8)."""
    return _mpki_compare(("l2c", "llc"), workloads, config, tier, length,
                         jobs, use_cache, progress, policy, run_id)


def fig9_l1_sdc_mpki(workloads=None, config: SystemConfig | None = None,
                     tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                     use_cache: bool = True,
                     progress=None, policy=None,
                     run_id=None) -> MPKICompareResult:
    """L1D (and SDC) MPKI, Baseline vs SDC+LP (paper Fig. 9)."""
    return _mpki_compare(("l1d", "sdc"), workloads, config, tier, length,
                         jobs, use_cache, progress, policy, run_id)


def _mpki_compare(caches, workloads, config, tier, length, jobs=1,
                  use_cache=True, progress=None, policy=None,
                  run_id=None) -> MPKICompareResult:
    cfg = config or default_config()
    wls = _workload_list(workloads)
    grid = [Job(wl, v, cfg, tier, length)
            for wl in wls for v in ("baseline", "sdc_lp")]
    results = iter(run_grid(grid, jobs=jobs, use_cache=use_cache,
                            progress=progress, policy=policy,
                            run_id=run_id))
    res = MPKICompareResult([w.name for w in wls],
                            {c: [] for c in caches},
                            {c: [] for c in caches})
    for _ in wls:
        base = next(results)
        prop = next(results)
        for c in caches:
            res.baseline[c].append(base.mpki(c))
            res.sdc_lp[c].append(prop.mpki(c))
    return res


# ---------------------------------------------------------------------------
# Fig. 10 — SDC size sweep.
# ---------------------------------------------------------------------------

# (relative size multiplier, ways, latency) — paper §V-B1.
SDC_SIZE_POINTS = ((1, 2, 1), (2, 4, 3), (4, 8, 4))


@dataclass
class Fig10Result:
    sizes_kib: list[float]
    sdc_mpki: list[float]              # average across workloads
    speedup_geomean: list[float]


def fig10_sdc_size(workloads=None, config: SystemConfig | None = None,
                   tier: str = DEFAULT_TIER,
                   length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                   use_cache: bool = True, progress=None, policy=None,
                   run_id=None) -> Fig10Result:
    """SDC MPKI and speedup for 8/16/32 KiB-class SDCs (paper Fig. 10)."""
    cfg = config or default_config()
    wls = _workload_list(workloads)
    # The baseline variant never instantiates the SDC, so one baseline
    # per workload (keyed on the base config) serves every size point.
    grid = [Job(wl, "baseline", cfg, tier, length) for wl in wls]
    point_cfgs = []
    for mult, ways, lat in SDC_SIZE_POINTS:
        sdc = cfg.sdc.resized(cfg.sdc.size_bytes * mult, ways=ways,
                              latency=lat)
        point_cfgs.append(dataclasses.replace(cfg, sdc=sdc))
        grid.extend(Job(wl, "sdc_lp", point_cfgs[-1], tier, length)
                    for wl in wls)
    results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                       progress=progress, policy=policy, run_id=run_id)
    n = len(wls)
    bases = results[:n]
    res = Fig10Result([], [], [])
    for i, cfg_i in enumerate(point_cfgs):
        chunk = results[n * (i + 1):n * (i + 2)]
        res.sizes_kib.append(cfg_i.sdc.size_bytes / 1024)
        res.sdc_mpki.append(float(np.mean([s.mpki("sdc") for s in chunk])))
        res.speedup_geomean.append(geomean([speedup(b, s)
                                            for b, s in zip(bases, chunk)]))
    return res


# ---------------------------------------------------------------------------
# Fig. 11 / Fig. 12 — LP geometry sweeps.
# ---------------------------------------------------------------------------

@dataclass
class SweepResult:
    points: list[int | float]
    speedup_geomean: list[float]
    label: str = ""


def _lp_sweep(lp_configs: list[LPConfig], points, label, workloads, config,
              tier, length, jobs=1, use_cache=True,
              progress=None, policy=None,
              run_id=None) -> SweepResult:
    cfg = config or default_config()
    wls = _workload_list(workloads)
    # The baseline variant never consults the LP, so one baseline per
    # workload (keyed on the base config) serves every sweep point.
    grid = [Job(wl, "baseline", cfg, tier, length) for wl in wls]
    for lp in lp_configs:
        cfg_i = dataclasses.replace(cfg, lp=lp)
        grid.extend(Job(wl, "sdc_lp", cfg_i, tier, length) for wl in wls)
    results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                       progress=progress, policy=policy, run_id=run_id)
    n = len(wls)
    bases = results[:n]
    res = SweepResult(list(points), [], label)
    for i in range(len(lp_configs)):
        chunk = results[n * (i + 1):n * (i + 2)]
        res.speedup_geomean.append(geomean([speedup(b, s)
                                            for b, s in zip(bases, chunk)]))
    return res


def fig11_lp_entries(workloads=None, config: SystemConfig | None = None,
                     entries=(8, 16, 32, 64), tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                     use_cache: bool = True, progress=None, policy=None,
                     run_id=None) -> SweepResult:
    """Fully-associative LP tables of 8..64 entries (paper Fig. 11)."""
    base_lp = (config or default_config()).lp
    lps = [dataclasses.replace(base_lp, entries=e, ways=e) for e in entries]
    return _lp_sweep(lps, entries, "LP entries (fully assoc.)", workloads,
                     config, tier, length, jobs, use_cache, progress,
                     policy, run_id)


def fig12_lp_assoc(workloads=None, config: SystemConfig | None = None,
                   ways=(1, 2, 8, 32), tier: str = DEFAULT_TIER,
                   length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                   use_cache: bool = True, progress=None, policy=None,
                   run_id=None) -> SweepResult:
    """32-entry LP at different associativities (paper Fig. 12)."""
    base_lp = (config or default_config()).lp
    lps = [dataclasses.replace(base_lp, entries=32, ways=w) for w in ways]
    return _lp_sweep(lps, ways, "LP associativity (32 entries)", workloads,
                     config, tier, length, jobs, use_cache, progress,
                     policy, run_id)


# ---------------------------------------------------------------------------
# §V-B3 — global threshold sweep (GAP + SPEC surrogate).
# ---------------------------------------------------------------------------

@dataclass
class TauSweepResult:
    taus: list[int]
    gap_speedup: list[float]
    regular_speedup: list[float]


def tau_sweep(workloads=None, config: SystemConfig | None = None,
              taus=(0, 2, 4, 8, 16, 64, 256), tier: str = DEFAULT_TIER,
              length: int = DEFAULT_TRACE_LEN, regular_len: int = 100_000,
              jobs: int = 1, use_cache: bool = True,
              progress=None, policy=None,
              run_id=None) -> TauSweepResult:
    """Speedup vs τ_glob on graph and regular workloads (paper §V-B3)."""
    from repro.trace.synthetic import regular_suite
    cfg = config or default_config()
    wls = _workload_list(workloads)
    # Size the hot set to the simulated SDC so the regular suite is
    # genuinely cache-friendly at this scale (see synthetic.py).
    regular = list(regular_suite(
        regular_len, hot_ws_kib=max(1, cfg.sdc.size_bytes // 2048))
        .values())
    # Both baselines ignore the LP, so one per trace serves every τ.
    grid = [Job(wl, "baseline", cfg, tier, length) for wl in wls]
    grid += [Job(t, "baseline", cfg) for t in regular]
    for tau in taus:
        cfg_i = dataclasses.replace(
            cfg, lp=dataclasses.replace(cfg.lp, tau_glob=tau))
        grid += [Job(wl, "sdc_lp", cfg_i, tier, length) for wl in wls]
        grid += [Job(t, "sdc_lp", cfg_i) for t in regular]
    results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                       progress=progress, policy=policy, run_id=run_id)
    ng, nr = len(wls), len(regular)
    gap_base, reg_base = results[:ng], results[ng:ng + nr]
    res = TauSweepResult(list(taus), [], [])
    idx = ng + nr
    for _ in taus:
        gap = results[idx:idx + ng]
        reg = results[idx + ng:idx + ng + nr]
        idx += ng + nr
        res.gap_speedup.append(geomean([speedup(b, s)
                                        for b, s in zip(gap_base, gap)]))
        res.regular_speedup.append(geomean([speedup(b, s)
                                            for b, s in zip(reg_base, reg)]))
    return res


# ---------------------------------------------------------------------------
# Fig. 13 — SDC+LP vs the Expert Programmer.
# ---------------------------------------------------------------------------

@dataclass
class Fig13Result:
    workloads: list[str]
    sdc_lp: list[float]
    expert: list[float]

    def geomeans(self) -> tuple[float, float]:
        return geomean(self.sdc_lp), geomean(self.expert)


def fig13_expert(workloads=None, config: SystemConfig | None = None,
                 tier: str = DEFAULT_TIER,
                 length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                 use_cache: bool = True, progress=None, policy=None,
                 run_id=None) -> Fig13Result:
    """Speedups of SDC+LP and Expert Programmer over Baseline (Fig. 13).

    The expert cell is the :data:`~repro.experiments.parallel.EXPERT_BEST`
    pseudo-variant: region profiling + the expert run execute (and cache)
    as one unit of work.
    """
    cfg = config or default_config()
    wls = _workload_list(workloads)
    grid = [Job(wl, v, cfg, tier, length)
            for wl in wls for v in ("baseline", "sdc_lp", EXPERT_BEST)]
    results = iter(run_grid(grid, jobs=jobs, use_cache=use_cache,
                            progress=progress, policy=policy,
                            run_id=run_id))
    res = Fig13Result([w.name for w in wls], [], [])
    for _ in wls:
        base = next(results)
        res.sdc_lp.append(speedup(base, next(results)))
        res.expert.append(speedup(base, next(results)))
    return res


# ---------------------------------------------------------------------------
# Fig. 14 — multi-core weighted speedup.
# ---------------------------------------------------------------------------

MULTI_CORE_VARIANTS = ("l1iso", "distill", "topt", "llc2x", "sdc_lp")


@dataclass
class Fig14Result:
    mixes: list[str]
    weighted_speedup: dict[str, list[float]]   # variant -> per-mix

    def geomean(self, variant: str) -> float:
        return geomean(self.weighted_speedup[variant])

    def geomeans(self) -> dict[str, float]:
        return {v: self.geomean(v) for v in self.weighted_speedup}


def fig14_multicore(num_mixes: int = 50, cores: int = 4,
                    variants=MULTI_CORE_VARIANTS,
                    config: SystemConfig | None = None,
                    tier: str = DEFAULT_TIER,
                    length: int = DEFAULT_TRACE_LEN // 2,
                    seed: int = 42, jobs: int = 1, use_cache: bool = True,
                    progress=None, policy=None,
                    run_id=None) -> Fig14Result:
    """Weighted speedup of each design over Baseline on random 4-thread
    mixes (paper Fig. 14, §IV-D methodology)."""
    cfg = dataclasses.replace(config or default_config(), num_cores=cores)
    mixes = multicore_mixes(num_mixes, cores, seed)
    # IPC_single per workload per variant: isolated run on the same
    # system (full shared LLC available to the single thread).
    needed = sorted({wl.name for mix in mixes for wl in mix})
    single_cfg = dataclasses.replace(
        cfg, llc=cfg.llc.resized(cfg.llc.size_bytes * cores), num_cores=1)
    all_variants = ("baseline",) + tuple(variants)
    single_grid = [Job(name, v, single_cfg, tier, length)
                   for v in all_variants for name in needed]
    mix_grid = [Job(tuple(wl.name for wl in mix), v, cfg, tier, length)
                for mix in mixes for v in all_variants]
    results = iter(run_grid(single_grid + mix_grid, jobs=jobs,
                            use_cache=use_cache, progress=progress,
                            policy=policy, run_id=run_id))
    singles = {(v, name): next(results).ipc
               for v in all_variants for name in needed}

    res = Fig14Result([], {v: [] for v in variants})
    for mix in mixes:
        res.mixes.append("+".join(wl.name for wl in mix))
        per_variant = {v: next(results) for v in all_variants}
        base_ws = _weighted_ipc(mix, per_variant["baseline"], "baseline",
                                singles)
        for v in variants:
            ws = _weighted_ipc(mix, per_variant[v], v, singles)
            res.weighted_speedup[v].append(ws / base_ws - 1.0
                                           if base_ws else 0.0)
    return res


def _weighted_ipc(mix, result, variant, singles) -> float:
    total = 0.0
    for wl, stats in zip(mix, result.per_core):
        ipc_single = singles[(variant, wl.name)]
        total += stats.ipc / ipc_single if ipc_single else 0.0
    return total


# ---------------------------------------------------------------------------
# Ablations (beyond the paper's comparison set; DESIGN.md design choices).
# ---------------------------------------------------------------------------

ABLATION_VARIANTS = ("victim", "lp_bypass", "sdc_lp")


@dataclass
class AblationResult:
    workloads: list[str]
    speedups: dict[str, list[float]]     # variant/label -> per-workload

    def geomeans(self) -> dict[str, float]:
        return {v: geomean(sp) for v, sp in self.speedups.items()}


def ablation_study(workloads=None, config: SystemConfig | None = None,
                   tier: str = DEFAULT_TIER,
                   length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                   use_cache: bool = True, progress=None, policy=None,
                   run_id=None) -> AblationResult:
    """Decompose SDC+LP's benefit into its ingredients:

    * ``victim``      — iso-storage L1 victim cache: is 8 KiB of extra
      near-L1 storage enough by itself?  (No: victims have no reuse.)
    * ``lp_bypass``   — LP routing without the SDC: how much comes from
      skipping the useless L2C/LLC lookups alone?
    * ``sdc_lp``      — the full proposal.
    * ``sdc_lp/nodep`` — the full proposal on a trace with dependency
      links stripped: quantifies how much of the modelled benefit rides
      on pointer-chase serialization (DESIGN.md §5, substitution #1).
    """
    cfg = config or default_config()
    wls = _workload_list(workloads)
    labels = list(ABLATION_VARIANTS) + ["sdc_lp/nodep"]
    # Nodep cells run on derived in-memory traces (content-hashed by the
    # cache); the rest are plain workload-spec cells.
    grid = []
    for wl in wls:
        grid.append(Job(wl, "baseline", cfg, tier, length))
        grid.extend(Job(wl, v, cfg, tier, length)
                    for v in ABLATION_VARIANTS)
        nodep = Trace_without_deps(workload_trace(wl, tier=tier,
                                                  length=length))
        grid.append(Job(nodep, "baseline", cfg))
        grid.append(Job(nodep, "sdc_lp", cfg))
    results = iter(run_grid(grid, jobs=jobs, use_cache=use_cache,
                            progress=progress, policy=policy,
                            run_id=run_id))
    res = AblationResult([w.name for w in wls],
                         {v: [] for v in labels})
    for _ in wls:
        base = next(results)
        for v in ABLATION_VARIANTS:
            res.speedups[v].append(speedup(base, next(results)))
        nodep_base = next(results)
        nodep_prop = next(results)
        res.speedups["sdc_lp/nodep"].append(speedup(nodep_base,
                                                    nodep_prop))
    return res


def Trace_without_deps(trace):
    """Copy of a trace with all dependency links removed."""
    from repro.trace.record import Trace
    acc = trace.accesses.copy()
    acc["dep"] = -1
    return Trace(acc, trace.address_space, trace.name + ".nodep",
                 trace.kernel, trace.graph)


# ---------------------------------------------------------------------------
# Related-work studies (§VI claims, beyond the paper's own figures).
# ---------------------------------------------------------------------------

REPLACEMENT_POLICIES = ("lru", "srrip", "drrip", "ship", "topt")


@dataclass
class PolicyStudyResult:
    policies: list[str]
    speedup_geomean: list[float]     # vs the LRU LLC


def replacement_study(workloads=None, config: SystemConfig | None = None,
                      policies=REPLACEMENT_POLICIES,
                      tier: str = DEFAULT_TIER,
                      length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                      use_cache: bool = True,
                      progress=None, policy=None,
                      run_id=None) -> PolicyStudyResult:
    """§VI *Replacement Policies*: sophisticated LLC replacement
    (DRRIP, SHiP) barely helps graph workloads, while transpose-driven
    T-OPT does — cache bypassing beats smarter retention."""
    cfg = config or default_config()
    wls = _workload_list(workloads)
    sweep = [p for p in policies if p != "lru"]
    grid = [Job(wl, "baseline", cfg, tier, length) for wl in wls]
    for repl in sweep:
        if repl == "topt":
            grid.extend(Job(wl, "topt", cfg, tier, length) for wl in wls)
        else:
            cfg_i = dataclasses.replace(
                cfg, llc=dataclasses.replace(cfg.llc, replacement=repl))
            grid.extend(Job(wl, "baseline", cfg_i, tier, length)
                        for wl in wls)
    results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                       progress=progress, policy=policy, run_id=run_id)
    n = len(wls)
    bases = results[:n]
    chunks = {p: results[n * (i + 1):n * (i + 2)]
              for i, p in enumerate(sweep)}
    res = PolicyStudyResult(list(policies), [])
    for repl in policies:
        if repl == "lru":
            res.speedup_geomean.append(0.0)
            continue
        res.speedup_geomean.append(
            geomean([speedup(b, s)
                     for b, s in zip(bases, chunks[repl])]))
    return res


PREFETCHER_CONFIGS = ("none", "next_line", "stride", "spp")


@dataclass
class PrefetcherStudyResult:
    l1_prefetchers: list[str]
    speedup_geomean: list[float]         # baseline hierarchy, vs "none"
    sdc_lp_speedup: list[float]          # SDC+LP with that SDC prefetcher


def prefetcher_study(workloads=None, config: SystemConfig | None = None,
                     prefetchers=PREFETCHER_CONFIGS,
                     tier: str = DEFAULT_TIER,
                     length: int = DEFAULT_TRACE_LEN, jobs: int = 1,
                     use_cache: bool = True, progress=None,
                     policy=None, run_id=None) -> PrefetcherStudyResult:
    """§VI *Hardware Prefetching*: stride-class prefetchers cannot cover
    indirect graph accesses; and the paper's stated future work — SDC+LP
    *combined* with prefetching — implemented here by swapping the
    SDC/L1D prefetcher."""
    cfg = config or default_config()
    wls = _workload_list(workloads)
    none_cfg = _with_l1_prefetcher(cfg, None)
    # The "none" point's baseline cells dedup against this leading row.
    grid = [Job(wl, "baseline", none_cfg, tier, length) for wl in wls]
    for pf in prefetchers:
        cfg_i = _with_l1_prefetcher(cfg, None if pf == "none" else pf)
        grid.extend(Job(wl, "baseline", cfg_i, tier, length)
                    for wl in wls)
        grid.extend(Job(wl, "sdc_lp", cfg_i, tier, length) for wl in wls)
    results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                       progress=progress, policy=policy, run_id=run_id)
    n = len(wls)
    base_none = results[:n]
    res = PrefetcherStudyResult(list(prefetchers), [], [])
    idx = n
    for _ in prefetchers:
        base_i = results[idx:idx + n]
        sdc_i = results[idx + n:idx + 2 * n]
        idx += 2 * n
        res.speedup_geomean.append(
            geomean([speedup(b, s) for b, s in zip(base_none, base_i)]))
        res.sdc_lp_speedup.append(
            geomean([speedup(b, s) for b, s in zip(base_none, sdc_i)]))
    return res


def _with_l1_prefetcher(cfg: SystemConfig, name: str | None
                        ) -> SystemConfig:
    # The SDC's own prefetcher is next-line per Table I; it is only
    # meaningfully togglable on/off (the L1 prefetcher is what varies).
    sdc_pf = None if name is None else "next_line"
    return dataclasses.replace(
        cfg,
        l1d=dataclasses.replace(cfg.l1d, prefetcher=name),
        sdc=dataclasses.replace(cfg.sdc, prefetcher=sdc_pf))


@dataclass
class PreprocessingStudyResult:
    orderings: list[str]
    speedup: list[float]          # baseline run on reordered graph
    cost_ratio: list[float]       # preprocessing touches / trace length
    sdc_lp_original: float        # SDC+LP on the untouched graph


def preprocessing_study(kernel: str = "pr", graph_name: str = "kron",
                        config: SystemConfig | None = None,
                        orderings=("original", "random", "degree", "bfs",
                                   "rcm"),
                        tier: str = DEFAULT_TIER,
                        length: int = DEFAULT_TRACE_LEN
                        ) -> PreprocessingStudyResult:
    """§VI *Pre-Processing Algorithms*: locality-improving reordering
    helps the baseline but costs more memory touches than the traversal
    it accelerates, while SDC+LP gets its gains with zero preprocessing."""
    from repro.graphs.reorder import ORDERINGS, apply_order, estimated_cost
    from repro.graphs.suite import load_graph
    from repro.kernels.common import KERNEL_TABLE
    from repro.trace.kernels import generate_trace
    cfg = config or default_config()
    weighted = KERNEL_TABLE[kernel].weighted_input
    g0 = load_graph(graph_name, tier=tier, weighted=weighted)

    res = PreprocessingStudyResult([], [], [], 0.0)
    base_cycles = None
    for name in orderings:
        order = ORDERINGS[name](g0)
        g = g0 if name == "original" else apply_order(g0, order, name)
        trace = generate_trace(kernel, g, max_accesses=length * 3)
        if len(trace) > length:
            trace = trace.slice(len(trace) - length, len(trace))
        stats = run_variant(trace, "baseline", cfg)
        if name == "original":
            base_cycles = stats.cycles
            sdc_stats = run_variant(trace, "sdc_lp", cfg)
            res.sdc_lp_original = base_cycles / sdc_stats.cycles - 1.0
        res.orderings.append(name)
        res.speedup.append(base_cycles / stats.cycles - 1.0)
        res.cost_ratio.append(estimated_cost(name, g0) / max(1, length))
    return res


# ---------------------------------------------------------------------------
# §III-E — context switches: what the SDC's VIPT property is worth.
# ---------------------------------------------------------------------------

@dataclass
class ContextSwitchResult:
    intervals: list[int]             # accesses between switches (0 = never)
    speedup_geomean: list[float]     # SDC+LP speedup over baseline


def context_switch_study(workloads=None,
                         config: SystemConfig | None = None,
                         intervals=(0, 50_000, 10_000, 2_000),
                         tier: str = DEFAULT_TIER,
                         length: int = DEFAULT_TRACE_LEN
                         ) -> ContextSwitchResult:
    """§III-E: the SDC is VIPT, so context switches need no flush.

    This study runs SDC+LP while force-flushing the SDC + LP every N
    accesses (as a virtually-tagged design would have to).  Interval 0
    (never flush) is the paper's design point.  The measured shape is a
    *robustness* result: the structures are tiny (10 KB) and retrain
    within tens of accesses, so even absurdly frequent flushing leaves
    the speedup intact — flushing LP even helps slightly on workloads
    where τ_glob=8 over-routes to the SDC, because a cleared table
    predicts "regular" until strides re-accumulate.
    """
    cfg = config or default_config()
    wls = _workload_list(workloads)
    res = ContextSwitchResult(list(intervals), [])
    traces = [workload_trace(wl, tier=tier, length=length) for wl in wls]
    bases = [run_variant(t, "baseline", cfg) for t in traces]
    from repro.core.system import SingleCoreSystem
    for interval in intervals:
        sps = []
        for trace, base in zip(traces, bases):
            system = SingleCoreSystem(cfg, "sdc_lp")
            stats = system.run(trace,
                               flush_sdc_every=interval or None)
            sps.append(speedup(base, stats))
        res.speedup_geomean.append(geomean(sps))
    return res


# ---------------------------------------------------------------------------
# Energy comparison (§V-E extended with whole-system accounting).
# ---------------------------------------------------------------------------

@dataclass
class EnergyStudyResult:
    workloads: list[str]
    baseline_epki: list[float]         # µJ per kilo-instruction
    sdc_lp_epki: list[float]
    baseline_onchip_mj: list[float]
    sdc_lp_onchip_mj: list[float]

    def onchip_saving_geomean(self) -> float:
        vals = [b / s - 1.0 for b, s in zip(self.baseline_onchip_mj,
                                            self.sdc_lp_onchip_mj)
                if s > 0]
        return geomean(vals)


def energy_study(workloads=None, config: SystemConfig | None = None,
                 tier: str = DEFAULT_TIER,
                 length: int = DEFAULT_TRACE_LEN) -> EnergyStudyResult:
    """Dynamic energy of Baseline vs SDC+LP.

    SDC+LP replaces L2C+LLC lookups on cache-averse accesses with one
    1-cycle SDC probe, an LP consult and (on miss) a directory message —
    all of which §V-E shows to be tiny (0.010-0.034 nJ).  The study
    quantifies the resulting on-chip energy saving.
    """
    from repro.core.energy import energy_of, energy_per_kilo_instruction
    cfg = config or default_config()
    wls = _workload_list(workloads)
    res = EnergyStudyResult([], [], [], [], [])
    for wl in wls:
        trace = workload_trace(wl, tier=tier, length=length)
        base = run_variant(trace, "baseline", cfg)
        prop = run_variant(trace, "sdc_lp", cfg)
        res.workloads.append(wl.name)
        res.baseline_epki.append(energy_per_kilo_instruction(base))
        res.sdc_lp_epki.append(energy_per_kilo_instruction(prop))
        res.baseline_onchip_mj.append(energy_of(base).on_chip)
        res.sdc_lp_onchip_mj.append(energy_of(prop).on_chip)
    return res


# ---------------------------------------------------------------------------
# Tables.
# ---------------------------------------------------------------------------

def table2_kernels() -> list[dict]:
    from repro.kernels.common import KERNEL_TABLE
    return [dataclasses.asdict(info) for info in KERNEL_TABLE.values()]


def table3_graphs(tier: str = DEFAULT_TIER) -> list[dict]:
    from repro.graphs.suite import GRAPH_SUITE, load_graph
    rows = []
    for name, spec in GRAPH_SUITE.items():
        g = load_graph(name, tier=tier)
        rows.append({
            "name": name,
            "kind": spec.kind,
            "vertices": g.num_vertices,
            "edges": g.num_edges,
            "paper_vertices_m": spec.paper_vertices_m,
            "paper_edges_m": spec.paper_edges_m,
        })
    return rows
