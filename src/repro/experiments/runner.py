"""Run workloads under design variants, with caching of expert profiles."""

from __future__ import annotations

import math

from repro.config import SystemConfig, scaled_config
from repro.core.expert import expert_regions_for
from repro.core.system import SingleCoreSystem, SystemStats
from repro.experiments.workloads import (DEFAULT_TIER, DEFAULT_TRACE_LEN,
                                         Workload, workload_trace)
from repro.trace.record import Trace

DEFAULT_SCALE = 16
"""Cache-capacity divisor pairing with the DEFAULT_TIER graphs so that
the footprint/LLC ratio lands in the paper's regime (DESIGN.md §7)."""

GEOMEAN_CLAMP = 1e-12
"""Floor applied inside geometric means so degenerate ratios (zero or
negative cycle counts from pathological inputs) cannot poison the log;
shared with :func:`repro.experiments.figures.geomean`."""


def default_config(num_cores: int = 1) -> SystemConfig:
    return scaled_config(DEFAULT_SCALE, num_cores=num_cores)


def run_variant(trace: Trace, variant: str,
                config: SystemConfig | None = None,
                record_levels: bool = False,
                expert_regions: set[int] | None = None,
                telemetry_every: int | None = None,
                backend: str | None = None) -> SystemStats:
    """Simulate one trace under one variant.

    ``telemetry_every`` enables windowed metric sampling every N
    accesses (see :mod:`repro.telemetry`); the resulting timeline
    rides on ``SystemStats.timeline``.  ``backend`` selects the
    execution engine behind ``SingleCoreSystem.run`` (``"ref"`` /
    ``"batch"``; None defers to ``REPRO_BACKEND``).
    """
    cfg = config or default_config()
    if variant == "expert" and expert_regions is None:
        expert_regions = expert_regions_for(trace, cfg)
    system = SingleCoreSystem(cfg, variant=variant,
                              expert_regions=expert_regions,
                              telemetry_every=telemetry_every)
    return system.run(trace, record_levels=record_levels,
                      backend=backend)


def run_workload(wl: Workload | str, variant: str = "baseline",
                 config: SystemConfig | None = None,
                 tier: str = DEFAULT_TIER,
                 length: int = DEFAULT_TRACE_LEN,
                 record_levels: bool = False) -> SystemStats:
    """Trace + simulate one workload under one variant."""
    trace = workload_trace(wl, tier=tier, length=length)
    return run_variant(trace, variant, config=config,
                       record_levels=record_levels)


def speedup(baseline: SystemStats, other: SystemStats) -> float:
    """Relative performance improvement (positive = faster), as the
    paper reports it: cycles(baseline) / cycles(other) - 1."""
    if other.cycles == 0:
        return 0.0
    return baseline.cycles / other.cycles - 1.0


def geomean_speedup(pairs: list[tuple[SystemStats, SystemStats]]) -> float:
    """Geometric-mean speedup over (baseline, variant) result pairs."""
    if not pairs:
        return 0.0
    log_sum = sum(math.log(max(GEOMEAN_CLAMP,
                               b.cycles / max(GEOMEAN_CLAMP, v.cycles)))
                  for b, v in pairs)
    return math.exp(log_sum / len(pairs)) - 1.0
