"""Direction-optimizing Breadth-First Search (Beamer et al., GAP `bfs`).

Alternates between *push* (top-down: scan the frontier's out-edges) and
*pull* (bottom-up: every unvisited vertex scans its in-edges for a
visited parent) based on the classic frontier-size heuristics, which is
why Table II lists BFS as "Push & Pull".
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

# Direction-switch heuristics from the GAP implementation.
ALPHA = 15   # switch to pull when frontier edges > unexplored edges / ALPHA
BETA = 18    # switch back to push when frontier < n / BETA


def bfs(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Return the parent array of a BFS tree rooted at ``source``.

    ``parent[v] == -1`` marks unreachable vertices; ``parent[source] ==
    source``.
    """
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    degs = graph.out_degrees().astype(np.int64)
    edges_to_check = int(degs.sum())

    while len(frontier):
        scout = int(degs[frontier].sum())
        if scout > edges_to_check // ALPHA and len(frontier) > 1:
            frontier = _pull_steps(graph, parent, frontier, n)
        else:
            frontier = _push_step(graph, parent, frontier)
        edges_to_check -= scout
    return parent


def _push_step(graph: CSRGraph, parent: np.ndarray,
               frontier: np.ndarray) -> np.ndarray:
    """Top-down step: relax all out-edges of the frontier."""
    oa, na = graph.out_oa, graph.out_na
    starts, ends = oa[frontier], oa[frontier + 1]
    counts = (ends - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Gather all frontier out-neighbours with their would-be parents.
    idx = np.repeat(starts, counts) + _ragged_arange(counts)
    dsts = na[idx].astype(np.int64)
    srcs = np.repeat(frontier, counts)
    fresh = parent[dsts] == -1
    dsts, srcs = dsts[fresh], srcs[fresh]
    # First writer wins (deterministic: lowest edge index).
    uniq, first = np.unique(dsts, return_index=True)
    parent[uniq] = srcs[first]
    return uniq


def _pull_steps(graph: CSRGraph, parent: np.ndarray,
                frontier: np.ndarray, n: int) -> np.ndarray:
    """Bottom-up phase: run pull steps until the frontier shrinks."""
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[frontier] = True
    while True:
        next_frontier = _pull_step(graph, parent, in_frontier)
        if len(next_frontier) == 0:
            return next_frontier
        if len(next_frontier) < n // BETA:
            return next_frontier
        in_frontier[:] = False
        in_frontier[next_frontier] = True


def _pull_step(graph: CSRGraph, parent: np.ndarray,
               in_frontier: np.ndarray) -> np.ndarray:
    """Bottom-up step: each unvisited vertex looks for a frontier parent."""
    oa, na = graph.in_oa, graph.in_na
    unvisited = np.flatnonzero(parent == -1)
    if len(unvisited) == 0:
        return np.empty(0, dtype=np.int64)
    found = []
    for v in unvisited:
        neigh = na[oa[v]:oa[v + 1]]
        hits = neigh[in_frontier[neigh]]
        if len(hits):
            parent[v] = hits[0]
            found.append(v)
    return np.asarray(found, dtype=np.int64)


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(c)`` for every c in counts; zero-count safe."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


def bfs_distances(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Hop distances derived from the BFS parent array (-1: unreachable)."""
    parent = bfs(graph, source)
    n = graph.num_vertices
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    # Walk levels: repeatedly assign dist to vertices whose parent has one.
    changed = True
    level = 0
    while changed and level <= n:
        has = (dist == -1) & (parent != -1)
        cand = np.flatnonzero(has)
        ready = cand[dist[parent[cand]] == level]
        dist[ready] = level + 1
        changed = len(ready) > 0
        level += 1
    return dist
