"""Connected Components via Shiloach–Vishkin (GAP `cc`).

Alternates *hooking* (every edge (u, v) links the larger component label
to the smaller) with *pointer-jumping* (compressing label chains) until a
fixed point — the classic SV algorithm the paper cites [41].
Treats the graph as undirected (labels propagate along both edge
directions), matching GAP semantics.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def connected_components(graph: CSRGraph, max_rounds: int | None = None
                         ) -> np.ndarray:
    """Return per-vertex component labels (the min vertex id per component)."""
    n = graph.num_vertices
    comp = np.arange(n, dtype=np.int64)
    if graph.num_edges == 0:
        return comp
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.out_oa))
    dst = graph.out_na.astype(np.int64)
    if not graph.symmetric:
        src, dst = (np.concatenate([src, dst]),
                    np.concatenate([dst, src]))
    limit = max_rounds if max_rounds is not None else n + 1

    for _ in range(limit):
        # Hooking: comp[max] <- comp[min] along every edge where they differ.
        cs, cd = comp[src], comp[dst]
        lo, hi = np.minimum(cs, cd), np.maximum(cs, cd)
        diff = lo != hi
        if not diff.any():
            break
        # For each 'hi' label pick the smallest 'lo' hooked onto it so the
        # round is deterministic regardless of edge order.
        hi_d, lo_d = hi[diff], lo[diff]
        order = np.lexsort((lo_d, hi_d))
        hi_s, lo_s = hi_d[order], lo_d[order]
        first = np.ones(len(hi_s), dtype=bool)
        first[1:] = hi_s[1:] != hi_s[:-1]
        comp[hi_s[first]] = lo_s[first]
        # Pointer jumping until the labels form a flat forest.
        while True:
            nxt = comp[comp]
            if np.array_equal(nxt, comp):
                break
            comp = nxt
    return comp


def num_components(graph: CSRGraph) -> int:
    """Convenience: number of connected components."""
    return len(np.unique(connected_components(graph)))
