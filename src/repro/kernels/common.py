"""Kernel registry and Table II metadata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.graphs.csr import CSRGraph


@dataclass(frozen=True)
class KernelInfo:
    """Per-kernel characteristics (paper Table II)."""

    name: str
    irreg_elem_bytes: str     # size of the irregularly-accessed elements
    execution_style: str      # push / pull / both
    uses_frontier: bool
    weighted_input: bool      # SSSP needs edge weights


KERNEL_TABLE: dict[str, KernelInfo] = {
    "bc": KernelInfo("bc", "8B + 4B", "Push-Mostly", True, False),
    "bfs": KernelInfo("bfs", "4B", "Push & Pull", True, False),
    "cc": KernelInfo("cc", "4B", "Push-Mostly", False, False),
    "pr": KernelInfo("pr", "4B", "Pull-Only", False, False),
    "tc": KernelInfo("tc", "4B", "Push-Only", False, False),
    "sssp": KernelInfo("sssp", "4B", "Push-Only", True, True),
}

#: The post-paper workload families (docs/WORKLOADS.md).  Kept out of
#: :data:`KERNEL_TABLE`, which is pinned to the six GAP kernels the
#: paper's Table II enumerates — combined lookups go through
#: :func:`kernel_info`.
EXTRA_KERNEL_TABLE: dict[str, KernelInfo] = {
    "rw": KernelInfo("rw", "8B + 4B", "Sampling", False, False),
    "gs": KernelInfo("gs", "64B", "Pull-Only", False, False),
    "dyn": KernelInfo("dyn", "4B", "Mixed R/W", True, False),
}


def kernel_info(name: str) -> KernelInfo:
    """Table II metadata for any registered kernel, GAP or extra."""
    try:
        return KERNEL_TABLE.get(name) or EXTRA_KERNEL_TABLE[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from "
            f"{sorted([*KERNEL_TABLE, *EXTRA_KERNEL_TABLE])}") from None


def run_kernel(name: str, graph: CSRGraph, **kwargs: Any):
    """Dispatch to a reference kernel by its short name."""
    from repro.kernels import (bfs, betweenness_centrality,
                               connected_components, dynamic_updates,
                               gather_scatter, pagerank, random_walks,
                               sssp, triangle_count)
    dispatch: dict[str, Callable] = {
        "bfs": bfs,
        "pr": pagerank,
        "cc": connected_components,
        "bc": betweenness_centrality,
        "tc": triangle_count,
        "sssp": sssp,
        "rw": random_walks,
        "gs": gather_scatter,
        "dyn": dynamic_updates,
    }
    try:
        fn = dispatch[name]
    except KeyError:
        raise ValueError(f"unknown kernel {name!r}; "
                         f"choose from {sorted(dispatch)}") from None
    return fn(graph, **kwargs)


def pick_source(graph: CSRGraph, seed: int = 0) -> int:
    """GAP-style source selection: a random vertex with out-degree > 0."""
    import numpy as np
    rng = np.random.default_rng(seed)
    degs = graph.out_degrees()
    candidates = np.flatnonzero(degs > 0)
    if len(candidates) == 0:
        return 0
    return int(candidates[rng.integers(len(candidates))])
