"""Seeded random walks (node2vec-style sampling, without the bias
weights): the access pattern behind embedding samplers and
approximate-PPR engines.

Each of ``num_walks`` walkers takes ``walk_length`` steps; at every
step a walker at ``u`` either teleports back to its start vertex
(probability ``restart``, also on dead ends) or moves to a uniformly
sampled out-neighbour.  All randomness comes from one
``np.random.default_rng(seed)`` consumed in a fixed order, so the walk
set — and therefore the memory trace derived from it — is a pure
function of ``(graph, arguments)``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def random_walks(graph: CSRGraph, num_walks: int = 64,
                 walk_length: int = 16, seed: int = 0,
                 restart: float = 0.15) -> np.ndarray:
    """Run the walks; returns per-vertex visit counts (``int64[n]``).

    The visit counter is the irregularly-updated property array: every
    step's ``visits[next] += 1`` lands at a data-dependent address,
    which is what the ``rw`` trace family measures.
    """
    n = graph.num_vertices
    visits = np.zeros(n, dtype=np.int64)
    if n == 0 or num_walks <= 0:
        return visits
    rng = np.random.default_rng(seed)
    deg = np.diff(graph.out_oa).astype(np.int64)
    candidates = np.flatnonzero(deg > 0)
    if len(candidates) == 0:
        return visits
    starts = candidates[rng.integers(0, len(candidates),
                                     size=num_walks)]
    cur = starts.copy()
    visits += np.bincount(cur, minlength=n)
    for _ in range(walk_length):
        teleport = rng.random(num_walks) < restart
        pick = rng.random(num_walks)          # one draw per walk, always
        d = deg[cur]
        teleport |= d == 0
        offs = (pick * np.maximum(d, 1)).astype(np.int64)
        nxt = np.where(
            teleport, starts,
            graph.out_na[graph.out_oa[cur] + np.minimum(offs,
                                                        np.maximum(d - 1,
                                                                   0))]
            .astype(np.int64))
        cur = nxt
        visits += np.bincount(cur, minlength=n)
    return visits
