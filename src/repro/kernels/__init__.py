"""Reference implementations of the six GAP kernels (paper §IV-B).

These are the *functional* kernels: correct, vectorized where possible,
used to validate the instrumented trace-generating versions in
``repro.trace.kernels`` and by the examples.  Table II properties
(execution style, frontier use, irregular element size) are recorded in
:data:`KERNEL_TABLE`.
"""

from repro.kernels.bfs import bfs
from repro.kernels.pagerank import pagerank
from repro.kernels.cc import connected_components
from repro.kernels.bc import betweenness_centrality
from repro.kernels.tc import triangle_count
from repro.kernels.sssp import sssp
from repro.kernels.common import KERNEL_TABLE, KernelInfo, run_kernel

__all__ = [
    "bfs",
    "pagerank",
    "connected_components",
    "betweenness_centrality",
    "triangle_count",
    "sssp",
    "KERNEL_TABLE",
    "KernelInfo",
    "run_kernel",
]
