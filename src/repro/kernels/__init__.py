"""Reference implementations of the six GAP kernels (paper §IV-B)
plus the three post-paper workload families (docs/WORKLOADS.md).

These are the *functional* kernels: correct, vectorized where possible,
used to validate the instrumented trace-generating versions in
``repro.trace.kernels`` and by the examples.  Table II properties
(execution style, frontier use, irregular element size) are recorded in
:data:`KERNEL_TABLE` (the paper's six) and :data:`EXTRA_KERNEL_TABLE`
(random walks, gather-scatter, dynamic updates); :func:`kernel_info`
looks up either.
"""

from repro.kernels.bfs import bfs
from repro.kernels.pagerank import pagerank
from repro.kernels.cc import connected_components
from repro.kernels.bc import betweenness_centrality
from repro.kernels.tc import triangle_count
from repro.kernels.sssp import sssp
from repro.kernels.rw import random_walks
from repro.kernels.gs import gather_scatter
from repro.kernels.dyn import dynamic_updates
from repro.kernels.common import (EXTRA_KERNEL_TABLE, KERNEL_TABLE,
                                  KernelInfo, kernel_info, run_kernel)

__all__ = [
    "bfs",
    "pagerank",
    "connected_components",
    "betweenness_centrality",
    "triangle_count",
    "sssp",
    "random_walks",
    "gather_scatter",
    "dynamic_updates",
    "KERNEL_TABLE",
    "EXTRA_KERNEL_TABLE",
    "KernelInfo",
    "kernel_info",
    "run_kernel",
]
