"""Single-Source Shortest Paths via Δ-stepping (Meyer & Sanders, GAP `sssp`).

Vertices are kept in distance buckets of width Δ; each round settles the
lowest non-empty bucket, relaxing *light* edges (weight < Δ) repeatedly
within the bucket and *heavy* edges once when the bucket empties.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph

INF = np.int64(np.iinfo(np.int64).max // 4)


def sssp(graph: CSRGraph, source: int = 0, delta: int | None = None
         ) -> np.ndarray:
    """Return shortest distances from ``source``; ``INF`` = unreachable."""
    if graph.out_weights is None:
        raise ValueError("SSSP requires a weighted graph "
                         "(build with weighted=True)")
    n = graph.num_vertices
    if not 0 <= source < n:
        raise ValueError(f"source {source} out of range")
    oa, na, w = graph.out_oa, graph.out_na, graph.out_weights
    if delta is None:
        # GAP default heuristic: average weight works well for uniform
        # weights in [1, 256).
        delta = max(1, int(w.mean())) if len(w) else 1

    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    buckets: dict[int, set[int]] = {0: {source}}
    current = 0
    max_bucket = 0

    while buckets:
        while current not in buckets and current <= max_bucket:
            current += 1
        if current > max_bucket:
            break
        deferred_heavy: list[int] = []
        # Repeatedly settle the current bucket (light-edge relaxations may
        # re-insert vertices into it).
        while buckets.get(current):
            frontier = buckets.pop(current)
            deferred_heavy.extend(frontier)
            for u in frontier:
                du = dist[u]
                if du >= (current + 1) * delta:
                    continue   # moved to a later bucket since insertion
                for i in range(oa[u], oa[u + 1]):
                    if w[i] < delta:
                        _relax(dist, buckets, int(na[i]), du + int(w[i]),
                               delta)
            max_bucket = max(max_bucket, max(buckets, default=0))
        for u in deferred_heavy:
            du = dist[u]
            for i in range(oa[u], oa[u + 1]):
                if w[i] >= delta:
                    _relax(dist, buckets, int(na[i]), du + int(w[i]), delta)
        max_bucket = max(max_bucket, max(buckets, default=0))
        current += 1
    return dist


def _relax(dist: np.ndarray, buckets: dict[int, set[int]], v: int,
           cand: int, delta: int) -> None:
    if cand < dist[v]:
        old_b = int(dist[v] // delta) if dist[v] < INF else -1
        new_b = cand // delta
        if old_b >= 0 and old_b in buckets:
            buckets[old_b].discard(v)
        dist[v] = cand
        buckets.setdefault(new_b, set()).add(v)
