"""Triangle Counting (GAP `tc`).

Counts each triangle once using the standard degree-ordered direction:
orient every undirected edge from the lower-ranked to the higher-ranked
endpoint (rank = (degree, id)), then sum the sizes of sorted-adjacency
intersections.  Push-only, no frontier (Table II).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def triangle_count(graph: CSRGraph) -> int:
    """Return the number of triangles in the undirected view of ``graph``."""
    n = graph.num_vertices
    if n == 0 or graph.num_edges == 0:
        return 0
    # Undirected neighbour sets (dedup union of in/out).
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.out_oa))
    dst = graph.out_na.astype(np.int64)
    if not graph.symmetric:
        src, dst = (np.concatenate([src, dst]),
                    np.concatenate([dst, src]))
        key = src * n + dst
        _, idx = np.unique(key, return_index=True)
        src, dst = src[idx], dst[idx]

    deg = np.bincount(src, minlength=n)
    rank = np.lexsort((np.arange(n), deg))   # position -> vertex
    rank_of = np.empty(n, dtype=np.int64)
    rank_of[rank] = np.arange(n)

    # Keep only edges oriented toward higher rank; this halves the work
    # and guarantees each triangle is counted exactly once.
    keep = rank_of[src] < rank_of[dst]
    src, dst = src[keep], dst[keep]
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    starts = np.searchsorted(src, np.arange(n))
    ends = np.searchsorted(src, np.arange(n) + 1)

    adj = [dst[starts[u]:ends[u]] for u in range(n)]
    total = 0
    for u in range(n):
        au = adj[u]
        for v in au:
            av = adj[int(v)]
            if len(av):
                # Sorted-list intersection size.
                total += _intersect_size(au, av)
    return total


def _intersect_size(a: np.ndarray, b: np.ndarray) -> int:
    """Size of the intersection of two sorted int arrays."""
    if len(a) > len(b):
        a, b = b, a
    if len(a) == 0:
        return 0
    idx = np.searchsorted(b, a)
    idx[idx == len(b)] = len(b) - 1
    return int(np.count_nonzero(b[idx] == a))
