"""PageRank (paper Algorithm 1): pull-style score propagation in CSC.

Per iteration each vertex gathers ``outgoing_contrib[NA[i]]`` over its
incoming neighbours — the irregular access stream the paper uses as its
running example (§II-A).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def pagerank(graph: CSRGraph, damping: float = 0.85,
             epsilon: float = 1e-4, max_iterations: int = 20
             ) -> np.ndarray:
    """Compute PageRank scores exactly as paper Algorithm 1.

    Returns the score vector after convergence (L1 change < ``epsilon``)
    or ``max_iterations``, whichever comes first.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.float64)
    oa, na = graph.in_oa, graph.in_na
    out_deg = graph.out_degrees().astype(np.float64)
    # GAP treats zero-out-degree vertices as contributing nothing; avoid
    # the division by zero while matching that behaviour.
    safe_deg = np.where(out_deg > 0, out_deg, 1.0)

    scores = np.full(n, 1.0 / n, dtype=np.float64)
    base = (1.0 - damping) / n
    counts = np.diff(oa)
    seg_ids = np.repeat(np.arange(n), counts)

    for _ in range(max_iterations):
        contrib = scores / safe_deg
        contrib[out_deg == 0] = 0.0
        sums = np.zeros(n, dtype=np.float64)
        # Pull: gather contributions along incoming edges (Algorithm 1,
        # lines 7-11) — vectorized segment sum over the CSC.
        np.add.at(sums, seg_ids, contrib[na])
        new_scores = base + damping * sums
        error = np.abs(new_scores - scores).sum()
        scores = new_scores
        if error < epsilon:
            break
    return scores
