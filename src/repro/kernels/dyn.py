"""Dynamic-graph update batches interleaved with queries.

A streaming-graph engine's steady state: apply a batch of edge
deletions and insertions to an overlay over the static CSR, then
answer a query on the live graph before the next batch.  Queries
alternate between a BFS reachability probe (even batches — frontier
pushes over live edges) and a PageRank-style gather (odd batches —
full pull over live in-edges), so one trace mixes structure *writes*
(degree updates, NA tombstones, insert-log appends) with both GAP
query shapes — a pattern none of the six static kernels produce.

Deterministic: one ``np.random.default_rng(seed)`` drives which edges
each batch deletes/inserts, consumed in a fixed order.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def dynamic_updates(graph: CSRGraph, batches: int = 4,
                    batch_size: int = 256,
                    seed: int = 0) -> dict[str, np.ndarray]:
    """Apply ``batches`` update+query rounds over an edge overlay.

    Returns the final overlay state and per-batch query digests:
    ``alive`` (bool mask over the static CSR's edges), ``inserts``
    (``(k, 2)`` int64 array of overlay edges, most recent last) and
    ``query_sums`` (one int64 checksum per batch — BFS visited count
    or quantized PR mass — pinning the query results for equivalence
    tests).
    """
    n = graph.num_vertices
    e = graph.num_edges
    rng = np.random.default_rng(seed)
    alive = np.ones(e, dtype=bool)
    inserts: list[np.ndarray] = []
    sums = np.zeros(max(batches, 0), dtype=np.int64)
    if n == 0:
        return {"alive": alive,
                "inserts": np.empty((0, 2), dtype=np.int64),
                "query_sums": sums}
    src_of = np.repeat(np.arange(n, dtype=np.int64),
                       np.diff(graph.out_oa))
    for b in range(batches):
        ndel = min(batch_size // 2, e)
        if ndel:
            alive[rng.integers(0, e, size=ndel)] = False
        new = rng.integers(0, n, size=(batch_size - ndel, 2))
        new = new[new[:, 0] != new[:, 1]]
        inserts.append(new)
        if b % 2 == 0:
            sums[b] = _bfs_probe(graph, alive, inserts, n,
                                 int(rng.integers(0, n)))
        else:
            sums[b] = _pr_probe(graph, alive, src_of, inserts, n)
    all_inserts = (np.concatenate(inserts) if inserts
                   else np.empty((0, 2), dtype=np.int64))
    return {"alive": alive, "inserts": all_inserts,
            "query_sums": sums}


def _live_out(graph, alive, inserts, frontier, n):
    """Destinations reachable in one hop from ``frontier`` (live only)."""
    oa, na = graph.out_oa, graph.out_na
    starts = oa[frontier].astype(np.int64)
    counts = (oa[frontier + 1] - oa[frontier]).astype(np.int64)
    total = int(counts.sum())
    if total:
        offsets = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        eidx = np.repeat(starts, counts) + \
            (np.arange(total, dtype=np.int64) -
             np.repeat(offsets, counts))
        dsts = na[eidx].astype(np.int64)[alive[eidx]]
    else:
        dsts = np.empty(0, dtype=np.int64)
    extra = [ins[np.isin(ins[:, 0], frontier), 1] for ins in inserts]
    return np.concatenate([dsts] + extra) if extra else dsts


def _bfs_probe(graph, alive, inserts, n, source) -> int:
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    while len(frontier):
        dsts = _live_out(graph, alive, inserts, frontier, n)
        dsts = np.unique(dsts[~seen[dsts]])
        seen[dsts] = True
        frontier = dsts
    return int(seen.sum())


def _pr_probe(graph, alive, src_of, inserts, n) -> int:
    deg = np.bincount(src_of[alive], minlength=n).astype(np.float64)
    contrib = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)
    mass = np.zeros(n, dtype=np.float64)
    live_dst = graph.out_na.astype(np.int64)[alive]
    np.add.at(mass, live_dst, contrib[src_of[alive]])
    for ins in inserts:
        np.add.at(mass, ins[:, 1], contrib[ins[:, 0]])
    return int(np.round(mass.sum() * 1024))
