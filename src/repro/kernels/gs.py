"""Gather-scatter feature aggregation (GNN message passing).

One round of mean aggregation: every vertex pulls the ``feature_dim``
-wide feature vectors of its in-neighbours, averages them with its own,
and writes the result — the access core of a GraphSAGE/GCN layer.  The
irregular element here is the *entire feature row* (``4 * feature_dim``
bytes), not a 4/8 B scalar like the GAP kernels: the ``gs`` trace
family exists to measure how the paper's LP/SDC mechanisms behave when
each data-dependent access drags in multiple cache lines.

Deterministic: features are initialized from the vertex id, no RNG.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def gather_scatter(graph: CSRGraph, feature_dim: int = 16,
                   rounds: int = 2) -> np.ndarray:
    """Run ``rounds`` of mean aggregation; returns ``float64[n, d]``."""
    n = graph.num_vertices
    feats = ((np.arange(n, dtype=np.float64)[:, None] * 31 +
              np.arange(feature_dim, dtype=np.float64)[None, :])
             % 97) / 97.0
    if n == 0:
        return feats
    in_deg = np.diff(graph.in_oa).astype(np.int64)
    targets = np.repeat(np.arange(n, dtype=np.int64), in_deg)
    sources = graph.in_na.astype(np.int64)
    for _ in range(rounds):
        agg = np.zeros_like(feats)
        np.add.at(agg, targets, feats[sources])
        feats = (agg + feats) / (in_deg + 1)[:, None]
    return feats
