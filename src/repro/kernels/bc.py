"""Approximate Betweenness Centrality via Brandes' algorithm (GAP `bc`).

GAP approximates BC by running Brandes from a small sample of source
vertices; the per-vertex centrality is the sum of pair-dependencies over
those sources.  Table II notes BC touches an 8B (float64 dependency) plus
4B (path-count/depth) irregular footprint per vertex.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def betweenness_centrality(graph: CSRGraph, num_sources: int = 4,
                           seed: int = 0, normalize: bool = True
                           ) -> np.ndarray:
    """Approximate BC scores from ``num_sources`` BFS roots."""
    n = graph.num_vertices
    scores = np.zeros(n, dtype=np.float64)
    if n == 0 or graph.num_edges == 0:
        return scores
    rng = np.random.default_rng(seed)
    degs = graph.out_degrees()
    candidates = np.flatnonzero(degs > 0)
    if len(candidates) == 0:
        return scores
    sources = rng.choice(candidates, size=min(num_sources, len(candidates)),
                         replace=False)

    for s in sources:
        scores += _brandes_from(graph, int(s))

    if normalize and scores.max() > 0:
        scores /= scores.max()
    return scores


def _brandes_from(graph: CSRGraph, source: int) -> np.ndarray:
    """One Brandes forward/backward sweep; returns pair-dependencies."""
    n = graph.num_vertices
    oa, na = graph.out_oa, graph.out_na
    sigma = np.zeros(n, dtype=np.float64)   # shortest-path counts
    depth = np.full(n, -1, dtype=np.int64)
    sigma[source] = 1.0
    depth[source] = 0

    levels: list[np.ndarray] = [np.array([source], dtype=np.int64)]
    frontier = levels[0]
    d = 0
    while len(frontier):
        nxt: dict[int, float] = {}
        for u in frontier:
            for v in na[oa[u]:oa[u + 1]]:
                v = int(v)
                if depth[v] == -1:
                    depth[v] = d + 1
                if depth[v] == d + 1:
                    sigma[v] += sigma[u]
        frontier = np.flatnonzero(depth == d + 1)
        if len(frontier):
            levels.append(frontier)
        d += 1

    delta = np.zeros(n, dtype=np.float64)
    # Backward accumulation: deepest level first.
    for frontier in reversed(levels[1:]):
        for v in frontier:
            coeff = (1.0 + delta[v]) / sigma[v] if sigma[v] else 0.0
            # Predecessors of v are in-neighbours one level up.
            for u in graph.in_neighbors(int(v)):
                u = int(u)
                if depth[u] == depth[v] - 1:
                    delta[u] += sigma[u] * coeff
    delta[source] = 0.0
    return delta
