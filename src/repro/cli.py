"""Command-line entry point: regenerate any paper table or figure.

Examples::

    repro config                 # Table I system configuration
    repro fig2                   # baseline MPKI (all 36 workloads)
    repro fig7 --quick           # speedups on the 6-workload subset
    repro fig14 --mixes 10       # multi-core weighted speedup
    repro table4                 # hardware budget
    repro timeline pr.kron sdc_lp    # windowed-metric ASCII timeline
    repro fig7 --quick --telemetry out/   # sweep with JSONL event log
    repro trace-export latest --telemetry out/  # Perfetto trace JSON
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments import figures, report
from repro.experiments.workloads import DEFAULT_TRACE_LEN, WORKLOADS

# A representative one-workload-per-kernel subset for quick runs.
QUICK_WORKLOADS = ("pr.kron", "cc.friendster", "bfs.urand", "sssp.road",
                   "bc.twitter", "tc.web")


def _common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="run the 6-workload quick subset")
    parser.add_argument("--length", type=int, default=DEFAULT_TRACE_LEN,
                        help="trace window length (accesses)")
    parser.add_argument("--tier", default="medium",
                        help="graph size tier (tiny/small/medium/large)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for grid experiments")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--progress", action="store_true",
                        help="print one line per finished grid cell")
    parser.add_argument("--check", action="store_true",
                        help="run with invariant checking enabled "
                             "(repro.validate; implies --no-cache)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SEC",
                        help="per-cell timeout for parallel grid runs; "
                             "hung workers are detected and the cell "
                             "retried")
    parser.add_argument("--retries", type=int, default=2,
                        help="retry attempts per failed grid cell "
                             "(exponential backoff; default 2)")
    parser.add_argument("--resume", metavar="RUN_ID", default=None,
                        help="resume an interrupted sweep from its run "
                             "manifest (see docs/RESILIENCE.md); for "
                             "sharded sweeps, names the shared run id")
    parser.add_argument("--shard", metavar="I/N", default=None,
                        help="execute only shard I of N of the grid "
                             "(deterministic hash partition; requires "
                             "--resume RUN_ID with the same id on "
                             "every host, stitched afterwards by "
                             "'repro merge RUN_ID' — see "
                             "docs/RESILIENCE.md)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort the whole grid on the first "
                             "permanent cell failure")
    parser.add_argument("--telemetry", nargs="?", const="", default=None,
                        metavar="DIR",
                        help="record windowed metrics and a JSONL event "
                             "log for this sweep (DIR defaults to "
                             "<cache>/telemetry; see "
                             "docs/OBSERVABILITY.md)")
    parser.add_argument("--backend", choices=("ref", "batch"),
                        default=None,
                        help="simulation engine: the reference Python "
                             "loop or the compiled structure-of-arrays "
                             "kernel (bit-identical; default: "
                             "$REPRO_BACKEND or ref)")


def _workloads(args):
    return QUICK_WORKLOADS if args.quick else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Practically "
                    "Tackling Memory Bottlenecks of Graph-Processing "
                    "Workloads' (IPDPS 2024)")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("fig2", "fig3", "fig7", "fig8", "fig9", "fig10", "fig11",
                 "fig12", "tau", "fig13", "ablation", "replacement",
                 "prefetchers", "preprocessing", "energy", "context"):
        p = sub.add_parser(name)
        _common(p)

    prun = sub.add_parser(
        "run", help="simulate one workload under one design variant")
    prun.add_argument("workload", help="kernel.graph, e.g. pr.kron")
    prun.add_argument("--variant", default="sdc_lp",
                      help="baseline/sdc_lp/topt/distill/l1iso/llc2x/"
                           "expert/victim/lp_bypass/sdc_clp/"
                           "sdc_lp_tagless")
    _common(prun)

    pdse = sub.add_parser(
        "dse",
        help="design-space exploration: successive-halving search of "
             "the SystemConfig space with a Pareto frontier over "
             "(speedup, storage bits) — see docs/DSE.md")
    pdse.add_argument("--seed", type=int, default=0,
                      help="sampling seed (same seed = same candidate "
                           "sequence, same study id)")
    pdse.add_argument("--candidates", type=int, default=64, metavar="N",
                      help="configs to sample from the space "
                           "(default 64)")
    pdse.add_argument("--rungs", type=int, default=3,
                      help="halving rungs; trace length doubles per "
                           "rung (default 3)")
    pdse.add_argument("--quick", action="store_true",
                      help="quick study: 32 candidates, 2 rungs, tiny "
                           "tier, short traces")
    pdse.add_argument("--length", type=int, default=None, metavar="N",
                      help="rung-0 trace length (default 20000; 4000 "
                           "with --quick)")
    pdse.add_argument("--tier", default=None,
                      help="graph size tier (default medium; tiny with "
                           "--quick)")
    pdse.add_argument("--workloads", nargs="+", default=None,
                      metavar="WL", help="evaluation workloads "
                      "(default: one per irregularity class)")
    pdse.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the per-rung grids")
    pdse.add_argument("--no-cache", action="store_true",
                      help="bypass the on-disk result cache")
    pdse.add_argument("--progress", action="store_true",
                      help="print one line per finished grid cell")
    pdse.add_argument("--check", action="store_true",
                      help="run with invariant checking enabled "
                           "(implies --no-cache)")
    pdse.add_argument("--timeout", type=float, default=None,
                      metavar="SEC", help="per-cell timeout")
    pdse.add_argument("--retries", type=int, default=2,
                      help="retry attempts per failed cell")
    pdse.add_argument("--resume", metavar="STUDY_ID", default=None,
                      help="resume an interrupted study from its "
                           "runs/<study_id>.dse.json ledger")
    pdse.add_argument("--csv", metavar="PATH", default=None,
                      help="also write the full evaluated-point set "
                           "as CSV")
    pdse.add_argument("--backend", choices=("ref", "batch"),
                      default=None,
                      help="simulation engine (default: $REPRO_BACKEND "
                           "or ref)")

    ptl = sub.add_parser(
        "timeline",
        help="simulate one workload and render its windowed metrics "
             "as an ASCII timeline")
    ptl.add_argument("workload",
                     help="kernel.graph (pr.kron; bfs-twitter works too)")
    ptl.add_argument("variant", nargs="?", default="sdc_lp")
    ptl.add_argument("--window", type=int, default=None, metavar="N",
                     help="accesses per window (default: trace length "
                          "/ 32, clamped to [256, 4096])")
    ptl.add_argument("--metric", default="l1d_mpki",
                     help="primary metric for the bar chart "
                          "(default l1d_mpki)")
    ptl.add_argument("--length", type=int, default=DEFAULT_TRACE_LEN)
    ptl.add_argument("--tier", default="medium")

    pte = sub.add_parser(
        "trace-export",
        help="export one sweep as Chrome/Perfetto trace-event JSON")
    pte.add_argument("run_id",
                     help="run id from the sweep output or manifest, "
                          "or 'latest'")
    pte.add_argument("--telemetry", nargs="?", const="", default=None,
                     metavar="DIR",
                     help="telemetry directory holding the event log "
                          "(default <cache>/telemetry)")
    pte.add_argument("-o", "--out", default=None,
                     help="output path (default trace-<run_id>.json)")
    pte.add_argument("--validate", action="store_true",
                     help="check the trace against the schema validator "
                          "before reporting success")
    pmg = sub.add_parser(
        "merge",
        help="validate and stitch the shard manifests of a sharded "
             "sweep (run with --shard I/N) into one merged run")
    pmg.add_argument("run_id", help="shared run id of the sharded sweep")
    pmg.add_argument("--telemetry", nargs="?", const="", default=None,
                     metavar="DIR",
                     help="also fold per-shard event logs in DIR into "
                          "the main events-<run_id>.jsonl")
    pmg.add_argument("--watch", action="store_true",
                     help="poll until every shard reports complete, "
                          "then merge (instead of failing on "
                          "missing/incomplete shards)")
    pmg.add_argument("--interval", type=float, default=2.0,
                     metavar="SEC",
                     help="poll period for --watch (default 2s)")
    pmg.add_argument("--watch-timeout", type=float, default=None,
                     metavar="SEC",
                     help="give up --watch after SEC seconds "
                          "(default: wait forever)")

    psv = sub.add_parser(
        "serve",
        help="run the simulation service: a crash-tolerant orchestrator "
             "+ worker pool accepting sweep jobs over a typed HTTP/JSON "
             "API (docs/SERVICE.md)")
    psv.add_argument("--host", default="127.0.0.1")
    psv.add_argument("--port", type=int, default=8421,
                     help="TCP port (0 = ephemeral; default 8421)")
    psv.add_argument("--workers", type=int, default=2,
                     help="worker processes executing cells")
    psv.add_argument("--queue-depth", type=int, default=16,
                     help="max active jobs before submissions get 429 "
                          "backpressure")
    psv.add_argument("--lease-ttl", type=float, default=15.0,
                     metavar="SEC",
                     help="cell lease TTL; a worker that stops "
                          "heartbeating for this long forfeits its "
                          "cell (default 15s)")
    psv.add_argument("--timeout", type=float, default=None,
                     metavar="SEC",
                     help="per-cell wall deadline; hung workers are "
                          "killed and the cell retried")
    psv.add_argument("--retries", type=int, default=2,
                     help="retry attempts per failed/forfeited cell")
    psv.add_argument("--telemetry", nargs="?", const="", default=None,
                     metavar="DIR",
                     help="append service lifecycle events to "
                          "DIR/events-service.jsonl")
    psv.add_argument("--verbose", action="store_true",
                     help="log every HTTP request to stderr")

    psub = sub.add_parser(
        "submit",
        help="submit a sweep (or shard-merge) job to a running "
             "'repro serve' and optionally stream its results")
    psub.add_argument("--url", default=None,
                      help="service endpoint (default "
                           "$REPRO_SERVICE_URL or "
                           "http://127.0.0.1:8421)")
    psub.add_argument("--quick", action="store_true",
                      help="the 6-workload quick subset (default)")
    psub.add_argument("--all", action="store_true",
                      help="all 36 workloads")
    psub.add_argument("--workloads", nargs="+", default=None,
                      metavar="KERNEL.GRAPH",
                      help="explicit workload list")
    psub.add_argument("--variants", nargs="+", default=None,
                      help="design variants (default: the fig7 set)")
    psub.add_argument("--tier", default="tiny")
    psub.add_argument("--length", type=int, default=20_000)
    psub.add_argument("--backend", choices=("ref", "batch"),
                      default=None)
    psub.add_argument("--merge", metavar="RUN_ID", default=None,
                      help="submit a merge job instead: wait for every "
                           "shard of RUN_ID then stitch")
    psub.add_argument("--watch-timeout", type=float, default=None,
                      metavar="SEC",
                      help="merge jobs: give up waiting after SEC")
    psub.add_argument("--follow", action="store_true",
                      help="stream the JSONL result feed until the "
                           "job is terminal")

    pst = sub.add_parser(
        "status",
        help="show one service job (or all jobs) as typed JSON")
    pst.add_argument("job_id", nargs="?", default=None)
    pst.add_argument("--url", default=None)

    pca = sub.add_parser("cancel", help="cancel a service job")
    pca.add_argument("job_id")
    pca.add_argument("--url", default=None)

    p14 = sub.add_parser("fig14")
    _common(p14)
    p14.add_argument("--mixes", type=int, default=10)
    sub.add_parser("config")
    sub.add_parser("table2")
    sub.add_parser("table3")
    sub.add_parser("table4")
    plist = sub.add_parser("workloads")
    plist.add_argument("--json", action="store_true",
                       help="machine-readable output (one object per "
                            "workload) for DSE studies and external "
                            "scripts")

    ping = sub.add_parser(
        "ingest",
        help="stream a real edge-list file into the mapped graph store",
        description="Ingest a .el/.wel/SNAP .txt edge list (optionally "
                    ".gz) into $REPRO_CACHE_DIR/graphs/ as a "
                    "memory-mapped CSR usable as a workload graph "
                    "(e.g. bfs.<name>); see docs/WORKLOADS.md.")
    ping.add_argument("path", help="edge-list file to ingest")
    ping.add_argument("--name", default=None,
                      help="store name (default: file name minus "
                           "extensions)")
    ping.add_argument("--symmetrize", action="store_true",
                      help="add the reverse of every edge (undirected "
                           "loading, as GAP does for -s)")
    ping.add_argument("--num-vertices", type=int, default=None,
                      help="vertex count override (default: max id + 1)")
    ping.add_argument("--force", action="store_true",
                      help="re-ingest even if a store entry exists")
    ping.add_argument("--chunk-edges", type=int, default=None,
                      help="edges parsed per streaming chunk "
                           "(default 1M; bounds ingest memory)")

    args = parser.parse_args(argv)
    cmd = args.command
    if getattr(args, "backend", None):
        # Install the selection ambiently: run_grid resolves it into
        # every worker spec and cache key, and single-run commands pick
        # it up through SingleCoreSystem.run's seam.
        import os
        os.environ["REPRO_BACKEND"] = args.backend
    if getattr(args, "check", False):
        # Enable the periodic invariant hook for this process and any
        # worker processes (they inherit the environment), and force the
        # runs to actually simulate — a cached result verifies nothing.
        import os

        from repro.validate import check_interval
        if not check_interval():
            os.environ["REPRO_VALIDATE"] = "1"
        args.no_cache = True

    if cmd == "config":
        from repro.experiments.runner import default_config
        print(default_config().describe())
        return 0
    if cmd == "table2":
        print(report.render_table2(figures.table2_kernels()))
        return 0
    if cmd == "table3":
        print(report.render_table3(figures.table3_graphs()))
        return 0
    if cmd == "table4":
        from repro.core.budget import table4, lp_fits_in_one_cycle
        print("Table IV — hardware budget per core")
        print(table4())
        print(f"\nLP fits in one CPU cycle: {lp_fits_in_one_cycle()}")
        return 0
    if cmd == "workloads":
        from repro.experiments.workloads import ALL_WORKLOADS, KERNELS
        if args.json:
            import json as _json
            print(_json.dumps(
                [{"name": wl.name, "kernel": wl.kernel,
                  "graph": wl.graph,
                  "family": ("gap" if wl.kernel in KERNELS
                             else wl.kernel)}
                 for wl in ALL_WORKLOADS], indent=1))
        else:
            for wl in ALL_WORKLOADS:
                print(wl.name)
        return 0
    if cmd == "ingest":
        return _ingest(args)
    if cmd == "dse":
        return _dse(args)
    if cmd == "run":
        return _run_one(args)
    if cmd == "timeline":
        return _timeline(args)
    if cmd == "trace-export":
        return _trace_export(args)
    if cmd == "merge":
        return _merge(args)
    if cmd == "serve":
        return _serve(args)
    if cmd == "submit":
        return _submit(args)
    if cmd == "status":
        return _status(args)
    if cmd == "cancel":
        return _cancel(args)

    kw = dict(tier=args.tier, length=args.length)
    # Grid-shaped commands run on the parallel engine; the rest are
    # single-simulation studies that take only tier/length.
    from repro import faults
    from repro.experiments import sharding
    from repro.experiments.parallel import (GridError, GridInterrupted,
                                            ProgressPrinter, RunPolicy,
                                            ShardComplete)
    shard = None
    if getattr(args, "shard", None):
        try:
            shard = sharding.parse_shard(args.shard)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        if args.resume is None:
            print("--shard needs a shared run id: pass --resume RUN_ID "
                  "with the same id on every host (repro merge RUN_ID "
                  "stitches the shards afterwards)", file=sys.stderr)
            return 2
        if args.no_cache or getattr(args, "check", False):
            print("--shard requires the results cache (repro merge "
                  "validates shard results out of it); drop "
                  "--no-cache/--check", file=sys.stderr)
            return 2
    policy = RunPolicy(timeout=args.timeout, retries=args.retries,
                       fail_fast=args.fail_fast)
    gkw = dict(kw, jobs=args.jobs, use_cache=not args.no_cache,
               progress=ProgressPrinter()
               if (args.progress or args.jobs > 1) else None,
               policy=policy, run_id=args.resume)
    wls = _workloads(args)
    tdir = _activate_telemetry(args)
    sharding.activate_shard(shard)
    try:
        status = _dispatch_figure(cmd, args, kw, gkw, wls)
    except ShardComplete as sc:
        print(f"shard {sc.shard[0]}/{sc.shard[1]} of run {sc.run_id} "
              f"complete ({sc.summary}).")
        print(f"When every shard has run, stitch with: "
              f"repro merge {sc.run_id}")
        return 0
    except faults.FaultInjected as fi:
        print(f"\n{fi}", file=sys.stderr)
        if shard is not None:
            print(f"Shard checkpoint kept; re-run this shard with "
                  f"--shard {shard[0]}/{shard[1]} --resume "
                  f"{args.resume}", file=sys.stderr)
        return 1
    except GridInterrupted as gi:
        print(f"\nInterrupted — every completed cell is checkpointed "
              f"({gi.summary}).")
        print(f"Resume with: --resume {gi.run_id}")
        return 130
    except GridError as ge:
        print(f"\n{ge}")
        for label, err in sorted(ge.failures.items()):
            print(f"  {label}: {err}")
        if ge.run_id is not None:
            print(f"Completed cells are checkpointed; retry the rest "
                  f"with: --resume {ge.run_id}")
        return 1
    finally:
        sharding.activate_shard(None)
        if tdir is not None:
            from repro import telemetry as tele
            tele.deactivate()
    if tdir is not None:
        from repro.telemetry.events import latest_run_id
        run_id = latest_run_id(tdir)
        if run_id is not None:
            print(f"\ntelemetry: event log {tdir}/events-{run_id}.jsonl")
            print(f"export with: repro trace-export {run_id} "
                  f"--telemetry {tdir}")
    return status


def _activate_telemetry(args) -> Path | None:
    """Install the ambient TelemetryConfig for ``--telemetry`` sweeps
    (run_grid picks it up); returns the directory, or None when off."""
    if getattr(args, "telemetry", None) is None:
        return None
    from repro import telemetry as tele
    tdir = Path(args.telemetry) if args.telemetry \
        else tele.default_telemetry_dir()
    window = tele.telemetry_interval(None) or tele.DEFAULT_WINDOW
    tele.activate(tele.TelemetryConfig(directory=tdir, window=window))
    return tdir


def _dispatch_figure(cmd, args, kw, gkw, wls) -> int:
    if cmd == "fig2":
        print(report.render_fig2(figures.fig2_mpki(wls, **gkw)))
    elif cmd == "fig3":
        print(report.render_fig3(figures.fig3_stride_dram(**kw)))
    elif cmd == "fig7":
        print(report.render_fig7(figures.fig7_single_core(wls, **gkw)))
    elif cmd == "fig8":
        print(report.render_mpki_compare(
            figures.fig8_l2_llc_mpki(wls, **gkw), ("l2c", "llc"),
            "Fig. 8 — L2C/LLC MPKI, Baseline vs SDC+LP"))
    elif cmd == "fig9":
        print(report.render_mpki_compare(
            figures.fig9_l1_sdc_mpki(wls, **gkw), ("l1d", "sdc"),
            "Fig. 9 — L1D/SDC MPKI, Baseline vs SDC+LP"))
    elif cmd == "fig10":
        print(report.render_fig10(figures.fig10_sdc_size(wls, **gkw)))
    elif cmd == "fig11":
        print(report.render_sweep(figures.fig11_lp_entries(wls, **gkw),
                                  "entries"))
    elif cmd == "fig12":
        print(report.render_sweep(figures.fig12_lp_assoc(wls, **gkw),
                                  "ways"))
    elif cmd == "tau":
        print(report.render_tau_sweep(figures.tau_sweep(wls, **gkw)))
    elif cmd == "fig13":
        print(report.render_fig13(figures.fig13_expert(wls, **gkw)))
    elif cmd == "ablation":
        print(report.render_ablation(figures.ablation_study(wls, **gkw)))
    elif cmd == "replacement":
        print(report.render_policy_study(
            figures.replacement_study(wls, **gkw)))
    elif cmd == "prefetchers":
        print(report.render_prefetcher_study(
            figures.prefetcher_study(wls, **gkw)))
    elif cmd == "preprocessing":
        print(report.render_preprocessing_study(
            figures.preprocessing_study(length=args.length,
                                        tier=args.tier)))
    elif cmd == "energy":
        print(report.render_energy_study(figures.energy_study(wls, **kw)))
    elif cmd == "context":
        print(report.render_context_switch_study(
            figures.context_switch_study(wls, **kw)))
    elif cmd == "fig14":
        res = figures.fig14_multicore(num_mixes=args.mixes,
                                      jobs=gkw["jobs"],
                                      use_cache=gkw["use_cache"],
                                      progress=gkw["progress"],
                                      policy=gkw["policy"],
                                      run_id=gkw["run_id"],
                                      tier=args.tier,
                                      length=args.length // 2)
        print(report.render_fig14(res))
    return 0


def _ingest(args) -> int:
    """`repro ingest <path>`: stream an edge list into the graph store."""
    from repro.graphs import ingest

    try:
        kwargs = {}
        if args.chunk_edges:
            kwargs["chunk_edges"] = args.chunk_edges
        report_ = ingest.ingest_graph(
            args.path, name=args.name, symmetrize=args.symmetrize,
            num_vertices=args.num_vertices, force=args.force, **kwargs)
    except (OSError, ValueError) as exc:
        print(f"ingest failed: {exc}", file=sys.stderr)
        return 1
    if report_.raw_edges < 0:
        print(f"{report_.name}: already ingested at {report_.path} "
              f"(use --force to rebuild)")
    else:
        print(f"{report_.name}: {report_.num_vertices:,} vertices, "
              f"{report_.num_edges:,} edges "
              f"({'symmetrized, ' if report_.symmetric else ''}"
              f"{'weighted, ' if report_.weighted else ''}"
              f"{report_.file_bytes:,} bytes mapped)")
        print(f"  store: {report_.path}")
    print(f"  run it: repro run bfs.{report_.name} sdc_lp "
          f"(any kernel from `repro workloads`)")
    return 0


def _timeline(args) -> int:
    """`repro timeline <workload> [variant]`: windowed ASCII report."""
    from repro import telemetry as tele
    from repro.experiments.runner import run_variant
    from repro.experiments.workloads import workload_trace
    from repro.telemetry.probes import TIMELINE_METRICS
    from repro.telemetry.render import render_timeline

    if args.metric not in TIMELINE_METRICS:
        print(f"unknown metric {args.metric!r}; choose from: "
              + ", ".join(TIMELINE_METRICS), file=sys.stderr)
        return 2
    wl = args.workload
    if "." not in wl:               # accept bfs-twitter for bfs.twitter
        wl = wl.replace("-", ".", 1)
    trace = workload_trace(wl, tier=args.tier, length=args.length)
    # Default window: ~32+ windows per run, never finer than 256
    # accesses (too noisy) or coarser than the standard 4096.
    window = args.window or max(256, min(tele.DEFAULT_WINDOW,
                                         len(trace) // 32))
    stats = run_variant(trace, args.variant, telemetry_every=window)
    print(render_timeline(
        stats.timeline,
        title=f"{wl}/{args.variant} — {len(trace):,} accesses, "
              f"tier={args.tier}",
        primary=args.metric))
    return 0


def _trace_export(args) -> int:
    """`repro trace-export <run_id>`: write Perfetto trace JSON."""
    from repro import telemetry as tele
    from repro.experiments.manifest import RunManifest
    from repro.telemetry import events as tele_events
    from repro.telemetry import trace_export

    tdir = Path(args.telemetry) if args.telemetry \
        else tele.default_telemetry_dir()
    run_id = args.run_id
    if run_id == "latest":
        run_id = tele_events.latest_run_id(tdir)
        if run_id is None:
            try:
                run_id = RunManifest.latest().run_id
            except (FileNotFoundError, ValueError):
                print(f"no event logs in {tdir} and no run manifests",
                      file=sys.stderr)
                return 1
    try:
        trace = trace_export.export_trace(run_id, telemetry_dir=tdir)
    except (FileNotFoundError, ValueError) as exc:
        print(f"run {run_id}: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out \
        else tdir / f"trace-{run_id}.json"
    trace_export.write_trace(trace, out)
    spans = sum(1 for e in trace["traceEvents"] if e.get("ph") == "X")
    print(f"wrote {out} — {spans} spans "
          f"(source: {trace['otherData']['source']}); open in "
          "https://ui.perfetto.dev or chrome://tracing")
    if args.validate:
        from repro.telemetry import schema as tele_schema
        errors = tele_schema.validate_trace(trace)
        if errors:
            for err in errors:
                print(err, file=sys.stderr)
            return 1
        print("trace schema: OK")
    return 0


def _merge(args) -> int:
    """`repro merge <run_id>`: validate + stitch a sharded sweep.
    With ``--watch``, poll until every shard reports complete first."""
    from repro.experiments.sharding import (ShardMergeError,
                                            merge_shards,
                                            wait_for_shards)

    tdir = None
    if args.telemetry is not None:
        from repro import telemetry as tele
        tdir = Path(args.telemetry) if args.telemetry \
            else tele.default_telemetry_dir()
    if getattr(args, "watch", False):
        last = [None]

        def on_poll(ready: bool, summary: str) -> None:
            if not ready and summary != last[0]:
                print(f"waiting: {summary}")
                last[0] = summary
        try:
            summary = wait_for_shards(args.run_id, poll=args.interval,
                                      timeout=args.watch_timeout,
                                      on_poll=on_poll)
        except KeyboardInterrupt:
            print("\nwatch interrupted; shards keep their checkpoints "
                  "— re-run repro merge --watch to continue waiting.",
                  file=sys.stderr)
            return 130
        except TimeoutError as exc:
            print(exc, file=sys.stderr)
            return 1
        print(f"all shards complete ({summary}); merging...")
    try:
        report = merge_shards(args.run_id, telemetry_dir=tdir)
    except FileNotFoundError as exc:
        print(exc, file=sys.stderr)
        return 1
    except ShardMergeError as exc:
        print(f"{exc}", file=sys.stderr)
        for problem in exc.problems:
            print(f"  - {problem}", file=sys.stderr)
        print("Nothing was merged; fix the shards above and re-run "
              "repro merge.", file=sys.stderr)
        return 1
    print(f"run {report.run_id}: {report.summary()}")
    print(f"merged manifest: {report.manifest_path}")
    if tdir is not None:
        print(f"telemetry: folded {report.events_merged} shard-log "
              f"events into {tdir}/events-{report.run_id}.jsonl")
    print("A figure rerun against this cache now reproduces the "
          "single-host output from validated shard results.")
    return 0


def _service_url(args) -> str:
    import os
    return (args.url or os.environ.get("REPRO_SERVICE_URL")
            or "http://127.0.0.1:8421")


def _serve(args) -> int:
    """`repro serve`: run the orchestrator until SIGTERM/SIGINT
    (graceful drain) or a fatal fault (docs/SERVICE.md)."""
    import signal

    from repro import faults
    from repro.experiments.parallel import RunPolicy
    from repro.service import Orchestrator, ServiceConfig
    from repro.service.api import serve_in_thread

    tdir = None
    if args.telemetry is not None:
        from repro import telemetry as tele
        tdir = Path(args.telemetry) if args.telemetry \
            else tele.default_telemetry_dir()
    orc = Orchestrator(ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, lease_ttl=args.lease_ttl,
        policy=RunPolicy(timeout=args.timeout, retries=args.retries),
        telemetry_dir=tdir,
        hard_crash=True))       # injected crashes really kill us
    server, _ = serve_in_thread(orc, verbose=args.verbose)
    host, port = server.server_address[:2]

    def on_signal(signum, frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining "
              "(in-flight cells finish, nothing new is leased)...",
              file=sys.stderr)
        orc.request_drain()
    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)

    print(f"repro service generation {orc.generation} listening on "
          f"http://{host}:{port} ({args.workers} worker(s), "
          f"lease TTL {args.lease_ttl:g}s, queue depth "
          f"{args.queue_depth})")
    resumed = [j for j in orc.jobs.values()
               if j.state in ("queued", "running")]
    if resumed:
        print(f"recovered {len(resumed)} in-flight job(s) from the "
              "journal; resuming with zero redundant simulation")
    try:
        orc.run()
    except faults.FaultInjected as fi:
        print(f"\n{fi}", file=sys.stderr)
        print("journal and manifests are checkpointed; restart "
              "'repro serve' to resume every in-flight job.",
              file=sys.stderr)
        return 1
    print("drained cleanly.")
    return 0


def _submit(args) -> int:
    """`repro submit`: POST a job to a running service."""
    import json as _json

    from repro.service import JobRequest, ServiceClient, ServiceError

    if args.merge is not None:
        req = JobRequest(kind="merge", run_id=args.merge,
                         watch_timeout=args.watch_timeout)
    else:
        if args.workloads:
            wls: object = list(args.workloads)
        elif args.all:
            wls = None
        else:
            wls = "quick"
        req = JobRequest(workloads=wls,
                         variants=tuple(args.variants or ()),
                         tier=args.tier, length=args.length,
                         backend=args.backend)
    client = ServiceClient(_service_url(args))
    try:
        resp = client.submit(req, max_retries=3)
    except ServiceError as exc:
        print(exc, file=sys.stderr)
        for d in exc.detail:
            print(f"  - {d}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {client.base_url}: {exc} "
              "(is 'repro serve' running?)", file=sys.stderr)
        return 1
    print(f"job {resp.job_id}: {resp.state}, {resp.cells} unique "
          f"cell(s)")
    if not args.follow:
        print(f"follow with: repro status {resp.job_id}")
        return 0
    for row in client.results(resp.job_id, follow=True,
                              timeout=3600.0):
        print(_json.dumps(row, sort_keys=True))
    status = client.status(resp.job_id)
    print(f"job {resp.job_id}: {status.state}")
    return 0 if status.state == "complete" else 1


def _status(args) -> int:
    """`repro status [job_id]`: typed job state as JSON."""
    import json as _json

    from repro.service import ServiceClient, ServiceError
    client = ServiceClient(_service_url(args))
    try:
        if args.job_id is None:
            jobs = client.list_jobs()
            for job in jobs:
                p = job.progress
                print(f"{job.job_id}  {job.state:9} "
                      f"{p.done}/{p.total} done "
                      f"({p.failed} failed, {p.running} running)")
            if not jobs:
                print("no jobs")
            return 0
        status = client.status(args.job_id)
    except ServiceError as exc:
        print(exc, file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach {client.base_url}: {exc}",
              file=sys.stderr)
        return 1
    print(_json.dumps(status.to_dict(), indent=2, sort_keys=True))
    return 0


def _cancel(args) -> int:
    """`repro cancel <job_id>`."""
    from repro.service import ServiceClient, ServiceError
    client = ServiceClient(_service_url(args))
    try:
        status = client.cancel(args.job_id)
    except (ServiceError, OSError) as exc:
        print(exc, file=sys.stderr)
        return 1
    print(f"job {status.job_id}: {status.state}")
    return 0


def _run_one(args) -> int:
    """`repro run <workload>`: full stats dump for one simulation."""
    from repro.core.energy import energy_of, energy_per_kilo_instruction
    from repro.experiments.runner import default_config, run_variant
    from repro.experiments.workloads import workload_trace
    from repro.mem.hierarchy import LEVEL_NAMES

    trace = workload_trace(args.workload, tier=args.tier,
                           length=args.length)
    cfg = default_config()
    stats = run_variant(trace, args.variant, cfg, record_levels=True)
    print(f"{args.workload} under {args.variant} "
          f"({len(trace):,} accesses, {stats.instructions:,} instr)")
    print(f"  cycles {stats.cycles:,.0f}   IPC {stats.ipc:.3f}")
    for cache in ("l1d", "sdc", "l2c", "llc"):
        cs = getattr(stats, cache)
        if cs is None:
            continue
        print(f"  {cache.upper():4} accesses {cs.accesses:>9,}  "
              f"hit-rate {100 * cs.hit_rate:5.1f}%  "
              f"MPKI {stats.mpki(cache):7.1f}")
    print(f"  DRAM reads {stats.dram.reads:,} writes {stats.dram.writes:,} "
          f"(row hits {stats.dram.row_hits:,})")
    if stats.lp is not None:
        lp = stats.lp
        print(f"  LP: {lp.predicted_irregular:,}/{lp.lookups:,} "
              f"({100 * lp.predicted_irregular / max(1, lp.lookups):.1f}%) "
              f"routed to the SDC")
    if stats.tlb is not None:
        print(f"  TLB: {stats.tlb.walks:,} page walks "
              f"({100 * stats.tlb.l1_miss_rate:.1f}% DTLB miss)")
    import numpy as np
    counts = np.bincount(stats.levels, minlength=6)
    served = ", ".join(f"{LEVEL_NAMES[i]} {100 * c / len(trace):.1f}%"
                       for i, c in enumerate(counts) if c)
    print(f"  served by: {served}")
    print(f"  energy: {energy_per_kilo_instruction(stats):.2f} uJ/kilo-"
          f"instr (on-chip {energy_of(stats).on_chip:.3f} mJ)")
    return 0


def _dse(args) -> int:
    """`repro dse`: successive-halving search with a Pareto report."""
    from repro.dse import frontier_csv, render_frontier, run_study
    from repro.experiments.parallel import (GridError, GridInterrupted,
                                            ProgressPrinter, RunPolicy)

    candidates = args.candidates
    rungs = args.rungs
    tier = args.tier or "medium"
    length = args.length or 20_000
    workloads = tuple(args.workloads) if args.workloads else None
    if args.quick:
        candidates = min(candidates, 32)
        rungs = min(rungs, 2)
        tier = args.tier or "tiny"
        length = args.length or 4_000
    seed = args.seed
    if args.resume:
        # Resume takes its parameters from the ledger, so the bare
        # `--resume STUDY_ID` works without repeating the flags.
        from repro.dse import StudyManifest
        try:
            ledger = StudyManifest.load(args.resume)
        except FileNotFoundError:
            print(f"no study ledger for {args.resume!r} "
                  f"(runs/{args.resume}.dse.json)", file=sys.stderr)
            return 2
        p = ledger.data["params"]
        seed, candidates, rungs = p["seed"], p["n"], p["rungs"]
        length, tier = p["base_length"], p["tier"]
        workloads = tuple(p["workloads"])
    policy = RunPolicy(timeout=args.timeout, retries=args.retries)
    progress = ProgressPrinter() \
        if (args.progress or args.jobs > 1) else None
    try:
        result = run_study(
            seed=seed, n=candidates, rungs=rungs,
            base_length=length, tier=tier, workloads=workloads,
            study_id=args.resume, jobs=args.jobs,
            use_cache=not args.no_cache, progress=progress,
            policy=policy)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except GridInterrupted as gi:
        study_id = gi.run_id.rsplit("-rung", 1)[0]
        print(f"\nInterrupted — every completed cell is checkpointed "
              f"({gi.summary}).")
        print(f"Resume with: repro dse --resume {study_id}")
        return 130
    except GridError as ge:
        print(f"\n{ge}")
        for label, err in sorted(ge.failures.items()):
            print(f"  {label}: {err}")
        print(f"Completed cells are checkpointed; the same command "
              f"retries only the rest.")
        return 1
    print(render_frontier(result))
    print()
    print(f"  cells: {result.cells_simulated} simulated, "
          f"{result.cells_cached} cached/deduped, "
          f"{result.resumed_rungs} rung(s) replayed from the ledger")
    print(f"  full enumeration of the space would be "
          f"{result.full_enumeration_cells} cells")
    print(f"  study ledger: runs/{result.study_id}.dse.json "
          f"(resume with --resume {result.study_id})")
    if args.csv:
        Path(args.csv).write_text(frontier_csv(result.points),
                                  encoding="utf-8")
        print(f"  CSV: {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
