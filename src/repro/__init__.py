"""repro — reproduction of *Practically Tackling Memory Bottlenecks of
Graph-Processing Workloads* (Jamet et al., IPDPS 2024).

Public API tour:

* :mod:`repro.graphs` — CSR/CSC graphs, generators, the input suite.
* :mod:`repro.kernels` — the six GAP kernels (reference implementations).
* :mod:`repro.trace` — instrumented kernels emitting memory-access
  traces, SimPoint-style sampling.
* :mod:`repro.mem` — set-associative caches, replacement policies,
  prefetchers, DRAM, the interval timing model.
* :mod:`repro.core` — the paper's proposal (LP + SDC + SDCDir) and all
  evaluated system variants, single- and multi-core.
* :mod:`repro.experiments` — the 36 workloads and one entry point per
  paper table/figure.

Quickstart::

    from repro import quick_compare
    result = quick_compare("pr", "kron")
    print(result)
"""

from repro.config import SystemConfig, paper_config, scaled_config

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "paper_config",
    "scaled_config",
    "quick_compare",
    "__version__",
]


def quick_compare(kernel: str, graph: str, variants=("baseline", "sdc_lp"),
                  trace_len: int = 200_000, tier: str = "medium"):
    """Run one workload under several designs; returns {variant: stats}.

    A convenience wrapper over the full experiment harness for
    interactive use and the quickstart example.
    """
    from repro.experiments.runner import default_config, run_variant
    from repro.experiments.workloads import workload_trace
    trace = workload_trace(f"{kernel}.{graph}", tier=tier, length=trace_len)
    cfg = default_config()
    return {v: run_variant(trace, v, cfg) for v in variants}
