"""Access-record format, trace container and the vectorized stream builder.

**Record format.** A trace is a NumPy structured array of
:data:`ACCESS_DTYPE` records — one per dynamic memory access, 23 bytes
packed:

====== ==== ========================================================
field  type meaning
====== ==== ========================================================
pc     u32  static id of the access site (synthetic text address)
addr   u64  byte address within the traced program's address space
write  u8   1 = store, 0 = load
gap    u16  non-memory instructions executed since the previous access
dep    i64  index of the producer access; -1 = address-independent
====== ==== ========================================================

``dep`` is the load-load dependency chain that makes lookup latency
matter: ``contrib[NA[j]]`` depends on the ``NA[j]`` load that produced
its address, so the timing model serializes the pair.  Links always
point strictly backward (``dep[i] < i``, enforced by
:meth:`Trace.validate`); windowing a trace clamps links that escape
the window (:meth:`Trace.slice`).

**Builder.** :class:`TraceBuilder` and
:func:`assemble_vertex_edge_stream` assemble interleaved per-vertex /
per-edge access streams without Python-level per-access loops: given
the per-active-vertex edge counts, the position of every record in the
final stream is an affine function of the vertex index and the
cumulative edge count, so all PCs, addresses and dependency links can
be scattered with NumPy fancy indexing (DESIGN.md substitution #1
keeps trace generation tractable).

**Serialization.** :meth:`Trace.save`/:meth:`Trace.load` round-trip
the legacy compressed ``.npz`` form (format v7) and remain only as the
migration source.  Cached workload traces live in the versioned,
checksummed, memory-mappable v8 store (:mod:`repro.trace.store`,
docs/TRACES.md), whose record block is this dtype byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.layout import AddressSpace

ACCESS_DTYPE = np.dtype([
    ("pc", np.uint32),      # static id of the access site
    ("addr", np.uint64),    # byte address
    ("write", np.uint8),    # 1 = store
    ("gap", np.uint16),     # non-memory instructions preceding this access
    ("dep", np.int64),      # index of producer access (-1 = independent)
])


@dataclass
class Trace:
    """A complete memory-access trace plus its address-space metadata.

    ``accesses`` is an :data:`ACCESS_DTYPE` array.  When the trace was
    opened from the on-disk store it is a **read-only** ``np.memmap``
    view sharing the OS page cache with every other process mapping the
    same file — treat records as immutable and copy before mutating
    (:meth:`slice` already copies).
    """

    accesses: np.ndarray              # ACCESS_DTYPE array
    address_space: AddressSpace
    name: str = "trace"
    kernel: str = ""
    graph: str = ""

    def __len__(self) -> int:
        return len(self.accesses)

    @property
    def num_instructions(self) -> int:
        """Total instructions: each access is 1 µop plus its gap."""
        return int(len(self.accesses) + self.accesses["gap"].sum())

    def block_addrs(self, block_bits: int = 6) -> np.ndarray:
        return (self.accesses["addr"] >> block_bits).astype(np.int64)

    def slice(self, start: int, stop: int) -> "Trace":
        """Sub-trace with dependency links clamped to the window.

        Records are copied (never a view), ``dep`` indices are rebased
        to the new origin, and links pointing before ``start`` become
        -1 — the access is still replayed, it just no longer serializes
        behind a producer outside the window.

        >>> import numpy as np
        >>> from repro.trace.layout import AddressSpace
        >>> from repro.trace.record import ACCESS_DTYPE, Trace
        >>> acc = np.zeros(4, dtype=ACCESS_DTYPE)
        >>> acc["addr"] = [0, 8, 16, 24]
        >>> acc["dep"] = [-1, 0, 1, -1]
        >>> window = Trace(acc, AddressSpace(), "demo").slice(1, 3)
        >>> len(window)
        2
        >>> window.accesses["dep"].tolist()  # link to record 0 clamped,
        ...                                  # link to record 1 rebased
        [-1, 0]
        >>> window.name
        'demo[1:3]'
        """
        acc = self.accesses[start:stop].copy()
        dep = acc["dep"]
        rebased = dep - start
        rebased[(dep < start) | (dep < 0)] = -1
        acc["dep"] = rebased
        return Trace(acc, self.address_space, f"{self.name}[{start}:{stop}]",
                     self.kernel, self.graph)

    def validate(self) -> None:
        """Check record invariants (dep ordering, mapped addresses)."""
        dep = self.accesses["dep"]
        idx = np.arange(len(dep))
        bad = (dep >= idx) & (dep != -1)
        if bad.any():
            raise ValueError(f"{bad.sum()} dependency links are not "
                             "strictly backward")
        if (dep < -1).any():
            raise ValueError("dep < -1 encountered")

    # -- serialization (legacy v7 .npz — see repro.trace.store for the
    # v8 mmap format that cached workload traces actually use) ------------
    def save(self, path) -> None:
        """Write the legacy compressed ``.npz`` form (format v7)."""
        regions = self.address_space.regions
        names = list(regions)
        np.savez_compressed(
            path,
            accesses=self.accesses,
            region_names=np.array(names),
            region_base=np.array([regions[n].base for n in names],
                                 dtype=np.int64),
            region_elem=np.array([regions[n].elem_size for n in names],
                                 dtype=np.int64),
            region_count=np.array([regions[n].num_elems for n in names],
                                  dtype=np.int64),
            region_irr=np.array([regions[n].irregular_hint for n in names]),
            meta=np.array([self.name, self.kernel, self.graph]),
        )

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a legacy v7 ``.npz`` trace (the store's migration source)."""
        with np.load(path, allow_pickle=False) as z:
            space = AddressSpace()
            # Re-register regions preserving their original bases.
            for name, base, elem, count, irr in zip(
                    z["region_names"], z["region_base"], z["region_elem"],
                    z["region_count"], z["region_irr"]):
                from repro.trace.layout import Region
                region = Region(str(name), int(base), int(elem), int(count),
                                bool(irr))
                space.regions[str(name)] = region
                space._starts.append(region.base)
                space._names.append(str(name))
            meta = [str(x) for x in z["meta"]]
            return cls(z["accesses"].copy(), space, *meta)


class TraceBuilder:
    """Incrementally assembles a :class:`Trace` from vectorized chunks."""

    def __init__(self, address_space: AddressSpace, name: str = "trace",
                 kernel: str = "", graph: str = ""):
        self.space = address_space
        self.name = name
        self.kernel = kernel
        self.graph = graph
        self._chunks: list[np.ndarray] = []
        self._length = 0
        self._pcs: dict[str, int] = {}

    def __len__(self) -> int:
        return self._length

    def pc(self, site: str) -> int:
        """Stable PC id for a named static access site."""
        if site not in self._pcs:
            # Spread PCs out like distinct instruction addresses, leaving
            # room for up to 8 unrolled lanes per site (4 bytes apart,
            # see SegmentField.unroll).  The odd multiple-of-4 stride
            # (36) keeps sites from aliasing into the same predictor set.
            self._pcs[site] = 0x40_0000 + 36 * len(self._pcs)
        return self._pcs[site]

    def append_chunk(self, chunk: np.ndarray) -> None:
        """Append a pre-built record chunk, rebasing its dep links."""
        if chunk.dtype != ACCESS_DTYPE:
            raise TypeError("chunk must have ACCESS_DTYPE")
        chunk = chunk.copy()
        dep = chunk["dep"]
        chunk["dep"] = np.where(dep >= 0, dep + self._length, -1)
        self._chunks.append(chunk)
        self._length += len(chunk)

    def emit(self, pc: int, addr, write=False, gap=2, dep_rel=None) -> None:
        """Append a flat run of accesses from one site (vectorized).

        ``addr`` may be scalar or an array; ``dep_rel`` (if given) is a
        negative offset within the run linking each record to an earlier
        one (e.g. -1 = the immediately preceding record in this run).
        """
        addr = np.atleast_1d(np.asarray(addr, dtype=np.uint64))
        n = len(addr)
        chunk = np.zeros(n, dtype=ACCESS_DTYPE)
        chunk["pc"] = pc
        chunk["addr"] = addr
        chunk["write"] = 1 if write else 0
        chunk["gap"] = gap
        if dep_rel is None:
            chunk["dep"] = -1
        else:
            idx = np.arange(n, dtype=np.int64) + dep_rel
            chunk["dep"] = np.where(idx >= 0, idx, -1)
        self.append_chunk(chunk)

    def build(self) -> Trace:
        if self._chunks:
            accesses = np.concatenate(self._chunks)
        else:
            accesses = np.zeros(0, dtype=ACCESS_DTYPE)
        trace = Trace(accesses, self.space, self.name, self.kernel,
                      self.graph)
        trace.validate()
        return trace


@dataclass
class SegmentField:
    """One access site inside an interleaved vertex/edge stream.

    ``addr`` has one element per vertex (header/footer) or per edge
    (edge fields).  ``dep_rel`` links a record to the record ``dep_rel``
    positions earlier in the final stream (must be negative); None means
    independent.  ``mask`` (same length as ``addr``) drops records for
    which it is False — used for conditional stores such as BFS's
    "claim child" write, which only executes on untouched vertices.

    ``unroll`` models compiler loop unrolling: the site is emitted under
    ``unroll`` distinct PCs, cycling with the record index, exactly as
    an unrolled inner loop has one load instruction per lane.  This is
    what puts realistic pressure on small PC-indexed predictor tables.
    """

    pc: int
    addr: np.ndarray
    write: bool = False
    gap: int = 2
    dep_rel: int | None = None
    mask: np.ndarray | None = None
    unroll: int = 1

    def pcs(self) -> np.ndarray | int:
        if self.unroll <= 1:
            return self.pc
        lanes = np.arange(len(self.addr), dtype=np.int64) % self.unroll
        return self.pc + 4 * lanes


def assemble_vertex_edge_stream(
        counts: np.ndarray,
        header: list[SegmentField],
        edge: list[SegmentField],
        footer: list[SegmentField]) -> np.ndarray:
    """Interleave per-vertex and per-edge access sites into one stream.

    The logical program is::

        for each active vertex u (counts[u] edges):
            <header records>
            for each edge j of u:
                <edge records>
            <footer records>

    Returns an ``ACCESS_DTYPE`` array in exactly that order, built with
    pure array arithmetic.
    """
    counts = np.asarray(counts, dtype=np.int64)
    nv = len(counts)
    ne = int(counts.sum())
    h, e, f = len(header), len(edge), len(footer)
    for fld in header + footer:
        if len(fld.addr) != nv:
            raise ValueError("header/footer field length != #vertices")
    for fld in edge:
        if len(fld.addr) != ne:
            raise ValueError("edge field length != #edges")

    total = nv * (h + f) + ne * e
    out = np.zeros(total, dtype=ACCESS_DTYPE)
    out["dep"] = -1
    keep = np.ones(total, dtype=bool)

    oa = np.zeros(nv + 1, dtype=np.int64)
    np.cumsum(counts, out=oa[1:])
    vbase = (h + f) * np.arange(nv, dtype=np.int64) + e * oa[:-1]

    def scatter(pos: np.ndarray, fld: SegmentField) -> None:
        out["pc"][pos] = fld.pcs()
        out["addr"][pos] = fld.addr.astype(np.uint64)
        out["write"][pos] = 1 if fld.write else 0
        out["gap"][pos] = fld.gap
        if fld.dep_rel is not None:
            if fld.dep_rel >= 0:
                raise ValueError("dep_rel must be negative")
            dep = pos + fld.dep_rel
            out["dep"][pos] = np.where(dep >= 0, dep, -1)
        if fld.mask is not None:
            keep[pos] = fld.mask

    for k, fld in enumerate(header):
        scatter(vbase + k, fld)

    if e and ne:
        seg = np.repeat(np.arange(nv, dtype=np.int64), counts)
        within = np.arange(ne, dtype=np.int64) - np.repeat(oa[:-1], counts)
        ebase = vbase[seg] + h + e * within
        for k, fld in enumerate(edge):
            scatter(ebase + k, fld)

    for k, fld in enumerate(footer):
        scatter(vbase + h + e * counts + k, fld)

    if not keep.all():
        out = _compress_stream(out, keep)
    return out


def _compress_stream(out: np.ndarray, keep: np.ndarray) -> np.ndarray:
    """Drop masked-out records, remapping dependency links.

    A dependency on a dropped record is redirected to that record's own
    dependency (transitively none here, since masked records never carry
    deps in practice) or cleared.
    """
    new_index = np.cumsum(keep) - 1            # position after compression
    compressed = out[keep]
    dep = compressed["dep"]
    valid = dep >= 0
    idx = dep[valid]
    # Links to dropped records are cleared; links to kept ones remapped.
    remapped = np.where(keep[idx], new_index[idx], -1)
    dep[valid] = remapped
    compressed["dep"] = dep
    return compressed
