"""Trace analysis utilities: reuse distances, footprints, region stats.

These quantify *why* accesses are cache-averse: an access whose LRU
reuse distance exceeds the cache's block capacity must miss there.  The
per-region reuse profile is the analytical counterpart of the paper's
Fig. 3 stride characterization (used by the analysis example and the
test-suite's cross-checks of simulator behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.trace.record import Trace

INFINITE = np.int64(np.iinfo(np.int64).max)


class _FenwickTree:
    """Binary indexed tree over trace positions (distinct counting)."""

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        i += 1
        s = 0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return int(s)


def reuse_distances(blocks: np.ndarray) -> np.ndarray:
    """LRU stack distance of every access (block granularity).

    The distance is the number of *distinct* blocks touched since the
    previous access to the same block; first-touches get ``INFINITE``.
    O(n log n) via a Fenwick tree over positions.
    """
    blocks = np.asarray(blocks, dtype=np.int64)
    n = len(blocks)
    out = np.full(n, INFINITE, dtype=np.int64)
    last_pos: dict[int, int] = {}
    tree = _FenwickTree(n)
    for i in range(n):
        b = int(blocks[i])
        prev = last_pos.get(b)
        if prev is not None:
            # Distinct blocks in (prev, i) = marks in that window.
            out[i] = tree.prefix(i - 1) - tree.prefix(prev)
            tree.add(prev, -1)
        tree.add(i, +1)
        last_pos[b] = i
    return out


def reuse_cdf(distances: np.ndarray, points: list[int]) -> list[float]:
    """Fraction of (re)accesses with reuse distance <= each point."""
    finite = distances[distances < INFINITE]
    if len(finite) == 0:
        return [0.0] * len(points)
    return [float((finite <= p).mean()) for p in points]


def miss_ratio_curve(blocks: np.ndarray,
                     capacities: list[int]) -> list[float]:
    """Fully-associative LRU miss ratio at each capacity (in blocks).

    Follows directly from the reuse-distance distribution: an access
    misses at capacity C iff its distance >= C (Mattson et al.).
    """
    d = reuse_distances(blocks)
    n = len(d)
    if n == 0:
        return [0.0] * len(capacities)
    return [float((d >= c).mean()) for c in capacities]


def footprint(blocks: np.ndarray) -> int:
    """Number of distinct blocks touched."""
    return len(np.unique(blocks))


def region_reuse_profile(trace: Trace, block_bits: int = 6
                         ) -> dict[str, dict[str, float]]:
    """Per-region footprint and median finite reuse distance."""
    space = trace.address_space
    addrs = trace.accesses["addr"].astype(np.int64)
    blocks = addrs >> block_bits
    rids = space.classify_addresses(addrs)
    d = reuse_distances(blocks)
    names = list(space.regions)
    out: dict[str, dict[str, float]] = {}
    for rid, name in enumerate(names):
        sel = rids == rid
        if not sel.any():
            continue
        dsel = d[sel]
        finite = dsel[dsel < INFINITE]
        out[name] = {
            "accesses": float(sel.sum()),
            "footprint_blocks": float(footprint(blocks[sel])),
            "median_reuse": float(np.median(finite)) if len(finite)
            else float("inf"),
            "cold_fraction": float((dsel == INFINITE).mean()),
        }
    return out
