"""SimPoint-style representative-interval selection (paper §IV-C).

The original SimPoint methodology clusters basic-block vectors of
fixed-length instruction intervals and simulates one representative per
cluster, weighted by cluster size.  Our traces carry static PCs instead
of basic blocks, so the feature vector of an interval is its normalized
PC histogram — the same "what code is executing" signal at the
granularity we have (DESIGN.md substitution #3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.record import Trace


@dataclass(frozen=True)
class SimPoint:
    """One representative interval."""

    start: int        # record index of the interval start
    length: int       # records in the interval
    weight: float     # fraction of the trace this interval represents
    cluster: int


def interval_features(trace: Trace, interval_len: int) -> np.ndarray:
    """Per-interval normalized PC-histogram feature matrix."""
    if interval_len <= 0:
        raise ValueError("interval_len must be positive")
    pcs = trace.accesses["pc"]
    n_intervals = max(1, len(pcs) // interval_len)
    pcs = pcs[:n_intervals * interval_len]
    uniq, inv = np.unique(pcs, return_inverse=True)
    feats = np.zeros((n_intervals, len(uniq)), dtype=np.float64)
    rows = np.repeat(np.arange(n_intervals), interval_len)
    np.add.at(feats, (rows, inv), 1.0)
    feats /= interval_len
    return feats


def select_simpoints(trace: Trace, interval_len: int, k: int = 4,
                     seed: int = 0) -> list[SimPoint]:
    """Pick up to ``k`` representative intervals via k-means clustering.

    Returns SimPoints sorted by start; their weights sum to 1.
    """
    feats = interval_features(trace, interval_len)
    n_intervals = len(feats)
    k = min(k, n_intervals)
    if k <= 1 or n_intervals == 1:
        return [SimPoint(0, min(interval_len, len(trace)), 1.0, 0)]

    from scipy.cluster.vq import kmeans2
    # `minit="++"` with a fixed seed keeps selection deterministic.
    centroids, labels = kmeans2(feats, k, minit="++", seed=seed)

    points: list[SimPoint] = []
    for c in range(k):
        members = np.flatnonzero(labels == c)
        if len(members) == 0:
            continue
        dists = np.linalg.norm(feats[members] - centroids[c], axis=1)
        medoid = int(members[np.argmin(dists)])
        points.append(SimPoint(medoid * interval_len, interval_len,
                               len(members) / n_intervals, c))
    points.sort(key=lambda p: p.start)
    return points


def weighted_metric(points: list[SimPoint],
                    per_point_values: list[float]) -> float:
    """Combine a per-interval metric into the SimPoint-weighted estimate."""
    if len(points) != len(per_point_values):
        raise ValueError("points and values must align")
    total_w = sum(p.weight for p in points)
    if total_w == 0:
        return 0.0
    return sum(p.weight * v for p, v in
               zip(points, per_point_values)) / total_w
