"""Synthetic regular workloads — the SPEC CPU surrogate (§V-B3).

The paper checks that τ_glob = 8 does not hurt general-purpose (SPEC
2006/2017) workloads.  SPEC binaries are unavailable offline, so we
generate cache-friendly access streams of the three archetypes that
dominate SPEC's memory behaviour (DESIGN.md substitution #5)::

    name      access pattern                       SPEC stand-in
    --------  -----------------------------------  -----------------
    stream    sequential sweep, load+store pairs   STREAM/libquantum
    stencil   5-point neighbourhood over 2-D grid  bwaves/lbm
    hotset    uniform-random inside a tiny set     gcc (resident IR)

All three are deterministic in their arguments (``hotset`` draws from
a seeded generator), so they can sit in the same spec-keyed caches as
the graph workloads.

>>> t = streaming_trace(num_accesses=8, array_kib=1)
>>> len(t)
8
>>> [int(w) for w in t.accesses["write"]]
[0, 0, 0, 0, 1, 1, 1, 1]
>>> sorted(regular_suite(num_accesses=600))
['hotset', 'stencil', 'stream']
"""

from __future__ import annotations

import numpy as np

from repro.trace.layout import AddressSpace
from repro.trace.record import Trace, TraceBuilder


def streaming_trace(num_accesses: int = 100_000,
                    array_kib: int = 4096) -> Trace:
    """Pure sequential sweep (e.g. STREAM/libquantum-like)."""
    space = AddressSpace()
    n_elems = array_kib * 1024 // 8
    arr = space.add("stream_array", 8, n_elems)
    tb = TraceBuilder(space, name="synthetic.stream", kernel="stream",
                      graph="synthetic")
    pc = tb.pc("stream.load")
    pc_w = tb.pc("stream.store")
    idx = np.arange(num_accesses // 2) % n_elems
    tb.emit(pc, arr.addr(idx), gap=2)
    tb.emit(pc_w, arr.addr(idx), write=True, gap=2)
    return tb.build()


def stencil_trace(num_accesses: int = 100_000,
                  grid_side: int = 512) -> Trace:
    """5-point stencil over a 2-D grid (e.g. bwaves/lbm-like)."""
    space = AddressSpace()
    n = grid_side * grid_side
    src = space.add("grid_in", 8, n)
    dst = space.add("grid_out", 8, n)
    tb = TraceBuilder(space, name="synthetic.stencil", kernel="stencil",
                      graph="synthetic")
    pcs = [tb.pc(f"stencil.load_{d}") for d in
           ("c", "n", "s", "w", "e")]
    pc_w = tb.pc("stencil.store")
    per_point = 6
    points = num_accesses // per_point
    i = (np.arange(points) % (n - 2 * grid_side - 2)) + grid_side + 1
    for pc, off in zip(pcs, (0, -grid_side, grid_side, -1, 1)):
        tb.emit(pc, src.addr(i + off), gap=1)
    tb.emit(pc_w, dst.addr(i), write=True, gap=2)
    # Interleave by sorting on point id: rebuild in point-major order.
    acc = tb.build().accesses
    order = np.argsort(np.tile(np.arange(points), 6), kind="stable")
    # The 6 chunks are concatenated; reorder to point-major.
    reordered = acc[order]
    reordered["dep"] = -1
    return Trace(reordered, space, "synthetic.stencil", "stencil",
                 "synthetic")


def hot_working_set_trace(num_accesses: int = 100_000,
                          ws_kib: int = 4, seed: int = 0) -> Trace:
    """Random accesses inside a small resident working set (gcc-like).

    Note the size sensitivity this workload probes: random accesses have
    large PC-local strides, so LP routes them to the SDC regardless of
    the set size.  A hot set that fits the SDC runs at SDC latency (no
    harm); one that falls between the SDC and L2 capacities thrashes —
    the adversarial middle ground §V-B3's τ choice trades against (see
    tests/test_synthetic.py::TestAdversarial).
    """
    space = AddressSpace()
    n_elems = ws_kib * 1024 // 8
    arr = space.add("hot_set", 8, n_elems)
    tb = TraceBuilder(space, name="synthetic.hotset", kernel="hotset",
                      graph="synthetic")
    pc = tb.pc("hotset.load")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, n_elems, size=num_accesses)
    tb.emit(pc, arr.addr(idx), gap=3)
    return tb.build()


def regular_suite(num_accesses: int = 100_000,
                  hot_ws_kib: int | None = None) -> dict[str, Trace]:
    """The three regular workloads used as the SPEC stand-in.

    ``hot_ws_kib`` sizes the hot working set; pass ~half the SDC
    capacity of the simulated configuration so the workload is genuinely
    cache-friendly at that scale (see :func:`hot_working_set_trace`).
    """
    return {
        "stream": streaming_trace(num_accesses),
        "stencil": stencil_trace(num_accesses),
        "hotset": hot_working_set_trace(
            num_accesses, ws_kib=hot_ws_kib if hot_ws_kib else 4),
    }
