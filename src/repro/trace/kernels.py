"""Instrumented GAP kernels: execute the algorithm *and* emit the memory
trace its inner loops would issue.

Each tracer mirrors the reference kernel in ``repro.kernels`` closely
enough that the control flow (frontiers, rounds, buckets) is driven by
the real algorithm state, while every load/store of the principal data
structures (OA, NA, weights, property arrays, frontier buffers) is
recorded with its static PC, byte address and producer dependency.

Element sizes follow GAP / paper Table II: OA offsets are 8 B, NA vertex
ids 4 B, property arrays 4 B (BC's dependency array is 8 B), frontier
bitmaps 1 bit per vertex (modelled as byte-granular loads).

:func:`generate_trace` is the dispatch entry point (by GAP short
name); tracing is deterministic in its arguments, which is what lets
the on-disk trace cache (docs/TRACES.md) key entries on the workload
spec without hashing the records.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.trace.layout import AddressSpace
from repro.trace.record import (SegmentField, Trace, TraceBuilder,
                                assemble_vertex_edge_stream)

_BIG = np.int64(1) << 60

# Inner (per-edge) loops are emitted under this many PC lanes,
# modelling compiler loop unrolling (see SegmentField.unroll).
UNROLL = 4


def _finish(tb: TraceBuilder, max_accesses: int | None) -> Trace:
    trace = tb.build()
    if max_accesses is not None and len(trace) > max_accesses:
        trace = trace.slice(0, max_accesses)
        trace.name = tb.name
    return trace


def _full(tb: TraceBuilder, max_accesses: int | None) -> bool:
    return max_accesses is not None and len(tb) >= max_accesses


def _ragged_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(c)`` per count; robust to zero counts."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    return np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)


def _edge_indices(oa: np.ndarray, verts: np.ndarray) -> np.ndarray:
    """Global NA indices of all edges of ``verts``, in traversal order."""
    starts = oa[verts].astype(np.int64)
    counts = (oa[verts + 1] - oa[verts]).astype(np.int64)
    return np.repeat(starts, counts) + _ragged_arange(counts)


# ---------------------------------------------------------------------------
# PageRank (paper Algorithm 1): pull over the CSC.
# ---------------------------------------------------------------------------

def trace_pagerank(graph: CSRGraph, iterations: int = 2,
                   max_accesses: int | None = None) -> Trace:
    """Trace of pull-style PageRank (Algorithm 1, lines 4-15)."""
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("in_oa", 8, n + 1)
    na_r = space.add("in_na", 4, len(graph.in_na))
    scores_r = space.add("scores", 4, n)
    contrib_r = space.add("outgoing_contrib", 4, n, irregular_hint=True)

    tb = TraceBuilder(space, name=f"pr.{graph.name}", kernel="pr",
                      graph=graph.name)
    verts = np.arange(n, dtype=np.int64)
    counts = np.diff(graph.in_oa).astype(np.int64)
    edge_idx = np.arange(len(graph.in_na), dtype=np.int64)
    neigh = graph.in_na.astype(np.int64)

    pc_cload = tb.pc("pr.contrib.load_scores")
    pc_cstore = tb.pc("pr.contrib.store_contrib")
    pc_oa = tb.pc("pr.gather.load_oa")
    pc_na = tb.pc("pr.gather.load_na")
    pc_gather = tb.pc("pr.gather.load_contrib")
    pc_sload = tb.pc("pr.gather.load_score")
    pc_sstore = tb.pc("pr.gather.store_score")

    for _ in range(iterations):
        # Lines 4-6: outgoing_contrib[u] = scores[u] / d+(u) — two
        # interleaved sequential streams.
        tb.append_chunk(assemble_vertex_edge_stream(
            np.zeros(n, dtype=np.int64),
            header=[SegmentField(pc_cload, scores_r.addr(verts), gap=1),
                    SegmentField(pc_cstore, contrib_r.addr(verts),
                                 write=True, gap=2)],
            edge=[], footer=[]))
        if _full(tb, max_accesses):
            break
        # Lines 7-15: gather over incoming neighbours.
        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_oa, oa_r.addr(verts + 1), gap=1)],
            edge=[SegmentField(pc_na, na_r.addr(edge_idx), gap=1,
                               unroll=UNROLL),
                  SegmentField(pc_gather, contrib_r.addr(neigh), gap=2,
                               dep_rel=-1, unroll=UNROLL)],
            footer=[SegmentField(pc_sload, scores_r.addr(verts), gap=2),
                    SegmentField(pc_sstore, scores_r.addr(verts),
                                 write=True, gap=3)]))
        if _full(tb, max_accesses):
            break
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# BFS: direction-optimizing (push + pull), as kernels/bfs.py.
# ---------------------------------------------------------------------------

ALPHA, BETA = 15, 18


def trace_bfs(graph: CSRGraph, source: int = 0,
              max_accesses: int | None = None) -> Trace:
    """Trace of direction-optimizing BFS; also computes the parent array
    (returned via ``trace_bfs.last_parent`` for cross-validation)."""
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1)
    na_r = space.add("out_na", 4, len(graph.out_na))
    ioa_r = space.add("in_oa", 8, n + 1)
    ina_r = space.add("in_na", 4, len(graph.in_na))
    parent_r = space.add("parent", 4, n, irregular_hint=True)
    queue_r = space.add("frontier_queue", 4, max(n, 1))
    # Per-vertex BFS depth used for the bottom-up frontier-membership
    # test (depth[u] == level-1), as level-synchronous implementations
    # do.  GAP uses a 1-bit-per-vertex bitmap instead; at our scaled
    # graph sizes a bitmap would *fit the caches* (|V|/8 bytes vs the
    # scaled LLC) and break the footprint ratio the paper's runs have,
    # where the bitmap itself exceeds the LLC.  The 4 B depth array
    # scales exactly like the other per-vertex property arrays.
    bitmap_r = space.add("depth", 4, max(n, 1), irregular_hint=True)

    tb = TraceBuilder(space, name=f"bfs.{graph.name}", kernel="bfs",
                      graph=graph.name)
    pc_q = tb.pc("bfs.push.load_queue")
    pc_oa = tb.pc("bfs.push.load_oa")
    pc_na = tb.pc("bfs.push.load_na")
    pc_pload = tb.pc("bfs.push.load_parent")
    pc_pstore = tb.pc("bfs.push.store_parent")
    pc_qstore = tb.pc("bfs.push.store_queue")
    pc_bset = tb.pc("bfs.pull.store_bitmap")
    pc_scan = tb.pc("bfs.pull.load_parent_seq")
    pc_ioa = tb.pc("bfs.pull.load_in_oa")
    pc_ina = tb.pc("bfs.pull.load_in_na")
    pc_bget = tb.pc("bfs.pull.load_bitmap")
    pc_pullw = tb.pc("bfs.pull.store_parent")

    parent = np.full(n, -1, dtype=np.int64)
    parent[source] = source
    frontier = np.array([source], dtype=np.int64)
    out_deg = np.diff(graph.out_oa).astype(np.int64)
    edges_to_check = int(out_deg.sum())

    while len(frontier) and not _full(tb, max_accesses):
        scout = int(out_deg[frontier].sum())
        if scout > edges_to_check // ALPHA and len(frontier) > 1:
            frontier = _trace_bfs_pull_phase(
                tb, graph, parent, frontier, n,
                (ioa_r, ina_r, parent_r, bitmap_r),
                (pc_bset, pc_scan, pc_ioa, pc_ina, pc_bget, pc_pullw),
                max_accesses)
        else:
            frontier = _trace_bfs_push_step(
                tb, graph, parent, frontier,
                (oa_r, na_r, parent_r, queue_r),
                (pc_q, pc_oa, pc_na, pc_pload, pc_pstore, pc_qstore))
        edges_to_check -= scout

    trace_bfs.last_parent = parent
    return _finish(tb, max_accesses)


def _trace_bfs_push_step(tb, graph, parent, frontier, regions, pcs):
    oa_r, na_r, parent_r, queue_r = regions
    pc_q, pc_oa, pc_na, pc_pload, pc_pstore, pc_qstore = pcs
    oa, na = graph.out_oa, graph.out_na
    counts = (oa[frontier + 1] - oa[frontier]).astype(np.int64)
    eidx = _edge_indices(oa, frontier)
    dsts = na[eidx].astype(np.int64)

    fresh = parent[dsts] == -1
    # First writer wins within the step (CAS semantics).
    first = np.zeros(len(dsts), dtype=bool)
    if len(dsts):
        uniq, first_idx = np.unique(dsts, return_index=True)
        first[first_idx] = True
    store_mask = fresh & first

    qpos = np.arange(len(frontier), dtype=np.int64) % queue_r.num_elems
    tb.append_chunk(assemble_vertex_edge_stream(
        counts,
        header=[SegmentField(pc_q, queue_r.addr(qpos), gap=1),
                SegmentField(pc_oa, oa_r.addr(frontier), gap=1)],
        edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1, unroll=UNROLL),
              SegmentField(pc_pload, parent_r.addr(dsts), gap=2,
                           dep_rel=-1, unroll=UNROLL),
              SegmentField(pc_pstore, parent_r.addr(dsts), write=True,
                           gap=1, dep_rel=-1, mask=store_mask,
                           unroll=UNROLL)],
        footer=[]))

    won = dsts[store_mask]
    srcs = np.repeat(frontier, counts)[store_mask]
    parent[won] = srcs
    if len(won):
        qpos = np.arange(len(won), dtype=np.int64) % queue_r.num_elems
        tb.emit(pc_qstore, queue_r.addr(qpos), write=True, gap=1)
    return won


def _trace_bfs_pull_phase(tb, graph, parent, frontier, n, regions, pcs,
                          max_accesses):
    ioa_r, ina_r, parent_r, bitmap_r = regions
    pc_bset, pc_scan, pc_ioa, pc_ina, pc_bget, pc_pullw = pcs
    oa, na = graph.in_oa, graph.in_na
    in_frontier = np.zeros(n, dtype=bool)
    in_frontier[frontier] = True
    # Record the frontier's depth values (irregular stores).
    tb.emit(pc_bset, bitmap_r.addr(np.sort(frontier)), write=True,
            gap=1)

    while not _full(tb, max_accesses):
        unvisited = parent == -1
        uv = np.flatnonzero(unvisited)
        # The bottom-up scan reads parent[] for every vertex sequentially;
        # unvisited ones then walk their in-edges until the first frontier
        # neighbour (early exit).
        deg = np.diff(oa).astype(np.int64)
        scanned = np.zeros(n, dtype=np.int64)
        found_parent = np.full(n, -1, dtype=np.int64)
        if len(uv):
            eidx = _edge_indices(oa, uv)
            neigh = na[eidx].astype(np.int64)
            hit = in_frontier[neigh]
            ucounts = deg[uv]
            starts = np.zeros(len(uv), dtype=np.int64)
            np.cumsum(ucounts[:-1], out=starts[1:])
            within = np.arange(len(eidx), dtype=np.int64) - \
                np.repeat(starts, ucounts)
            cand = np.where(hit, within, _BIG)
            nonempty = ucounts > 0
            firsthit = np.full(len(uv), _BIG, dtype=np.int64)
            if nonempty.any():
                red = np.minimum.reduceat(cand, starts[nonempty])
                firsthit[nonempty] = red
            got = firsthit < _BIG
            scanned[uv] = np.where(got, firsthit + 1, ucounts)
            # Record which frontier neighbour was found.
            if got.any():
                hit_edge = starts[got] + firsthit[got]
                found_parent[uv[got]] = neigh[hit_edge]

        # Emit the scan: sequential parent loads for all vertices, edge
        # scans only for unvisited ones.
        verts = np.arange(n, dtype=np.int64)
        counts = scanned
        scan_eidx = _edge_indices_partial(oa, verts, counts)
        scan_neigh = na[scan_eidx].astype(np.int64)
        new_mask = found_parent >= 0
        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_scan, parent_r.addr(verts), gap=1),
                    SegmentField(pc_ioa, ioa_r.addr(verts), gap=1,
                                 mask=unvisited)],
            edge=[SegmentField(pc_ina, ina_r.addr(scan_eidx), gap=1,
                               unroll=UNROLL),
                  SegmentField(pc_bget,
                               bitmap_r.addr(scan_neigh), gap=1,
                               dep_rel=-1, unroll=UNROLL)],
            footer=[SegmentField(pc_pullw, parent_r.addr(verts),
                                 write=True, gap=1, mask=new_mask)]))

        newly = np.flatnonzero(new_mask)
        parent[newly] = found_parent[newly]
        if len(newly) == 0:
            return newly
        if len(newly) < n // BETA:
            return newly
        in_frontier[:] = False
        in_frontier[newly] = True
        tb.emit(pc_bset, bitmap_r.addr(newly), write=True, gap=1)
    return np.empty(0, dtype=np.int64)


def _edge_indices_partial(oa: np.ndarray, verts: np.ndarray,
                          counts: np.ndarray) -> np.ndarray:
    """First ``counts[i]`` NA indices of each vertex (early-exit scans)."""
    starts = oa[verts].astype(np.int64)
    return np.repeat(starts, counts) + _ragged_arange(counts)


# ---------------------------------------------------------------------------
# Connected Components: Shiloach–Vishkin.
# ---------------------------------------------------------------------------

def trace_cc(graph: CSRGraph, max_accesses: int | None = None,
             max_rounds: int = 64) -> Trace:
    """Trace of Shiloach–Vishkin CC (hook + pointer-jump rounds)."""
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1)
    na_r = space.add("out_na", 4, len(graph.out_na))
    comp_r = space.add("comp", 4, n, irregular_hint=True)

    tb = TraceBuilder(space, name=f"cc.{graph.name}", kernel="cc",
                      graph=graph.name)
    pc_oa = tb.pc("cc.hook.load_oa")
    pc_na = tb.pc("cc.hook.load_na")
    pc_cu = tb.pc("cc.hook.load_comp_u")
    pc_cv = tb.pc("cc.hook.load_comp_v")
    pc_hook = tb.pc("cc.hook.store_comp")
    pc_j1 = tb.pc("cc.jump.load_comp")
    pc_j2 = tb.pc("cc.jump.load_comp_comp")
    pc_jw = tb.pc("cc.jump.store_comp")

    comp = np.arange(n, dtype=np.int64)
    verts = np.arange(n, dtype=np.int64)
    counts = np.diff(graph.out_oa).astype(np.int64)
    eidx = np.arange(len(graph.out_na), dtype=np.int64)
    dsts = graph.out_na.astype(np.int64)
    srcs = np.repeat(verts, counts)

    for _ in range(max_rounds):
        if _full(tb, max_accesses):
            break
        cs, cd = comp[srcs], comp[dsts]
        lo, hi = np.minimum(cs, cd), np.maximum(cs, cd)
        diff = lo != hi
        # Deterministic hooking: smallest lo per hi wins (as cc.py).
        win = np.zeros(len(eidx), dtype=bool)
        if diff.any():
            d_idx = np.flatnonzero(diff)
            order = np.lexsort((lo[d_idx], hi[d_idx]))
            ordered = d_idx[order]
            first = np.ones(len(ordered), dtype=bool)
            first[1:] = hi[ordered][1:] != hi[ordered][:-1]
            win[ordered[first]] = True

        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_oa, oa_r.addr(verts + 1), gap=1),
                    SegmentField(pc_cu, comp_r.addr(verts), gap=1)],
            edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1,
                               unroll=UNROLL),
                  SegmentField(pc_cv, comp_r.addr(dsts), gap=2,
                               dep_rel=-1, unroll=UNROLL),
                  SegmentField(pc_hook, comp_r.addr(hi), write=True,
                               gap=1, dep_rel=-1, mask=win,
                               unroll=UNROLL)],
            footer=[]))
        if not diff.any():
            break
        comp[hi[win]] = lo[win]

        # Pointer jumping until flat.
        while not _full(tb, max_accesses):
            nxt = comp[comp]
            changed = nxt != comp
            tb.append_chunk(assemble_vertex_edge_stream(
                np.zeros(n, dtype=np.int64),
                header=[SegmentField(pc_j1, comp_r.addr(verts), gap=1),
                        SegmentField(pc_j2, comp_r.addr(comp), gap=1,
                                     dep_rel=-1),
                        SegmentField(pc_jw, comp_r.addr(verts),
                                     write=True, gap=1, mask=changed)],
                edge=[], footer=[]))
            if not changed.any():
                break
            comp = nxt

    trace_cc.last_comp = comp
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# Triangle Counting: rank-oriented adjacency intersections.
# ---------------------------------------------------------------------------

def trace_tc(graph: CSRGraph, max_accesses: int | None = None,
             scan_cap: int = 16) -> Trace:
    """Trace of TC's intersection loop.

    For each oriented edge (u, v) the kernel loads v from NA, indexes
    OA[v] (the irregular access — v comes from graph data) and then scans
    a prefix of v's adjacency (capped at ``scan_cap``, standing in for the
    merge loop whose cost is bounded by the smaller list).
    """
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1, irregular_hint=True)
    na_r = space.add("out_na", 4, len(graph.out_na), irregular_hint=True)

    tb = TraceBuilder(space, name=f"tc.{graph.name}", kernel="tc",
                      graph=graph.name)
    pc_oau = tb.pc("tc.load_oa_u")
    pc_na = tb.pc("tc.load_na_edge")
    pc_oav = tb.pc("tc.load_oa_v")
    pc_scan = tb.pc("tc.load_na_scan")

    deg = np.diff(graph.out_oa).astype(np.int64)
    verts = np.arange(n, dtype=np.int64)
    # Rank orientation: keep edges toward higher (degree, id).
    rank = np.zeros(n, dtype=np.int64)
    rank[np.lexsort((verts, deg))] = np.arange(n)
    srcs = np.repeat(verts, deg)
    dsts = graph.out_na.astype(np.int64)
    keep = rank[srcs] < rank[dsts]
    eidx = np.flatnonzero(keep)
    srcs, dsts = srcs[keep], dsts[keep]

    # Per-u header stream: load OA[u] for each vertex (sequential).
    tb.append_chunk(assemble_vertex_edge_stream(
        np.zeros(n, dtype=np.int64),
        header=[SegmentField(pc_oau, oa_r.addr(verts), gap=1)],
        edge=[], footer=[]))

    scan_len = np.minimum(deg[dsts], scan_cap)
    scan_idx = _edge_indices_partial(graph.out_oa, dsts, scan_len)
    tb.append_chunk(assemble_vertex_edge_stream(
        scan_len,
        header=[SegmentField(pc_na, na_r.addr(eidx), gap=1),
                SegmentField(pc_oav, oa_r.addr(dsts), gap=2, dep_rel=-1)],
        edge=[SegmentField(pc_scan, na_r.addr(scan_idx), gap=1,
                           dep_rel=None, unroll=UNROLL)],
        footer=[]))
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# Betweenness Centrality: Brandes forward/backward sweeps.
# ---------------------------------------------------------------------------

def trace_bc(graph: CSRGraph, num_sources: int = 2, seed: int = 0,
             max_accesses: int | None = None) -> Trace:
    """Trace of Brandes BC from a sample of sources (GAP-style)."""
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1)
    na_r = space.add("out_na", 4, len(graph.out_na))
    ioa_r = space.add("in_oa", 8, n + 1)
    ina_r = space.add("in_na", 4, len(graph.in_na))
    depth_r = space.add("depth", 4, n, irregular_hint=True)
    sigma_r = space.add("sigma", 4, n, irregular_hint=True)
    delta_r = space.add("delta", 8, n, irregular_hint=True)
    queue_r = space.add("frontier_queue", 4, max(n, 1))

    tb = TraceBuilder(space, name=f"bc.{graph.name}", kernel="bc",
                      graph=graph.name)
    pc_q = tb.pc("bc.fwd.load_queue")
    pc_oa = tb.pc("bc.fwd.load_oa")
    pc_na = tb.pc("bc.fwd.load_na")
    pc_dload = tb.pc("bc.fwd.load_depth")
    pc_dstore = tb.pc("bc.fwd.store_depth")
    pc_sload = tb.pc("bc.fwd.load_sigma")
    pc_sstore = tb.pc("bc.fwd.store_sigma")
    pc_bq = tb.pc("bc.bwd.load_queue")
    pc_bioa = tb.pc("bc.bwd.load_in_oa")
    pc_bina = tb.pc("bc.bwd.load_in_na")
    pc_bdep = tb.pc("bc.bwd.load_depth")
    pc_bsig = tb.pc("bc.bwd.load_sigma")
    pc_bdel_v = tb.pc("bc.bwd.load_delta_v")
    pc_bdel = tb.pc("bc.bwd.store_delta")

    rng = np.random.default_rng(seed)
    deg = np.diff(graph.out_oa).astype(np.int64)
    candidates = np.flatnonzero(deg > 0)
    if len(candidates) == 0:
        return _finish(tb, max_accesses)
    sources = rng.choice(candidates,
                         size=min(num_sources, len(candidates)),
                         replace=False)

    oa, na = graph.out_oa, graph.out_na
    ioa, ina = graph.in_oa, graph.in_na

    for s in sources:
        if _full(tb, max_accesses):
            break
        depth = np.full(n, -1, dtype=np.int64)
        sigma = np.zeros(n, dtype=np.float64)
        depth[int(s)] = 0
        sigma[int(s)] = 1.0
        levels = [np.array([int(s)], dtype=np.int64)]
        d = 0
        frontier = levels[0]
        while len(frontier) and not _full(tb, max_accesses):
            counts = (oa[frontier + 1] - oa[frontier]).astype(np.int64)
            eidx = _edge_indices(oa, frontier)
            dsts = na[eidx].astype(np.int64)
            fresh = depth[dsts] == -1
            next_lvl = fresh | (depth[dsts] == d + 1)
            qpos = np.arange(len(frontier), dtype=np.int64) % n
            tb.append_chunk(assemble_vertex_edge_stream(
                counts,
                header=[SegmentField(pc_q, queue_r.addr(qpos), gap=1),
                        SegmentField(pc_oa, oa_r.addr(frontier), gap=1)],
                edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1,
                                   unroll=UNROLL),
                      SegmentField(pc_dload, depth_r.addr(dsts), gap=2,
                                   dep_rel=-1, unroll=UNROLL),
                      SegmentField(pc_dstore, depth_r.addr(dsts),
                                   write=True, gap=1, dep_rel=-1,
                                   mask=fresh, unroll=UNROLL),
                      SegmentField(pc_sload, sigma_r.addr(dsts), gap=1,
                                   dep_rel=-2, unroll=UNROLL),
                      SegmentField(pc_sstore, sigma_r.addr(dsts),
                                   write=True, gap=1, dep_rel=-1,
                                   mask=next_lvl, unroll=UNROLL)],
                footer=[]))
            # Update algorithm state.
            np.add.at(sigma, dsts[next_lvl],
                      sigma[np.repeat(frontier, counts)[next_lvl]])
            depth[dsts[fresh]] = d + 1
            frontier = np.flatnonzero(depth == d + 1)
            if len(frontier):
                levels.append(frontier)
            d += 1

        # Backward accumulation (pull over in-edges, deepest level first).
        delta = np.zeros(n, dtype=np.float64)
        for frontier in reversed(levels[1:]):
            if _full(tb, max_accesses):
                break
            counts = (ioa[frontier + 1] - ioa[frontier]).astype(np.int64)
            eidx = _edge_indices(ioa, frontier)
            preds = ina[eidx].astype(np.int64)
            vrep = np.repeat(frontier, counts)
            is_pred = depth[preds] == depth[vrep] - 1
            qpos = np.arange(len(frontier), dtype=np.int64) % n
            tb.append_chunk(assemble_vertex_edge_stream(
                counts,
                header=[SegmentField(pc_bq, queue_r.addr(qpos), gap=1),
                        SegmentField(pc_bdel_v, delta_r.addr(frontier),
                                     gap=1),
                        SegmentField(pc_bioa, ioa_r.addr(frontier),
                                     gap=1)],
                edge=[SegmentField(pc_bina, ina_r.addr(eidx), gap=1,
                                   unroll=UNROLL),
                      SegmentField(pc_bdep, depth_r.addr(preds), gap=2,
                                   dep_rel=-1, unroll=UNROLL),
                      SegmentField(pc_bsig, sigma_r.addr(preds), gap=1,
                                   dep_rel=-2, unroll=UNROLL),
                      SegmentField(pc_bdel, delta_r.addr(preds),
                                   write=True, gap=2, dep_rel=-1,
                                   mask=is_pred, unroll=UNROLL)],
                footer=[]))
            coeff = np.where(sigma[frontier] > 0,
                             (1.0 + delta[frontier]) / np.where(
                                 sigma[frontier] > 0, sigma[frontier], 1),
                             0.0)
            np.add.at(delta, preds[is_pred],
                      sigma[preds[is_pred]] *
                      np.repeat(coeff, counts)[is_pred])
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# SSSP: Δ-stepping.
# ---------------------------------------------------------------------------

def trace_sssp(graph: CSRGraph, source: int = 0,
               delta: int | None = None,
               max_accesses: int | None = None) -> Trace:
    """Trace of Δ-stepping SSSP (bucketed Bellman-Ford relaxations)."""
    if graph.out_weights is None:
        raise ValueError("SSSP tracing requires a weighted graph")
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1)
    na_r = space.add("out_na", 4, len(graph.out_na))
    w_r = space.add("weights", 4, len(graph.out_na))
    dist_r = space.add("dist", 4, n, irregular_hint=True)
    bucket_r = space.add("bucket_queue", 4, max(n, 1))

    tb = TraceBuilder(space, name=f"sssp.{graph.name}", kernel="sssp",
                      graph=graph.name)
    pc_bq = tb.pc("sssp.load_bucket")
    pc_du = tb.pc("sssp.load_dist_u")
    pc_oa = tb.pc("sssp.load_oa")
    pc_na = tb.pc("sssp.load_na")
    pc_w = tb.pc("sssp.load_weight")
    pc_dv = tb.pc("sssp.load_dist_v")
    pc_st = tb.pc("sssp.store_dist")
    pc_bst = tb.pc("sssp.store_bucket")

    from repro.kernels.sssp import INF
    oa, na = graph.out_oa, graph.out_na
    w = graph.out_weights.astype(np.int64)
    if delta is None:
        delta = max(1, int(w.mean())) if len(w) else 1

    dist = np.full(n, INF, dtype=np.int64)
    dist[source] = 0
    current = 0

    while not _full(tb, max_accesses):
        # Find the lowest non-empty bucket.
        finite = dist < INF
        unsettled = finite & (dist >= current * delta)
        if not unsettled.any():
            break
        current = int(dist[unsettled].min()) // delta
        lo, hi = current * delta, (current + 1) * delta

        # Settle bucket `current` with repeated light passes.  A vertex is
        # (re)processed whenever its distance is below the value it was
        # last processed at, so within-bucket improvements propagate.
        processed_dist = np.full(n, INF, dtype=np.int64)
        touched = np.zeros(n, dtype=bool)
        while not _full(tb, max_accesses):
            in_bucket = (dist >= lo) & (dist < hi) & \
                (dist < processed_dist)
            f = np.flatnonzero(in_bucket)
            if len(f) == 0:
                break
            processed_dist[f] = dist[f]
            touched[f] = True
            if not _trace_sssp_relax(tb, graph, dist, f, w, delta,
                                     light=True, regions=(oa_r, na_r, w_r,
                                                          dist_r, bucket_r),
                                     pcs=(pc_bq, pc_du, pc_oa, pc_na, pc_w,
                                          pc_dv, pc_st, pc_bst)):
                break
        # One heavy pass over everything processed in this bucket.
        f = np.flatnonzero(touched)
        if len(f):
            _trace_sssp_relax(tb, graph, dist, f, w, delta, light=False,
                              regions=(oa_r, na_r, w_r, dist_r, bucket_r),
                              pcs=(pc_bq, pc_du, pc_oa, pc_na, pc_w,
                                   pc_dv, pc_st, pc_bst))
        current += 1

    trace_sssp.last_dist = dist
    return _finish(tb, max_accesses)


def _trace_sssp_relax(tb, graph, dist, frontier, w, delta, light,
                      regions, pcs) -> bool:
    """Relax the light or heavy out-edges of ``frontier``.

    Returns True when any distance improved.
    """
    oa_r, na_r, w_r, dist_r, bucket_r = regions
    pc_bq, pc_du, pc_oa, pc_na, pc_w, pc_dv, pc_st, pc_bst = pcs
    oa, na = graph.out_oa, graph.out_na
    counts = (oa[frontier + 1] - oa[frontier]).astype(np.int64)
    eidx = _edge_indices(oa, frontier)
    dsts = na[eidx].astype(np.int64)
    we = w[eidx]
    sel = (we < delta) if light else (we >= delta)
    cand = np.repeat(dist[frontier], counts) + we
    improved = sel & (cand < dist[dsts])
    qpos = np.arange(len(frontier), dtype=np.int64) % bucket_r.num_elems

    tb.append_chunk(assemble_vertex_edge_stream(
        counts,
        header=[SegmentField(pc_bq, bucket_r.addr(qpos), gap=1),
                SegmentField(pc_du, dist_r.addr(frontier), gap=1),
                SegmentField(pc_oa, oa_r.addr(frontier), gap=1)],
        edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1, unroll=UNROLL),
              SegmentField(pc_w, w_r.addr(eidx), gap=1, unroll=UNROLL),
              SegmentField(pc_dv, dist_r.addr(dsts), gap=2, dep_rel=-2,
                           unroll=UNROLL),
              SegmentField(pc_st, dist_r.addr(dsts), write=True, gap=1,
                           dep_rel=-1, mask=improved, unroll=UNROLL)],
        footer=[]))
    if improved.any():
        # Min-reduce concurrent relaxations of the same destination.
        np.minimum.at(dist, dsts[improved], cand[improved])
        nq = np.flatnonzero(improved)
        tb.emit(pc_bst,
                bucket_r.addr(np.arange(len(nq)) % bucket_r.num_elems),
                write=True, gap=1)
        return True
    return False


# ---------------------------------------------------------------------------
# Random walks: node2vec-style sampling (post-paper family, docs/WORKLOADS.md).
# ---------------------------------------------------------------------------

def trace_rw(graph: CSRGraph, num_walks: int = 64,
             walk_length: int = 16, seed: int = 0,
             restart: float = 0.15,
             max_accesses: int | None = None) -> Trace:
    """Trace of seeded random walks (mirrors ``kernels.random_walks``).

    Per step and walker: a sequential walk-state load, an irregular
    OA load at the walker's current vertex, a dependent NA load of the
    sampled neighbour, and an irregular visit-counter store — a pure
    pointer-chase with almost no spatial reuse, the adversarial case
    for stride prefetchers and the friendly case for LP/SDC.
    """
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1, irregular_hint=True)
    na_r = space.add("out_na", 4, max(len(graph.out_na), 1),
                     irregular_hint=True)
    visit_r = space.add("visits", 4, max(n, 1), irregular_hint=True)
    walk_r = space.add("walk_state", 4, max(num_walks, 1))

    tb = TraceBuilder(space, name=f"rw.{graph.name}", kernel="rw",
                      graph=graph.name)
    pc_walk = tb.pc("rw.load_walk_state")
    pc_oa = tb.pc("rw.load_oa")
    pc_na = tb.pc("rw.load_na_sample")
    pc_visit = tb.pc("rw.store_visit")

    if n == 0 or num_walks <= 0:
        return _finish(tb, max_accesses)
    rng = np.random.default_rng(seed)
    deg = np.diff(graph.out_oa).astype(np.int64)
    candidates = np.flatnonzero(deg > 0)
    if len(candidates) == 0:
        return _finish(tb, max_accesses)
    starts = candidates[rng.integers(0, len(candidates),
                                     size=num_walks)]
    cur = starts.copy()
    walk_ids = np.arange(num_walks, dtype=np.int64)
    tb.emit(pc_visit, visit_r.addr(cur), write=True, gap=1)

    for _ in range(walk_length):
        if _full(tb, max_accesses):
            break
        teleport = rng.random(num_walks) < restart
        pick = rng.random(num_walks)
        d = deg[cur]
        teleport |= d == 0
        offs = np.minimum((pick * np.maximum(d, 1)).astype(np.int64),
                          np.maximum(d - 1, 0))
        eidx = graph.out_oa[cur].astype(np.int64) + offs
        nxt = np.where(teleport, starts,
                       graph.out_na[eidx].astype(np.int64))
        counts = np.where(teleport, 0, 1).astype(np.int64)
        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_walk, walk_r.addr(walk_ids), gap=1),
                    SegmentField(pc_oa, oa_r.addr(cur), gap=1)],
            edge=[SegmentField(pc_na, na_r.addr(eidx[~teleport]),
                               gap=2, dep_rel=-1)],
            footer=[SegmentField(pc_visit, visit_r.addr(nxt),
                                 write=True, gap=1)]))
        cur = nxt
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# Gather-scatter: GNN feature aggregation (post-paper family).
# ---------------------------------------------------------------------------

def trace_gs(graph: CSRGraph, feature_dim: int = 16, rounds: int = 2,
             max_accesses: int | None = None) -> Trace:
    """Trace of mean feature aggregation (``kernels.gather_scatter``).

    Shaped like PageRank's pull — OA walk, NA loads, data-dependent
    gathers — but the irregular element is a whole ``4 * feature_dim``
    byte feature row instead of a 4 B scalar, so each gather spans
    multiple cache lines (the large-irregular-element case the paper's
    Table II does not cover).
    """
    n = graph.num_vertices
    space = AddressSpace()
    oa_r = space.add("in_oa", 8, n + 1)
    na_r = space.add("in_na", 4, max(len(graph.in_na), 1))
    feat_r = space.add("feat_in", 4 * feature_dim, max(n, 1),
                       irregular_hint=True)
    out_r = space.add("feat_out", 4 * feature_dim, max(n, 1))

    tb = TraceBuilder(space, name=f"gs.{graph.name}", kernel="gs",
                      graph=graph.name)
    pc_oa = tb.pc("gs.load_oa")
    pc_na = tb.pc("gs.load_na")
    pc_gather = tb.pc("gs.load_feat")
    pc_self = tb.pc("gs.load_feat_self")
    pc_store = tb.pc("gs.store_feat")

    verts = np.arange(n, dtype=np.int64)
    counts = np.diff(graph.in_oa).astype(np.int64)
    edge_idx = np.arange(len(graph.in_na), dtype=np.int64)
    neigh = graph.in_na.astype(np.int64)

    for _ in range(rounds):
        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_oa, oa_r.addr(verts + 1), gap=1)],
            edge=[SegmentField(pc_na, na_r.addr(edge_idx), gap=1,
                               unroll=UNROLL),
                  SegmentField(pc_gather, feat_r.addr(neigh), gap=2,
                               dep_rel=-1, unroll=UNROLL)],
            footer=[SegmentField(pc_self, feat_r.addr(verts), gap=2),
                    SegmentField(pc_store, out_r.addr(verts),
                                 write=True, gap=3)]))
        if _full(tb, max_accesses):
            break
    return _finish(tb, max_accesses)


# ---------------------------------------------------------------------------
# Dynamic-graph updates interleaved with queries (post-paper family).
# ---------------------------------------------------------------------------

def trace_dyn(graph: CSRGraph, batches: int = 4, batch_size: int = 256,
              seed: int = 0, max_accesses: int | None = None) -> Trace:
    """Trace of update batches + queries (``kernels.dynamic_updates``).

    Each batch's update phase *mutates structure* — irregular degree
    stores, NA tombstone writes, sequential insert-log appends —
    which no static GAP kernel ever does; the following query phase is
    a BFS reachability probe (even batches) or a PageRank-style
    scatter (odd batches) over the live overlay, with a sequential
    insert-log rescan per step.  RNG draws replicate the reference
    kernel's order exactly, so the trace is a pure function of
    ``(graph, batches, batch_size, seed)``.
    """
    n = graph.num_vertices
    e = graph.num_edges
    space = AddressSpace()
    oa_r = space.add("out_oa", 8, n + 1, irregular_hint=True)
    na_r = space.add("out_na", 4, max(e, 1), irregular_hint=True)
    deg_r = space.add("degree", 4, max(n, 1), irregular_hint=True)
    log_r = space.add("insert_log", 8,
                      max(batches * batch_size, 1))
    seen_r = space.add("seen", 4, max(n, 1), irregular_hint=True)
    mass_r = space.add("mass", 4, max(n, 1), irregular_hint=True)

    tb = TraceBuilder(space, name=f"dyn.{graph.name}", kernel="dyn",
                      graph=graph.name)
    pc_doa = tb.pc("dyn.del.load_oa")
    pc_dna = tb.pc("dyn.del.store_na_tombstone")
    pc_ddeg = tb.pc("dyn.del.store_degree")
    pc_ioa = tb.pc("dyn.ins.load_oa")
    pc_ilog = tb.pc("dyn.ins.store_log")
    pc_ideg = tb.pc("dyn.ins.store_degree")
    pc_qoa = tb.pc("dyn.bfs.load_oa")
    pc_qna = tb.pc("dyn.bfs.load_na")
    pc_qseen = tb.pc("dyn.bfs.load_seen")
    pc_qset = tb.pc("dyn.bfs.store_seen")
    pc_qlog = tb.pc("dyn.query.load_log")
    pc_poa = tb.pc("dyn.pr.load_oa")
    pc_pna = tb.pc("dyn.pr.load_na")
    pc_pmass = tb.pc("dyn.pr.load_mass")
    pc_pst = tb.pc("dyn.pr.store_mass")

    if n == 0:
        return _finish(tb, max_accesses)
    rng = np.random.default_rng(seed)
    alive = np.ones(e, dtype=bool)
    src_of = np.repeat(np.arange(n, dtype=np.int64),
                       np.diff(graph.out_oa))
    log_len = 0

    for b in range(batches):
        if _full(tb, max_accesses):
            break
        # Update phase: deletions then insertions (kernel's RNG order).
        ndel = min(batch_size // 2, e)
        if ndel:
            del_idx = rng.integers(0, e, size=ndel)
            alive[del_idx] = False
            du = src_of[del_idx]
            tb.append_chunk(assemble_vertex_edge_stream(
                np.zeros(ndel, dtype=np.int64),
                header=[SegmentField(pc_doa, oa_r.addr(du), gap=1),
                        SegmentField(pc_dna, na_r.addr(del_idx),
                                     write=True, gap=1),
                        SegmentField(pc_ddeg, deg_r.addr(du),
                                     write=True, gap=2)],
                edge=[], footer=[]))
        new = rng.integers(0, n, size=(batch_size - ndel, 2))
        new = new[new[:, 0] != new[:, 1]]
        if len(new):
            slots = log_len + np.arange(len(new), dtype=np.int64)
            log_len += len(new)
            tb.append_chunk(assemble_vertex_edge_stream(
                np.zeros(len(new), dtype=np.int64),
                header=[SegmentField(pc_ioa, oa_r.addr(new[:, 0]),
                                     gap=1),
                        SegmentField(pc_ilog, log_r.addr(slots),
                                     write=True, gap=1),
                        SegmentField(pc_ideg, deg_r.addr(new[:, 0]),
                                     write=True, gap=2)],
                edge=[], footer=[]))
        if _full(tb, max_accesses):
            break
        # Query phase: BFS probe (even) / PR scatter (odd).
        if b % 2 == 0:
            _trace_dyn_bfs(tb, graph, alive, int(rng.integers(0, n)),
                           log_len, (oa_r, na_r, seen_r, log_r),
                           (pc_qoa, pc_qna, pc_qseen, pc_qset, pc_qlog),
                           max_accesses)
        else:
            _trace_dyn_pr(tb, graph, alive, log_len,
                          (oa_r, na_r, mass_r, log_r),
                          (pc_poa, pc_pna, pc_pmass, pc_pst, pc_qlog))
    return _finish(tb, max_accesses)


def _trace_dyn_bfs(tb, graph, alive, source, log_len, regions, pcs,
                   max_accesses):
    """BFS reachability probe over the live overlay (push only)."""
    oa_r, na_r, seen_r, log_r = regions
    pc_oa, pc_na, pc_seen, pc_set, pc_log = pcs
    n = graph.num_vertices
    oa, na = graph.out_oa, graph.out_na
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    while len(frontier) and not _full(tb, max_accesses):
        counts = (oa[frontier + 1] - oa[frontier]).astype(np.int64)
        eidx = _edge_indices(oa, frontier)
        dsts = na[eidx].astype(np.int64)
        fresh = alive[eidx] & ~seen[dsts]
        first = np.zeros(len(dsts), dtype=bool)
        if len(dsts):
            _, first_idx = np.unique(dsts, return_index=True)
            first[first_idx] = True
        store = fresh & first
        tb.append_chunk(assemble_vertex_edge_stream(
            counts,
            header=[SegmentField(pc_oa, oa_r.addr(frontier), gap=1)],
            edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1,
                               unroll=UNROLL),
                  SegmentField(pc_seen, seen_r.addr(dsts), gap=2,
                               dep_rel=-1, unroll=UNROLL),
                  SegmentField(pc_set, seen_r.addr(dsts), write=True,
                               gap=1, dep_rel=-1, mask=store,
                               unroll=UNROLL)],
            footer=[]))
        if log_len:
            tb.emit(pc_log,
                    log_r.addr(np.arange(log_len, dtype=np.int64)),
                    gap=1)
        nxt = np.unique(dsts[store])
        seen[nxt] = True
        frontier = nxt


def _trace_dyn_pr(tb, graph, alive, log_len, regions, pcs):
    """One PageRank-style scatter pass over the live overlay."""
    oa_r, na_r, mass_r, log_r = regions
    pc_oa, pc_na, pc_mass, pc_st, pc_log = pcs
    n = graph.num_vertices
    verts = np.arange(n, dtype=np.int64)
    counts = np.diff(graph.out_oa).astype(np.int64)
    eidx = np.arange(graph.num_edges, dtype=np.int64)
    dsts = graph.out_na.astype(np.int64)
    tb.append_chunk(assemble_vertex_edge_stream(
        counts,
        header=[SegmentField(pc_oa, oa_r.addr(verts + 1), gap=1)],
        edge=[SegmentField(pc_na, na_r.addr(eidx), gap=1,
                           unroll=UNROLL),
              SegmentField(pc_mass, mass_r.addr(dsts), gap=2,
                           dep_rel=-1, unroll=UNROLL),
              SegmentField(pc_st, mass_r.addr(dsts), write=True, gap=1,
                           dep_rel=-1, mask=alive, unroll=UNROLL)],
        footer=[]))
    if log_len:
        tb.emit(pc_log, log_r.addr(np.arange(log_len, dtype=np.int64)),
                gap=1)


TRACERS = {
    "pr": trace_pagerank,
    "bfs": trace_bfs,
    "cc": trace_cc,
    "tc": trace_tc,
    "bc": trace_bc,
    "sssp": trace_sssp,
    "rw": trace_rw,
    "gs": trace_gs,
    "dyn": trace_dyn,
}


def generate_trace(kernel: str, graph: CSRGraph,
                   max_accesses: int | None = None, **kwargs) -> Trace:
    """Dispatch to the instrumented kernel by short name.

    ``kernel`` is one of :data:`TRACERS` — the six GAP kernels
    (``bfs``/``pr``/``cc``/``bc``/``tc``/``sssp``) plus the
    post-paper families (``rw``/``gs``/``dyn``, docs/WORKLOADS.md);
    ``graph`` is the CSR input the algorithm actually runs over, so
    the trace reflects that graph's degree distribution and neighbour
    ordering.

    ``max_accesses`` caps the trace length: generation runs the real
    algorithm (all frontiers/rounds/buckets) but stops emitting once
    the builder holds at least that many records, then windows the
    result with :meth:`Trace.slice` — dependency links into the cut
    region are clamped, and record ``max_accesses`` is the last one
    kept.  ``None`` traces the run to completion (can be very large).

    Remaining ``kwargs`` pass through to the specific tracer:
    ``iterations`` (pr), ``source`` (bfs/sssp), ``num_sources``/
    ``seed`` (bc), ``delta`` (sssp), ``max_rounds`` (cc), ``scan_cap``
    (tc), ``num_walks``/``walk_length``/``seed``/``restart`` (rw),
    ``feature_dim``/``rounds`` (gs), ``batches``/``batch_size``/
    ``seed`` (dyn).  The result is deterministic in
    ``(kernel, graph, arguments)`` — there is no hidden RNG — which is
    what lets the trace cache key on the spec alone (docs/TRACES.md).

    Generation is pure: the returned in-memory :class:`Trace` is not
    cached or written anywhere.  For cached, memory-mapped workload
    traces go through
    :func:`repro.experiments.workloads.workload_trace`.
    """
    try:
        fn = TRACERS[kernel]
    except KeyError:
        raise ValueError(f"unknown kernel {kernel!r}; "
                         f"choose from {sorted(TRACERS)}") from None
    return fn(graph, max_accesses=max_accesses, **kwargs)
