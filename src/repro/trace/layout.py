"""Virtual address-space layout for traced workloads.

Every program array (OA, NA, property arrays, frontier queues, ...) is
registered with the :class:`AddressSpace`, which assigns it a
page-aligned base address.  The resulting region table serves three
consumers:

* the instrumented kernels, which translate ``array[index]`` into a byte
  address;
* the Expert Programmer baseline, which classifies *regions* (data
  structures) as cache-averse from profiled statistics (paper §IV-E);
* per-region reporting in the experiment harness.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

import numpy as np

PAGE = 4096
BASE_ADDRESS = 0x10_0000_0000  # arbitrary start well above null


@dataclass(frozen=True)
class Region:
    """One named array in the traced program's address space."""

    name: str
    base: int
    elem_size: int
    num_elems: int
    irregular_hint: bool = False  # static kernel-author annotation

    @property
    def size(self) -> int:
        return self.elem_size * self.num_elems

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, index):
        """Byte address of ``self[index]`` (scalar or ndarray)."""
        return self.base + np.asarray(index, dtype=np.int64) * self.elem_size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


@dataclass
class AddressSpace:
    """Ordered collection of non-overlapping :class:`Region` objects."""

    regions: dict[str, Region] = field(default_factory=dict)
    _next_base: int = BASE_ADDRESS
    _starts: list[int] = field(default_factory=list)
    _names: list[str] = field(default_factory=list)

    def add(self, name: str, elem_size: int, num_elems: int,
            irregular_hint: bool = False) -> Region:
        """Register an array; returns its :class:`Region`."""
        if name in self.regions:
            raise ValueError(f"region {name!r} already registered")
        if elem_size <= 0 or num_elems < 0:
            raise ValueError("elem_size must be positive, num_elems >= 0")
        region = Region(name, self._next_base, elem_size, num_elems,
                        irregular_hint)
        self.regions[name] = region
        self._starts.append(region.base)
        self._names.append(name)
        size = max(region.size, 1)
        self._next_base += (size + PAGE - 1) // PAGE * PAGE + PAGE
        return region

    def __getitem__(self, name: str) -> Region:
        return self.regions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.regions

    def region_of(self, addr: int) -> Region | None:
        """Find the region containing a byte address (None if unmapped)."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        region = self.regions[self._names[i]]
        return region if region.contains(addr) else None

    def region_ids(self) -> dict[str, int]:
        """Stable name -> small-integer id mapping (trace serialization)."""
        return {name: i for i, name in enumerate(self._names)}

    def classify_addresses(self, addrs: np.ndarray) -> np.ndarray:
        """Vectorized region id per address (-1 for unmapped)."""
        starts = np.asarray(self._starts, dtype=np.int64)
        idx = np.searchsorted(starts, addrs, side="right") - 1
        out = np.full(len(addrs), -1, dtype=np.int32)
        valid = idx >= 0
        for i, name in enumerate(self._names):
            r = self.regions[name]
            sel = valid & (idx == i) & (addrs < r.end)
            out[sel] = i
        return out

    def describe(self) -> str:
        lines = []
        for name in self._names:
            r = self.regions[name]
            flag = " (irregular hint)" if r.irregular_hint else ""
            lines.append(f"{name:<24} base=0x{r.base:012x} "
                         f"{r.num_elems:>10} x {r.elem_size}B "
                         f"= {r.size / 1024:10.1f} KiB{flag}")
        return "\n".join(lines)
