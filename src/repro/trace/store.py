"""Zero-copy, memory-mapped on-disk trace store (format v8).

The experiment engine is trace-driven: every sweep re-reads the same
handful of workload traces in every worker process.  Up to format v7
those traces were compressed ``.npz`` archives, so each pool worker
paid a full decompress-and-copy per trace and then held its own private
in-RAM clone.  The v8 store replaces that with a flat binary file that
every process opens through ``np.memmap``: the supervisor and all
workers share one page-cache copy of each trace, opening is O(header)
plus a single streaming checksum pass, and per-worker private memory
for traces drops to ~zero (see docs/TRACES.md and the ``trace_store``
block of ``BENCH_engine.json``).

File layout (little-endian throughout)::

    offset  size  field
    ------  ----  -----------------------------------------------------
    0       8     magic                 b"REPROTRC"
    8       4     version               u32, == STORE_VERSION (8)
    12      4     header_size           u32, == HEADER_SIZE (104)
    16      8     meta_len              u64, metadata block length
    24      8     num_records           u64, ACCESS_DTYPE record count
    32      4     record_itemsize       u32, == ACCESS_DTYPE.itemsize
    36      4     reserved              u32, zero
    40      32    payload_sha           sha256(meta block ‖ record block)
    72      32    header_sha            sha256(header bytes [0:72])
    104     ...   metadata block        UTF-8 JSON (name, kernel, graph,
                                        AddressSpace region table)
    104+m   ...   record block          raw ACCESS_DTYPE array bytes

``header_sha`` authenticates everything the reader must trust before
touching variable-length data (including ``payload_sha`` itself);
``payload_sha`` authenticates the rest of the file.  Both are verified
by :func:`open_trace` — any mismatch, bad magic, size inconsistency or
unparsable metadata raises :class:`TraceStoreError`, and callers
(:func:`repro.experiments.workloads.workload_trace`) quarantine the
file through the same ``results/quarantine`` machinery the results
cache uses and regenerate it exactly once.

Writes are atomic (process-unique temp file + ``os.replace``), so
concurrent ``run_grid`` workers racing to generate the same trace can
never expose a torn file — the last writer wins with identical bytes.

Store activity is counted in module-level telemetry counters
(:data:`COUNTERS`: ``opens``/``maps``/``writes``/``migrations``/
``stale``/``corrupt``/``regenerated``) — snapshot them with
:func:`counters_snapshot`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
from pathlib import Path

import numpy as np

from repro.telemetry.metrics import Counter
from repro.trace.layout import AddressSpace, Region
from repro.trace.record import ACCESS_DTYPE, Trace

#: On-disk format version.  Kept in lockstep with
#: ``repro.experiments.workloads.TRACE_FORMAT_VERSION`` (the cache-key
#: half of the same contract) by a regression test.
STORE_VERSION = 8

MAGIC = b"REPROTRC"

#: magic, version, header_size, meta_len, num_records, itemsize,
#: reserved, payload_sha, header_sha.
_HEADER = struct.Struct("<8sIIQQII32s32s")
HEADER_SIZE = _HEADER.size                      # 104
assert HEADER_SIZE == 104

#: Byte offset where ``header_sha`` starts (it covers [0:_SHA_OFFSET)).
_SHA_OFFSET = HEADER_SIZE - 32

_CHUNK = 1 << 20                                # checksum read size


class TraceStoreError(ValueError):
    """A store file failed validation (corrupt, truncated, or wrong
    version).  The file is *not* trusted; callers should quarantine it
    and regenerate."""


COUNTERS: dict[str, Counter] = {
    name: Counter(f"trace_store_{name}")
    for name in ("opens", "maps", "writes", "migrations", "stale",
                 "corrupt", "regenerated")
}


def counters_snapshot() -> dict[str, int]:
    """Current value of every store counter (name -> count)."""
    return {name: c.value for name, c in COUNTERS.items()}


def reset_counters() -> None:
    for c in COUNTERS.values():
        c.value = 0


# -- metadata ---------------------------------------------------------------

def _meta_bytes(trace: Trace) -> bytes:
    regions = trace.address_space.regions
    meta = {
        "name": trace.name,
        "kernel": trace.kernel,
        "graph": trace.graph,
        "regions": [
            {"name": r.name, "base": r.base, "elem_size": r.elem_size,
             "num_elems": r.num_elems, "irregular_hint": r.irregular_hint}
            for r in (regions[n] for n in regions)
        ],
    }
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _space_from_meta(meta: dict) -> AddressSpace:
    space = AddressSpace()
    for entry in meta["regions"]:
        region = Region(str(entry["name"]), int(entry["base"]),
                        int(entry["elem_size"]), int(entry["num_elems"]),
                        bool(entry["irregular_hint"]))
        space.regions[region.name] = region
        space._starts.append(region.base)
        space._names.append(region.name)
    return space


# -- write ------------------------------------------------------------------

def write_trace(trace: Trace, path: str | os.PathLike) -> None:
    """Serialize a trace to ``path`` atomically in the v8 store format.

    The record block is the raw bytes of the ``ACCESS_DTYPE`` array (a
    contiguous copy is made if the array is a view), so a subsequent
    :func:`open_trace` maps exactly the bytes written here.
    """
    path = Path(path)
    acc = np.ascontiguousarray(trace.accesses)
    if acc.dtype != ACCESS_DTYPE:
        raise TypeError("trace.accesses must have ACCESS_DTYPE")
    meta = _meta_bytes(trace)
    records = acc.tobytes()
    payload_sha = hashlib.sha256(meta + records).digest()
    head = _HEADER.pack(MAGIC, STORE_VERSION, HEADER_SIZE, len(meta),
                        len(acc), ACCESS_DTYPE.itemsize, 0,
                        payload_sha, b"\0" * 32)
    header_sha = hashlib.sha256(head[:_SHA_OFFSET]).digest()
    head = head[:_SHA_OFFSET] + header_sha
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(head)
            fh.write(meta)
            fh.write(records)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    COUNTERS["writes"].inc()


# -- read -------------------------------------------------------------------

def _read_header(fh) -> tuple:
    head = fh.read(HEADER_SIZE)
    if len(head) < HEADER_SIZE:
        raise TraceStoreError(f"truncated header ({len(head)} of "
                              f"{HEADER_SIZE} bytes)")
    (magic, version, header_size, meta_len, num_records, itemsize,
     _reserved, payload_sha, header_sha) = _HEADER.unpack(head)
    if magic != MAGIC:
        raise TraceStoreError(f"bad magic {magic!r}")
    if hashlib.sha256(head[:_SHA_OFFSET]).digest() != header_sha:
        raise TraceStoreError("header checksum mismatch")
    if version != STORE_VERSION:
        raise TraceStoreError(f"unsupported store version {version} "
                              f"(this build reads v{STORE_VERSION})")
    if header_size != HEADER_SIZE:
        raise TraceStoreError(f"bad header size {header_size}")
    if itemsize != ACCESS_DTYPE.itemsize:
        raise TraceStoreError(f"record itemsize {itemsize} != "
                              f"ACCESS_DTYPE itemsize "
                              f"{ACCESS_DTYPE.itemsize}")
    return meta_len, num_records, payload_sha


def read_header(path: str | os.PathLike) -> dict:
    """Validate and return the header of a store file.

    Returns ``{"meta_len", "num_records", "payload_sha"}``; raises
    :class:`TraceStoreError` on any header-level problem (including a
    file-size/record-count mismatch, i.e. truncation).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        meta_len, num_records, payload_sha = _read_header(fh)
    expected = HEADER_SIZE + meta_len + num_records * ACCESS_DTYPE.itemsize
    actual = path.stat().st_size
    if actual != expected:
        raise TraceStoreError(f"file size {actual} != expected "
                              f"{expected} (truncated or padded)")
    return {"meta_len": meta_len, "num_records": num_records,
            "payload_sha": payload_sha.hex()}


def open_trace(path: str | os.PathLike, mapped: bool = True,
               verify_payload: bool = True) -> Trace:
    """Open a v8 store file as a :class:`repro.trace.record.Trace`.

    With ``mapped=True`` (the default) the record block is a *read-only*
    ``np.memmap`` view of the file: no copy is made, and every process
    mapping the same file shares one page-cache instance of the data.
    ``mapped=False`` materializes a private in-RAM copy (used by tests
    and benchmarks comparing the two paths).

    ``verify_payload`` streams the metadata + record blocks through
    sha256 and compares against the header's ``payload_sha`` — one
    sequential read that doubles as page-cache warming.  Any validation
    failure raises :class:`TraceStoreError` and the file should be
    quarantined by the caller.
    """
    path = Path(path)
    with open(path, "rb") as fh:
        meta_len, num_records, payload_sha = _read_header(fh)
        expected = (HEADER_SIZE + meta_len
                    + num_records * ACCESS_DTYPE.itemsize)
        actual = path.stat().st_size
        if actual != expected:
            raise TraceStoreError(f"file size {actual} != expected "
                                  f"{expected} (truncated or padded)")
        meta_raw = fh.read(meta_len)
        if len(meta_raw) != meta_len:
            raise TraceStoreError("truncated metadata block")
        if verify_payload:
            h = hashlib.sha256(meta_raw)
            while True:
                chunk = fh.read(_CHUNK)
                if not chunk:
                    break
                h.update(chunk)
            if h.digest() != payload_sha:
                raise TraceStoreError("payload checksum mismatch")
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
        space = _space_from_meta(meta)
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceStoreError(f"bad metadata block: {exc}") from None
    offset = HEADER_SIZE + meta_len
    if mapped:
        accesses = np.memmap(path, dtype=ACCESS_DTYPE, mode="r",
                             offset=offset, shape=(num_records,))
        COUNTERS["maps"].inc()
    else:
        with open(path, "rb") as fh:
            fh.seek(offset)
            accesses = np.fromfile(fh, dtype=ACCESS_DTYPE,
                                   count=num_records)
    COUNTERS["opens"].inc()
    return Trace(accesses, space, str(meta.get("name", "trace")),
                 str(meta.get("kernel", "")), str(meta.get("graph", "")))


def is_store_file(path: str | os.PathLike) -> bool:
    """Cheap sniff: does ``path`` start with the store magic?"""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


# -- quarantine (shared with the results cache) -----------------------------

def quarantine_file(path: Path, quarantine_dir: Path) -> Path | None:
    """Move an unreadable artifact aside (``.bad`` suffix keeps it out
    of entry globs) so it is regenerated once, not re-missed forever.

    This is the one quarantine primitive in the repository — the
    results cache and the trace store both route through it, so every
    corrupt on-disk artifact lands under the same
    ``results/quarantine/`` directory with the same naming scheme.
    Returns the destination, or ``None`` when the file had to be
    deleted instead (quarantine dir unwritable) or was already gone.
    """
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = quarantine_dir / (path.name + ".bad")
        if dest.exists():
            dest = quarantine_dir / f"{path.name}.{os.getpid()}.bad"
        shutil.move(str(path), str(dest))
        return dest
    except OSError:
        # Fall back to deleting: never leave a poisoned entry live.
        try:
            path.unlink(missing_ok=True)
        except OSError:
            pass
        return None
