"""Trace infrastructure: address layout, access records, instrumented kernels.

The simulator is trace-driven: each workload is turned into a stream of
memory-access records by an *instrumented* version of the GAP kernel that
emits the loads and stores the C++ inner loops would issue (OA, NA,
weights, property arrays, frontier buffers).  Records carry the static PC
of the access site, the byte address, read/write, the number of
non-memory instructions preceding the access, and a dependency link for
pointer-chase serialization (DESIGN.md §5).

On disk, workload traces live in the versioned, checksummed,
memory-mappable v8 store format (:mod:`repro.trace.store`,
docs/TRACES.md) so every experiment worker shares one page-cache copy
of each trace.
"""

from repro.trace.analysis import (miss_ratio_curve, region_reuse_profile,
                                  reuse_distances)
from repro.trace.kernels import TRACERS, generate_trace
from repro.trace.layout import AddressSpace, Region
from repro.trace.record import ACCESS_DTYPE, Trace, TraceBuilder
from repro.trace.simpoint import select_simpoints
from repro.trace.store import (STORE_VERSION, TraceStoreError, open_trace,
                               write_trace)

__all__ = [
    "AddressSpace",
    "Region",
    "ACCESS_DTYPE",
    "Trace",
    "TraceBuilder",
    "select_simpoints",
    "generate_trace",
    "TRACERS",
    "reuse_distances",
    "miss_ratio_curve",
    "region_reuse_profile",
    "STORE_VERSION",
    "TraceStoreError",
    "open_trace",
    "write_trace",
]
