"""The DSE study manifest: ``runs/<study_id>.dse.json``.

One JSON document per study records the search parameters (seed, space
digest, candidate count, rung plan, workloads) and, per completed
halving rung, the per-candidate scores and the surviving keys.  A
resumed study replays completed rungs from this ledger verbatim — no
re-simulation, not even cache reads — and re-enters ``run_grid`` only
for the first unfinished rung, where the shared results cache supplies
every cell that already ran.

The ``.dse`` stem suffix keeps these out of
:meth:`repro.experiments.manifest.RunManifest.latest` (mirroring the
shard/service manifest rules), so ``repro trace-export latest`` keeps
resolving ordinary sweeps.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.manifest import runs_dir

STUDY_VERSION = 1


class StudyManifest:
    """Mutable study state with atomic on-disk persistence."""

    def __init__(self, study_id: str, path: Path, data: dict | None = None):
        self.study_id = study_id
        self.path = path
        self.data = data or {
            "version": STUDY_VERSION,
            "study_id": study_id,
            "status": "running",
            "params": {},
            "candidates": [],
            "rungs": [],
            "frontier": [],
        }

    # -- location ----------------------------------------------------------
    @classmethod
    def _path_for(cls, study_id: str, directory: Path | None) -> Path:
        return Path(directory or runs_dir()) / f"{study_id}.dse.json"

    @classmethod
    def load(cls, study_id: str,
             directory: Path | None = None) -> "StudyManifest":
        path = cls._path_for(study_id, directory)
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("version") != STUDY_VERSION:
            raise ValueError(f"study manifest {path} has unsupported "
                             f"version {data.get('version')!r}")
        return cls(study_id, path, data)

    @classmethod
    def open(cls, study_id: str, directory: Path | None = None,
             params: dict | None = None) -> "StudyManifest":
        """Resume the study if its manifest exists, else start fresh.

        ``params`` (the search's defining arguments) must agree with a
        resumed manifest exactly — a mismatch means the id is being
        reused for a different search, which is refused rather than
        silently blended.
        """
        try:
            m = cls.load(study_id, directory)
        except FileNotFoundError:
            m = cls(study_id, cls._path_for(study_id, directory))
            m.data["params"] = dict(params or {})
            return m
        if params is not None and m.data.get("params") != params:
            raise ValueError(
                f"study {study_id!r} exists with different parameters "
                f"({m.data.get('params')} != {params}); pick another "
                f"seed or delete {m.path}")
        m.data["resumes"] = m.data.get("resumes", 0) + 1
        if m.data.get("status") != "complete":
            m.data["status"] = "running"
        return m

    # -- rung ledger -------------------------------------------------------
    def completed_rung(self, rung: int) -> dict | None:
        """The recorded dict for ``rung`` if it finished, else None."""
        rungs = self.data["rungs"]
        if rung < len(rungs) and rungs[rung].get("complete"):
            return rungs[rung]
        return None

    def record_rung(self, rung: int, length: int, scores: dict,
                    survivors: list[str]) -> None:
        """Persist one completed rung (scores keyed by candidate key)."""
        rungs = self.data["rungs"]
        entry = {"rung": rung, "length": length, "complete": True,
                 "scores": scores, "survivors": survivors}
        if rung < len(rungs):
            rungs[rung] = entry
        elif rung == len(rungs):
            rungs.append(entry)
        else:
            raise ValueError(f"rung {rung} recorded out of order "
                             f"(have {len(rungs)})")
        self.save()

    def finalize(self, frontier: list[dict]) -> None:
        self.data["frontier"] = frontier
        self.data["status"] = "complete"
        self.save()

    def save(self) -> None:
        """Atomic write (temp file + rename), crash-safe at any point."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self.data, fh, indent=1)
            os.replace(tmp, self.path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
