"""Pareto dominance over (speedup vs baseline, storage-overhead bits).

Speedup is maximized, storage is minimized.  A point *dominates*
another when it is at least as good on both axes and strictly better
on at least one — the standard strict-dominance relation, which is
irreflexive and antisymmetric (property-tested in tests/test_dse.py).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FrontierPoint:
    """One evaluated candidate projected onto the two search axes."""

    key: str                    # candidate identity (sampler.Candidate.key)
    variant: str
    speedup: float              # geomean speedup vs baseline (paper style)
    bits: int                   # storage_overhead_bits of the config
    rung: int = 0               # deepest halving rung that scored it


def dominates(a: FrontierPoint, b: FrontierPoint) -> bool:
    """True when ``a`` strictly dominates ``b``."""
    return (a.speedup >= b.speedup and a.bits <= b.bits
            and (a.speedup > b.speedup or a.bits < b.bits))


def pareto_frontier(points: list[FrontierPoint]) -> list[FrontierPoint]:
    """The non-dominated subset, sorted cheap-to-expensive.

    Ties on both axes all survive (neither dominates the other).  The
    sort key ``(bits, -speedup, key)`` is total, so the output is a
    pure function of the point *set* — byte-identical reports on
    resume fall out of this.
    """
    front = [p for p in points
             if not any(dominates(q, p) for q in points)]
    return sorted(front, key=lambda p: (p.bits, -p.speedup, p.key))
