"""Successive-halving search over the DSE space.

The driver samples ``n`` candidates, scores every one on the shortest
trace (rung 0), then repeatedly promotes the best-performing half to a
doubled trace length — so the bulk of the simulation budget goes to
short runs of bad configs and long runs of good ones.  At each rung,
candidates dominated on (speedup, storage bits) by another scored
candidate are pruned before the halving cut, so a config that is both
slower and bigger than a rival never consumes another cell.

Every cell goes through :func:`repro.experiments.parallel.run_grid`
(run id ``<study_id>-rung<r>``): the shared results cache, per-rung
run manifests, retries and fault tolerance all compose unchanged, and
an interrupted rung resumes without re-simulating its completed cells.
Completed rungs are replayed from the study manifest without touching
``run_grid`` at all, so a ``--resume`` of a finished study performs
zero work and reproduces the frontier byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

from repro.config import SystemConfig
from repro.dse.pareto import FrontierPoint, dominates, pareto_frontier
from repro.dse.sampler import Candidate, sample
from repro.dse.space import ParamSpace, default_space
from repro.dse.study import StudyManifest
from repro.experiments.parallel import Job, Progress, run_grid
from repro.experiments.runner import default_config, geomean_speedup

#: One representative workload per graph-irregularity class — the
#: default evaluation set a study scores candidates on.
DEFAULT_WORKLOADS = ("pr.kron", "bfs.urand", "cc.friendster")


def derive_study_id(params: dict) -> str:
    """Deterministic study id from the defining parameters.

    Re-running the same command line therefore *is* the resume path —
    the id lands on the same ``runs/<id>.dse.json`` ledger.
    """
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    h = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:10]
    return f"dse-s{params['seed']}-{h}"


@dataclass
class StudyResult:
    """Everything a report (or a test) needs about one finished study."""

    study_id: str
    candidates: list[Candidate]
    workloads: tuple
    rung_lengths: list[int]
    rung_scores: list[dict]         # per rung: candidate key -> score
    resumed_rungs: int              # rungs replayed from the ledger
    points: list[FrontierPoint]     # every candidate at deepest score
    frontier: list[FrontierPoint]   # the non-dominated subset
    counters: dict = field(default_factory=dict)   # Progress.source tallies
    full_enumeration_cells: int = 0

    @property
    def cells_simulated(self) -> int:
        return self.counters.get("run", 0)

    @property
    def cells_cached(self) -> int:
        return (self.counters.get("cache", 0)
                + self.counters.get("dedup", 0))

    @property
    def cells_evaluated(self) -> int:
        return self.cells_simulated + self.cells_cached


def run_study(seed: int = 0, n: int = 32, rungs: int = 2,
              base_length: int = 20_000, tier: str = "tiny",
              workloads: tuple | None = None,
              space: ParamSpace | None = None,
              base: SystemConfig | None = None,
              study_id: str | None = None,
              manifest_dir=None, cache=None, use_cache: bool = True,
              jobs: int = 1, progress=None, policy=None,
              backend: str | None = None) -> StudyResult:
    """Run (or resume) one successive-halving study.

    ``study_id=None`` derives a deterministic id from the parameters;
    passing an explicit id (``repro dse --resume``) must name a study
    whose recorded parameters match.  Raises
    :class:`~repro.experiments.parallel.GridInterrupted` on ^C with
    every completed cell checkpointed.
    """
    if rungs < 1:
        raise ValueError("need at least one rung")
    space = space or default_space()
    base = base or default_config()
    workloads = tuple(workloads or DEFAULT_WORKLOADS)
    params = {"seed": seed, "space": space.digest(), "n": n,
              "rungs": rungs, "base_length": base_length, "tier": tier,
              "workloads": list(workloads),
              "base_config": base.digest()}
    sid = study_id or derive_study_id(params)
    manifest = StudyManifest.open(sid, manifest_dir, params)

    candidates = sample(space, seed, n, base)
    by_key = {c.key: c for c in candidates}
    manifest.data["candidates"] = [
        {"key": c.key, "label": c.label, "variant": c.variant,
         "point": dict(c.point), "storage_bits": c.storage_bits}
        for c in candidates]
    manifest.save()

    counters: dict[str, int] = {}

    def _count(p: Progress) -> None:
        counters[p.source] = counters.get(p.source, 0) + 1
        if progress is not None:
            progress(p)

    survivors = [c.key for c in candidates]
    rung_scores: list[dict] = []
    rung_lengths: list[int] = []
    resumed = 0
    for r in range(rungs):
        length = base_length << r
        rung_lengths.append(length)
        done = manifest.completed_rung(r)
        if done is not None and done["length"] == length:
            rung_scores.append(done["scores"])
            survivors = list(done["survivors"])
            resumed += 1
            continue
        alive = [by_key[k] for k in survivors]
        grid = [Job(wl, "baseline", base, tier=tier, length=length)
                for wl in workloads]
        for c in alive:
            grid.extend(Job(wl, c.variant, c.config, tier=tier,
                            length=length, tag=c.key)
                        for wl in workloads)
        results = run_grid(grid, jobs=jobs, use_cache=use_cache,
                           cache=cache, progress=_count, policy=policy,
                           run_id=f"{sid}-rung{r}",
                           manifest_dir=manifest_dir, backend=backend)
        w = len(workloads)
        base_stats = results[:w]
        scores = {}
        for i, c in enumerate(alive):
            stats = results[w * (i + 1): w * (i + 2)]
            scores[c.key] = geomean_speedup(list(zip(base_stats, stats)))
        survivors = _select_survivors(scores, by_key)
        manifest.record_rung(r, length, scores, survivors)
        rung_scores.append(scores)

    # Every candidate enters the frontier at the deepest rung that
    # scored it — survivors with their long-trace score, early losers
    # with the short-trace estimate that eliminated them.
    deepest: dict[str, tuple[int, float]] = {}
    for r, scores in enumerate(rung_scores):
        for key, s in scores.items():
            deepest[key] = (r, s)
    points = [FrontierPoint(key=k, variant=by_key[k].variant, speedup=s,
                            bits=by_key[k].storage_bits, rung=r)
              for k, (r, s) in sorted(deepest.items())]
    frontier = pareto_frontier(points)
    manifest.finalize([asdict(p) for p in frontier])
    return StudyResult(
        study_id=sid, candidates=candidates, workloads=workloads,
        rung_lengths=rung_lengths, rung_scores=rung_scores,
        resumed_rungs=resumed, points=points, frontier=frontier,
        counters=counters,
        full_enumeration_cells=space.size() * len(workloads))


def _select_survivors(scores: dict, by_key: dict) -> list[str]:
    """Dominance-prune, then keep the top half by score.

    The sort key ``(-speedup, bits, key)`` is total, so the surviving
    set is a pure function of the scores — identical on resume.
    """
    pts = [FrontierPoint(key=k, variant=by_key[k].variant, speedup=s,
                         bits=by_key[k].storage_bits)
           for k, s in scores.items()]
    alive = [p for p in pts if not any(dominates(q, p) for q in pts)]
    order = sorted(alive, key=lambda p: (-p.speedup, p.bits, p.key))
    keep = max(1, len(scores) // 2)
    return [p.key for p in order[:keep]]
