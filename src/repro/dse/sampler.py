"""Deterministic seedable sampling of the DSE space.

The k-th draw hashes ``"{space.digest()}|{seed}|{k}"`` with sha256 and
reduces it modulo the space size — no ``random`` module, no process
``hash()`` salt, so the same ``(space, seed)`` yields the same
candidate sequence in every process on every host (the property the
study manifest's resumability rests on).  Invalid points (see
:func:`repro.dse.space.to_config`) and duplicates (two points that
realize to the same ``(variant, config.digest())``) are skipped; draws
continue until ``n`` distinct candidates are collected.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.config import SystemConfig, storage_overhead_bits
from repro.dse.space import ParamSpace, to_config

#: Hash draws per requested candidate before giving up — only a space
#: whose valid/distinct fraction is microscopic can exhaust this.
_DRAW_FACTOR = 4096


@dataclass(frozen=True)
class Candidate:
    """One sampled design point, realized and costed."""

    index: int                  # position in the sampled sequence
    variant: str
    point: tuple[tuple[str, object], ...]   # sorted (dim, value) pairs
    config: SystemConfig

    @property
    def key(self) -> str:
        """Stable content-addressed identity (variant + config digest)."""
        return f"{self.variant}:{self.config.digest()}"

    @property
    def label(self) -> str:
        return f"c{self.index:03d}"

    @property
    def storage_bits(self) -> int:
        return storage_overhead_bits(self.config, self.variant)


def sample(space: ParamSpace, seed: int, n: int,
           base: SystemConfig) -> list[Candidate]:
    """Draw ``n`` distinct valid candidates from ``space``."""
    if n < 1:
        raise ValueError("need at least one candidate")
    prefix = f"{space.digest()}|{seed}|"
    size = space.size()
    seen: set[str] = set()
    out: list[Candidate] = []
    for k in range(n * _DRAW_FACTOR):
        if len(out) >= n:
            break
        h = hashlib.sha256(f"{prefix}{k}".encode("utf-8")).hexdigest()
        point = space.decode(int(h[:16], 16) % size)
        realized = to_config(point, base)
        if realized is None:
            continue
        variant, cfg = realized
        ident = f"{variant}:{cfg.digest()}"
        if ident in seen:
            continue
        seen.add(ident)
        out.append(Candidate(index=len(out), variant=variant,
                             point=tuple(sorted(point.items())),
                             config=cfg))
    if len(out) < n:
        raise ValueError(
            f"space yielded only {len(out)} distinct valid candidates "
            f"after {n * _DRAW_FACTOR} draws (requested {n})")
    return out
