"""The declared DSE parameter space.

A :class:`ParamSpace` is an ordered tuple of named :class:`Choice`
dimensions; a *point* is one value per dimension, addressed by a
single mixed-radix index in ``[0, space.size())``.  The space is pure
declaration — :func:`to_config` realizes a point against a base
:class:`~repro.config.SystemConfig`, returning ``None`` for points
whose geometry is invalid against that base (e.g. an SDC with fewer
blocks than ways), which the sampler skips deterministically.

Every realized candidate is a plain ``SystemConfig`` plus a variant
name out of :data:`SEARCH_VARIANTS`, so the result cache, run
manifests and the batch backend all apply unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from repro.config import CLPConfig, SystemConfig, tagless_lp_config

#: Predictor variants the search explores (all SDC-bearing; the
#: baseline is the fixed reference point, not a candidate).
SEARCH_VARIANTS = ("sdc_lp", "sdc_clp", "sdc_lp_tagless")


@dataclass(frozen=True)
class Choice:
    """One named categorical dimension."""

    name: str
    values: tuple

    def __post_init__(self):
        if not self.values:
            raise ValueError(f"dimension {self.name!r} has no values")


@dataclass(frozen=True)
class ParamSpace:
    """An ordered product of :class:`Choice` dimensions."""

    dims: tuple[Choice, ...]

    def size(self) -> int:
        n = 1
        for d in self.dims:
            n *= len(d.values)
        return n

    def digest(self) -> str:
        """Deterministic fingerprint of the declaration (names, value
        lists and their order) — folds into sampling and study ids so
        a changed space can never silently reuse another's samples."""
        payload = [[d.name, list(d.values)] for d in self.dims]
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def decode(self, index: int) -> dict:
        """Mixed-radix decode of ``index`` into a point (name -> value)."""
        if not 0 <= index < self.size():
            raise ValueError(f"index {index} outside [0, {self.size()})")
        point = {}
        for d in reversed(self.dims):
            index, r = divmod(index, len(d.values))
            point[d.name] = d.values[r]
        return point


def default_space() -> ParamSpace:
    """The searched space (~4.6k points before validity filtering).

    SDC capacity is declared *relative* to the base config's SDC
    (``sdc_size_x2`` is a multiplier of half the base size: 1 = half,
    2 = base, 8 = 4x) so the same declaration spans the paper-scale
    4-32 KiB sweep and its scaled-down quick-study counterpart.  The
    ``lp_entries``/``lp_ways``/``tau`` dimensions parameterize
    whichever predictor the variant uses (LP, tag-less LP, or CLP).
    """
    return ParamSpace(dims=(
        Choice("variant", SEARCH_VARIANTS),
        Choice("sdc_size_x2", (1, 2, 4, 8)),
        Choice("sdc_ways", (2, 4, 8)),
        Choice("tau", (2, 4, 8, 16)),
        Choice("lp_entries", (16, 32, 64, 128)),
        Choice("lp_ways", (4, 8)),
        Choice("llc_replacement", ("lru", "srrip", "drrip", "ship")),
    ))


def to_config(point: dict, base: SystemConfig
              ) -> tuple[str, SystemConfig] | None:
    """Realize a point as ``(variant, SystemConfig)``.

    Returns ``None`` when the point is invalid against ``base`` (SDC
    geometry that does not divide into sets, or a predictor table
    whose set count is not a power of two).  The tag-less ablation is
    baked into the candidate's config here (idempotently — see
    :func:`repro.config.tagless_lp_config`), so two points that
    collapse to the same physical table also collapse to the same
    config digest and are deduplicated by the sampler.
    """
    variant = point["variant"]
    if variant not in SEARCH_VARIANTS:
        return None

    sdc_bytes = base.sdc.size_bytes * point["sdc_size_x2"] // 2
    ways = point["sdc_ways"]
    blocks = sdc_bytes // base.sdc.block_size
    if blocks < ways or blocks % ways:
        return None
    sdc = base.sdc.resized(sdc_bytes, ways=ways)

    entries, pways, tau = (point["lp_entries"], point["lp_ways"],
                           point["tau"])
    if entries % pways or not _pow2(entries // pways):
        return None

    cfg = dataclasses.replace(
        base, sdc=sdc,
        llc=dataclasses.replace(base.llc,
                                replacement=point["llc_replacement"]))
    if variant == "sdc_clp":
        cfg = dataclasses.replace(
            cfg, clp=CLPConfig(entries=entries, ways=pways, tau_clp=tau))
    else:
        lp = dataclasses.replace(base.lp, entries=entries, ways=pways,
                                 tau_glob=tau)
        if variant == "sdc_lp_tagless":
            lp = tagless_lp_config(lp)
        cfg = dataclasses.replace(cfg, lp=lp)
    return variant, cfg


def _pow2(n: int) -> bool:
    return n > 0 and not (n & (n - 1))
