"""Deterministic text/CSV reports for a DSE study.

Both renderers are pure functions of the study's scores — no
timestamps, no wall-clock, no environment — so a resumed study
reproduces them byte-for-byte (the property ``make check-dse``
asserts after a SIGINT + resume).
"""

from __future__ import annotations

from repro.dse.pareto import FrontierPoint
from repro.dse.search import StudyResult


def _fmt_speedup(s: float) -> str:
    return f"{s * 100:+.2f}%"


def _fmt_bits(bits: int) -> str:
    return f"{bits / 8192:.2f} KiB"


def frontier_csv(points: list[FrontierPoint]) -> str:
    """CSV over the given points: key,variant,rung,speedup,storage_bits.

    Floats are emitted with ``repr`` (shortest round-trip form), so
    equal values always serialize identically.
    """
    lines = ["key,variant,rung,speedup,storage_bits"]
    lines.extend(f"{p.key},{p.variant},{p.rung},{p.speedup!r},{p.bits}"
                 for p in points)
    return "\n".join(lines) + "\n"


def render_frontier(result: StudyResult) -> str:
    """Human-readable study summary + Pareto frontier table."""
    labels = {c.key: c.label for c in result.candidates}
    frontier_keys = {p.key for p in result.frontier}
    out = [
        f"DSE study {result.study_id}",
        f"  candidates: {len(result.candidates)}  workloads: "
        + ",".join(result.workloads),
        "  rungs: " + " -> ".join(
            f"{len(s)}@{ln}" for ln, s in zip(result.rung_lengths,
                                              result.rung_scores)),
        "",
        "Pareto frontier (speedup vs storage overhead):",
        f"  {'cand':<6} {'variant':<16} {'rung':>4} {'speedup':>9} "
        f"{'storage':>10}",
    ]
    for p in result.frontier:
        out.append(f"  {labels.get(p.key, '?'):<6} {p.variant:<16} "
                   f"{p.rung:>4} {_fmt_speedup(p.speedup):>9} "
                   f"{_fmt_bits(p.bits):>10}")
    dominated = len(result.points) - len(result.frontier)
    out.append("")
    out.append(f"  {len(result.frontier)} non-dominated of "
               f"{len(result.points)} evaluated ({dominated} dominated)")
    best = max(result.points, key=lambda p: (p.speedup, -p.bits),
               default=None)
    if best is not None and best.key in frontier_keys:
        out.append(f"  best speedup: {labels.get(best.key, '?')} "
                   f"({best.variant}) {_fmt_speedup(best.speedup)} at "
                   f"{_fmt_bits(best.bits)}")
    return "\n".join(out)
