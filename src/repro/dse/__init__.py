"""Design-space exploration over :class:`repro.config.SystemConfig`.

The paper fixes one design point (tau=8, an 8 KiB 2-way SDC, one LP
geometry); this package *searches* the space instead of enumerating
it:

* :mod:`repro.dse.space` — the declared parameter space (SDC
  size/ways, tau, predictor table geometry, LLC replacement, predictor
  variant), with every point realized as a plain ``SystemConfig`` so
  digests, cache keys and manifests work unchanged;
* :mod:`repro.dse.sampler` — deterministic seedable sampling of
  candidate configs out of the space;
* :mod:`repro.dse.search` — the successive-halving driver: short
  traces first, survivors promoted to longer traces, every cell
  evaluated through :func:`repro.experiments.parallel.run_grid` so
  warm caches, fault tolerance and resume compose for free;
* :mod:`repro.dse.pareto` — dominance and Pareto-frontier extraction
  over (speedup vs baseline, storage-overhead bits);
* :mod:`repro.dse.study` — the ``runs/<study_id>.dse.json`` study
  manifest that makes a search resumable and byte-identical on resume;
* :mod:`repro.dse.report` — deterministic text/CSV frontier reports.

See docs/DSE.md for the algorithm and how to read the output.
"""

from repro.dse.pareto import FrontierPoint, dominates, pareto_frontier
from repro.dse.report import frontier_csv, render_frontier
from repro.dse.sampler import Candidate, sample
from repro.dse.search import StudyResult, derive_study_id, run_study
from repro.dse.space import (Choice, ParamSpace, SEARCH_VARIANTS,
                             default_space, to_config)
from repro.dse.study import StudyManifest

__all__ = [
    "Candidate", "Choice", "FrontierPoint", "ParamSpace",
    "SEARCH_VARIANTS", "StudyManifest", "StudyResult", "default_space",
    "derive_study_id", "dominates", "frontier_csv", "pareto_frontier",
    "render_frontier", "run_study", "sample", "to_config",
]
