"""Deterministic, seed-driven fault injection for the experiment engine.

A :class:`FaultPlan` describes *which* failures to inject and *where*:
every decision is a pure function of ``(seed, kind, site, attempt)``, so
a plan reproduces the exact same failure schedule on every run — which
is what makes the engine's recovery paths (retry, pool rebuild,
checkpoint/resume, cache quarantine) testable in CI rather than only
observable in multi-hour production sweeps.

Fault kinds
-----------

``crash``
    The worker process dies abruptly (``os._exit``), breaking the
    process pool.  In-process (serial) execution raises
    :class:`FaultInjected` instead — killing the caller would defeat
    the point of testing recovery.
``hang``
    The cell sleeps for ``arg`` seconds (default
    :data:`DEFAULT_HANG_SECONDS`) before executing, simulating a hung
    worker.  Pair with a per-cell timeout to exercise hung-worker
    detection.
``slow``
    The cell sleeps for ``arg`` seconds (default 0.05) and then runs
    normally — tail latency without failure.
``exc``
    The cell raises :class:`FaultInjected` — a transient error that a
    retry (``attempt > max_attempt``) survives.
``corrupt``
    A just-written on-disk artifact — a results-cache entry or a
    trace-store file — has bytes scribbled over it, so the next read
    fails checksum validation and must quarantine it.
``truncate``
    A just-written results-cache entry or trace-store file is
    truncated, simulating a writer that died mid-write (detected by
    the trace store's header/size validation).
``shard_loss``
    A sharded ``run_grid`` supervisor aborts right after checkpointing
    its shard manifest (status ``running``), simulating a host that
    died mid-sweep — ``repro merge`` must detect the lost shard, and a
    re-run of that shard (``attempt`` = manifest resumes + 1) survives
    and completes the merge.
``duplicate_shard``
    A sharded supervisor also claims the next shard's cells
    (``(I+1) mod N``), simulating a mispartitioned host; the merge's
    overlap detection must refuse to stitch, and a re-run of the
    offending shard repairs its manifest.
``worker_vanish``
    A :mod:`repro.service` worker process dies silently
    (``os._exit``) just before executing a leased cell — no error
    message, no result, no broken-pool signal.  The orchestrator must
    notice the lost worker, expire its lease, and requeue the cell
    with its attempt count preserved.
``lease_loss``
    The orchestrator revokes a freshly granted cell lease (simulating
    a lease store that lost state): the worker keeps running, but its
    result arrives carrying a stale lease token and is discarded; the
    cell is requeued exactly once with its attempt spent.
``orchestrator_crash``
    The orchestrator process dies (``os._exit`` in a real ``repro
    serve`` process, :class:`FaultInjected` in-process) right after
    journaling a completed cell.  ``attempt`` is the service
    *generation* (startup count from the queue journal), so with the
    default ``max_attempt=1`` the first orchestrator dies and its
    restart deterministically survives and resumes every job.

Plan specs
----------

Plans are written as comma- (or semicolon-) separated entries, either
programmatically via :meth:`FaultPlan.parse` or through the
``REPRO_FAULTS`` environment variable (inherited by worker processes)::

    REPRO_FAULTS="seed=7,exc:0.25,crash:0.1,hang:0.05:1:120"

Each fault entry is ``kind[:rate[:max_attempt[:arg]]]``:

* ``rate`` — probability the fault fires at a decision point (1.0 when
  omitted);
* ``max_attempt`` — the fault only fires on attempt numbers up to this
  bound (default 1), which is what makes injected faults *transient*:
  the retry of a crashed/hung/failed cell succeeds deterministically;
* ``arg`` — kind-specific parameter (sleep seconds for hang/slow).

``seed=N`` entries reseed the decision hash.  Injection is entirely
inert when no plan is active: the engine's only cost is one ``None``
check per cell.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

#: Exit code used by injected worker crashes (visible in CI logs).
CRASH_EXIT_CODE = 173

#: Default sleep for an injected hang; long enough that any sane
#: per-cell timeout fires first.
DEFAULT_HANG_SECONDS = 600.0

DEFAULT_SLOW_SECONDS = 0.05

KINDS = ("crash", "hang", "slow", "exc", "corrupt", "truncate",
         "shard_loss", "duplicate_shard",
         "worker_vanish", "lease_loss", "orchestrator_crash")

#: Fault kinds applied at cell-execution time (by the engine) versus at
#: artifact-write time — results-cache entries
#: (:class:`repro.experiments.results_cache.ResultsCache`) and
#: trace-store files (:func:`repro.experiments.workloads.workload_trace`)
#: — versus at shard-supervision time
#: (:func:`repro.experiments.parallel.run_grid` with ``shard=``).
EXECUTION_KINDS = ("crash", "hang", "slow", "exc")
CACHE_KINDS = ("corrupt", "truncate")
SHARD_KINDS = ("shard_loss", "duplicate_shard")
#: Fault kinds applied by the :mod:`repro.service` orchestrator and its
#: worker processes (lease revocation, silent worker death, and
#: orchestrator crash-recovery — see docs/SERVICE.md).
SERVICE_KINDS = ("worker_vanish", "lease_loss", "orchestrator_crash")


class FaultInjected(RuntimeError):
    """A deliberately injected (transient) failure."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind with its firing rate and transience bound."""

    kind: str
    rate: float = 1.0
    max_attempt: int = 1
    arg: float | None = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {', '.join(KINDS)})")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], "
                             f"got {self.rate}")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1")


def _unit(seed: int, kind: str, site: str, attempt: int) -> float:
    """Deterministic uniform draw in [0, 1) for one decision point."""
    h = hashlib.sha256(f"{seed}|{kind}|{site}|{attempt}"
                       .encode("utf-8")).digest()
    return int.from_bytes(h[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-style spec string (see module doc)."""
        specs: list[FaultSpec] = []
        seed = 0
        for entry in text.replace(";", ",").split(","):
            entry = entry.strip()
            if not entry:
                continue
            if entry.startswith("seed="):
                seed = int(entry[len("seed="):])
                continue
            parts = entry.split(":")
            if len(parts) > 4:
                raise ValueError(f"bad fault entry {entry!r} (expected "
                                 "kind[:rate[:max_attempt[:arg]]])")
            kind = parts[0]
            rate = float(parts[1]) if len(parts) > 1 else 1.0
            max_attempt = int(parts[2]) if len(parts) > 2 else 1
            arg = float(parts[3]) if len(parts) > 3 else None
            specs.append(FaultSpec(kind, rate, max_attempt, arg))
        return cls(tuple(specs), seed)

    def spec(self, kind: str) -> FaultSpec | None:
        for s in self.specs:
            if s.kind == kind:
                return s
        return None

    def fires(self, kind: str, site: str, attempt: int = 1) -> bool:
        """Whether ``kind`` fires at ``site`` on this attempt.

        Pure in ``(seed, kind, site, attempt)`` — the same plan makes
        the same decision at the same point on every run, in every
        process.
        """
        s = self.spec(kind)
        if s is None or attempt > s.max_attempt:
            return False
        return _unit(self.seed, kind, site, attempt) < s.rate


# -- process-wide activation ------------------------------------------------

_active: FaultPlan | None = None
_env_cache: tuple[str, FaultPlan] | None = None
_in_worker = False


def activate(plan: FaultPlan | None) -> None:
    """Set the process-wide plan (overrides ``REPRO_FAULTS``)."""
    global _active
    _active = plan


def deactivate() -> None:
    activate(None)


def active_plan() -> FaultPlan | None:
    """The plan in force: :func:`activate`'d, else ``REPRO_FAULTS``."""
    if _active is not None:
        return _active
    text = os.environ.get("REPRO_FAULTS", "")
    if not text:
        return None
    global _env_cache
    if _env_cache is None or _env_cache[0] != text:
        _env_cache = (text, FaultPlan.parse(text))
    return _env_cache[1]


def worker_init(plan: FaultPlan | None) -> None:
    """Process-pool initializer: mark this process as a worker and hand
    it the parent's plan (robust to any multiprocessing start method)."""
    global _in_worker
    _in_worker = True
    activate(plan)


def in_worker_process() -> bool:
    return _in_worker


# -- injection points -------------------------------------------------------

def inject_execution(site: str, attempt: int = 1) -> None:
    """Apply execution-time faults for one cell attempt.

    Called by the engine just before a cell simulates; ``site`` is the
    cell's content-addressed cache key, so the decision is identical in
    serial and parallel runs and across resumes.  No-op without an
    active plan.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fires("crash", site, attempt):
        if _in_worker:
            os._exit(CRASH_EXIT_CODE)
        raise FaultInjected(f"injected crash (in-process) at {site[:12]}")
    if plan.fires("hang", site, attempt):
        spec = plan.spec("hang")
        time.sleep(spec.arg if spec.arg is not None
                   else DEFAULT_HANG_SECONDS)
    if plan.fires("slow", site, attempt):
        spec = plan.spec("slow")
        time.sleep(spec.arg if spec.arg is not None
                   else DEFAULT_SLOW_SECONDS)
    if plan.fires("exc", site, attempt):
        raise FaultInjected(f"injected transient fault at {site[:12]} "
                            f"(attempt {attempt})")


def inject_shard_loss(site: str, attempt: int = 1) -> None:
    """Abort a sharded supervisor right after its manifest checkpoint.

    ``site`` is :func:`repro.experiments.sharding.shard_site` — pure in
    (run_id, index, count) — and ``attempt`` is the shard manifest's
    resume count + 1, so with the default ``max_attempt=1`` the first
    run of the shard is lost (manifest left ``running``, merge refuses
    it) and its ``--resume`` re-run deterministically survives.  No-op
    without an active plan.
    """
    plan = active_plan()
    if plan is not None and plan.fires("shard_loss", site, attempt):
        raise FaultInjected(f"injected shard loss at {site} "
                            f"(attempt {attempt})")


def worker_vanishes(site: str, attempt: int = 1) -> bool:
    """Whether a ``worker_vanish`` fault kills this service worker just
    before it executes a leased cell.

    ``site`` is the cell's content-addressed cache key and ``attempt``
    the lease attempt, so the same plan vanishes the same worker at the
    same cell on every run; with the default ``max_attempt=1`` the
    requeued attempt deterministically survives.  The caller performs
    the actual ``os._exit`` (the decision is separated from the death
    so in-process tests can observe it).  False without an active plan.
    """
    plan = active_plan()
    return plan is not None and plan.fires("worker_vanish", site, attempt)


def lease_lost(site: str, attempt: int = 1) -> bool:
    """Whether a ``lease_loss`` fault revokes this freshly granted
    lease (same decision scheme as :func:`worker_vanishes`: ``site`` is
    the cell key, ``attempt`` the lease attempt).  The orchestrator
    requeues the cell and discards the revoked worker's stale-token
    result.  False without an active plan."""
    plan = active_plan()
    return plan is not None and plan.fires("lease_loss", site, attempt)


def inject_orchestrator_crash(site: str, generation: int = 1,
                              hard: bool = False) -> None:
    """Kill the service orchestrator right after a journaled checkpoint.

    ``site`` is ``orc:<job_id>`` and ``generation`` the service's
    startup count (replayed from the queue journal), so with the
    default ``max_attempt=1`` the first orchestrator generation dies
    and the restarted one deterministically survives.  ``hard=True``
    (a real ``repro serve`` process) exits with
    :data:`CRASH_EXIT_CODE`; in-process orchestrators raise
    :class:`FaultInjected` instead so tests keep their interpreter.
    No-op without an active plan.
    """
    plan = active_plan()
    if plan is None or not plan.fires("orchestrator_crash", site,
                                      generation):
        return
    if hard:
        os._exit(CRASH_EXIT_CODE)
    raise FaultInjected(f"injected orchestrator crash at {site} "
                        f"(generation {generation})")


def shard_duplicates(site: str, attempt: int = 1) -> bool:
    """Whether a ``duplicate_shard`` fault makes this supervisor also
    claim its sibling's cells (same decision scheme as
    :func:`inject_shard_loss`); False without an active plan."""
    plan = active_plan()
    return (plan is not None
            and plan.fires("duplicate_shard", site, attempt))


def _mangle_file(path, site: str, write_seq: int) -> bool:
    """Shared corrupt/truncate application for on-disk artifacts."""
    plan = active_plan()
    if plan is None:
        return False
    damaged = False
    if plan.fires("corrupt", site, write_seq):
        data = path.read_bytes()
        mid = len(data) // 2
        path.write_bytes(data[:mid] + b"\x00CORRUPT\x00" + data[mid + 9:])
        damaged = True
    if plan.fires("truncate", site, write_seq):
        data = path.read_bytes()
        path.write_bytes(data[:max(1, int(len(data) * 0.6))])
        damaged = True
    return damaged


def mangle_cache_entry(path, site: str, write_seq: int = 1) -> bool:
    """Apply cache-write faults to a just-committed entry file.

    ``write_seq`` is the per-process write count for this key, playing
    the role ``attempt`` plays for execution faults: with the default
    ``max_attempt=1``, only the first write of an entry is damaged, so
    the recompute after a quarantine lands a clean copy.  Returns True
    when the file was damaged.  No-op without an active plan.
    """
    return _mangle_file(path, site, write_seq)


def mangle_trace_file(path, site: str, write_seq: int = 1) -> bool:
    """Apply corrupt/truncate faults to a just-written trace-store file.

    Same decision semantics as :func:`mangle_cache_entry` (``site`` is
    ``trace:<filename>``, ``write_seq`` the per-process write count for
    that file).  A mid-file scribble lands in the record block and is
    caught by the store's payload checksum; truncation is caught by its
    header/size validation — either way the reader quarantines the file
    and regenerates the trace once.
    """
    return _mangle_file(path, site, write_seq)


def mangle_graph_file(path, site: str, write_seq: int = 1) -> bool:
    """Apply corrupt/truncate faults to a just-ingested graph-store file.

    Same decision semantics as :func:`mangle_trace_file` (``site`` is
    ``graph:<filename>``, ``write_seq`` the per-process write count for
    that file).  The graph store's payload/header checksums catch the
    damage on the next open; the reader quarantines the file and
    rebuilds it from the recorded source edge list once
    (``repro.graphs.ingest.load_ingested``).
    """
    return _mangle_file(path, site, write_seq)
