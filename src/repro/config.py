"""System configuration (paper Table I) and scaling support.

The paper evaluates on a ChampSim model of an Intel Cascade Lake server
core. :func:`paper_config` returns that exact configuration.  Because this
reproduction runs scaled-down input graphs (see DESIGN.md, substitution
#2), :func:`scaled_config` divides every *capacity* by a common factor
while keeping associativities and latencies fixed, so that the ratio of
workload footprint to cache capacity — the quantity that drives MPKI —
matches the paper's regime.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

BLOCK_SIZE = 64
"""Cache block size in bytes (fixed across the hierarchy, as in ChampSim)."""

BLOCK_BITS = 6
"""log2(BLOCK_SIZE)."""

PHYS_ADDR_BITS = 48
"""Physical address width assumed by the paper's Table IV accounting."""


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache."""

    name: str
    size_bytes: int
    ways: int
    latency: int          # access latency in core cycles
    mshr_entries: int
    replacement: str = "lru"
    prefetcher: str | None = None
    block_size: int = BLOCK_SIZE

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_size

    @property
    def num_sets(self) -> int:
        sets = self.num_blocks // self.ways
        if sets * self.ways * self.block_size != self.size_bytes:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible into "
                f"{self.ways}-way sets of {self.block_size}B blocks"
            )
        return sets

    def resized(self, size_bytes: int, ways: int | None = None,
                latency: int | None = None) -> "CacheConfig":
        """Return a copy with a new capacity (and optionally geometry)."""
        return dataclasses.replace(
            self,
            size_bytes=size_bytes,
            ways=self.ways if ways is None else ways,
            latency=self.latency if latency is None else latency,
        )


@dataclass(frozen=True)
class LPConfig:
    """Large Predictor table parameters (paper §III-B, Table I).

    ``tagless=True`` selects the tag-less ablation (the
    ``sdc_lp_tagless`` variant): the table is direct-mapped on the PC
    with no stored tag, so distinct PCs mapping to the same slot alias
    onto one stride accumulator.  The tag bits saved are traded for a
    larger table (see :func:`tagless_lp_config`).
    """

    entries: int = 32
    ways: int = 8
    tau_glob: int = 8
    # Field widths used for Table IV budget accounting.
    tag_bits: int = 65
    addr_bits: int = 58
    stride_bits: int = 14
    tagless: bool = False

    @property
    def num_sets(self) -> int:
        if self.ways <= 0 or self.entries % self.ways:
            raise ValueError(f"LP: {self.entries} entries not divisible by "
                             f"{self.ways} ways")
        return self.entries // self.ways

    @property
    def storage_bits(self) -> int:
        per_entry = self.tag_bits + self.addr_bits + self.stride_bits + 1
        return per_entry * self.entries


#: Tag-less table growth factor: the ~47% of the tagged entry spent on
#: the tag buys roughly 4x the entries at iso-ish storage once the
#: per-entry cost drops to addr + stride + valid.
TAGLESS_LP_GROWTH = 4


def tagless_lp_config(lp: LPConfig) -> LPConfig:
    """The tag-less/larger-table LP ablation geometry.

    Drops the tag (``tag_bits=0``), grows the table by
    :data:`TAGLESS_LP_GROWTH` and makes it direct-mapped (``ways=1`` —
    with no tags there is nothing to associate on).  Used by
    ``variant_config`` for the ``sdc_lp_tagless`` variant and by
    :func:`storage_overhead_bits` for its cost accounting.  Idempotent,
    so a config whose LP was already converted (e.g. a DSE candidate
    baked before submission) passes through unchanged.
    """
    if lp.tagless:
        return lp
    return dataclasses.replace(
        lp, tagless=True, tag_bits=0, ways=1,
        entries=lp.entries * TAGLESS_LP_GROWTH)


@dataclass(frozen=True)
class CLPConfig:
    """Cache-level predictor table parameters (``sdc_clp`` variant).

    A PC-indexed, set-associative table in the spirit of Jalili &
    Erez's cache-level prediction ("Reducing Load Latency with Cache
    Level Prediction", PAPERS.md): instead of accumulating address
    strides like the LP, each entry keeps an exponential moving
    average of the *level* that served this PC's accesses (weights in
    :mod:`repro.core.clp`).  A PC whose counter reaches ``tau_clp`` is
    predicted irregular and routed to the SDC.

    Storage accounting follows the Table IV convention (full-width
    tag, no set-index subtraction): tag + counter + valid per entry.
    """

    entries: int = 128
    ways: int = 8
    tau_clp: int = 8
    tag_bits: int = 65
    ctr_bits: int = 5

    @property
    def num_sets(self) -> int:
        if self.ways <= 0 or self.entries % self.ways:
            raise ValueError(f"CLP: {self.entries} entries not divisible "
                             f"by {self.ways} ways")
        return self.entries // self.ways

    @property
    def ctr_max(self) -> int:
        return (1 << self.ctr_bits) - 1

    @property
    def storage_bits(self) -> int:
        return (self.tag_bits + self.ctr_bits + 1) * self.entries


@dataclass(frozen=True)
class SDCDirConfig:
    """SDC directory extension (paper §III-C, Table I)."""

    entries_per_core: int = 128
    ways: int = 8
    latency: int = 1
    tag_bits: int = 42
    state_bits: int = 6


@dataclass(frozen=True)
class DRAMConfig:
    """DDR4 main-memory timing (paper Table I).

    The paper gives tRP = tRCD = tCAS = 24 DRAM-bus cycles at an I/O bus
    frequency of 1466.5 MHz against a 2.166 GHz core.  We convert the
    access components into core cycles once so the simulator works in a
    single clock domain.
    """

    trp: int = 24
    trcd: int = 24
    tcas: int = 24
    io_bus_mhz: float = 1466.5
    core_ghz: float = 2.166
    banks: int = 8
    rows_per_bank: int = 65536
    row_size_bytes: int = 8192
    channels: int = 1

    @property
    def cycles_per_bus_cycle(self) -> float:
        return self.core_ghz * 1000.0 / self.io_bus_mhz

    def _to_core(self, bus_cycles: int) -> int:
        return max(1, round(bus_cycles * self.cycles_per_bus_cycle))

    @property
    def row_hit_latency(self) -> int:
        """Core cycles for a row-buffer hit (CAS only + transfer)."""
        return self._to_core(self.tcas) + 4

    @property
    def row_miss_latency(self) -> int:
        """Core cycles for a closed-row access (RCD + CAS + transfer)."""
        return self._to_core(self.trcd + self.tcas) + 4

    @property
    def row_conflict_latency(self) -> int:
        """Core cycles when the open row must be precharged first."""
        return self._to_core(self.trp + self.trcd + self.tcas) + 4


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core model parameters (paper Table I)."""

    width: int = 4
    rob_entries: int = 224
    frequency_ghz: float = 2.166


@dataclass(frozen=True)
class SystemConfig:
    """Complete single-core system configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L1D", 32 * 1024, 8, 4, 10, "lru", "next_line"))
    l2c: CacheConfig = field(default_factory=lambda: CacheConfig(
        "L2C", 1024 * 1024, 16, 10, 16, "lru", "spp"))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        "LLC", 1408 * 1024, 11, 56, 64, "lru", None))
    sdc: CacheConfig = field(default_factory=lambda: CacheConfig(
        "SDC", 8 * 1024, 2, 1, 10, "lru", "next_line"))
    lp: LPConfig = field(default_factory=LPConfig)
    clp: CLPConfig = field(default_factory=CLPConfig)
    sdcdir: SDCDirConfig = field(default_factory=SDCDirConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    num_cores: int = 1
    # Extra cycles for the coherence/directory check an SDC miss performs
    # before going to DRAM (paper §III-A: "a lightweight coherence
    # message is sent to the cache directory").
    sdc_miss_dir_latency: int = 1

    def digest(self) -> str:
        """Deterministic fingerprint of the full configuration.

        Two structurally-equal configs produce the same digest; any
        field change (a resized cache, a different tau) produces a
        different one.  Used by the experiment result cache to key
        simulation outputs on the exact system being simulated.
        """
        payload = dataclasses.asdict(self)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        """Human-readable configuration dump (cf. paper Table I)."""
        rows = [
            ("CPU", f"{self.core.frequency_ghz} GHz, {self.core.width}-wide "
                    f"OoO, {self.core.rob_entries}-entry ROB"),
        ]
        for c in (self.l1d, self.sdc, self.l2c, self.llc):
            rows.append((c.name, f"{c.size_bytes // 1024} KiB, {c.ways}-way, "
                                 f"{c.latency}-cycle latency, "
                                 f"{c.mshr_entries}-entry MSHR, "
                                 f"{c.replacement} replacement"
                                 + (f", {c.prefetcher} prefetcher"
                                    if c.prefetcher else "")))
        rows.append(("LP", f"{self.lp.entries} entries, {self.lp.ways}-way, "
                           f"tau_glob={self.lp.tau_glob}, "
                           f"{self.lp.storage_bits / 8192:.2f} KiB"))
        rows.append(("SDCDir", f"{self.sdcdir.entries_per_core} entries/core, "
                               f"{self.sdcdir.ways}-way"))
        rows.append(("DRAM", f"row hit {self.dram.row_hit_latency} cyc, "
                             f"row miss {self.dram.row_miss_latency} cyc, "
                             f"row conflict {self.dram.row_conflict_latency} "
                             f"cyc"))
        width = max(len(r[0]) for r in rows)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in rows)


def _cache_block_bits() -> int:
    """Bits per cache block under the Table IV convention: data + a
    full-block-address tag (no set-index subtraction) + valid + dirty."""
    return BLOCK_SIZE * 8 + (PHYS_ADDR_BITS - BLOCK_BITS) + 1 + 1


def storage_overhead_bits(cfg: SystemConfig,
                          variant: str = "sdc_lp") -> int:
    """Per-core storage a variant adds over the baseline, in bits.

    The Table IV accounting (SDC data+tag+valid+dirty, LP
    tag+address+stride+valid, SDCDir tag+state+sharers), extended to
    every design variant so a Pareto search can use one cost axis:

    * ``baseline``/``topt``/``distill`` reuse existing structures — 0;
    * ``sdc_lp`` adds SDC + LP + SDCDir (the paper's Table IV total);
    * ``sdc_clp`` swaps the LP for the cache-level predictor
      (:class:`CLPConfig`);
    * ``sdc_lp_tagless`` swaps the LP for its tag-less/larger-table
      geometry (:func:`tagless_lp_config`);
    * ``expert`` adds SDC + SDCDir (routing is compile-time, no LP);
    * ``lp_bypass`` adds only the LP;
    * ``l1iso`` adds 2 L1D ways (+25% capacity), ``llc2x`` doubles the
      LLC, ``victim`` adds an SDC-sized victim cache — all accounted at
      :func:`_cache_block_bits` per extra block.

    SRAM for replacement-policy metadata (SRRIP/SHiP counters) is not
    counted: it is common to all LLC variants and orders of magnitude
    below the block storage that dominates this axis.
    """
    sdc = cfg.sdc.num_blocks * _cache_block_bits()
    sdcdir = cfg.sdcdir.entries_per_core * (
        cfg.sdcdir.tag_bits + cfg.sdcdir.state_bits
        + max(1, cfg.num_cores))
    if variant in ("baseline", "topt", "distill"):
        return 0
    if variant == "sdc_lp":
        return sdc + cfg.lp.storage_bits + sdcdir
    if variant == "sdc_clp":
        return sdc + cfg.clp.storage_bits + sdcdir
    if variant == "sdc_lp_tagless":
        return sdc + tagless_lp_config(cfg.lp).storage_bits + sdcdir
    if variant == "expert":
        return sdc + sdcdir
    if variant == "lp_bypass":
        return cfg.lp.storage_bits
    if variant == "l1iso":
        # +2 ways on an 8-way L1D: num_blocks * 10//8 - num_blocks.
        extra = cfg.l1d.num_blocks * 10 // 8 - cfg.l1d.num_blocks
        return extra * _cache_block_bits()
    if variant == "llc2x":
        return cfg.llc.num_blocks * _cache_block_bits()
    if variant == "victim":
        return cfg.sdc.num_blocks * _cache_block_bits()
    raise ValueError(f"unknown variant {variant!r} for storage "
                     f"accounting")


def paper_config(num_cores: int = 1) -> SystemConfig:
    """The exact Table I configuration."""
    return SystemConfig(num_cores=num_cores)


def scaled_config(scale: int = 8, num_cores: int = 1) -> SystemConfig:
    """Table I with all capacities divided by ``scale``.

    Associativities and latencies stay fixed; only the number of sets
    shrinks.  The LP and SDCDir are index structures whose size does not
    depend on the data footprint, so they are left unscaled.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    base = paper_config(num_cores)

    def shrink(c: CacheConfig) -> CacheConfig:
        size = c.size_bytes // scale
        ways = c.ways
        # Halve associativity until one set fits; floor at 1 way x 1 block.
        while ways > 1 and size < ways * c.block_size:
            ways //= 2
        size = max(size, ways * c.block_size)
        # Round down to a multiple of ways*block_size so sets are integral.
        size -= size % (ways * c.block_size)
        return c.resized(size, ways=ways)

    return dataclasses.replace(
        base,
        l1d=shrink(base.l1d),
        l2c=shrink(base.l2c),
        llc=shrink(base.llc),
        sdc=shrink(base.sdc),
    )
