"""Streaming real-graph ingestion: edge lists to memory-mapped CSR.

The synthetic suite (:mod:`repro.graphs.suite`) covers the paper's
grid; this module is ROADMAP item 5 — real SNAP-scale graphs flowing
from a raw edge-list file into the CSR substrate without the edge set
ever materializing in one process's RAM.  Peak ingest memory is
O(vertices + chunk): the per-vertex offset/degree/cursor arrays plus
one bounded parse chunk; all O(edges) data lives in ``np.memmap``
scratch files and the final store file.

Input formats (detected from the file name; ``.gz`` composes)::

    suffix        columns        notes
    ------------  -------------  ----------------------------------
    .el[.gz]      src dst        GAP plain edge list
    .wel[.gz]     src dst w      GAP weighted edge list
    .txt[.gz]     src dst        SNAP dump (# comment lines ignored)

Rows with the wrong column count are an error, never silently
truncated (a ``.el`` row with three fields raises, matching
:func:`repro.graphs.io.load_edgelist`).

**Pipeline** (``ingest_graph``):

1. *Count pass* — stream the file in bounded chunks; find the vertex
   count and raw out-degrees.
2. *Scatter pass* — re-stream, counting-sort each edge's destination
   (and weight) into an on-disk ``np.memmap`` neighbours array.  Input
   order is preserved inside every vertex segment; with
   ``symmetrize`` the file is streamed twice (forward edges, then
   reverse), reproducing :func:`repro.graphs.csr.from_edges`'s
   concatenation order exactly.
3. *Compact pass* — per vertex range: drop self-loops, stable-sort by
   ``(src, dst)`` and keep the first occurrence of each duplicate
   (GAP's cleanup, byte-identical to ``from_edges``'s
   ``np.unique(key, return_index=True)`` + lexsort).
4. *CSC pass* — stream the finished out-CSR to build the in-adjacency
   (skipped for symmetrized graphs, which share arrays).
5. *Store write* — assemble the single-file v1 envelope atomically.

**Store format** (v1, mirrors the v8 trace store — docs/TRACES.md)::

    offset  size  field
    ------  ----  --------------------------------------------------
    0       8     magic                 b"REPROGRF"
    8       4     version               u32, == STORE_VERSION (1)
    12      4     header_size           u32, == HEADER_SIZE (112)
    16      8     meta_len              u64, metadata block length
    24      8     num_vertices          u64
    32      8     num_edges             u64, directed arcs in the CSR
    40      4     flags                 u32, bit0 symmetric, bit1 weighted
    44      4     reserved              u32, zero
    48      32    payload_sha           sha256(meta ‖ array sections)
    80      32    header_sha            sha256(header bytes [0:80])
    112     ...   metadata block        UTF-8 JSON (name, source, ...)
    ...     ...   out_oa  (n+1) × i64
    ...     ...   out_na  e × i32
    ...     ...   out_w   e × i32       (weighted only)
    ...     ...   in_oa / in_na / in_w  (directed graphs only)

Writes are atomic (temp file + ``os.replace``); :func:`open_graph`
verifies both checksums and every size equation before handing out
read-only ``np.memmap`` views, so all ``run_grid`` workers share one
page-cache copy of each graph exactly like traces.  A file that fails
validation is quarantined to ``results/quarantine/`` and rebuilt from
its recorded source file exactly once
(:func:`load_ingested`).  Armed ``corrupt``/``truncate`` fault plans
damage the first write of a store file (site ``graph:<filename>``),
exercising that path in CI.

See docs/WORKLOADS.md for the end-to-end walkthrough.
"""

from __future__ import annotations

import gzip
import hashlib
import itertools
import json
import os
import shutil
import struct
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import faults
from repro.graphs.csr import (CSRGraph, OFFSET_DTYPE, VERTEX_DTYPE,
                              WEIGHT_DTYPE)
from repro.telemetry.metrics import Counter
from repro.trace.store import quarantine_file

STORE_VERSION = 1

MAGIC = b"REPROGRF"

#: magic, version, header_size, meta_len, num_vertices, num_edges,
#: flags, reserved, payload_sha, header_sha.
_HEADER = struct.Struct("<8sIIQQQII32s32s")
HEADER_SIZE = _HEADER.size                      # 112
assert HEADER_SIZE == 112

#: Byte offset where ``header_sha`` starts (it covers [0:_SHA_OFFSET)).
_SHA_OFFSET = HEADER_SIZE - 32

FLAG_SYMMETRIC = 1
FLAG_WEIGHTED = 2

#: Edges parsed (and bytes copied) per streaming chunk.  The bound on
#: ingest RAM is a few arrays of this length, never the whole file.
DEFAULT_CHUNK_EDGES = 1 << 20

_CHUNK_BYTES = 1 << 20                          # checksum/copy read size

#: Extensions the parser understands (´.gz´ composes with each).
_FORMATS = {".el": False, ".wel": True, ".txt": False}


class GraphStoreError(ValueError):
    """A graph-store file failed validation (corrupt, truncated, or
    wrong version).  The file is *not* trusted; callers should
    quarantine it and rebuild from the source edge list."""


COUNTERS: dict[str, Counter] = {
    name: Counter(f"graph_store_{name}")
    for name in ("ingests", "opens", "maps", "writes", "corrupt",
                 "rebuilt")
}


def counters_snapshot() -> dict[str, int]:
    """Current value of every graph-store counter (name -> count)."""
    return {name: c.value for name, c in COUNTERS.items()}


def reset_counters() -> None:
    for c in COUNTERS.values():
        c.value = 0


def graphs_dir() -> Path:
    """``$REPRO_CACHE_DIR/graphs/`` — where ingested stores live."""
    from repro.experiments.workloads import cache_dir
    d = cache_dir() / "graphs"
    d.mkdir(parents=True, exist_ok=True)
    return d


def store_path(name: str) -> Path:
    return graphs_dir() / f"{name}.v{STORE_VERSION}.graph"


def has_ingested(name: str) -> bool:
    """Whether an ingested store exists for ``name`` (no validation)."""
    return store_path(name).exists()


def list_ingested() -> list[str]:
    """Names of every ingested graph in the store directory."""
    suffix = f".v{STORE_VERSION}.graph"
    return sorted(p.name[:-len(suffix)]
                  for p in graphs_dir().glob(f"*{suffix}"))


# -- streaming parser -------------------------------------------------------

def edge_list_format(path: str | os.PathLike) -> tuple[str, bool]:
    """``(format, gzipped)`` from the file name's suffixes.

    ``format`` is ``"el"``/``"wel"``/``"txt"``; unknown extensions
    raise ``ValueError``.

    >>> edge_list_format("web.el")
    ('el', False)
    >>> edge_list_format("snap-dump.txt.gz")
    ('txt', True)
    """
    suffixes = [s.lower() for s in Path(path).suffixes]
    gz = bool(suffixes) and suffixes[-1] == ".gz"
    core = suffixes[-2] if gz and len(suffixes) >= 2 else (
        suffixes[-1] if suffixes else "")
    if core not in _FORMATS:
        raise ValueError(
            f"{Path(path).name}: unsupported edge-list extension "
            f"(expected one of {sorted(_FORMATS)}, optionally .gz)")
    return core[1:], gz


def graph_name_from_path(path: str | os.PathLike) -> str:
    """Default store name: the file name minus its format suffixes.

    >>> graph_name_from_path("/data/com-orkut.txt.gz")
    'com-orkut'
    """
    name = Path(path).name
    fmt, gz = edge_list_format(name)
    if gz:
        name = name[:-len(".gz")]
    return name[:-(len(fmt) + 1)]


def _open_text(path: Path, gz: bool):
    if gz:
        return gzip.open(path, "rt", encoding="utf-8", errors="strict")
    return open(path, "rt", encoding="utf-8", errors="strict")


def iter_edge_chunks(path: str | os.PathLike,
                     chunk_edges: int = DEFAULT_CHUNK_EDGES):
    """Yield ``(src, dst, weights)`` int64 arrays in bounded chunks.

    ``weights`` is ``None`` for unweighted formats.  ``#`` comment and
    blank lines are skipped; a row whose column count does not match
    the format raises ``ValueError`` (never silently dropped columns).
    A truncated ``.gz`` file surfaces as the underlying
    ``EOFError``/``gzip.BadGzipFile`` mid-stream.
    """
    path = Path(path)
    fmt, gz = edge_list_format(path)
    weighted = _FORMATS[f".{fmt}"]
    cols = 3 if weighted else 2
    with _open_text(path, gz) as fh:
        while True:
            lines = list(itertools.islice(fh, chunk_edges))
            if not lines:
                break
            lines = [ln for ln in lines
                     if ln.strip() and not ln.lstrip().startswith("#")]
            if not lines:
                continue
            try:
                data = np.loadtxt(lines, dtype=np.int64, ndmin=2)
            except ValueError as exc:     # ragged rows inside a chunk
                raise ValueError(
                    f"{path.name}: expected {cols} columns "
                    f"({fmt} format): {exc}") from exc
            if data.size == 0:
                continue
            if data.shape[1] != cols:
                raise ValueError(
                    f"{path.name}: expected {cols} columns "
                    f"({fmt} format), got {data.shape[1]}")
            if data[:, :2].min() < 0:
                raise ValueError(f"{path.name}: negative vertex id")
            yield data[:, 0], data[:, 1], (data[:, 2] if weighted
                                           else None)


# -- out-of-core CSR build --------------------------------------------------

@dataclass(frozen=True)
class IngestReport:
    """Summary of one :func:`ingest_graph` run."""

    name: str
    path: Path
    num_vertices: int
    num_edges: int
    raw_edges: int            # parsed rows (× 2 when symmetrized)
    symmetric: bool
    weighted: bool

    @property
    def file_bytes(self) -> int:
        return self.path.stat().st_size


def _scatter_chunk(cursor: np.ndarray, src: np.ndarray,
                   dst: np.ndarray, w: np.ndarray | None,
                   na: np.ndarray, wa: np.ndarray | None) -> None:
    """Counting-sort one chunk into the raw NA memmap.

    The stable per-``src`` ordering (argsort ``kind="stable"`` plus the
    carried ``cursor``) preserves global input order within every
    vertex segment — required for first-occurrence dedup semantics.
    """
    order = np.argsort(src, kind="stable")
    s = src[order]
    uniq, start, counts = np.unique(s, return_index=True,
                                    return_counts=True)
    within = np.arange(len(s), dtype=np.int64) - np.repeat(start, counts)
    pos = cursor[s] + within
    na[pos] = dst[order].astype(VERTEX_DTYPE)
    if wa is not None:
        wa[pos] = w[order].astype(WEIGHT_DTYPE)
    cursor[uniq] += counts


def _vertex_ranges(oa: np.ndarray, chunk_edges: int):
    """Split vertices into ranges of at most ~``chunk_edges`` edges."""
    n = len(oa) - 1
    v0 = 0
    while v0 < n:
        v1 = int(np.searchsorted(oa, oa[v0] + max(chunk_edges, 1),
                                 side="right")) - 1
        v1 = max(v1, v0 + 1)
        v1 = min(v1, n)
        yield v0, v1
        v0 = v1


def _append_raw(fh, arr: np.ndarray) -> None:
    fh.write(np.ascontiguousarray(arr).tobytes())


def ingest_graph(path: str | os.PathLike, name: str | None = None,
                 symmetrize: bool = False,
                 num_vertices: int | None = None,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES,
                 force: bool = False) -> IngestReport:
    """Stream an edge-list file into the on-disk graph store.

    Returns an :class:`IngestReport`; the store file lands at
    ``store_path(name)``.  An existing store for the same name is kept
    unless ``force``.  The resulting CSR/CSC arrays are byte-identical
    to an in-memory ``from_edges(edges, num_vertices, weights,
    symmetrize)`` build over the same rows — the equivalence the
    ``ingest-smoke`` CI leg pins.
    """
    path = Path(path)
    fmt, _ = edge_list_format(path)
    weighted = _FORMATS[f".{fmt}"]
    if name is None:
        name = graph_name_from_path(path)
    dest = store_path(name)
    if dest.exists() and not force:
        head = read_header(dest)
        return IngestReport(name, dest, head["num_vertices"],
                            head["num_edges"], -1,
                            bool(head["flags"] & FLAG_SYMMETRIC),
                            bool(head["flags"] & FLAG_WEIGHTED))

    directions = 2 if symmetrize else 1

    # Pass 1: vertex count and raw out-degrees.  `observed_n` matches
    # from_edges: max vertex id + 1, either endpoint counting.
    deg = np.zeros(1024, dtype=np.int64)
    raw_rows = 0
    observed_n = 0
    for src, dst, _w in iter_edge_chunks(path, chunk_edges):
        hi = int(max(src.max(), dst.max())) + 1
        observed_n = max(observed_n, hi)
        if hi > len(deg):
            deg = np.concatenate([deg, np.zeros(
                max(hi, 2 * len(deg)) - len(deg), dtype=np.int64)])
        deg[:hi] += np.bincount(src, minlength=hi)[:hi]
        if symmetrize:
            deg[:hi] += np.bincount(dst, minlength=hi)[:hi]
        raw_rows += len(src)
    n = num_vertices if num_vertices is not None else observed_n
    deg = deg[:n] if len(deg) >= n else np.concatenate(
        [deg, np.zeros(n - len(deg), dtype=np.int64)])
    raw_m = int(deg.sum())

    scratch = Path(tempfile.mkdtemp(dir=graphs_dir(),
                                    prefix=f".{name}.build."))
    try:
        report = _build_and_write(
            path, dest, scratch, name, n, deg, raw_m, raw_rows,
            symmetrize, weighted, num_vertices, chunk_edges)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    COUNTERS["ingests"].inc()
    if faults.active_plan() is not None:
        site = f"graph:{dest.name}"
        seq = _store_write_seq[site] = _store_write_seq.get(site, 0) + 1
        faults.mangle_graph_file(dest, site, seq)
    return report


#: Per-process count of store writes per path, feeding the fault
#: injector's ``write_seq`` (mirrors the trace store's): with the
#: default ``max_attempt=1`` only the *first* write of a graph file is
#: damaged, so the rebuild after a quarantine lands clean.
_store_write_seq: dict[str, int] = {}


def _build_and_write(path, dest, scratch, name, n, deg, raw_m, raw_rows,
                     symmetrize, weighted, num_vertices,
                     chunk_edges) -> IngestReport:
    # Pass 2: counting-sort scatter into raw NA/weight memmaps.
    raw_na = _scratch_memmap(scratch / "raw_na.bin", VERTEX_DTYPE, raw_m)
    raw_w = (_scratch_memmap(scratch / "raw_w.bin", WEIGHT_DTYPE, raw_m)
             if weighted else None)
    raw_oa = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=raw_oa[1:])
    cursor = raw_oa[:-1].copy()
    passes = ("fwd", "rev") if symmetrize else ("fwd",)
    for direction in passes:
        for src, dst, w in iter_edge_chunks(path, chunk_edges):
            if direction == "rev":
                src, dst = dst, src
            _scatter_chunk(cursor, src, dst, w, raw_na, raw_w)

    # Pass 3: self-loop drop + first-occurrence dedup + (src, dst) sort.
    final_deg = np.zeros(n, dtype=np.int64)
    out_na_path = scratch / "out_na.bin"
    out_w_path = scratch / "out_w.bin"
    with open(out_na_path, "wb") as na_fh, \
            open(out_w_path, "wb") as w_fh:
        for v0, v1 in _vertex_ranges(raw_oa, chunk_edges):
            lo, hi = int(raw_oa[v0]), int(raw_oa[v1])
            dsts = np.asarray(raw_na[lo:hi], dtype=np.int64)
            counts = np.diff(raw_oa[v0:v1 + 1])
            srcs = np.repeat(np.arange(v0, v1, dtype=np.int64), counts)
            ws = (np.asarray(raw_w[lo:hi]) if raw_w is not None
                  else None)
            keep = srcs != dsts
            srcs, dsts = srcs[keep], dsts[keep]
            if ws is not None:
                ws = ws[keep]
            key = srcs * n + dsts
            order = np.argsort(key, kind="stable")
            k = key[order]
            first = np.ones(len(k), dtype=bool)
            first[1:] = k[1:] != k[:-1]
            sel = order[first]
            _append_raw(na_fh, dsts[sel].astype(VERTEX_DTYPE))
            if ws is not None:
                _append_raw(w_fh, ws[sel])
            final_deg[v0:v1] = np.bincount(
                srcs[sel] - v0, minlength=v1 - v0)

    out_oa = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(final_deg, out=out_oa[1:])
    e = int(out_oa[-1])

    # Pass 4: CSC from the finished out-CSR (directed graphs only).
    in_paths = None
    if not symmetrize:
        in_paths = _build_csc(scratch, out_oa, out_na_path,
                              out_w_path if weighted else None,
                              n, e, chunk_edges)

    _write_store(dest, name, path, n, e, out_oa, out_na_path,
                 out_w_path if weighted else None, in_paths,
                 symmetrize, weighted, num_vertices)
    return IngestReport(name, dest, n, e, raw_rows, symmetrize,
                        weighted)


def _scratch_memmap(path: Path, dtype, length: int) -> np.ndarray:
    if length == 0:
        return np.zeros(0, dtype=dtype)
    return np.memmap(path, dtype=dtype, mode="w+", shape=(length,))


def _build_csc(scratch, out_oa, out_na_path, out_w_path, n, e,
               chunk_edges):
    """Stream the compacted out-CSR into in-adjacency arrays."""
    out_na = (np.memmap(out_na_path, dtype=VERTEX_DTYPE, mode="r",
                        shape=(e,)) if e else
              np.zeros(0, dtype=VERTEX_DTYPE))
    out_w = None
    if out_w_path is not None:
        out_w = (np.memmap(out_w_path, dtype=WEIGHT_DTYPE, mode="r",
                           shape=(e,)) if e else
                 np.zeros(0, dtype=WEIGHT_DTYPE))
    in_deg = np.zeros(n, dtype=np.int64)
    for v0, v1 in _vertex_ranges(out_oa, chunk_edges):
        lo, hi = int(out_oa[v0]), int(out_oa[v1])
        if hi > lo:
            in_deg += np.bincount(out_na[lo:hi], minlength=n)
    in_oa = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(in_deg, out=in_oa[1:])
    cursor = in_oa[:-1].copy().astype(np.int64)
    in_na = _scratch_memmap(scratch / "in_na.bin", VERTEX_DTYPE, e)
    in_w = (_scratch_memmap(scratch / "in_w.bin", WEIGHT_DTYPE, e)
            if out_w is not None else None)
    for v0, v1 in _vertex_ranges(out_oa, chunk_edges):
        lo, hi = int(out_oa[v0]), int(out_oa[v1])
        if hi == lo:
            continue
        counts = np.diff(out_oa[v0:v1 + 1])
        srcs = np.repeat(np.arange(v0, v1, dtype=np.int64), counts)
        dsts = np.asarray(out_na[lo:hi], dtype=np.int64)
        w = (np.asarray(out_w[lo:hi]) if in_w is not None else None)
        _scatter_chunk(cursor, dsts, srcs, w, in_na, in_w)
    if e:
        in_na.flush()
        if in_w is not None:
            in_w.flush()
    return in_oa, scratch / "in_na.bin", (scratch / "in_w.bin"
                                          if in_w is not None else None)


def _meta_bytes(name, source, n, e, symmetric, weighted,
                num_vertices) -> bytes:
    meta = {
        "name": name,
        "source": str(source),
        "num_vertices": n,
        "num_edges": e,
        "symmetric": symmetric,
        "weighted": weighted,
        "requested_vertices": num_vertices,
    }
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _stream_file(fh, src_path: Path, nbytes: int, sha) -> None:
    if nbytes == 0 or not src_path.exists():
        return
    with open(src_path, "rb") as src:
        while True:
            chunk = src.read(_CHUNK_BYTES)
            if not chunk:
                break
            sha.update(chunk)
            fh.write(chunk)


def _write_array(fh, arr: np.ndarray, sha) -> None:
    data = np.ascontiguousarray(arr).tobytes()
    sha.update(data)
    fh.write(data)


def _write_store(dest, name, source, n, e, out_oa, out_na_path,
                 out_w_path, in_paths, symmetric, weighted,
                 num_vertices) -> None:
    meta = _meta_bytes(name, source, n, e, symmetric, weighted,
                       num_vertices)
    flags = (FLAG_SYMMETRIC if symmetric else 0) | \
        (FLAG_WEIGHTED if weighted else 0)
    tmp = dest.with_name(f"{dest.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            fh.write(b"\0" * HEADER_SIZE)
            sha = hashlib.sha256(meta)
            fh.write(meta)
            _write_array(fh, out_oa, sha)
            _stream_file(fh, out_na_path,
                         e * np.dtype(VERTEX_DTYPE).itemsize, sha)
            if weighted:
                _stream_file(fh, out_w_path,
                             e * np.dtype(WEIGHT_DTYPE).itemsize, sha)
            if not symmetric:
                in_oa, in_na_path, in_w_path = in_paths
                _write_array(fh, in_oa, sha)
                _stream_file(fh, in_na_path,
                             e * np.dtype(VERTEX_DTYPE).itemsize, sha)
                if weighted:
                    _stream_file(fh, in_w_path,
                                 e * np.dtype(WEIGHT_DTYPE).itemsize,
                                 sha)
            head = _HEADER.pack(MAGIC, STORE_VERSION, HEADER_SIZE,
                                len(meta), n, e, flags, 0,
                                sha.digest(), b"\0" * 32)
            header_sha = hashlib.sha256(head[:_SHA_OFFSET]).digest()
            fh.seek(0)
            fh.write(head[:_SHA_OFFSET] + header_sha)
        os.replace(tmp, dest)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    COUNTERS["writes"].inc()


# -- read -------------------------------------------------------------------

def _section_sizes(n: int, e: int, flags: int) -> list[int]:
    """Byte length of every array section, in file order."""
    oa = (n + 1) * np.dtype(OFFSET_DTYPE).itemsize
    na = e * np.dtype(VERTEX_DTYPE).itemsize
    w = e * np.dtype(WEIGHT_DTYPE).itemsize
    sizes = [oa, na]
    if flags & FLAG_WEIGHTED:
        sizes.append(w)
    if not flags & FLAG_SYMMETRIC:
        sizes.extend([oa, na])
        if flags & FLAG_WEIGHTED:
            sizes.append(w)
    return sizes


def _read_header(fh) -> tuple:
    head = fh.read(HEADER_SIZE)
    if len(head) < HEADER_SIZE:
        raise GraphStoreError(f"truncated header ({len(head)} of "
                              f"{HEADER_SIZE} bytes)")
    (magic, version, header_size, meta_len, n, e, flags, _reserved,
     payload_sha, header_sha) = _HEADER.unpack(head)
    if magic != MAGIC:
        raise GraphStoreError(f"bad magic {magic!r}")
    if hashlib.sha256(head[:_SHA_OFFSET]).digest() != header_sha:
        raise GraphStoreError("header checksum mismatch")
    if version != STORE_VERSION:
        raise GraphStoreError(f"unsupported graph-store version "
                              f"{version} (this build reads "
                              f"v{STORE_VERSION})")
    if header_size != HEADER_SIZE:
        raise GraphStoreError(f"bad header size {header_size}")
    return meta_len, n, e, flags, payload_sha


def read_header(path: str | os.PathLike) -> dict:
    """Validate and return the header of a graph-store file.

    Raises :class:`GraphStoreError` on any header-level problem,
    including a file-size/section mismatch (truncation).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        meta_len, n, e, flags, payload_sha = _read_header(fh)
    expected = HEADER_SIZE + meta_len + sum(_section_sizes(n, e, flags))
    actual = path.stat().st_size
    if actual != expected:
        raise GraphStoreError(f"file size {actual} != expected "
                              f"{expected} (truncated or padded)")
    return {"meta_len": meta_len, "num_vertices": n, "num_edges": e,
            "flags": flags, "payload_sha": payload_sha.hex()}


def open_graph(path: str | os.PathLike, mapped: bool = True,
               verify_payload: bool = True) -> CSRGraph:
    """Open a v1 graph-store file as a :class:`CSRGraph`.

    With ``mapped=True`` (the default) every array is a *read-only*
    ``np.memmap`` view — zero copies, one shared page-cache instance
    across all worker processes.  ``mapped=False`` materializes
    private in-RAM copies (the in-memory half of the byte-equality
    tests).  Any validation failure raises :class:`GraphStoreError`;
    callers should quarantine the file (see :func:`load_ingested`).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        meta_len, n, e, flags, payload_sha = _read_header(fh)
        sizes = _section_sizes(n, e, flags)
        expected = HEADER_SIZE + meta_len + sum(sizes)
        actual = path.stat().st_size
        if actual != expected:
            raise GraphStoreError(f"file size {actual} != expected "
                                  f"{expected} (truncated or padded)")
        meta_raw = fh.read(meta_len)
        if len(meta_raw) != meta_len:
            raise GraphStoreError("truncated metadata block")
        if verify_payload:
            h = hashlib.sha256(meta_raw)
            while True:
                chunk = fh.read(_CHUNK_BYTES)
                if not chunk:
                    break
                h.update(chunk)
            if h.digest() != payload_sha:
                raise GraphStoreError("payload checksum mismatch")
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
    except ValueError as exc:
        raise GraphStoreError(f"bad metadata block: {exc}") from None

    weighted = bool(flags & FLAG_WEIGHTED)
    symmetric = bool(flags & FLAG_SYMMETRIC)
    offset = HEADER_SIZE + meta_len
    arrays = []
    specs = [(OFFSET_DTYPE, n + 1), (VERTEX_DTYPE, e)]
    if weighted:
        specs.append((WEIGHT_DTYPE, e))
    if not symmetric:
        specs.extend([(OFFSET_DTYPE, n + 1), (VERTEX_DTYPE, e)])
        if weighted:
            specs.append((WEIGHT_DTYPE, e))
    for dtype, length in specs:
        if mapped and length:
            arrays.append(np.memmap(path, dtype=dtype, mode="r",
                                    offset=offset, shape=(length,)))
        else:
            with open(path, "rb") as fh:
                fh.seek(offset)
                arrays.append(np.fromfile(fh, dtype=dtype,
                                          count=length))
        offset += length * np.dtype(dtype).itemsize
    if mapped:
        COUNTERS["maps"].inc()
    COUNTERS["opens"].inc()

    it = iter(arrays)
    out_oa, out_na = next(it), next(it)
    out_w = next(it) if weighted else None
    if symmetric:
        in_oa, in_na, in_w = out_oa, out_na, out_w
    else:
        in_oa, in_na = next(it), next(it)
        in_w = next(it) if weighted else None
    graph = CSRGraph(out_oa=out_oa, out_na=out_na, in_oa=in_oa,
                     in_na=in_na, out_weights=out_w, in_weights=in_w,
                     symmetric=symmetric,
                     name=str(meta.get("name", path.stem)))
    graph.validate()
    return graph


def _salvage_source(path: Path) -> dict | None:
    """Best-effort metadata read from a possibly-damaged store file.

    A ``corrupt`` scribble usually lands in the (large) array sections
    and a ``truncate`` keeps the small header+meta prefix, so the
    source path needed for a rebuild generally survives.  Returns the
    parsed metadata dict, or ``None`` when even that is gone.
    """
    try:
        with open(path, "rb") as fh:
            meta_len, *_ = _read_header(fh)
            meta_raw = fh.read(meta_len)
        if len(meta_raw) != meta_len:
            return None
        meta = json.loads(meta_raw.decode("utf-8"))
        return meta if isinstance(meta, dict) else None
    except (OSError, ValueError, GraphStoreError):
        return None


def load_ingested(name: str, mapped: bool = True) -> CSRGraph:
    """Open an ingested graph by name, with quarantine + rebuild.

    A store file that fails validation is quarantined to the shared
    ``results/quarantine/`` directory and rebuilt from its recorded
    source edge-list file exactly once (two-round loop, mirroring
    :func:`repro.experiments.workloads.workload_trace`); a second
    consecutive failure, or a vanished source file, raises
    :class:`GraphStoreError`.
    """
    from repro.experiments.workloads import trace_quarantine_dir
    path = store_path(name)
    last: GraphStoreError | None = None
    for round_ in range(2):
        if path.exists():
            try:
                return open_graph(path, mapped=mapped)
            except GraphStoreError as exc:
                last = exc
                COUNTERS["corrupt"].inc()
                meta = _salvage_source(path)
                quarantine_file(path, trace_quarantine_dir())
                if round_ == 0 and meta and \
                        Path(str(meta.get("source", ""))).exists():
                    ingest_graph(meta["source"], name=name,
                                 symmetrize=bool(meta.get("symmetric")),
                                 num_vertices=meta.get(
                                     "requested_vertices"),
                                 force=True)
                    COUNTERS["rebuilt"].inc()
                    continue
                raise GraphStoreError(
                    f"graph store {path.name}: {exc} (quarantined; "
                    f"no readable source to rebuild from)") from exc
        else:
            break
    if last is not None:
        raise last
    raise GraphStoreError(
        f"no ingested graph {name!r} (looked for {path}); "
        f"ingest one with: repro ingest <edges.el[.gz]> --name {name}")


# -- synthetic weights for weighted kernels on unweighted inputs ------------

def _edge_weight(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Deterministic per-(u, v) weight in [1, 254] — a pure function of
    the endpoints, so the CSR and CSC views of one edge always agree."""
    mixed = (src.astype(np.uint64) * np.uint64(2654435761)
             + dst.astype(np.uint64) * np.uint64(40503))
    return (mixed % np.uint64(254) + np.uint64(1)).astype(WEIGHT_DTYPE)


def with_synthetic_weights(graph: CSRGraph) -> CSRGraph:
    """Attach deterministic weights to an unweighted graph.

    Used when a weighted kernel (SSSP) runs over an ingested graph
    whose edge list carried no weights.  The weight of edge ``(u, v)``
    is a pure hash of the endpoints, identical however the graph is
    loaded, so mapped and in-memory runs stay bit-identical.  Note the
    weight arrays are materialized in RAM (O(edges) × 4 B) — only
    weighted kernels pay this.
    """
    if graph.out_weights is not None:
        return graph
    n = graph.num_vertices
    out_src = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(graph.out_oa))
    out_w = _edge_weight(out_src, graph.out_na.astype(np.int64))
    if graph.symmetric:
        in_w = out_w
    else:
        in_dst = np.repeat(np.arange(n, dtype=np.int64),
                           np.diff(graph.in_oa))
        in_w = _edge_weight(graph.in_na.astype(np.int64), in_dst)
    return CSRGraph(out_oa=graph.out_oa, out_na=graph.out_na,
                    in_oa=graph.in_oa, in_na=graph.in_na,
                    out_weights=out_w, in_weights=in_w,
                    symmetric=graph.symmetric, name=graph.name)
