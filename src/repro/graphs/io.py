"""Graph file I/O: GAP-compatible edge-list formats plus binary caches.

Formats (``.gz`` composes with every text format)::

    suffix        columns        loader behaviour
    ------------  -------------  ----------------------------------
    .el[.gz]      src dst        GAP plain edge list
    .wel[.gz]     src dst w      GAP weighted edge list
    .txt[.gz]     src dst        SNAP dump (# comments ignored)
    .npz          CSR arrays     this package's compressed container
    .graph        CSR arrays     ingest store (v1 envelope, mappable)

``load_edgelist`` streams the file in bounded chunks through
:func:`repro.graphs.ingest.iter_edge_chunks`, so the raw rows never
materialize all at once, and rejects rows whose column count does not
match the format — a three-column row in a ``.el`` file is an error,
not two silently-kept columns.  ``load_binary`` dispatches on content:
an ``.npz`` container loads eagerly, a v1 graph-store file can load
zero-copy (``mapped=True``).

>>> import numpy as np, tempfile, os
>>> from repro.graphs.csr import from_edges
>>> g = from_edges(np.array([[0, 1], [1, 2], [2, 0]]))
>>> d = tempfile.mkdtemp()
>>> p = save_edgelist(g, os.path.join(d, "tri.el"))
>>> g2 = load_edgelist(p)
>>> bool(np.array_equal(g.out_na, g2.out_na))
True
>>> g2.num_vertices
3
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph, from_edges


def load_edgelist(path, symmetrize: bool = False,
                  num_vertices: int | None = None) -> CSRGraph:
    """Load a ``.el``/``.wel``/``.txt`` edge list (optionally ``.gz``).

    The format comes from the file name (see the module table); rows
    with the wrong column count raise ``ValueError``.  Parsing is
    chunked — peak memory is O(vertices + chunk), not O(file).

    >>> import tempfile, os
    >>> p = os.path.join(tempfile.mkdtemp(), "pair.el")
    >>> _ = open(p, "w").write("# a comment\\n0 1\\n1 0\\n")
    >>> load_edgelist(p).num_edges
    2
    """
    from repro.graphs import ingest
    path = Path(path)
    fmt, _gz = ingest.edge_list_format(path)
    weighted = fmt == "wel"
    srcs, dsts, ws = [], [], []
    for src, dst, w in ingest.iter_edge_chunks(path):
        srcs.append(src)
        dsts.append(dst)
        if weighted:
            ws.append(w)
    if srcs:
        edges = np.column_stack([np.concatenate(srcs),
                                 np.concatenate(dsts)])
    else:
        edges = np.empty((0, 2), dtype=np.int64)
    weights = (np.concatenate(ws).astype(np.int32)
               if weighted and ws else
               (np.empty(0, dtype=np.int32) if weighted else None))
    return from_edges(edges, num_vertices=num_vertices, weights=weights,
                      symmetrize=symmetrize,
                      name=ingest.graph_name_from_path(path))


def save_edgelist(graph: CSRGraph, path) -> Path:
    """Write the out-edges as ``.el`` / ``.wel`` (by extension)."""
    path = Path(path)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(graph.out_oa))
    dst = graph.out_na.astype(np.int64)
    if path.suffix == ".wel":
        if graph.out_weights is None:
            raise ValueError(".wel requires a weighted graph")
        cols = np.column_stack([src, dst,
                                graph.out_weights.astype(np.int64)])
        np.savetxt(path, cols, fmt="%d")
    else:
        np.savetxt(path, np.column_stack([src, dst]), fmt="%d")
    return path


def save_binary(graph: CSRGraph, path) -> Path:
    """Save the CSR/CSC arrays as a compressed ``.npz`` container."""
    path = Path(path)
    payload = {
        "out_oa": graph.out_oa, "out_na": graph.out_na,
        "in_oa": graph.in_oa, "in_na": graph.in_na,
        "symmetric": np.array([graph.symmetric]),
        "name": np.array([graph.name]),
    }
    if graph.out_weights is not None:
        payload["out_weights"] = graph.out_weights
    if graph.in_weights is not None:
        payload["in_weights"] = graph.in_weights
    np.savez_compressed(path, **payload)
    return path


def load_binary(path, mapped: bool = False) -> CSRGraph:
    """Reload a graph saved by :func:`save_binary` or ``ingest``.

    Dispatches on file content: the v1 graph-store envelope (magic
    ``REPROGRF``) opens through :func:`repro.graphs.ingest.open_graph`
    — pass ``mapped=True`` for zero-copy read-only ``np.memmap``
    views — while an ``.npz`` container loads eagerly (``mapped`` is
    ignored; npz is compressed and cannot be mapped).
    """
    from repro.graphs import ingest
    path = Path(path)
    with open(path, "rb") as fh:
        magic = fh.read(len(ingest.MAGIC))
    if magic == ingest.MAGIC:
        return ingest.open_graph(path, mapped=mapped)
    with np.load(path, allow_pickle=False) as z:
        graph = CSRGraph(
            out_oa=z["out_oa"], out_na=z["out_na"],
            in_oa=z["in_oa"], in_na=z["in_na"],
            out_weights=z["out_weights"] if "out_weights" in z else None,
            in_weights=z["in_weights"] if "in_weights" in z else None,
            symmetric=bool(z["symmetric"][0]),
            name=str(z["name"][0]))
    graph.validate()
    return graph
