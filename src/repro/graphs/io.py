"""Graph file I/O: GAP-compatible edge-list formats plus a binary cache.

Formats:

* ``.el``  — whitespace-separated ``src dst`` per line (GAP's plain
  edge list); ``#`` comment lines ignored.
* ``.wel`` — ``src dst weight`` per line (GAP's weighted edge list).
* ``.npz`` — this package's binary CSR container (fast reload).

These let the suite run on real datasets (SNAP dumps etc.) when
available, instead of the synthetic surrogates.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.graphs.csr import CSRGraph, from_edges


def load_edgelist(path, symmetrize: bool = False,
                  num_vertices: int | None = None) -> CSRGraph:
    """Load a ``.el`` or ``.wel`` edge list (by extension)."""
    path = Path(path)
    weighted = path.suffix == ".wel"
    cols = 3 if weighted else 2
    data = np.loadtxt(path, dtype=np.int64, comments="#", ndmin=2)
    if data.size == 0:
        data = np.empty((0, cols), dtype=np.int64)
    if data.shape[1] < cols:
        raise ValueError(f"{path.name}: expected {cols} columns, "
                         f"got {data.shape[1]}")
    edges = data[:, :2]
    weights = data[:, 2].astype(np.int32) if weighted else None
    return from_edges(edges, num_vertices=num_vertices, weights=weights,
                      symmetrize=symmetrize, name=path.stem)


def save_edgelist(graph: CSRGraph, path) -> Path:
    """Write the out-edges as ``.el`` / ``.wel`` (by extension)."""
    path = Path(path)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64),
                    np.diff(graph.out_oa))
    dst = graph.out_na.astype(np.int64)
    if path.suffix == ".wel":
        if graph.out_weights is None:
            raise ValueError(".wel requires a weighted graph")
        cols = np.column_stack([src, dst,
                                graph.out_weights.astype(np.int64)])
        np.savetxt(path, cols, fmt="%d")
    else:
        np.savetxt(path, np.column_stack([src, dst]), fmt="%d")
    return path


def save_binary(graph: CSRGraph, path) -> Path:
    """Save the CSR/CSC arrays as a compressed ``.npz`` container."""
    path = Path(path)
    payload = {
        "out_oa": graph.out_oa, "out_na": graph.out_na,
        "in_oa": graph.in_oa, "in_na": graph.in_na,
        "symmetric": np.array([graph.symmetric]),
        "name": np.array([graph.name]),
    }
    if graph.out_weights is not None:
        payload["out_weights"] = graph.out_weights
    if graph.in_weights is not None:
        payload["in_weights"] = graph.in_weights
    np.savez_compressed(path, **payload)
    return path


def load_binary(path) -> CSRGraph:
    """Reload a graph saved by :func:`save_binary`."""
    with np.load(path, allow_pickle=False) as z:
        graph = CSRGraph(
            out_oa=z["out_oa"], out_na=z["out_na"],
            in_oa=z["in_oa"], in_na=z["in_na"],
            out_weights=z["out_weights"] if "out_weights" in z else None,
            in_weights=z["in_weights"] if "in_weights" in z else None,
            symmetric=bool(z["symmetric"][0]),
            name=str(z["name"][0]))
    graph.validate()
    return graph
