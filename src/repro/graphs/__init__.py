"""Graph substrate: CSR/CSC adjacency structures, generators, input suite.

The paper represents graphs in the CSR/CSC format (§II-A): an *Offset
Array* (OA) indexing the start of each vertex's adjacency list within a
*Neighbors Array* (NA).  :class:`~repro.graphs.csr.CSRGraph` holds both
directions (out-edges as CSR, in-edges as CSC) because the GAP kernels
switch between push (CSR) and pull (CSC) traversal.
"""

from repro.graphs.csr import CSRGraph, build_graph, from_edges
from repro.graphs.generators import (
    grid_road_graph,
    kronecker_graph,
    power_law_graph,
    uniform_random_graph,
)
from repro.graphs.io import (load_binary, load_edgelist, save_binary,
                             save_edgelist)
from repro.graphs.reorder import ORDERINGS, apply_order
from repro.graphs.suite import GRAPH_SUITE, GraphSpec, load_graph

__all__ = [
    "CSRGraph",
    "build_graph",
    "from_edges",
    "kronecker_graph",
    "uniform_random_graph",
    "grid_road_graph",
    "power_law_graph",
    "GRAPH_SUITE",
    "GraphSpec",
    "load_graph",
    "load_edgelist",
    "save_edgelist",
    "load_binary",
    "save_binary",
    "apply_order",
    "ORDERINGS",
]
