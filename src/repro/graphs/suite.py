"""The six-input graph suite standing in for the paper's Table III.

Each :class:`GraphSpec` names a surrogate generator plus its parameters
at a chosen size tier.  Paper Table III lists 23.9M–134.2M vertices; our
default tier ("small") is ~3 orders of magnitude smaller, matched by the
scaled cache configuration (see ``repro.config.scaled_config`` and
DESIGN.md substitution #2).  Graphs are memoized per process so the 36
workloads share the 6 graph builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.graphs.csr import CSRGraph
from repro.graphs import generators as gen

# Size tiers: multiplier applied to the base vertex counts below.
SIZE_TIERS = {"tiny": 0.25, "small": 1.0, "medium": 4.0, "large": 16.0}


@dataclass(frozen=True)
class GraphSpec:
    """A named input graph of the evaluation suite."""

    name: str
    kind: str                 # degree-distribution class (documentation)
    builder: Callable[[float, bool], CSRGraph]
    paper_vertices_m: float   # Table III, for reporting
    paper_edges_m: float

    def build(self, tier: str = "small", weighted: bool = False) -> CSRGraph:
        if tier not in SIZE_TIERS:
            raise ValueError(f"unknown size tier {tier!r}; "
                             f"choose from {sorted(SIZE_TIERS)}")
        g = self.builder(SIZE_TIERS[tier], weighted)
        return g


def _web(mult: float, weighted: bool) -> CSRGraph:
    # Web crawls: strong power law, locally clustered. Directed.
    return gen.power_law_graph(int(24576 * mult), edge_factor=20,
                               exponent=2.0, seed=11, symmetrize=False,
                               weighted=weighted, name="web")


def _road(mult: float, weighted: bool) -> CSRGraph:
    side = max(8, int(160 * mult ** 0.5))
    return gen.grid_road_graph(side, diagonal_fraction=0.03, seed=13,
                               weighted=True, name="road")


def _twitter(mult: float, weighted: bool) -> CSRGraph:
    return gen.power_law_graph(int(28672 * mult), edge_factor=24,
                               exponent=1.9, seed=17, symmetrize=False,
                               weighted=weighted, name="twitter")


def _kron(mult: float, weighted: bool) -> CSRGraph:
    scale = 15 + max(0, round(mult).bit_length() - 1)
    return gen.kronecker_graph(scale, edge_factor=16, seed=19,
                               symmetrize=True, weighted=weighted,
                               name="kron")


def _urand(mult: float, weighted: bool) -> CSRGraph:
    return gen.uniform_random_graph(int(32768 * mult), edge_factor=16,
                                    seed=23, symmetrize=True,
                                    weighted=weighted, name="urand")


def _friendster(mult: float, weighted: bool) -> CSRGraph:
    # Friendster: the largest, a social network — heavy tail, undirected.
    return gen.power_law_graph(int(32768 * mult), edge_factor=28,
                               exponent=2.2, seed=29, symmetrize=True,
                               weighted=weighted, name="friendster")


GRAPH_SUITE: dict[str, GraphSpec] = {
    "web": GraphSpec("web", "power-law (directed crawl)", _web,
                     50.6, 1949.4),
    "road": GraphSpec("road", "bounded-degree mesh", _road, 23.9, 58.3),
    "twitter": GraphSpec("twitter", "power-law (social)", _twitter,
                         61.6, 1468.4),
    "kron": GraphSpec("kron", "Kronecker power-law", _kron, 134.2, 2111.6),
    "urand": GraphSpec("urand", "uniform random", _urand, 134.2, 2147.4),
    "friendster": GraphSpec("friendster", "power-law (social, largest)",
                            _friendster, 65.6, 3612.1),
}


@lru_cache(maxsize=32)
def load_graph(name: str, tier: str = "small",
               weighted: bool = False) -> CSRGraph:
    """Build (or fetch from the per-process cache) a suite graph.

    Names outside the synthetic suite fall through to the ingested
    graph store (``repro ingest``): the graph opens memory-mapped —
    shared page-cache across workers, `tier` has no effect on a real
    graph — with deterministic synthetic weights attached on demand
    when ``weighted`` and the edge list carried none.
    """
    try:
        spec = GRAPH_SUITE[name]
    except KeyError:
        from repro.graphs import ingest
        if ingest.has_ingested(name):
            g = ingest.load_ingested(name)
            return ingest.with_synthetic_weights(g) if weighted else g
        raise ValueError(
            f"unknown graph {name!r}; choose from "
            f"{sorted(GRAPH_SUITE)} or an ingested graph "
            f"({sorted(ingest.list_ingested()) or 'none yet'} — "
            f"see: repro ingest)") from None
    return spec.build(tier, weighted)
