"""CSR/CSC graph representation (paper §II-A, Fig. 1).

A graph is stored as two arrays per direction::

    array     dtype  length  contents
    --------  -----  ------  --------------------------------------
    out_oa    int64  n + 1   CSR Offset Array (row starts)
    out_na    int32  e       CSR Neighbors Array (destinations)
    in_oa     int64  n + 1   CSC offsets (incoming, pull kernels)
    in_na     int32  e       CSC sources
    *_weights int32  e       optional per-edge weights (SSSP)

``out_na[out_oa[u]:out_oa[u+1]]`` are the outgoing neighbours of
vertex ``u``, sorted by destination; symmetric (undirected) graphs
share one array set between CSR and CSC.  Vertex ids are ``int32``
(the GAP default for graphs under 2^31 edges), offsets ``int64``.

:func:`from_edges` applies GAP's loader semantics — infer ``n`` as the
max endpoint + 1, drop self-loops, keep the *first* occurrence of each
duplicate edge (and its weight), optionally add every reverse edge —
and the streaming ingestion path (:mod:`repro.graphs.ingest`)
reproduces those semantics byte-for-byte out of core:

>>> import numpy as np
>>> g = from_edges(np.array([[0, 1], [1, 2], [1, 1], [0, 1]]))
>>> g.num_vertices, g.num_edges          # self-loop + dupe dropped
(3, 2)
>>> g.out_neighbors(1)
array([2], dtype=int32)
>>> u = from_edges(np.array([[0, 1], [1, 2]]), symmetrize=True)
>>> u.num_edges, bool(u.symmetric)
(4, True)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

VERTEX_DTYPE = np.int32
OFFSET_DTYPE = np.int64
WEIGHT_DTYPE = np.int32


@dataclass
class CSRGraph:
    """Immutable directed graph in CSR + CSC form.

    Attributes
    ----------
    out_oa, out_na:
        Offset Array / Neighbors Array of the out-adjacency (CSR).
    in_oa, in_na:
        Offset Array / Neighbors Array of the in-adjacency (CSC).
    out_weights, in_weights:
        Optional per-edge weights aligned with ``out_na`` / ``in_na``.
    symmetric:
        True when the graph was built as undirected (every edge has its
        reverse), in which case CSR and CSC share the same arrays.
    """

    out_oa: np.ndarray
    out_na: np.ndarray
    in_oa: np.ndarray
    in_na: np.ndarray
    out_weights: np.ndarray | None = None
    in_weights: np.ndarray | None = None
    symmetric: bool = False
    name: str = "graph"
    _out_degrees: np.ndarray | None = field(default=None, repr=False)

    # -- basic properties ------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.out_oa) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges (arcs) stored in the CSR."""
        return len(self.out_na)

    def out_degree(self, u: int) -> int:
        return int(self.out_oa[u + 1] - self.out_oa[u])

    def in_degree(self, u: int) -> int:
        return int(self.in_oa[u + 1] - self.in_oa[u])

    def out_degrees(self) -> np.ndarray:
        if self._out_degrees is None:
            object.__setattr__(self, "_out_degrees",
                               np.diff(self.out_oa).astype(VERTEX_DTYPE))
        return self._out_degrees

    def in_degrees(self) -> np.ndarray:
        return np.diff(self.in_oa).astype(VERTEX_DTYPE)

    def out_neighbors(self, u: int) -> np.ndarray:
        return self.out_na[self.out_oa[u]:self.out_oa[u + 1]]

    def in_neighbors(self, u: int) -> np.ndarray:
        return self.in_na[self.in_oa[u]:self.in_oa[u + 1]]

    def out_edge_weights(self, u: int) -> np.ndarray:
        if self.out_weights is None:
            raise ValueError("graph has no weights")
        return self.out_weights[self.out_oa[u]:self.out_oa[u + 1]]

    # -- validation ------------------------------------------------------
    def validate(self) -> None:
        """Check all structural invariants; raises ``ValueError`` if broken."""
        n = self.num_vertices
        for oa, na, side in ((self.out_oa, self.out_na, "out"),
                             (self.in_oa, self.in_na, "in")):
            if oa[0] != 0 or oa[-1] != len(na):
                raise ValueError(f"{side}: OA endpoints inconsistent with NA")
            if np.any(np.diff(oa) < 0):
                raise ValueError(f"{side}: OA is not monotonically "
                                 f"non-decreasing")
            if len(na) and (na.min() < 0 or na.max() >= n):
                raise ValueError(f"{side}: NA contains out-of-range vertex")
        if len(self.out_na) != len(self.in_na):
            raise ValueError("CSR and CSC edge counts differ")
        if self.out_weights is not None and \
                len(self.out_weights) != len(self.out_na):
            raise ValueError("out_weights length mismatch")
        if self.in_weights is not None and \
                len(self.in_weights) != len(self.in_na):
            raise ValueError("in_weights length mismatch")

    # -- conversions -----------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """Return the transpose graph (swap CSR and CSC)."""
        return CSRGraph(
            out_oa=self.in_oa, out_na=self.in_na,
            in_oa=self.out_oa, in_na=self.out_na,
            out_weights=self.in_weights, in_weights=self.out_weights,
            symmetric=self.symmetric, name=self.name + ".T")

    def to_scipy(self):
        """Return the adjacency matrix as ``scipy.sparse.csr_matrix``."""
        from scipy.sparse import csr_matrix
        data = (self.out_weights if self.out_weights is not None
                else np.ones(self.num_edges, dtype=np.int8))
        return csr_matrix((data, self.out_na, self.out_oa),
                          shape=(self.num_vertices, self.num_vertices))


def _compress(sources: np.ndarray, dests: np.ndarray, n: int,
              weights: np.ndarray | None):
    """Build (OA, NA[, W]) sorted by source then destination."""
    order = np.lexsort((dests, sources))
    s, d = sources[order], dests[order]
    w = weights[order] if weights is not None else None
    counts = np.bincount(s, minlength=n).astype(OFFSET_DTYPE)
    oa = np.zeros(n + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=oa[1:])
    return oa, d.astype(VERTEX_DTYPE), w


def from_edges(edges: np.ndarray, num_vertices: int | None = None,
               weights: np.ndarray | None = None,
               symmetrize: bool = False, dedup: bool = True,
               name: str = "graph") -> CSRGraph:
    """Build a :class:`CSRGraph` from an ``(m, 2)`` edge array.

    Parameters
    ----------
    edges:
        Integer array of shape ``(m, 2)``; row ``(u, v)`` is the directed
        edge ``u -> v``.
    num_vertices:
        Vertex count; inferred as ``edges.max() + 1`` when omitted.
    weights:
        Optional per-edge weights (same length as ``edges``).
    symmetrize:
        Add the reverse of every edge (GAP's undirected-graph loading).
    dedup:
        Remove duplicate edges and self-loops (GAP's default cleanup).
    """
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must have shape (m, 2)")
    if num_vertices is None:
        num_vertices = int(edges.max()) + 1 if len(edges) else 0
    src, dst = edges[:, 0].copy(), edges[:, 1].copy()
    w = None if weights is None else np.asarray(weights, dtype=WEIGHT_DTYPE)

    if symmetrize:
        src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        if w is not None:
            w = np.concatenate([w, w])

    if dedup:
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if w is not None:
            w = w[keep]
        key = src * num_vertices + dst
        _, idx = np.unique(key, return_index=True)
        src, dst = src[idx], dst[idx]
        if w is not None:
            w = w[idx]

    out_oa, out_na, out_w = _compress(src, dst, num_vertices, w)
    if symmetrize:
        in_oa, in_na, in_w = out_oa, out_na, out_w
    else:
        in_oa, in_na, in_w = _compress(dst, src, num_vertices, w)

    g = CSRGraph(out_oa=out_oa, out_na=out_na, in_oa=in_oa, in_na=in_na,
                 out_weights=out_w, in_weights=in_w,
                 symmetric=symmetrize, name=name)
    g.validate()
    return g


def build_graph(edges, num_vertices=None, **kwargs) -> CSRGraph:
    """Convenience alias for :func:`from_edges` accepting lists of pairs."""
    return from_edges(np.asarray(list(edges) if not isinstance(edges, np.ndarray)
                                 else edges),
                      num_vertices=num_vertices, **kwargs)
