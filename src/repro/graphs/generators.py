"""Synthetic graph generators standing in for the paper's inputs.

The paper's Table III graphs (Web, Road, Twitter, Kron, Urand,
Friendster) are multi-gigabyte real or Graph500 datasets.  Per DESIGN.md
substitution #2 we generate scaled surrogates with the same
degree-distribution class:

* :func:`kronecker_graph` — R-MAT/Kronecker power-law graphs (Kron, and
  with different seed parameters the Twitter/Web/Friendster surrogates).
* :func:`uniform_random_graph` — Erdős–Rényi-style uniform graphs (Urand).
* :func:`grid_road_graph` — 2-D grid with diagonal shortcuts; a bounded-
  degree, high-diameter planar-ish network (Road).
* :func:`power_law_graph` — explicit Chung-Lu style power-law sampler used
  by tests to control the exponent directly.

All generators are deterministic in ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph, from_edges


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def kronecker_graph(scale: int, edge_factor: int = 16,
                    a: float = 0.57, b: float = 0.19, c: float = 0.19,
                    seed: int = 1, symmetrize: bool = True,
                    weighted: bool = False, name: str | None = None
                    ) -> CSRGraph:
    """R-MAT / stochastic-Kronecker generator (Graph500 parameters).

    Parameters mirror Graph500: ``2**scale`` vertices, ``edge_factor``
    edges per vertex, and the (a, b, c, d) recursive partition
    probabilities with ``d = 1 - a - b - c``.  The default (0.57, 0.19,
    0.19) yields the heavy-tailed power-law degree distribution of the
    paper's Kron input.
    """
    n = 1 << scale
    m = n * edge_factor
    rng = _rng(seed)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    ab, abc = a + b, a + b + c
    # Vectorized R-MAT: one uniform draw per level picks the quadrant
    # (a: 00, b: 01, c: 10, d: 11) for every edge at once.
    for level in range(scale):
        bit = 1 << (scale - 1 - level)
        r = rng.random(m)
        src_bit = r >= ab
        dst_bit = np.where(src_bit, r >= abc, r >= a)
        src += bit * src_bit
        dst += bit * dst_bit
    # Permute vertex ids so degree is not correlated with id (GAP does
    # the same for Kron inputs).
    perm = rng.permutation(n)
    src, dst = perm[src], perm[dst]
    w = rng.integers(1, 256, size=m).astype(np.int32) if weighted else None
    return from_edges(np.column_stack([src, dst]), num_vertices=n,
                      weights=w, symmetrize=symmetrize,
                      name=name or f"kron{scale}")


def uniform_random_graph(num_vertices: int, edge_factor: int = 16,
                         seed: int = 2, symmetrize: bool = True,
                         weighted: bool = False, name: str | None = None
                         ) -> CSRGraph:
    """Uniform-random (Erdős–Rényi style) graph: the Urand surrogate.

    Every endpoint is drawn uniformly, producing a binomial degree
    distribution with essentially no high-degree hubs and therefore no
    natural reuse hot set — the paper's worst-locality input class.
    """
    m = num_vertices * edge_factor
    rng = _rng(seed)
    src = rng.integers(0, num_vertices, size=m)
    dst = rng.integers(0, num_vertices, size=m)
    w = rng.integers(1, 256, size=m).astype(np.int32) if weighted else None
    return from_edges(np.column_stack([src, dst]), num_vertices=num_vertices,
                      weights=w, symmetrize=symmetrize,
                      name=name or f"urand{num_vertices}")


def grid_road_graph(side: int, diagonal_fraction: float = 0.05,
                    seed: int = 3, weighted: bool = True,
                    name: str | None = None) -> CSRGraph:
    """2-D grid with sparse random shortcuts: the Road surrogate.

    Road networks have near-constant small degree and enormous diameter.
    A ``side x side`` grid reproduces both properties; a small fraction
    of random "highway" shortcuts keeps the diameter finite so Δ-stepping
    and BFS terminate in a reasonable number of rounds.
    """
    n = side * side
    ids = np.arange(n).reshape(side, side)
    right = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    down = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.vstack([right, down])
    rng = _rng(seed)
    n_short = int(len(edges) * diagonal_fraction)
    if n_short:
        shortcuts = rng.integers(0, n, size=(n_short, 2))
        edges = np.vstack([edges, shortcuts])
    w = rng.integers(1, 256, size=len(edges)).astype(np.int32) \
        if weighted else None
    return from_edges(edges, num_vertices=n, weights=w, symmetrize=True,
                      name=name or f"road{side}x{side}")


def power_law_graph(num_vertices: int, edge_factor: int = 16,
                    exponent: float = 2.1, seed: int = 4,
                    symmetrize: bool = False, weighted: bool = False,
                    name: str | None = None) -> CSRGraph:
    """Chung-Lu style power-law graph with explicit exponent.

    Endpoint ``i`` is sampled with probability proportional to
    ``(i + 1) ** (-1/(exponent - 1))`` — the expected degree sequence of a
    power law with the given exponent.  Used for the Web/Twitter
    surrogates where the paper's inputs are crawls with known heavy
    tails, and by tests that need to steer the skew directly.
    """
    m = num_vertices * edge_factor
    rng = _rng(seed)
    weights_seq = (np.arange(1, num_vertices + 1, dtype=np.float64)
                   ** (-1.0 / (exponent - 1.0)))
    probs = weights_seq / weights_seq.sum()
    cdf = np.cumsum(probs)
    src = np.searchsorted(cdf, rng.random(m))
    dst = np.searchsorted(cdf, rng.random(m))
    # Scatter ids so hot vertices are not contiguous in memory.
    perm = rng.permutation(num_vertices)
    src, dst = perm[src], perm[dst]
    w = rng.integers(1, 256, size=m).astype(np.int32) if weighted else None
    return from_edges(np.column_stack([src, dst]), num_vertices=num_vertices,
                      weights=w, symmetrize=symmetrize,
                      name=name or f"plaw{num_vertices}")
