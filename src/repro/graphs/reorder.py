"""Graph reordering (pre-processing) algorithms — §VI *Pre-Processing*.

The paper positions SDC+LP against locality-improving reordering
schemes ([7] Rabbit order, [14] Cuthill-McKee, [45] Gorder): effective,
but "orders of magnitude more expensive compared to the runtime of a
single traversal".  This module implements the classic members of that
family so the claim can be measured:

* :func:`degree_sort_order` — hub clustering: relabel by descending
  degree so high-reuse hub property elements share cache lines;
* :func:`rcm_order` — (reverse) Cuthill-McKee: BFS from a peripheral
  vertex, expanding neighbours in degree order, reversed — the
  bandwidth-minimizing ordering;
* :func:`bfs_order` — plain BFS relabeling (cheapest locality order);
* :func:`random_order` — locality destructor (lower-bound control).

:func:`estimated_cost` reports each ordering's preprocessing cost in
memory touches, comparable against the traversal trace lengths of
``repro.trace.kernels``.
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.graphs.csr import CSRGraph, from_edges


def apply_order(graph: CSRGraph, order: np.ndarray,
                name_suffix: str = "reordered") -> CSRGraph:
    """Relabel vertices so old vertex ``order[i]`` becomes new vertex
    ``i``; returns a new graph (weights preserved)."""
    n = graph.num_vertices
    order = np.asarray(order, dtype=np.int64)
    if len(order) != n or len(np.unique(order)) != n:
        raise ValueError("order must be a permutation of all vertices")
    new_id = np.empty(n, dtype=np.int64)
    new_id[order] = np.arange(n)
    src = np.repeat(np.arange(n, dtype=np.int64),
                    np.diff(graph.out_oa))
    dst = graph.out_na.astype(np.int64)
    edges = np.column_stack([new_id[src], new_id[dst]])
    return from_edges(edges, num_vertices=n, weights=graph.out_weights,
                      symmetrize=False, dedup=False,
                      name=f"{graph.name}.{name_suffix}")


def degree_sort_order(graph: CSRGraph) -> np.ndarray:
    """Vertices by descending (out+in) degree; ties by id."""
    deg = graph.out_degrees().astype(np.int64) + \
        graph.in_degrees().astype(np.int64)
    return np.lexsort((np.arange(graph.num_vertices), -deg))


def bfs_order(graph: CSRGraph, source: int | None = None) -> np.ndarray:
    """BFS visitation order over the undirected view; unreached vertices
    appended in id order."""
    n = graph.num_vertices
    if source is None:
        deg = graph.out_degrees()
        source = int(np.argmax(deg)) if n else 0
    seen = np.zeros(n, dtype=bool)
    order = []
    queue = deque([source])
    seen[source] = True
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in _undirected_neighbors(graph, u):
            if not seen[v]:
                seen[v] = True
                queue.append(v)
    order.extend(np.flatnonzero(~seen).tolist())
    return np.asarray(order, dtype=np.int64)


def rcm_order(graph: CSRGraph) -> np.ndarray:
    """Reverse Cuthill-McKee over the undirected view.

    Components are processed from pseudo-peripheral (minimum-degree)
    start vertices; within the BFS, neighbours expand in increasing
    degree order; the concatenated order is reversed.
    """
    n = graph.num_vertices
    deg = (graph.out_degrees().astype(np.int64)
           + graph.in_degrees().astype(np.int64))
    seen = np.zeros(n, dtype=bool)
    order: list[int] = []
    # Seed candidates in increasing-degree order (classic heuristic).
    for start in np.argsort(deg, kind="stable"):
        start = int(start)
        if seen[start]:
            continue
        seen[start] = True
        queue = deque([start])
        while queue:
            u = queue.popleft()
            order.append(u)
            neigh = _undirected_neighbors(graph, u)
            neigh = neigh[~seen[neigh]]
            if len(neigh):
                neigh = neigh[np.argsort(deg[neigh], kind="stable")]
                seen[neigh] = True
                queue.extend(neigh.tolist())
    return np.asarray(order[::-1], dtype=np.int64)


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).permutation(graph.num_vertices)


def _undirected_neighbors(graph: CSRGraph, u: int) -> np.ndarray:
    out = graph.out_neighbors(u).astype(np.int64)
    if graph.symmetric:
        return out
    inn = graph.in_neighbors(u).astype(np.int64)
    return np.unique(np.concatenate([out, inn]))


ORDERINGS = {
    "original": lambda g: np.arange(g.num_vertices, dtype=np.int64),
    "random": random_order,
    "degree": degree_sort_order,
    "bfs": bfs_order,
    "rcm": rcm_order,
}


def estimated_cost(name: str, graph: CSRGraph) -> int:
    """Preprocessing cost in memory touches (documented formulas).

    * ``degree``: one degree read per vertex + an O(n log n) sort.
    * ``bfs``: one full traversal (n + m touches).
    * ``rcm``: a full traversal plus a per-vertex neighbour sort —
      n + m + Σ d log d, the dominant term Rabbit/Gorder papers report
      as orders-of-magnitude above a single traversal once performed
      over multi-pass refinement; RCM is the *cheap* end of the family.
    * ``random``/``original``: permutation generation only (n).

    All orderings additionally pay the graph *rebuild*: 2m edge writes
    plus an O(m log m) sort — the dominant cost at scale, included here.
    """
    n, m = graph.num_vertices, graph.num_edges
    rebuild = 2 * m + int(m * max(1.0, math.log2(max(m, 2))))
    if name in ("original",):
        return 0
    if name == "random":
        return n + rebuild
    if name == "degree":
        return n + int(n * max(1.0, math.log2(max(n, 2)))) + rebuild
    if name == "bfs":
        return n + m + rebuild
    if name == "rcm":
        deg = np.diff(graph.out_oa).astype(np.float64)
        sort_cost = int(np.sum(deg * np.log2(np.maximum(deg, 2))))
        return n + m + sort_cost + rebuild
    raise ValueError(f"unknown ordering {name!r}")
