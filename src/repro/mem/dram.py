"""DRAM model: per-bank open-row tracking with Table I DDR4 timings.

Latency is state-dependent (row hit / closed row / row conflict) but
bank queuing is not modelled — the MSHR bound in the core timing model
already limits memory-level parallelism, which is the first-order
contention effect for the latency-bound workloads studied here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BLOCK_BITS, DRAMConfig


@dataclass
class DRAMStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def merged(self, other: "DRAMStats") -> "DRAMStats":
        return DRAMStats(self.reads + other.reads,
                         self.writes + other.writes,
                         self.row_hits + other.row_hits,
                         self.row_misses + other.row_misses,
                         self.row_conflicts + other.row_conflicts)


class DRAMModel:
    """Open-page DDR4 latency model."""

    def __init__(self, config: DRAMConfig | None = None):
        self.config = config or DRAMConfig()
        c = self.config
        self._row_bits = max(1, c.row_size_bytes.bit_length() - 1)
        self._banks = c.banks * c.channels
        self.open_rows: list[int] = [-1] * self._banks
        self.stats = DRAMStats()
        # Precompute the three latencies (core cycles).
        self._lat_hit = c.row_hit_latency
        self._lat_miss = c.row_miss_latency
        self._lat_conflict = c.row_conflict_latency

    def _locate(self, block: int) -> tuple[int, int]:
        addr = block << BLOCK_BITS
        row = addr >> self._row_bits
        bank = row % self._banks
        return bank, row

    def read(self, block: int) -> int:
        """Read one block; returns latency in core cycles."""
        self.stats.reads += 1
        return self._access(block)

    def write(self, block: int) -> int:
        """Write one block (writeback); returns latency in core cycles."""
        self.stats.writes += 1
        return self._access(block)

    def _access(self, block: int) -> int:
        bank, row = self._locate(block)
        current = self.open_rows[bank]
        if current == row:
            self.stats.row_hits += 1
            return self._lat_hit
        self.open_rows[bank] = row
        if current == -1:
            self.stats.row_misses += 1
            return self._lat_miss
        self.stats.row_conflicts += 1
        return self._lat_conflict
