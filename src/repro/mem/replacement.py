"""Cache replacement policies.

A policy manages the per-line ``prio`` slot of the cache's line record
(``line[0]``) and picks victims from a set's ``{tag: line}`` dict.  The
cache passes an opaque ``aux`` value through from the caller — the
T-OPT/Belady policy uses it to receive each access's next-reference
time, which the experiment harness precomputes from the trace
(DESIGN.md substitution #4).

Line record layout (see :mod:`repro.mem.cache`):
``line = [prio, dirty, prefetch]``.
"""

from __future__ import annotations


class LRUPolicy:
    """Least-recently-used: prio is a monotonically increasing timestamp."""

    name = "lru"

    def __init__(self) -> None:
        self._clock = 0

    def on_hit(self, line: list, aux) -> None:
        self._clock += 1
        line[0] = self._clock

    def on_fill(self, line: list, aux) -> None:
        self._clock += 1
        line[0] = self._clock

    def victim(self, lines: dict) -> int:
        best_tag = -1
        best_prio = None
        for tag, line in lines.items():
            if best_prio is None or line[0] < best_prio:
                best_prio = line[0]
                best_tag = tag
        return best_tag


class SRRIPPolicy:
    """Static RRIP (Jaleel et al.): 2-bit re-reference prediction values.

    prio stores the RRPV; hits promote to 0, fills insert at 2, victims
    are lines at RRPV 3 (aging the set when none is).
    """

    name = "srrip"
    MAX_RRPV = 3

    def on_hit(self, line: list, aux) -> None:
        line[0] = 0

    def on_fill(self, line: list, aux) -> None:
        line[0] = self.MAX_RRPV - 1

    def victim(self, lines: dict) -> int:
        while True:
            for tag, line in lines.items():
                if line[0] >= self.MAX_RRPV:
                    return tag
            for line in lines.values():
                line[0] += 1


class DRRIPPolicy:
    """Dynamic RRIP (Jaleel et al. [23]): set-dueling between SRRIP and
    BRRIP insertion.

    A few leader sets always use SRRIP insertion (RRPV = max-1), another
    few always use BRRIP (RRPV = max, promoted to max-1 with probability
    1/32); a saturating policy-selector counter driven by leader-set
    misses picks the insertion policy for the follower sets.

    The cache passes ``set_idx`` to the policy via :meth:`bind_set`
    before each operation (see SetAssocCache).
    """

    name = "drrip"
    MAX_RRPV = 3
    PSEL_BITS = 10
    LEADERS = 32
    BRRIP_EPSILON = 32     # 1-in-32 long-insertions get max-1

    def __init__(self, num_sets: int = 2048) -> None:
        self.num_sets = max(1, num_sets)
        self.psel = (1 << self.PSEL_BITS) // 2
        self._psel_max = (1 << self.PSEL_BITS) - 1
        self._brrip_tick = 0
        self._set_idx = 0
        stride = max(1, self.num_sets // self.LEADERS)
        self._srrip_leaders = set(range(0, self.num_sets, 2 * stride))
        self._brrip_leaders = set(range(stride, self.num_sets, 2 * stride))

    def bind_set(self, set_idx: int) -> None:
        self._set_idx = set_idx

    def _use_brrip(self) -> bool:
        if self._set_idx in self._srrip_leaders:
            return False
        if self._set_idx in self._brrip_leaders:
            return True
        return self.psel > self._psel_max // 2

    def on_miss(self) -> None:
        """Leader-set misses steer the selector (called by the cache)."""
        if self._set_idx in self._srrip_leaders:
            self.psel = min(self._psel_max, self.psel + 1)
        elif self._set_idx in self._brrip_leaders:
            self.psel = max(0, self.psel - 1)

    def on_hit(self, line: list, aux) -> None:
        line[0] = 0

    def on_fill(self, line: list, aux) -> None:
        if self._use_brrip():
            self._brrip_tick += 1
            line[0] = (self.MAX_RRPV - 1
                       if self._brrip_tick % self.BRRIP_EPSILON == 0
                       else self.MAX_RRPV)
        else:
            line[0] = self.MAX_RRPV - 1

    def victim(self, lines: dict) -> int:
        while True:
            for tag, line in lines.items():
                if line[0] >= self.MAX_RRPV:
                    return tag
            for line in lines.values():
                line[0] += 1


class SHiPPolicy:
    """SHiP (Wu et al. [46]): signature-based hit prediction over RRIP.

    Each line remembers the PC-signature that filled it and whether it
    was ever re-referenced; a table of saturating counters per signature
    learns which signatures produce reused lines.  Fills from "dead"
    signatures insert at distant RRPV.  ``aux`` carries the access PC.

    Line record layout here: ``line[0]`` = RRPV; the per-line signature
    and outcome bits live in side dicts keyed by id(line).
    """

    name = "ship"
    MAX_RRPV = 3
    TABLE_SIZE = 1 << 12
    COUNTER_MAX = 7

    def __init__(self) -> None:
        self.shct = [self.COUNTER_MAX // 2] * self.TABLE_SIZE
        self._sig: dict[int, int] = {}
        self._reused: dict[int, bool] = {}

    def _signature(self, aux) -> int:
        pc = aux if isinstance(aux, int) else 0
        return (pc ^ (pc >> 7)) & (self.TABLE_SIZE - 1)

    def on_hit(self, line: list, aux) -> None:
        line[0] = 0
        key = id(line)
        if key in self._sig and not self._reused.get(key, False):
            self._reused[key] = True
            sig = self._sig[key]
            self.shct[sig] = min(self.COUNTER_MAX, self.shct[sig] + 1)

    def on_fill(self, line: list, aux) -> None:
        sig = self._signature(aux)
        key = id(line)
        self._sig[key] = sig
        self._reused[key] = False
        predicted_dead = self.shct[sig] == 0
        line[0] = self.MAX_RRPV if predicted_dead else self.MAX_RRPV - 1

    def victim(self, lines: dict) -> int:
        while True:
            for tag, line in lines.items():
                if line[0] >= self.MAX_RRPV:
                    self._retire(line)
                    return tag
            for line in lines.values():
                line[0] += 1

    def _retire(self, line: list) -> None:
        key = id(line)
        sig = self._sig.pop(key, None)
        reused = self._reused.pop(key, True)
        if sig is not None and not reused:
            self.shct[sig] = max(0, self.shct[sig] - 1)


class BeladyOPT:
    """Belady's OPT using trace-exact next-reference times.

    ``aux`` must be the access's next-use index (``NEVER`` when the block
    is not referenced again).  The victim is the line whose next use is
    farthest in the future.  With ``irregular_only`` the oracle
    information is applied only to lines whose fill was flagged
    irregular (aux arrives as ``(next_use, is_irregular)``), and regular
    lines fall back to LRU ordering — this models T-OPT, which has
    transpose-derived oracle knowledge only for the graph-property data.
    """

    name = "opt"
    NEVER = 1 << 62

    def __init__(self, irregular_only: bool = False) -> None:
        self.irregular_only = irregular_only
        self._clock = 0

    def _prio(self, aux) -> int:
        if aux is None:
            return self.NEVER
        if self.irregular_only:
            next_use, is_irr = aux
            if not is_irr:
                # Regular line: LRU-like low priority so oracle lines
                # with near reuse beat it, but it is preferred as a
                # victim over far-future irregular lines.
                self._clock += 1
                return (1 << 40) + self._clock
            return next_use
        return aux

    def on_hit(self, line: list, aux) -> None:
        line[0] = self._prio(aux)

    def on_fill(self, line: list, aux) -> None:
        line[0] = self._prio(aux)

    def victim(self, lines: dict) -> int:
        best_tag = -1
        best_prio = -1
        for tag, line in lines.items():
            if line[0] > best_prio:
                best_prio = line[0]
                best_tag = tag
        return best_tag


def make_policy(name: str, **kwargs):
    """Instantiate a replacement policy by name."""
    if name == "lru":
        return LRUPolicy()
    if name == "srrip":
        return SRRIPPolicy()
    if name == "drrip":
        return DRRIPPolicy(**kwargs)
    if name == "ship":
        return SHiPPolicy()
    if name == "opt":
        return BeladyOPT(**kwargs)
    if name == "topt":
        return BeladyOPT(irregular_only=True)
    raise ValueError(f"unknown replacement policy {name!r}")
