"""Hardware prefetchers: next-line (L1D/SDC) and a simplified SPP (L2C).

Prefetches are modelled as fills into the owning cache level off the
critical path: they change residency (and thus future hit rates and
pollution) but do not add latency to the triggering access.  Prefetch
traffic that would hit below is not separately charged — the workloads
of interest are latency-bound, not bandwidth-bound (paper §VI notes
graph prefetchers saturate bandwidth; our model is conservative about
granting them benefit).
"""

from __future__ import annotations


class NextLinePrefetcher:
    """Prefetch block N+1 on every demand access to block N."""

    name = "next_line"
    degree = 1

    def on_access(self, block: int, hit: bool) -> list[int]:
        return [block + 1]


class SPPPrefetcher:
    """Simplified Signature Path Prefetcher (Kim et al., MICRO'16).

    Per-page trackers hold the last block offset and a compressed
    delta-history signature; a global pattern table maps signatures to
    delta->counter histograms.  On each access the table is walked along
    the most likely path while the cumulative confidence stays above
    ``threshold``.
    """

    name = "spp"

    SIG_BITS = 12
    BLOCKS_PER_PAGE = 64          # 4 KiB pages of 64 B blocks
    MAX_DEPTH = 4
    THRESHOLD = 0.25
    MAX_COUNT = 16

    def __init__(self) -> None:
        self.trackers: dict[int, list[int]] = {}   # page -> [last_off, sig]
        self.patterns: dict[int, dict[int, int]] = {}
        self.totals: dict[int, int] = {}

    def _update_pattern(self, sig: int, delta: int) -> None:
        hist = self.patterns.setdefault(sig, {})
        hist[delta] = min(hist.get(delta, 0) + 1, self.MAX_COUNT)
        total = self.totals.get(sig, 0) + 1
        if total > 4 * self.MAX_COUNT:
            # Periodic decay keeps the histogram adaptive.
            for d in list(hist):
                hist[d] >>= 1
                if hist[d] == 0:
                    del hist[d]
            total = sum(hist.values())
        self.totals[sig] = total

    @staticmethod
    def _next_sig(sig: int, delta: int) -> int:
        return ((sig << 3) ^ (delta & 0x7F)) & ((1 << SPPPrefetcher.SIG_BITS)
                                                - 1)

    def on_access(self, block: int, hit: bool) -> list[int]:
        # BLOCKS_PER_PAGE is 64, so the page/offset split is a shift/mask.
        page = block >> 6
        offset = block & 63
        tracker = self.trackers.get(page)
        prefetches: list[int] = []
        if tracker is not None:
            last_off, sig = tracker
            delta = offset - last_off
            if delta != 0:
                patterns = self.patterns
                totals = self.totals
                # Inlined _update_pattern (hot path).
                hist = patterns.setdefault(sig, {})
                c = hist.get(delta, 0) + 1
                hist[delta] = c if c < self.MAX_COUNT else self.MAX_COUNT
                total = totals.get(sig, 0) + 1
                if total > 4 * self.MAX_COUNT:
                    for d in list(hist):
                        hist[d] >>= 1
                        if hist[d] == 0:
                            del hist[d]
                    total = sum(hist.values())
                totals[sig] = total
                # Inlined _next_sig; SIG_BITS = 12.
                sig = ((sig << 3) ^ (delta & 0x7F)) & 0xFFF
                # Walk the signature path while confident.
                conf = 1.0
                cur_off = offset
                cur_sig = sig
                for _ in range(self.MAX_DEPTH):
                    hist = patterns.get(cur_sig)
                    if not hist:
                        break
                    total = totals.get(cur_sig, 0)
                    if total <= 0:
                        break
                    # Manual arg-max (first maximal delta wins, exactly
                    # as max(key=...) tie-breaks).
                    best_delta = 0
                    best_count = -1
                    for d, c in hist.items():
                        if c > best_count:
                            best_count = c
                            best_delta = d
                    conf *= best_count / total
                    if conf < self.THRESHOLD:
                        break
                    cur_off += best_delta
                    if not 0 <= cur_off < 64:
                        break
                    prefetches.append((page << 6) + cur_off)
                    cur_sig = ((cur_sig << 3) ^ (best_delta & 0x7F)) & 0xFFF
            tracker[0] = offset
            tracker[1] = sig
        else:
            if len(self.trackers) > 4096:
                self.trackers.clear()   # bounded tracker storage
            self.trackers[page] = [offset, 0]
        return prefetches


class StridePrefetcher:
    """Classic IP-stride prefetcher (per-PC stride detection).

    Tracks (last block, last stride, confidence) per PC; after two
    confirmations of the same stride it prefetches ``degree`` blocks
    ahead along it.  The §VI *Hardware Prefetching* claim is that this
    class of prefetcher cannot help indirect graph accesses — the
    per-PC strides of `contrib[NA[i]]` never repeat.

    Used via ``on_access_pc`` (needs the PC); the plain ``on_access``
    signature falls back to a global stream table for drop-in use.
    """

    name = "stride"
    TABLE_SIZE = 256
    CONF_MAX = 3
    degree = 2

    def __init__(self) -> None:
        self.table: dict[int, list[int]] = {}   # pc -> [last, stride, conf]

    def on_access_pc(self, pc: int, block: int, hit: bool) -> list[int]:
        entry = self.table.get(pc)
        if entry is None:
            if len(self.table) >= self.TABLE_SIZE:
                self.table.pop(next(iter(self.table)))
            self.table[pc] = [block, 0, 0]
            return []
        stride = block - entry[0]
        if stride != 0 and stride == entry[1]:
            entry[2] = min(self.CONF_MAX, entry[2] + 1)
        else:
            entry[2] = max(0, entry[2] - 1)
            entry[1] = stride
        entry[0] = block
        if entry[2] >= 2 and entry[1] != 0:
            return [block + entry[1] * d
                    for d in range(1, self.degree + 1)]
        return []

    def on_access(self, block: int, hit: bool) -> list[int]:
        return self.on_access_pc(0, block, hit)


def make_prefetcher(name: str | None):
    if name is None:
        return None
    if name == "next_line":
        return NextLinePrefetcher()
    if name == "spp":
        return SPPPrefetcher()
    if name == "stride":
        return StridePrefetcher()
    raise ValueError(f"unknown prefetcher {name!r}")
