"""TLB hierarchy (paper Table I: L1 DTLB 64-entry/4-way/1-cycle,
L2 TLB 1536-entry/12-way/8-cycle).

Both the L1D and the SDC are VIPT (§III-E), so the L1 DTLB lookup
overlaps the cache index phase: a DTLB hit adds no latency, an L1 DTLB
miss pays the L2 TLB latency, and a full miss pays a page-walk penalty.
The walk cost models the radix-walk memory references hitting the cache
hierarchy (a fixed, configurable number of L2C-latency steps), which is
the standard trace-driven approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

PAGE_BITS = 12   # 4 KiB pages


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of one TLB level."""

    name: str
    entries: int
    ways: int
    latency: int

    @property
    def num_sets(self) -> int:
        if self.entries % self.ways:
            raise ValueError(f"{self.name}: entries not divisible by ways")
        return self.entries // self.ways


L1_DTLB = TLBConfig("L1-DTLB", 64, 4, 1)
L2_TLB = TLBConfig("L2-TLB", 1536, 12, 8)


@dataclass
class TLBStats:
    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return 1 - self.l1_hits / self.accesses if self.accesses else 0.0


class _TLBLevel:
    """One set-associative TLB level (LRU)."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.sets: list[dict[int, int]] = [dict()
                                           for _ in range(self.num_sets)]
        # Table I geometries have power-of-two set counts, so the set
        # index is a mask; sentinel -1 selects the mod fallback.
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = -1
        self._clock = 0

    def _lines(self, page: int) -> dict[int, int]:
        mask = self._set_mask
        return self.sets[page & mask if mask >= 0 else page % self.num_sets]

    def access(self, page: int) -> bool:
        lines = self._lines(page)
        self._clock += 1
        if page in lines:
            lines[page] = self._clock
            return True
        return False

    def fill(self, page: int) -> None:
        lines = self._lines(page)
        self._clock += 1
        if page not in lines and len(lines) >= self.ways:
            victim = min(lines, key=lines.get)
            del lines[victim]
        lines[page] = self._clock


class TLBHierarchy:
    """L1 DTLB + L2 TLB + page-walk cost model."""

    def __init__(self, l1: TLBConfig = L1_DTLB, l2: TLBConfig = L2_TLB,
                 walk_latency: int = 60):
        self.l1 = _TLBLevel(l1)
        self.l2 = _TLBLevel(l2)
        self.walk_latency = walk_latency
        self.stats = TLBStats()

    def translate(self, addr: int) -> int:
        """Translate one byte address; returns the added latency
        (0 for an L1 DTLB hit — VIPT overlap)."""
        return self.translate_page(addr >> PAGE_BITS)

    def translate_page(self, page: int) -> int:
        """Translate a pre-shifted page number (hot-loop entry point)."""
        st = self.stats
        st.accesses += 1
        # Inlined L1 probe: the DTLB hit is the overwhelmingly common
        # case and adds zero latency (VIPT overlap), so it pays to skip
        # two method calls here.
        l1 = self.l1
        mask = l1._set_mask
        lines = l1.sets[page & mask if mask >= 0 else page % l1.num_sets]
        l1._clock += 1
        if page in lines:
            lines[page] = l1._clock
            st.l1_hits += 1
            return 0
        if self.l2.access(page):
            st.l2_hits += 1
            self.l1.fill(page)
            return self.l2.config.latency
        st.walks += 1
        self.l2.fill(page)
        self.l1.fill(page)
        return self.l2.config.latency + self.walk_latency
