"""Interval timing model for one core (DESIGN.md §5).

Replaces a cycle-accurate OOO pipeline with four first-order constraints:

1. **Issue bandwidth** — each memory instruction plus its preceding
   non-memory instructions consume ``(1 + gap) / width`` cycles of
   front-end time.
2. **MSHR-bounded MLP** — at most ``mshr`` long-latency misses are in
   flight; further misses wait for the earliest completion.
3. **Dependency serialization** — an access whose trace record names a
   producer (e.g. ``contrib[NA[i]]`` depending on the ``NA[i]`` load)
   cannot start before the producer completes.
4. **ROB occupancy** — the core cannot run more than ``rob_window``
   memory operations ahead of the oldest incomplete one.

Total cycles = max(front-end stream, memory completion stream).
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

from repro.config import CoreConfig


class CoreTimer:
    """Accumulates cycles for a stream of (gap, latency, dep) accesses.

    Misses occupy an MSHR until completion.  Two independent pools exist
    because Table I gives the SDC its own 10-entry MSHR file alongside
    the L1D's: pool 0 serves accesses routed through the conventional
    hierarchy, pool 1 (same size unless configured) serves SDC-routed
    accesses, so the two paths' memory-level parallelism does not
    contend for the same slots.
    """

    L1_POOL, SDC_POOL = 0, 1

    def __init__(self, core: CoreConfig, mshr_entries: int,
                 l1_latency: int, sdc_mshr_entries: int | None = None):
        if mshr_entries <= 0:
            raise ValueError("mshr_entries must be positive")
        self.width = core.width
        # Memory instructions the ROB can hold concurrently: assume the
        # classic ~1/4 of µops touch memory.
        self.rob_window = max(8, core.rob_entries // 4)
        self.mshr_entries = mshr_entries
        self.sdc_mshr_entries = (sdc_mshr_entries
                                 if sdc_mshr_entries is not None
                                 else mshr_entries)
        self.hit_latency = l1_latency
        self.issue_time = 0.0
        self.finish_time = 0.0
        self.instructions = 0
        self._outstanding: list[list[float]] = [[], []]   # per-pool heaps
        self._limits = (self.mshr_entries, self.sdc_mshr_entries)
        self._window: deque[float] = deque()       # last rob_window compl.

    def access(self, gap: int, latency: int, dep_completion: float | None,
               pool: int = 0) -> float:
        """Account one memory access; returns its completion time."""
        ops = 1 + gap
        self.instructions += ops
        issue = self.issue_time + ops / self.width
        start = issue

        if dep_completion is not None and dep_completion > start:
            start = dep_completion

        window = self._window
        if len(window) >= self.rob_window:
            oldest = window.popleft()
            if oldest > start:
                start = oldest
                # ROB-full also stalls the front end.
                issue = oldest

        if latency > self.hit_latency:
            out = self._outstanding[pool]
            # Retire completed misses.
            while out and out[0] <= start:
                heappop(out)
            if len(out) >= self._limits[pool]:
                freed = heappop(out)
                start = freed
                if freed > issue:
                    issue = freed
            completion = start + latency
            heappush(out, completion)
        else:
            completion = start + latency
        self.issue_time = issue

        window.append(completion)
        if completion > self.finish_time:
            self.finish_time = completion
        return completion

    @property
    def cycles(self) -> float:
        return max(self.issue_time, self.finish_time)

    @property
    def ipc(self) -> float:
        c = self.cycles
        return self.instructions / c if c > 0 else 0.0
