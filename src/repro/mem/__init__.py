"""Memory-hierarchy substrate: caches, replacement, prefetchers, DRAM, timing.

The simulator is reference-granular (every access walks real tags, LRU
state, dirty bits and MSHR occupancy) with an interval timing model in
place of a cycle-accurate OOO pipeline — see DESIGN.md §5.
"""

from repro.mem.cache import CacheStats, SetAssocCache
from repro.mem.distill import DistillCache
from repro.mem.dram import DRAMModel
from repro.mem.hierarchy import AccessResult, MemoryHierarchy
from repro.mem.prefetch import (NextLinePrefetcher, SPPPrefetcher,
                                StridePrefetcher, make_prefetcher)
from repro.mem.replacement import (BeladyOPT, DRRIPPolicy, LRUPolicy,
                                   SHiPPolicy, SRRIPPolicy, make_policy)
from repro.mem.timing import CoreTimer
from repro.mem.tlb import TLBHierarchy

__all__ = [
    "SetAssocCache",
    "CacheStats",
    "DistillCache",
    "DRAMModel",
    "MemoryHierarchy",
    "AccessResult",
    "LRUPolicy",
    "SRRIPPolicy",
    "DRRIPPolicy",
    "SHiPPolicy",
    "BeladyOPT",
    "make_policy",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "SPPPrefetcher",
    "make_prefetcher",
    "CoreTimer",
    "TLBHierarchy",
]
