"""The conventional three-level hierarchy (L1D → L2C → LLC → DRAM).

Lookup latencies accumulate down the miss path exactly as the paper
describes: an access that misses everywhere pays
``L1 + L2 + LLC + DRAM`` cycles — the "useless look-ups" SDC routing
eliminates.  Fills install the block at every level on the way back
(ChampSim-style fill-on-miss); dirty evictions write back to the next
level below, allocating there if absent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.mem.cache import SetAssocCache
from repro.mem.dram import DRAMModel
from repro.mem.prefetch import NextLinePrefetcher, make_prefetcher
from repro.mem.replacement import make_policy

# Served-by level codes (used in per-access recording).
L1D, L2C, LLC, DRAM, SDC_LEVEL, REMOTE = 0, 1, 2, 3, 4, 5
LEVEL_NAMES = {L1D: "L1D", L2C: "L2C", LLC: "LLC", DRAM: "DRAM",
               SDC_LEVEL: "SDC", REMOTE: "REMOTE"}


@dataclass
class AccessResult:
    """Outcome of one demand access."""

    level: int       # code of the serving level
    latency: int     # total core cycles on the critical path


class MemoryHierarchy:
    """Private L1D/L2C + LLC + DRAM for one core."""

    def __init__(self, config: SystemConfig,
                 llc_policy=None, llc: SetAssocCache | None = None,
                 dram: DRAMModel | None = None,
                 enable_prefetch: bool = True):
        self.config = config
        self.l1d = SetAssocCache(config.l1d)
        self.l2c = SetAssocCache(config.l2c)
        if llc is not None:
            self.llc = llc                       # shared LLC (multi-core)
        else:
            policy = llc_policy if llc_policy is not None \
                else make_policy(config.llc.replacement)
            self.llc = SetAssocCache(config.llc, policy)
        self.dram = dram if dram is not None else DRAMModel(config.dram)
        self.l1_prefetcher = (make_prefetcher(config.l1d.prefetcher)
                              if enable_prefetch else None)
        self.l2_prefetcher = (make_prefetcher(config.l2c.prefetcher)
                              if enable_prefetch else None)
        # PC-aware prefetchers (IP-stride) expose on_access_pc.
        self._l1_pf_pc = getattr(self.l1_prefetcher, "on_access_pc", None)
        # Next-line is the common L1 prefetcher (Table I); flag it so the
        # hot path can inline `block + 1` instead of allocating a
        # one-element candidate list per access.
        self._l1_next_line = type(self.l1_prefetcher) is NextLinePrefetcher

    # -- writeback plumbing ------------------------------------------------
    def _writeback_to_l2(self, block: int) -> None:
        if self.l2c.mark_dirty(block):
            return
        evicted = self.l2c.fill(block, dirty=True)
        if evicted is not None and evicted[1]:
            self._writeback_to_llc(evicted[0])

    def _writeback_to_llc(self, block: int, aux=None) -> None:
        if self.llc.mark_dirty(block):
            return
        evicted = self.llc.fill(block, dirty=True, aux=aux)
        if evicted is not None and evicted[1]:
            self.dram.write(evicted[0])

    def _fill_l1(self, block: int, dirty: bool = False,
                 prefetch: bool = False) -> None:
        evicted = self.l1d.fill(block, dirty=dirty, prefetch=prefetch)
        if evicted is not None and evicted[1]:
            self._writeback_to_l2(evicted[0])

    def _fill_l2(self, block: int, prefetch: bool = False) -> None:
        evicted = self.l2c.fill(block, prefetch=prefetch)
        if evicted is not None and evicted[1]:
            self._writeback_to_llc(evicted[0])

    def _fill_llc(self, block: int, aux=None, prefetch: bool = False) -> None:
        evicted = self.llc.fill(block, prefetch=prefetch, aux=aux)
        if evicted is not None and evicted[1]:
            self.dram.write(evicted[0])

    # -- demand path ---------------------------------------------------------
    def access(self, block: int, write: bool, aux=None,
               pc: int = 0) -> AccessResult:
        """One demand access walking the hierarchy; returns serve point."""
        return AccessResult(*self.access_fast(block, write, aux, pc))

    def access_fast(self, block: int, write: bool, aux=None,
                    pc: int = 0) -> tuple[int, int]:
        """Hot-loop variant of :meth:`access` returning a plain
        ``(level, latency)`` tuple — no per-access result allocation.

        The ``_fill_l*`` wrappers are inlined here (direct ``fill`` calls
        with the rare dirty-eviction writeback handled in place) and the
        next-line residency probe uses the cache's precomputed shift/mask
        split, so the all-hits path does two method calls total.
        """
        l1d = self.l1d
        l1d_fill = l1d.fill
        latency = l1d.latency
        l1_hit = l1d.access(block, write)
        if self._l1_next_line:
            pf = block + 1
            m = l1d._set_mask
            if m >= 0:
                resident = (pf >> l1d._set_bits) in l1d.sets[pf & m]
            else:
                resident = l1d.contains(pf)
            if not resident:
                ev = l1d_fill(pf, prefetch=True)
                if ev is not None and ev[1]:
                    self._writeback_to_l2(ev[0])
        elif self.l1_prefetcher is not None:
            candidates = (self._l1_pf_pc(pc, block, l1_hit)
                          if self._l1_pf_pc is not None
                          else self.l1_prefetcher.on_access(block, l1_hit))
            for pf in candidates:
                if not l1d.contains(pf):
                    self._fill_l1(pf, prefetch=True)
        if l1_hit:
            return L1D, latency

        l2c = self.l2c
        latency += l2c.latency
        l2_hit = l2c.access(block, False)
        if self.l2_prefetcher is not None:
            for pf in self.l2_prefetcher.on_access(block, l2_hit):
                if not l2c.contains(pf):
                    self._fill_l2(pf, prefetch=True)
        if l2_hit:
            ev = l1d_fill(block, dirty=write)
            if ev is not None and ev[1]:
                self._writeback_to_l2(ev[0])
            return L2C, latency

        llc = self.llc
        latency += llc.latency
        if llc.access(block, False, aux=aux):
            ev = l2c.fill(block)
            if ev is not None and ev[1]:
                self._writeback_to_llc(ev[0])
            ev = l1d_fill(block, dirty=write)
            if ev is not None and ev[1]:
                self._writeback_to_l2(ev[0])
            return LLC, latency

        dram = self.dram
        latency += dram.read(block)
        ev = llc.fill(block, aux=aux)
        if ev is not None and ev[1]:
            dram.write(ev[0])
        ev = l2c.fill(block)
        if ev is not None and ev[1]:
            self._writeback_to_llc(ev[0])
        ev = l1d_fill(block, dirty=write)
        if ev is not None and ev[1]:
            self._writeback_to_l2(ev[0])
        return DRAM, latency

    # -- coherence helpers (used by the SDC-equipped system) ---------------
    def contains(self, block: int) -> bool:
        return (self.l1d.contains(block) or self.l2c.contains(block)
                or self.llc.contains(block))

    def extract(self, block: int) -> tuple[bool, int]:
        """Invalidate a block everywhere; returns (was_present, latency).

        Used when the SDC pulls a block that currently lives in the
        conventional hierarchy (single-valid-copy transfer).  Latency is
        the deepest level that had to be probed to collect the copy.
        """
        present = False
        latency = 0
        p, dirty = self.l1d.invalidate(block)
        if p:
            present = True
            latency = max(latency, self.l1d.latency)
        p2, dirty2 = self.l2c.invalidate(block)
        if p2:
            present = True
            latency = max(latency, self.l2c.latency)
        p3, dirty3 = self.llc.invalidate(block)
        if p3:
            present = True
            latency = max(latency, self.llc.latency)
        return present, latency
