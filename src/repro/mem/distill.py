"""Distill Cache baseline (Qureshi et al., HPCA'07 "Line Distillation").

The LLC is split into a Line-Organized Cache (LOC) holding whole blocks
and a Word-Organized Cache (WOC) holding individual words.  While a line
is LOC-resident its per-word usage is tracked; on eviction, only the
words that were actually touched are *distilled* into the WOC.  A later
access that misses the LOC but finds its word in the WOC is served
without a DRAM trip.

The class is interface-compatible with
:class:`repro.mem.cache.SetAssocCache` so :class:`MemoryHierarchy`
can mount it as the LLC; ``aux`` carries the word index of the access.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace

from repro.config import CacheConfig
from repro.mem.cache import CacheStats, SetAssocCache

WORDS_PER_BLOCK = 8    # 64 B block / 8 B words (as the HPCA'07 design)


class DistillCache:
    """LOC + WOC split cache."""

    def __init__(self, config: CacheConfig, woc_ways: int = 2):
        if not 0 < woc_ways < config.ways:
            raise ValueError("woc_ways must leave at least one LOC way")
        loc_size = config.size_bytes * (config.ways - woc_ways) // config.ways
        self.loc = SetAssocCache(dc_replace(
            config, size_bytes=loc_size, ways=config.ways - woc_ways,
            replacement="lru"))
        self.num_sets = self.loc.num_sets
        self.latency = config.latency
        self.config = config
        # WOC: per set, an LRU dict of (block, word) -> last_use; capacity
        # woc_ways lines' worth of words.
        self.woc_capacity = woc_ways * WORDS_PER_BLOCK
        self.woc: list[dict[tuple[int, int], int]] = [
            dict() for _ in range(self.num_sets)]
        self._clock = 0
        self.stats = CacheStats()
        self.woc_hits = 0
        self.usage: dict[int, int] = {}       # LOC-resident block -> bitmap

    # -- interface ----------------------------------------------------------
    def contains(self, block: int) -> bool:
        return self.loc.contains(block)

    def access(self, block: int, write: bool, aux=None) -> bool:
        self.stats.accesses += 1
        word = int(aux) % WORDS_PER_BLOCK if aux is not None else 0
        if self.loc.access(block, write):
            self.stats.hits += 1
            self.usage[block] = self.usage.get(block, 0) | (1 << word)
            return True
        # WOC probe: only the requested word needs to be present.
        wset = self.woc[block % self.num_sets]
        key = (block, word)
        if key in wset:
            self._clock += 1
            wset[key] = self._clock
            self.stats.hits += 1
            self.woc_hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, block: int, dirty: bool = False, prefetch: bool = False,
             aux=None) -> tuple[int, bool] | None:
        word = int(aux) % WORDS_PER_BLOCK if aux is not None else 0
        evicted = self.loc.fill(block, dirty=dirty, prefetch=prefetch)
        self.usage[block] = self.usage.get(block, 0) | (1 << word)
        if evicted is None:
            return None
        ev_block, ev_dirty = evicted
        self._distill(ev_block)
        self.stats.evictions += 1
        if ev_dirty:
            self.stats.writebacks += 1
        return evicted

    def _distill(self, block: int) -> None:
        """Move the used words of an evicted line into the WOC."""
        bitmap = self.usage.pop(block, 0)
        if bitmap == 0:
            return
        wset = self.woc[block % self.num_sets]
        for word in range(WORDS_PER_BLOCK):
            if bitmap & (1 << word):
                self._clock += 1
                wset[(block, word)] = self._clock
        while len(wset) > self.woc_capacity:
            oldest = min(wset, key=wset.get)
            del wset[oldest]

    def mark_dirty(self, block: int) -> bool:
        return self.loc.mark_dirty(block)

    def invalidate(self, block: int) -> tuple[bool, bool]:
        self.usage.pop(block, None)
        wset = self.woc[block % self.num_sets]
        for key in [k for k in wset if k[0] == block]:
            del wset[key]
        return self.loc.invalidate(block)

    def flush(self) -> None:
        self.loc.flush()
        for w in self.woc:
            w.clear()
        self.usage.clear()
