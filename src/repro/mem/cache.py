"""Set-associative cache with pluggable replacement.

Reference-granular state: real tags, dirty bits, per-line replacement
priority.  Timing (latencies, MSHR occupancy) is accounted one layer up
in :mod:`repro.mem.hierarchy` / :mod:`repro.mem.timing`; this class is
purely about *what is resident*.

Performance note: this is the innermost loop of the whole simulator, so
lines are plain 3-slot lists (``[prio, dirty, prefetch]``) inside one
dict per set, and the hot path avoids attribute lookups where it
matters.  Because every Table I geometry has a power-of-two set count,
the set/tag split is pre-resolved in ``__init__`` to a shift and a mask
(``block & mask`` / ``block >> bits``) instead of per-access div/mod;
irregular geometries fall back to div/mod transparently.  The ubiquitous
LRU policy is additionally inlined on the hit/fill paths to skip two
method calls per access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CacheConfig
from repro.mem.replacement import LRUPolicy, make_policy


@dataclass
class CacheStats:
    """Demand/prefetch/writeback counters for one cache.

    ``fills`` counts line *installs* (not refreshes of already-resident
    lines) and ``invalidations`` counts removals via ``invalidate``/
    ``flush``, so the ledger ``fills - evictions - invalidations ==
    occupancy`` holds whenever the stat window covers the cache's whole
    life — one of the conservation laws ``repro.validate`` checks.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0       # demand hits on prefetched lines
    writebacks: int = 0
    evictions: int = 0
    fills: int = 0               # line installs (demand + prefetch)
    invalidations: int = 0       # removals via invalidate()/flush()

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.accesses + other.accesses, self.hits + other.hits,
            self.misses + other.misses,
            self.prefetch_fills + other.prefetch_fills,
            self.prefetch_hits + other.prefetch_hits,
            self.writebacks + other.writebacks,
            self.evictions + other.evictions,
            self.fills + other.fills,
            self.invalidations + other.invalidations)


class SetAssocCache:
    """One level of set-associative cache."""

    def __init__(self, config: CacheConfig, policy=None,
                 inline_lru: bool = True):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.latency = config.latency
        self.sets: list[dict[int, list]] = [dict()
                                            for _ in range(self.num_sets)]
        if policy is not None:
            self.policy = policy
        elif config.replacement == "drrip":
            self.policy = make_policy("drrip", num_sets=self.num_sets)
        else:
            self.policy = make_policy(config.replacement)
        # Optional policy hooks (set-dueling policies need to know the
        # set and observe misses); resolved once to keep the hot path
        # free of hasattr checks.
        self._policy_bind = getattr(self.policy, "bind_set", None)
        self._policy_miss = getattr(self.policy, "on_miss", None)
        # Pre-resolved set/tag split: shift-mask when the set count is a
        # power of two (all Table I geometries), sentinel mask -1 selects
        # the div/mod fallback otherwise.
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
            self._set_bits = self.num_sets.bit_length() - 1
        else:
            self._set_mask = -1
            self._set_bits = 0
        # LRU is by far the most common policy; inline its two-line
        # on_hit/on_fill bodies on the hot path.  ``inline_lru=False``
        # keeps the generic protocol alive for differential validation
        # (repro.validate.differential), which must be able to run the
        # same stream through both implementations.
        self._lru = self.policy \
            if inline_lru and type(self.policy) is LRUPolicy else None
        self.stats = CacheStats()

    def _split(self, block: int) -> tuple[int, int]:
        """(set_idx, tag) of a block (cold-path helper)."""
        mask = self._set_mask
        if mask >= 0:
            return block & mask, block >> self._set_bits
        return block % self.num_sets, block // self.num_sets

    def _join(self, set_idx: int, tag: int) -> int:
        """Reconstruct a block address from (set_idx, tag)."""
        if self._set_mask >= 0:
            return (tag << self._set_bits) | set_idx
        return tag * self.num_sets + set_idx

    # -- residency queries (no state change) ------------------------------
    def contains(self, block: int) -> bool:
        mask = self._set_mask
        if mask >= 0:
            return (block >> self._set_bits) in self.sets[block & mask]
        return (block // self.num_sets) in self.sets[block % self.num_sets]

    def resident_blocks(self):
        """Iterate over all resident block addresses (for invariants)."""
        for set_idx, lines in enumerate(self.sets):
            for tag in lines:
                yield self._join(set_idx, tag)

    def dirty_blocks(self):
        """Iterate over resident blocks whose dirty bit is set."""
        for set_idx, lines in enumerate(self.sets):
            for tag, line in lines.items():
                if line[1]:
                    yield self._join(set_idx, tag)

    def is_dirty(self, block: int) -> bool:
        set_idx, tag = self._split(block)
        line = self.sets[set_idx].get(tag)
        return bool(line[1]) if line is not None else False

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)

    # -- demand path -------------------------------------------------------
    def access(self, block: int, write: bool, aux=None) -> bool:
        """Demand lookup; returns True on hit.  Does NOT fill on miss —
        the hierarchy decides where fetched data is installed."""
        st = self.stats
        st.accesses += 1
        mask = self._set_mask
        if mask >= 0:
            set_idx = block & mask
            tag = block >> self._set_bits
        else:
            set_idx = block % self.num_sets
            tag = block // self.num_sets
        lines = self.sets[set_idx]
        line = lines.get(tag)
        if self._policy_bind is not None:
            self._policy_bind(set_idx)
        if line is not None:
            st.hits += 1
            if line[2]:
                st.prefetch_hits += 1
                line[2] = 0
            if write:
                line[1] = 1
            lru = self._lru
            if lru is not None:
                lru._clock += 1
                line[0] = lru._clock
                # Move-to-end keeps each set's dict in LRU order so
                # victim selection is O(1) (oldest entry first).
                del lines[tag]
                lines[tag] = line
            else:
                self.policy.on_hit(line, aux)
            return True
        st.misses += 1
        if self._policy_miss is not None:
            self._policy_miss()
        return False

    def fill(self, block: int, dirty: bool = False, prefetch: bool = False,
             aux=None) -> tuple[int, bool] | None:
        """Install a block; returns ``(evicted_block, was_dirty)`` or None.

        Re-fill semantics (block already resident): the line's recency
        and dirty bit are updated, and no install is counted.  A
        *demand* re-fill (``prefetch=False``) additionally clears a
        stale prefetch bit — the line now holds demanded data, so a
        later demand hit must not be credited to the prefetcher.  A
        *prefetch* re-fill is a no-op for the prefetch machinery: the
        bit is left unchanged and ``prefetch_fills`` is not incremented
        (nothing was installed), so prefetch accuracy cannot be
        inflated by re-prefetching resident lines.
        """
        mask = self._set_mask
        if mask >= 0:
            set_idx = block & mask
            tag = block >> self._set_bits
        else:
            set_idx = block % self.num_sets
            tag = block // self.num_sets
        lines = self.sets[set_idx]
        if self._policy_bind is not None:
            self._policy_bind(set_idx)
        lru = self._lru
        line = lines.get(tag)
        if line is not None:
            if dirty:
                line[1] = 1
            if not prefetch:
                line[2] = 0
            if lru is not None:
                lru._clock += 1
                line[0] = lru._clock
                del lines[tag]
                lines[tag] = line
            else:
                self.policy.on_hit(line, aux)
            return None
        evicted = None
        if len(lines) >= self.ways:
            if lru is not None:
                # The move-to-end discipline keeps sets in LRU order,
                # so the oldest entry is simply the first key.
                victim_tag = next(iter(lines))
            else:
                victim_tag = self.policy.victim(lines)
            vline = lines.pop(victim_tag)
            st = self.stats
            st.evictions += 1
            if vline[1]:
                st.writebacks += 1
            evicted = (self._join(set_idx, victim_tag), bool(vline[1]))
        new_line = [0, 1 if dirty else 0, 1 if prefetch else 0]
        if lru is not None:
            lru._clock += 1
            new_line[0] = lru._clock
        else:
            self.policy.on_fill(new_line, aux)
        lines[tag] = new_line
        self.stats.fills += 1
        if prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, block: int) -> tuple[bool, bool]:
        """Remove a block; returns ``(was_present, was_dirty)``."""
        set_idx, tag = self._split(block)
        line = self.sets[set_idx].pop(tag, None)
        if line is None:
            return False, False
        self.stats.invalidations += 1
        return True, bool(line[1])

    def clear_dirty(self, block: int) -> bool:
        """Clear the dirty bit (after an explicit writeback); returns
        True when the block was resident and dirty."""
        set_idx, tag = self._split(block)
        line = self.sets[set_idx].get(tag)
        if line is None or not line[1]:
            return False
        line[1] = 0
        return True

    def mark_dirty(self, block: int) -> bool:
        """Set the dirty bit of a resident block (writeback arrival)."""
        set_idx, tag = self._split(block)
        line = self.sets[set_idx].get(tag)
        if line is None:
            return False
        line[1] = 1
        return True

    def flush(self) -> None:
        for s in self.sets:
            self.stats.invalidations += len(s)
            s.clear()

    # -- structure-of-arrays state exchange (batch backend) ----------------
    def export_soa(self) -> dict:
        """Snapshot the cache's line state as flat slot-major arrays.

        Layout: slot ``set_idx * ways + w`` holds the set's ``w``-th
        dict entry (dict order — LRU order for inlined-LRU caches,
        install order otherwise).  Empty slots carry tag ``-1``.  The
        companion ``seq`` array records dict position as a global
        running counter so install-order victim tie-breaks survive the
        round-trip; ``clock`` is the replacement policy's stamp clock.
        """
        n = self.num_sets * self.ways
        tags = np.full(n, -1, dtype=np.int64)
        prio = np.zeros(n, dtype=np.int64)
        seq = np.zeros(n, dtype=np.int64)
        dirty = np.zeros(n, dtype=np.uint8)
        pf = np.zeros(n, dtype=np.uint8)
        occ = np.zeros(self.num_sets, dtype=np.int64)
        seqc = 0
        for set_idx, lines in enumerate(self.sets):
            base = set_idx * self.ways
            occ[set_idx] = len(lines)
            for w, (tag, line) in enumerate(lines.items()):
                seqc += 1
                tags[base + w] = tag
                prio[base + w] = line[0]
                seq[base + w] = seqc
                dirty[base + w] = 1 if line[1] else 0
                pf[base + w] = 1 if line[2] else 0
        return {"tags": tags, "prio": prio, "seq": seq, "dirty": dirty,
                "pf": pf, "occ": occ, "seqc": seqc,
                "clock": getattr(self.policy, "_clock", 0)}

    def import_soa(self, soa: dict, order: str = "prio",
                   clock: int | None = None) -> None:
        """Rebuild the per-set dicts from :meth:`export_soa`-layout
        arrays, restoring dict order by sorting on ``order`` (``prio``
        for LRU recency order, ``seq`` for install order)."""
        tags, prio = soa["tags"], soa["prio"]
        dirty, pf = soa["dirty"], soa["pf"]
        key = soa[order]
        for set_idx in range(self.num_sets):
            base = set_idx * self.ways
            slots = [base + w for w in range(self.ways)
                     if tags[base + w] >= 0]
            slots.sort(key=lambda j: key[j])
            self.sets[set_idx] = {
                int(tags[j]): [int(prio[j]), int(dirty[j]), int(pf[j])]
                for j in slots}
        if clock is not None and hasattr(self.policy, "_clock"):
            self.policy._clock = int(clock)
