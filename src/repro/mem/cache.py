"""Set-associative cache with pluggable replacement.

Reference-granular state: real tags, dirty bits, per-line replacement
priority.  Timing (latencies, MSHR occupancy) is accounted one layer up
in :mod:`repro.mem.hierarchy` / :mod:`repro.mem.timing`; this class is
purely about *what is resident*.

Performance note: this is the innermost loop of the whole simulator, so
lines are plain 3-slot lists (``[prio, dirty, prefetch]``) inside one
dict per set, and the hot path avoids attribute lookups where it
matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CacheConfig
from repro.mem.replacement import make_policy


@dataclass
class CacheStats:
    """Demand/prefetch/writeback counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    prefetch_fills: int = 0
    prefetch_hits: int = 0       # demand hits on prefetched lines
    writebacks: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        return 1000.0 * self.misses / instructions if instructions else 0.0

    def merged(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.accesses + other.accesses, self.hits + other.hits,
            self.misses + other.misses,
            self.prefetch_fills + other.prefetch_fills,
            self.prefetch_hits + other.prefetch_hits,
            self.writebacks + other.writebacks,
            self.evictions + other.evictions)


class SetAssocCache:
    """One level of set-associative cache."""

    def __init__(self, config: CacheConfig, policy=None):
        self.config = config
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.latency = config.latency
        self.sets: list[dict[int, list]] = [dict()
                                            for _ in range(self.num_sets)]
        if policy is not None:
            self.policy = policy
        elif config.replacement == "drrip":
            self.policy = make_policy("drrip", num_sets=self.num_sets)
        else:
            self.policy = make_policy(config.replacement)
        # Optional policy hooks (set-dueling policies need to know the
        # set and observe misses); resolved once to keep the hot path
        # free of hasattr checks.
        self._policy_bind = getattr(self.policy, "bind_set", None)
        self._policy_miss = getattr(self.policy, "on_miss", None)
        self.stats = CacheStats()

    # -- residency queries (no state change) ------------------------------
    def contains(self, block: int) -> bool:
        return (block // self.num_sets) in self.sets[block % self.num_sets]

    def resident_blocks(self):
        """Iterate over all resident block addresses (for invariants)."""
        for set_idx, lines in enumerate(self.sets):
            for tag in lines:
                yield tag * self.num_sets + set_idx

    def dirty_blocks(self):
        """Iterate over resident blocks whose dirty bit is set."""
        for set_idx, lines in enumerate(self.sets):
            for tag, line in lines.items():
                if line[1]:
                    yield tag * self.num_sets + set_idx

    def is_dirty(self, block: int) -> bool:
        line = self.sets[block % self.num_sets].get(block // self.num_sets)
        return bool(line[1]) if line is not None else False

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self.sets)

    # -- demand path -------------------------------------------------------
    def access(self, block: int, write: bool, aux=None) -> bool:
        """Demand lookup; returns True on hit.  Does NOT fill on miss —
        the hierarchy decides where fetched data is installed."""
        st = self.stats
        st.accesses += 1
        set_idx = block % self.num_sets
        lines = self.sets[set_idx]
        line = lines.get(block // self.num_sets)
        if self._policy_bind is not None:
            self._policy_bind(set_idx)
        if line is not None:
            st.hits += 1
            if line[2]:
                st.prefetch_hits += 1
                line[2] = 0
            if write:
                line[1] = 1
            self.policy.on_hit(line, aux)
            return True
        st.misses += 1
        if self._policy_miss is not None:
            self._policy_miss()
        return False

    def fill(self, block: int, dirty: bool = False, prefetch: bool = False,
             aux=None) -> tuple[int, bool] | None:
        """Install a block; returns ``(evicted_block, was_dirty)`` or None.

        Filling a block that is already resident just updates its state.
        """
        set_idx = block % self.num_sets
        tag = block // self.num_sets
        lines = self.sets[set_idx]
        if self._policy_bind is not None:
            self._policy_bind(set_idx)
        line = lines.get(tag)
        if line is not None:
            if dirty:
                line[1] = 1
            self.policy.on_hit(line, aux)
            return None
        evicted = None
        if len(lines) >= self.ways:
            victim_tag = self.policy.victim(lines)
            vline = lines.pop(victim_tag)
            self.stats.evictions += 1
            if vline[1]:
                self.stats.writebacks += 1
            evicted = (victim_tag * self.num_sets + set_idx, bool(vline[1]))
        new_line = [0, 1 if dirty else 0, 1 if prefetch else 0]
        self.policy.on_fill(new_line, aux)
        lines[tag] = new_line
        if prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, block: int) -> tuple[bool, bool]:
        """Remove a block; returns ``(was_present, was_dirty)``."""
        lines = self.sets[block % self.num_sets]
        line = lines.pop(block // self.num_sets, None)
        if line is None:
            return False, False
        return True, bool(line[1])

    def clear_dirty(self, block: int) -> bool:
        """Clear the dirty bit (after an explicit writeback); returns
        True when the block was resident and dirty."""
        lines = self.sets[block % self.num_sets]
        line = lines.get(block // self.num_sets)
        if line is None or not line[1]:
            return False
        line[1] = 0
        return True

    def mark_dirty(self, block: int) -> bool:
        """Set the dirty bit of a resident block (writeback arrival)."""
        lines = self.sets[block % self.num_sets]
        line = lines.get(block // self.num_sets)
        if line is None:
            return False
        line[1] = 1
        return True

    def flush(self) -> None:
        for s in self.sets:
            s.clear()
