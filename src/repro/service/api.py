"""stdlib HTTP/JSON front-end for the service orchestrator.

No framework, no new dependencies: a ``ThreadingHTTPServer`` whose
handler threads call into the (thread-safe) :class:`~repro.service.
orchestrator.Orchestrator`.  Routes (bodies are the typed schemas of
:mod:`repro.service.schemas`; see docs/SERVICE.md for examples)::

    GET  /healthz               -> 200 Health
    POST /jobs                  -> 201 SubmitResponse
                                   400 ErrorResponse   (validation)
                                   429 ErrorResponse   (+ Retry-After)
                                   503 ErrorResponse   (draining)
    GET  /jobs                  -> 200 {"jobs": [JobStatus...]}
    GET  /jobs/<id>             -> 200 JobStatus | 404
    GET  /jobs/<id>/results     -> 200 JSONL CellResult feed; with
                                   ``?follow=1`` the response streams —
                                   lines are written as cells settle
                                   until the job is terminal (HTTP/1.0
                                   close-delimited, so plain clients
                                   just read to EOF)
    POST /jobs/<id>/cancel      -> 200 JobStatus | 404
    POST /drain                 -> 202 {"status": "draining"}

The server binds ``config.host:config.port`` (port 0 = ephemeral; the
bound port is in ``server.server_address``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service import schemas
from repro.service.orchestrator import (Draining, Orchestrator,
                                        QueueFull, UnknownJob)
from repro.service.schemas import ErrorResponse, JobRequest, dumps

#: Cap on request bodies — a JobRequest is tiny; anything larger is
#: malformed or hostile.
MAX_BODY_BYTES = 1 << 20

#: Poll period of a ``?follow=1`` results stream.
FOLLOW_POLL_SECONDS = 0.2


class ServiceHandler(BaseHTTPRequestHandler):
    """One request; ``self.server.orchestrator`` is the shared state."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.0"       # close-delimited streaming

    # -- plumbing ----------------------------------------------------------

    @property
    def orc(self) -> Orchestrator:
        return self.server.orchestrator

    def log_message(self, format, *args):        # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, code: int, obj, headers: dict | None = None) -> None:
        body = dumps(obj)
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for k, v in (headers or {}).items():
            self.send_header(k, v)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, error: str, detail=(),
               retry_after: float | None = None) -> None:
        headers = {}
        if retry_after is not None:
            headers["Retry-After"] = str(int(retry_after) or 1)
        self._send(code, ErrorResponse(error=error,
                                       detail=list(detail),
                                       retry_after=retry_after),
                   headers)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._error(413, "request body too large")
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            self._error(400, "request body is not valid JSON",
                        [str(exc)])
            return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:       # noqa: N802
        path, _, query = self.path.partition("?")
        parts = [p for p in path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send(200, self.orc.health())
            elif parts == ["jobs"]:
                self._send(200, {"jobs": [s.to_dict() for s in
                                          self.orc.list_jobs()]})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send(200, self.orc.status(parts[1]))
            elif (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "results"):
                self._results(parts[1], "follow=1" in query)
            else:
                self._error(404, f"no such route: GET {path}")
        except UnknownJob as exc:
            self._error(404, f"no such job: {exc.args[0]}")

    def do_POST(self) -> None:      # noqa: N802
        path = self.path.partition("?")[0]
        parts = [p for p in path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._submit()
            elif (len(parts) == 3 and parts[0] == "jobs"
                    and parts[2] == "cancel"):
                self._send(200, self.orc.cancel(parts[1]))
            elif parts == ["drain"]:
                self.orc.request_drain()
                self._send(202, {"status": "draining"})
            else:
                self._error(404, f"no such route: POST {path}")
        except UnknownJob as exc:
            self._error(404, f"no such job: {exc.args[0]}")

    def _submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        errors = schemas.validate_job_request(body)
        if errors:
            self._error(400, "invalid job request", errors)
            return
        try:
            resp = self.orc.submit(JobRequest.from_dict(body))
        except QueueFull as exc:
            self._error(429, str(exc), retry_after=exc.retry_after)
            return
        except Draining as exc:
            self._error(503, str(exc))
            return
        except ValueError as exc:
            self._error(400, "invalid job request", [str(exc)])
            return
        self._send(201, resp)

    def _results(self, job_id: str, follow: bool) -> None:
        status = self.orc.status(job_id)        # raises UnknownJob
        feed = self.orc.feed_path(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        offset = 0
        while True:
            try:
                with open(feed, "rb") as fh:
                    fh.seek(offset)
                    chunk = fh.read()
            except OSError:
                chunk = b""
            if chunk:
                # Only forward whole lines; a partially flushed tail
                # is picked up on the next poll.
                cut = chunk.rfind(b"\n") + 1
                if cut:
                    self.wfile.write(chunk[:cut])
                    self.wfile.flush()
                    offset += cut
            if not follow:
                return
            if status.state in schemas.TERMINAL_JOB_STATES \
                    and not chunk:
                return
            time.sleep(FOLLOW_POLL_SECONDS)
            status = self.orc.status(job_id)


def create_server(orc: Orchestrator, verbose: bool = False
                  ) -> ThreadingHTTPServer:
    """Bind the API server (without serving yet) and attach it to the
    orchestrator so :meth:`Orchestrator.run`'s drain can stop it."""
    server = ThreadingHTTPServer(
        (orc.config.host, orc.config.port), ServiceHandler)
    server.daemon_threads = True
    server.orchestrator = orc
    server.verbose = verbose
    orc._http = server
    return server


def serve_in_thread(orc: Orchestrator, verbose: bool = False
                    ) -> tuple[ThreadingHTTPServer, threading.Thread]:
    """Start the API server on a daemon thread; returns it with its
    thread.  ``server.server_address[1]`` is the bound port."""
    server = create_server(orc, verbose)
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.1},
                              name="repro-service-http", daemon=True)
    thread.start()
    return server, thread
