"""Simulation-as-a-service: crash-tolerant sweep orchestration.

``repro.service`` turns the one-shot ``run_grid`` engine into a
long-running orchestrator + worker pool accepting sweep jobs over a
typed HTTP/JSON API (stdlib only).  Cells are granted to workers under
TTL'd, fencing-token leases; all state is journaled under
``$REPRO_CACHE_DIR/service/`` so a killed orchestrator restarts into
the exact same sweep with zero redundant simulation — and, because
cells are keyed with the engine's content-addressed scheme, results
are byte-identical to the same sweep run via the CLI.

Layers (docs/SERVICE.md):

* :mod:`repro.service.queue` — lease-based work queue + journal;
* :mod:`repro.service.schemas` — typed API request/response schemas;
* :mod:`repro.service.worker` — worker process loop (heartbeats);
* :mod:`repro.service.orchestrator` — scheduler, recovery, drain;
* :mod:`repro.service.api` — stdlib HTTP server;
* :mod:`repro.service.client` — urllib client (CLI ``repro submit``
  etc. wrap it).
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.orchestrator import (Draining, Orchestrator,
                                        QueueFull, ServiceConfig,
                                        UnknownJob)
from repro.service.schemas import (JobRequest, JobStatus,
                                   SubmitResponse)

__all__ = [
    "Draining", "JobRequest", "JobStatus", "Orchestrator",
    "QueueFull", "ServiceClient", "ServiceConfig", "ServiceError",
    "SubmitResponse", "UnknownJob",
]
